"""System-level property-based tests (hypothesis).

These encode the repository's central invariants:

1. **The optimizer never miscompiles** (fixed pipeline): for random
   small functions, -O2 output refines its input under NEW semantics.
2. **Parser/printer round-trip**: printing and re-parsing is identity.
3. **Backend correctness**: for UB-free executions, machine code
   computes exactly what the IR interpreter computes — with and without
   register allocation.
4. **Checker agreement**: the exhaustive and symbolic refinement
   checkers agree whenever both are applicable.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backend import BackendUnsupported, compile_module, run_program
from repro.fuzz import random_functions
from repro.ir import (
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_function,
)
from repro.opt import OptConfig, o2_pipeline
from repro.refine import (
    CheckOptions,
    check_refinement,
    check_refinement_symbolic,
)
from repro.semantics import NEW, run_once

OPTS = CheckOptions(max_choices=20, fuel=600)

_SLOW = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _nth_random_function(seed: int, num_instructions: int = 3,
                         include_deferred: bool = True):
    return next(iter(random_functions(
        1, num_instructions=num_instructions, seed=seed,
        include_deferred=include_deferred,
    )))


class TestPipelineRefinement:
    @_SLOW
    @given(st.integers(0, 10_000))
    def test_o2_refines_input(self, seed):
        fn = _nth_random_function(seed)
        src_text = print_module(fn.module)
        before = parse_function(src_text)
        o2_pipeline(OptConfig.fixed()).run_on_function(fn)
        verify_function(fn)
        result = check_refinement(before, fn, NEW, options=OPTS)
        assert not result.failed, (
            f"-O2 miscompiled (seed {seed}):\n{src_text}\n"
            f"->\n{print_function(fn)}\n{result}"
        )

    @_SLOW
    @given(st.integers(0, 10_000))
    def test_o2_output_still_verifies(self, seed):
        fn = _nth_random_function(seed)
        o2_pipeline(OptConfig.fixed()).run_on_function(fn)
        verify_function(fn)

    @_SLOW
    @given(st.integers(0, 10_000))
    def test_o2_idempotent_semantically(self, seed):
        """Running -O2 twice still refines the once-optimized form."""
        fn = _nth_random_function(seed)
        o2_pipeline(OptConfig.fixed()).run_on_function(fn)
        once = parse_function(print_module(fn.module))
        o2_pipeline(OptConfig.fixed()).run_on_function(fn)
        verify_function(fn)
        result = check_refinement(once, fn, NEW, options=OPTS)
        assert not result.failed


class TestRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 100_000))
    def test_print_parse_print_fixpoint(self, seed):
        fn = _nth_random_function(seed)
        text = print_module(fn.module)
        again = print_module(parse_module(text))
        assert text == again

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_reparsed_function_behaves_identically(self, seed):
        fn = _nth_random_function(seed, include_deferred=False)
        clone = parse_function(print_module(fn.module))
        for args in ([0, 0], [1, 3], [2, 2], [3, 1]):
            assert run_once(fn, args, NEW) == run_once(clone, args, NEW)


class TestBackendDifferential:
    @_SLOW
    @given(st.integers(0, 10_000),
           st.integers(0, 3), st.integers(0, 3))
    def test_machine_matches_ir_interpreter(self, seed, a, b):
        fn = _nth_random_function(seed, include_deferred=False)
        behavior = run_once(fn, [a, b], NEW, fuel=5000)
        if behavior.kind != "ret" or behavior.ret is None:
            return  # UB (e.g. division by zero): machine may trap
        if not all(isinstance(bit, int) for bit in behavior.ret):
            return  # deferred UB reached the result: any value is legal
        expected = sum(bit << i for i, bit in enumerate(behavior.ret))
        text = print_module(fn.module)
        for allocate in (False, True):
            try:
                program = compile_module(parse_module(text),
                                         allocate=allocate)
            except BackendUnsupported:
                return
            result, _, _ = run_program(program, "f", [a, b])
            assert result == expected, (
                f"machine(allocate={allocate}) = {result}, "
                f"IR = {expected} (seed {seed}, args {a},{b}):\n{text}"
            )


class TestCheckerAgreement:
    @_SLOW
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    def test_exhaustive_and_symbolic_agree(self, seed_a, seed_b):
        """Generate a function and its optimized form; both checkers
        must agree on whether the optimization was a refinement."""
        fn = _nth_random_function(seed_a, num_instructions=2)
        src_text = print_module(fn.module)
        src = parse_function(src_text)
        tgt = parse_function(src_text)
        o2_pipeline(OptConfig.fixed()).run_on_function(tgt)
        symbolic = check_refinement_symbolic(src, tgt)
        if symbolic.verdict == "inconclusive":
            return  # outside the symbolic fragment (undef, etc.)
        exhaustive = check_refinement(src, tgt, NEW, options=OPTS)
        if exhaustive.verdict == "inconclusive":
            return
        assert symbolic.ok == exhaustive.ok, (
            f"checker disagreement (seed {seed_a}):\n{src_text}\n"
            f"symbolic={symbolic}\nexhaustive={exhaustive}"
        )


class TestPerPassRefinement:
    """Each individual pass preserves refinement on random functions."""

    PASSES = ("instcombine", "instsimplify", "gvn", "reassociate", "sccp",
              "simplifycfg", "dce", "early-cse", "freeze-opts",
              "codegenprepare")

    @_SLOW
    @given(st.integers(0, 10_000),
           st.sampled_from(PASSES))
    def test_pass_refines(self, seed, pass_name):
        from repro.opt import single_pass_pipeline

        fn = _nth_random_function(seed)
        src_text = print_module(fn.module)
        before = parse_function(src_text)
        single_pass_pipeline(pass_name,
                             OptConfig.fixed()).run_on_function(fn)
        verify_function(fn)
        result = check_refinement(before, fn, NEW, options=OPTS)
        assert not result.failed, (
            f"{pass_name} miscompiled (seed {seed}):\n{src_text}\n"
            f"->\n{print_function(fn)}\n{result}"
        )

    @_SLOW
    @given(st.integers(0, 10_000))
    def test_mem2reg_refines_alloca_code(self, seed):
        """mem2reg over synthesized alloca-using code."""
        from repro.opt import Mem2Reg

        inner = _nth_random_function(seed, num_instructions=2)
        body = print_module(inner.module)
        # wrap: spill args through allocas, like the frontend does
        text = """
define i2 @f(i2 %a, i2 %b) {
entry:
  %pa = alloca i2
  %pb = alloca i2
  store i2 %a, i2* %pa
  store i2 %b, i2* %pb
  %la = load i2, i2* %pa
  %lb = load i2, i2* %pb
  %s = add i2 %la, %lb
  store i2 %s, i2* %pa
  %r = load i2, i2* %pa
  ret i2 %r
}
"""
        before = parse_function(text)
        after = parse_function(text)
        Mem2Reg(OptConfig.fixed()).run_on_function(after)
        verify_function(after)
        result = check_refinement(before, after, NEW, options=OPTS)
        assert not result.failed
