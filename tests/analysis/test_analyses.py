"""Tests for CFG utilities, dominators, loops, and SCEV."""

import pytest

from repro.analysis import (
    DominatorTree,
    Loop,
    LoopInfo,
    ScalarEvolution,
    postorder,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.ir import parse_function, verify_function

DIAMOND = """
define i8 @f(i1 %c, i8 %x) {
entry:
  br i1 %c, label %t, label %e
t:
  %a = add i8 %x, 1
  br label %m
e:
  %b = add i8 %x, 2
  br label %m
m:
  %p = phi i8 [ %a, %t ], [ %b, %e ]
  ret i8 %p
}
"""

LOOP = """
define i8 @f(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %latch ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  br label %latch
latch:
  %i1 = add i8 %i, 1
  br label %head
exit:
  ret i8 %i
}
"""

NESTED = """
define void @f(i8 %n) {
entry:
  br label %outer
outer:
  %i = phi i8 [ 0, %entry ], [ %i1, %outer.latch ]
  %ci = icmp ult i8 %i, %n
  br i1 %ci, label %inner, label %exit
inner:
  %j = phi i8 [ 0, %outer ], [ %j1, %inner ]
  %j1 = add i8 %j, 1
  %cj = icmp ult i8 %j1, %n
  br i1 %cj, label %inner, label %outer.latch
outer.latch:
  %i1 = add i8 %i, 1
  br label %outer
exit:
  ret void
}
"""


class TestCFG:
    def test_predecessor_map(self):
        fn = parse_function(DIAMOND)
        preds = predecessor_map(fn)
        m = fn.block_by_name("m")
        assert {b.name for b in preds[m]} == {"t", "e"}
        assert preds[fn.entry] == []

    def test_reverse_postorder_starts_at_entry(self):
        fn = parse_function(DIAMOND)
        rpo = reverse_postorder(fn)
        assert rpo[0] is fn.entry
        assert rpo[-1].name == "m"
        assert len(rpo) == 4

    def test_rpo_visits_defs_before_uses_in_acyclic(self):
        fn = parse_function(DIAMOND)
        rpo = reverse_postorder(fn)
        index = {b: i for i, b in enumerate(rpo)}
        assert index[fn.block_by_name("t")] < index[fn.block_by_name("m")]
        assert index[fn.block_by_name("e")] < index[fn.block_by_name("m")]

    def test_postorder_is_reverse(self):
        fn = parse_function(LOOP)
        assert postorder(fn) == list(reversed(reverse_postorder(fn)))

    def test_reachability(self):
        fn = parse_function(DIAMOND)
        assert len(reachable_blocks(fn)) == 4

    def test_remove_unreachable(self):
        fn = parse_function("""
define i8 @f() {
entry:
  ret i8 1
dead:
  %x = add i8 1, 2
  ret i8 %x
}
""")
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        assert len(fn.blocks) == 1
        verify_function(fn)

    def test_remove_unreachable_fixes_phis(self):
        fn = parse_function("""
define i8 @f(i1 %c) {
entry:
  br label %join
dead:
  br label %join
join:
  %p = phi i8 [ 1, %entry ], [ 2, %dead ]
  ret i8 %p
}
""")
        remove_unreachable_blocks(fn)
        phi = fn.block_by_name("join").phis()[0]
        assert len(phi.incoming_blocks) == 1
        verify_function(fn)


class TestDominators:
    def test_entry_dominates_all(self):
        fn = parse_function(DIAMOND)
        dt = DominatorTree(fn)
        for b in fn.blocks:
            assert dt.dominates_block(fn.entry, b)

    def test_branches_dont_dominate_merge(self):
        fn = parse_function(DIAMOND)
        dt = DominatorTree(fn)
        t, e, m = (fn.block_by_name(n) for n in ("t", "e", "m"))
        assert not dt.dominates_block(t, m)
        assert not dt.dominates_block(e, m)
        assert dt.idom[m] is fn.entry

    def test_loop_header_dominates_body(self):
        fn = parse_function(LOOP)
        dt = DominatorTree(fn)
        head = fn.block_by_name("head")
        for name in ("body", "latch", "exit"):
            assert dt.dominates_block(head, fn.block_by_name(name))

    def test_instruction_level_dominance(self):
        fn = parse_function(LOOP)
        dt = DominatorTree(fn)
        phi = fn.block_by_name("head").phis()[0]
        ret = fn.block_by_name("exit").instructions[-1]
        assert dt.dominates(phi, ret)
        assert not dt.dominates(ret, phi)

    def test_branch_arm_does_not_dominate_merge(self):
        fn = parse_function(DIAMOND)
        dt = DominatorTree(fn)
        a = fn.block_by_name("t").instructions[0]
        ret = fn.block_by_name("m").instructions[-1]
        assert not dt.dominates(a, ret)

    def test_same_block_ordering(self):
        fn = parse_function(LOOP)
        dt = DominatorTree(fn)
        latch = fn.block_by_name("latch")
        i1 = latch.instructions[0]
        term = latch.instructions[-1]
        assert dt.dominates(i1, term)

    def test_dominance_frontier(self):
        fn = parse_function(DIAMOND)
        dt = DominatorTree(fn)
        df = dt.dominance_frontier()
        m = fn.block_by_name("m")
        assert df[fn.block_by_name("t")] == {m}
        assert df[fn.block_by_name("e")] == {m}
        assert df[fn.entry] == set()

    def test_strict_dominance(self):
        fn = parse_function(LOOP)
        dt = DominatorTree(fn)
        head = fn.block_by_name("head")
        assert dt.dominates_block(head, head)
        assert not dt.strictly_dominates_block(head, head)


class TestLoops:
    def test_single_loop_detected(self):
        fn = parse_function(LOOP)
        li = LoopInfo(fn)
        assert len(li.loops) == 1
        loop = li.loops[0]
        assert loop.header.name == "head"
        assert {b.name for b in loop.blocks} == {"head", "body", "latch"}

    def test_preheader(self):
        fn = parse_function(LOOP)
        loop = LoopInfo(fn).loops[0]
        assert loop.preheader().name == "entry"

    def test_exits(self):
        fn = parse_function(LOOP)
        loop = LoopInfo(fn).loops[0]
        assert [b.name for b in loop.exit_blocks()] == ["exit"]
        assert [b.name for b in loop.exiting_blocks()] == ["head"]

    def test_invariance(self):
        fn = parse_function(LOOP)
        loop = LoopInfo(fn).loops[0]
        n = fn.args[0]
        assert loop.is_invariant(n)
        i1 = fn.block_by_name("latch").instructions[0]
        assert not loop.is_invariant(i1)

    def test_nested_loops(self):
        fn = parse_function(NESTED)
        li = LoopInfo(fn)
        assert len(li.loops) == 2
        inner = next(l for l in li.loops if l.header.name == "inner")
        outer = next(l for l in li.loops if l.header.name == "outer")
        assert inner.parent is outer
        assert inner.depth == 2
        assert outer.depth == 1
        assert inner.blocks < outer.blocks

    def test_loop_for_block(self):
        fn = parse_function(NESTED)
        li = LoopInfo(fn)
        inner_block = fn.block_by_name("inner")
        assert li.loop_for(inner_block).header.name == "inner"
        latch = fn.block_by_name("outer.latch")
        assert li.loop_for(latch).header.name == "outer"


class TestScalarEvolution:
    def test_add_rec_recognized(self):
        fn = parse_function(LOOP)
        loop = LoopInfo(fn).loops[0]
        scev = ScalarEvolution(loop)
        phi = fn.block_by_name("head").phis()[0]
        rec = scev.as_add_rec(phi)
        assert rec is not None
        assert rec.step == 1
        assert rec.start.ref() == "0"
        assert not rec.no_wrap

    def test_nsw_recorded(self):
        src = LOOP.replace("add i8 %i, 1", "add nsw i8 %i, 1")
        fn = parse_function(src)
        loop = LoopInfo(fn).loops[0]
        phi = fn.block_by_name("head").phis()[0]
        rec = ScalarEvolution(loop).as_add_rec(phi)
        assert rec.no_wrap

    def test_trip_count_constant_bound(self):
        src = LOOP.replace("icmp ult i8 %i, %n", "icmp ult i8 %i, 7")
        fn = parse_function(src)
        loop = LoopInfo(fn).loops[0]
        assert ScalarEvolution(loop).trip_count() == 7

    def test_trip_count_unknown_bound(self):
        fn = parse_function(LOOP)
        loop = LoopInfo(fn).loops[0]
        assert ScalarEvolution(loop).trip_count() is None

    def test_freeze_blocks_scev_by_default(self):
        """Section 10.1: scalar evolution fails on freeze."""
        src = """
define i8 @f(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i2, %head ]
  %if = freeze i8 %i
  %i2 = add i8 %if, 1
  %c = icmp ult i8 %i2, 7
  br i1 %c, label %head, label %exit
exit:
  ret i8 %i
}
"""
        fn = parse_function(src)
        loop = LoopInfo(fn).loops[0]
        phi = fn.block_by_name("head").phis()[0]
        assert ScalarEvolution(loop).as_add_rec(phi) is None
        rec = ScalarEvolution(loop, freeze_aware=True).as_add_rec(phi)
        assert rec is not None and rec.step == 1
