"""Tests for known-bits, power-of-two, and poison-freedom analyses,
including Section 5.6's up-to-poison pitfall."""

import pytest

from repro.analysis import (
    KnownBits,
    compute_known_bits,
    is_guaranteed_not_poison,
    is_known_nonzero,
    is_known_power_of_two,
)
from repro.ir import parse_function


def value_named(fn, name):
    for inst in fn.instructions():
        if inst.name == name:
            return inst
    raise KeyError(name)


class TestKnownBits:
    def test_constant(self):
        kb = KnownBits.constant(0b1010, 4)
        assert kb.is_constant and kb.constant_value == 0b1010

    def test_and_with_mask(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %m = and i8 %x, 15
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.zeros == 0b11110000
        assert kb.ones == 0

    def test_or_sets_ones(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %m = or i8 %x, 128
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.ones == 128
        assert kb.sign_bit() is True

    def test_shl_constant(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %m = shl i8 %x, 3
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.zeros & 0b111 == 0b111

    def test_lshr_constant(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %m = lshr i8 %x, 6
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.max_unsigned == 3

    def test_zext_high_zeros(self):
        fn = parse_function("""
define i16 @f(i8 %x) {
entry:
  %m = zext i8 %x to i16
  ret i16 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.zeros == 0xFF00

    def test_urem_pow2(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %m = urem i8 %x, 8
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.max_unsigned == 7

    def test_add_low_bits(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = shl i8 %x, 2
  %m = add i8 %a, 1
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.ones & 1 == 1
        assert kb.zeros & 2 == 2

    def test_select_intersection(self):
        fn = parse_function("""
define i8 @f(i1 %c, i8 %x) {
entry:
  %m = select i1 %c, i8 4, i8 6
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.ones == 4     # both have bit 2 set
        assert kb.zeros & 1     # both have bit 0 clear

    def test_undef_poison_know_nothing(self):
        fn = parse_function("""
define i8 @f() {
entry:
  %m = add i8 undef, 0
  ret i8 %m
}""")
        kb = compute_known_bits(value_named(fn, "m"))
        assert kb.zeros == 0 and kb.ones == 0


class TestPowerOfTwo:
    def test_shl_one(self):
        """Section 5.6's example: shl 1, %y is a power of two —
        up to poison."""
        fn = parse_function("""
define i8 @f(i8 %y) {
entry:
  %x = shl i8 1, %y
  ret i8 %x
}""")
        x = value_named(fn, "x")
        assert is_known_power_of_two(x)
        # ...but it is NOT guaranteed non-poison (y may be >= 8 -> undef/
        # poison, or poison itself):
        assert not is_guaranteed_not_poison(x)

    def test_constants(self):
        fn = parse_function("""
define i8 @f() {
entry:
  %a = add i8 8, 0
  ret i8 %a
}""")
        from repro.ir import ConstantInt
        from repro.ir.types import I8

        assert is_known_power_of_two(ConstantInt(I8, 16))
        assert not is_known_power_of_two(ConstantInt(I8, 12))
        assert not is_known_power_of_two(ConstantInt(I8, 0))

    def test_freeze_launders_the_fact(self):
        fn = parse_function("""
define i8 @f(i8 %y) {
entry:
  %x = shl i8 1, %y
  %fr = freeze i8 %x
  ret i8 %fr
}""")
        fr = value_named(fn, "fr")
        # After freezing, the value is defined but could be anything.
        assert not is_known_power_of_two(fr)
        assert is_guaranteed_not_poison(fr)


class TestGuaranteedNotPoison:
    def test_arguments_may_be_poison(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  ret i8 %x
}""")
        assert not is_guaranteed_not_poison(fn.args[0])

    def test_flagged_arithmetic_may_create_poison(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %f = freeze i8 %x
  %a = add nsw i8 %f, 1
  %b = add i8 %f, 1
  ret i8 %a
}""")
        assert not is_guaranteed_not_poison(value_named(fn, "a"))
        assert is_guaranteed_not_poison(value_named(fn, "b"))

    def test_variable_shift_may_create_deferred_ub(self):
        fn = parse_function("""
define i8 @f(i8 %x, i8 %s) {
entry:
  %f = freeze i8 %x
  %fs = freeze i8 %s
  %a = shl i8 %f, %fs
  ret i8 %a
}""")
        assert not is_guaranteed_not_poison(value_named(fn, "a"))

    def test_constant_shift_in_range_fine(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %f = freeze i8 %x
  %a = shl i8 %f, 3
  ret i8 %a
}""")
        assert is_guaranteed_not_poison(value_named(fn, "a"))

    def test_select_requires_all_parts(self):
        fn = parse_function("""
define i8 @f(i1 %c, i8 %x) {
entry:
  %fc = freeze i1 %c
  %fx = freeze i8 %x
  %s = select i1 %fc, i8 %fx, i8 3
  %t = select i1 %c, i8 %fx, i8 3
  ret i8 %s
}""")
        assert is_guaranteed_not_poison(value_named(fn, "s"))
        assert not is_guaranteed_not_poison(value_named(fn, "t"))

    def test_nonzero_via_known_bits(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = or i8 %x, 2
  ret i8 %a
}""")
        assert is_known_nonzero(value_named(fn, "a"))
