"""Poison dataflow fixpoint: lattice, transfer functions, refinement,
and the differential soundness property against the interpreter."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import DominatorTree
from repro.analysis.poison_flow import (
    BOTTOM,
    FACT_BOTTOM,
    FACT_MUST_NOT,
    MAY_POISON,
    MUST_NOT_POISON,
    MUST_POISON,
    ORIGIN_EXTERNAL,
    ORIGIN_GENERATED,
    ORIGIN_LITERAL,
    PoisonFact,
    analyze_poison_flow,
    join_facts,
    taint_sources,
)
from repro.analysis.value_tracking import is_guaranteed_not_poison
from repro.campaign.lint_audit import AuditOptions, audit_function
from repro.fuzz.optfuzz import enumeration_size, function_at_index
from repro.ir import Opcode, parse_function
from repro.semantics import NEW, OLD


def _facts(fn, semantics=NEW):
    flow = analyze_poison_flow(fn, semantics)
    named = {}
    for block in fn.blocks:
        for inst in block.instructions:
            if not inst.type.is_void:
                named[inst.ref()] = flow.fact_of(inst)
    return flow, named


# ---------------------------------------------------------------------------
# lattice


def _fact(state, *origins):
    return PoisonFact(state, frozenset(origins))


LATTICE_POINTS = [
    FACT_BOTTOM,
    FACT_MUST_NOT,
    _fact(MAY_POISON, (ORIGIN_EXTERNAL, "argument %x")),
    _fact(MAY_POISON, (ORIGIN_GENERATED, "%a (add nsw)")),
    _fact(MUST_POISON, (ORIGIN_LITERAL, "poison literal")),
]


@pytest.mark.parametrize("a", LATTICE_POINTS)
def test_join_identity_and_idempotence(a):
    assert join_facts(a, FACT_BOTTOM) == a
    assert join_facts(FACT_BOTTOM, a) == a
    assert join_facts(a, a) == a


@pytest.mark.parametrize("a", LATTICE_POINTS)
@pytest.mark.parametrize("b", LATTICE_POINTS)
def test_join_commutes(a, b):
    assert join_facts(a, b) == join_facts(b, a)


def test_join_of_distinct_states_is_may():
    must = _fact(MUST_POISON, (ORIGIN_LITERAL, "poison literal"))
    joined = join_facts(FACT_MUST_NOT, must)
    assert joined.state == MAY_POISON
    assert joined.origins == must.origins  # origins survive the join


# ---------------------------------------------------------------------------
# transfer functions


def test_flag_ops_generate_poison():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add nsw i8 %x, 1
  %b = add i8 %x, 1
  ret i8 %a
}""")
    _, facts = _facts(fn)
    assert facts["%a"].state == MAY_POISON
    assert facts["%a"].has_generated_origin
    assert facts["%b"].state == MAY_POISON  # argument may be poison...
    assert not facts["%b"].has_generated_origin  # ...but %b adds nothing


def test_constants_and_literals():
    fn = parse_function("""
define i8 @f() {
entry:
  %a = add i8 1, 2
  %p = add i8 poison, 1
  ret i8 %a
}""")
    _, facts = _facts(fn)
    assert facts["%a"].state == MUST_NOT_POISON
    assert facts["%p"].state == MUST_POISON


def test_freeze_blocks_poison():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add nsw i8 %x, 1
  %f = freeze i8 %a
  %r = add i8 %f, 1
  ret i8 %r
}""")
    _, facts = _facts(fn)
    assert facts["%f"].state == MUST_NOT_POISON
    assert facts["%r"].state == MUST_NOT_POISON


def test_shift_amount_in_range_by_constant():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %ok = shl i8 1, 3
  %oob = shl i8 1, 9
  ret i8 %ok
}""")
    _, facts = _facts(fn)
    assert facts["%ok"].state == MUST_NOT_POISON
    assert facts["%oob"].may_be_poison
    assert facts["%oob"].has_generated_origin


def test_division_poison_divisor_is_ub_not_poison():
    # A poison divisor is *immediate UB*, so it never contributes to the
    # result's poison fact; only the dividend propagates.
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %d = udiv i8 1, %x
  ret i8 %d
}""")
    _, facts = _facts(fn)
    assert facts["%d"].state == MUST_NOT_POISON


def test_phi_joins_over_edges():
    fn = parse_function("""
define i8 @f(i1 %c, i8 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %p = add nsw i8 %x, 1
  br label %join
b:
  br label %join
join:
  %m = phi i8 [ %p, %a ], [ 0, %b ]
  ret i8 %m
}""")
    _, facts = _facts(fn)
    assert facts["%m"].state == MAY_POISON
    assert facts["%m"].has_generated_origin


def test_loop_carried_phi_reaches_fixpoint():
    fn = parse_function("""
define i8 @f(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %next, %head ]
  %next = add i8 %i, 1
  %c = icmp ult i8 %next, 4
  br i1 %c, label %head, label %exit
exit:
  ret i8 %i
}""")
    _, facts = _facts(fn)
    # constants in, plain add: the whole loop nest is poison-free
    assert facts["%i"].state == MUST_NOT_POISON
    assert facts["%next"].state == MUST_NOT_POISON


# ---------------------------------------------------------------------------
# dominating-branch refinement


GUARDED = """
define i8 @f(i8 %x) {
entry:
  %c = icmp eq i8 %x, 7
  br i1 %c, label %t, label %e
t:
  %f = freeze i8 %x
  %r = add i8 %f, 1
  ret i8 %r
e:
  ret i8 0
}"""


def test_dominating_branch_refines_use():
    fn = parse_function(GUARDED)
    flow = analyze_poison_flow(fn, NEW)
    x = fn.args[0]
    entry, t, e = fn.blocks
    # At the def (function entry) the argument may be poison ...
    assert flow.fact_at(x, entry).may_be_poison
    # ... but inside either arm the branch already executed: under
    # branch-on-poison-is-UB, %x poison would have been UB at the br.
    assert flow.fact_at(x, t).is_must_not_poison
    assert flow.fact_at(x, e).is_must_not_poison


def test_no_refinement_under_old_semantics():
    # OLD semantics: branch on poison is nondeterministic, not UB, so
    # observing the branch proves nothing.
    fn = parse_function(GUARDED)
    flow = analyze_poison_flow(fn, OLD)
    x = fn.args[0]
    t = fn.blocks[1]
    assert flow.fact_at(x, t).may_be_poison


def test_taint_sources_closure():
    fn = parse_function(GUARDED)
    entry = fn.blocks[0]
    cond = entry.terminator.cond
    sources = taint_sources(cond)  # set of value ids
    assert id(cond) in sources
    assert id(fn.args[0]) in sources  # %x: icmp propagates operand poison


def test_is_guaranteed_not_poison_delegates_to_flow():
    fn = parse_function(GUARDED)
    flow = analyze_poison_flow(fn, NEW)
    x = fn.args[0]
    t = fn.blocks[1]
    # The shallow walk can never prove an argument non-poison ...
    assert not is_guaranteed_not_poison(x)
    # ... the fixpoint with the use block can.
    assert is_guaranteed_not_poison(x, flow=flow, block=t)


# ---------------------------------------------------------------------------
# differential soundness (hypothesis): every MustNotPoison claim holds in
# every enumerated behavior, every MustPoison claim in all of them.


_OPS = tuple(Opcode(o) for o in ("add", "mul", "udiv", "shl"))
_SPACE = enumeration_size(2, width=2, opcodes=_OPS, include_flags=True)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=_SPACE - 1))
def test_claims_sound_against_interpreter(index):
    fn = function_at_index(index, 2, width=2, opcodes=_OPS,
                           include_flags=True)
    contradictions, tally = audit_function(fn, NEW, AuditOptions(),
                                           index=index)
    assert contradictions == [], (
        f"analyzer soundness bug on corpus index {index}: "
        f"{contradictions[0].as_dict()}")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=_SPACE - 1))
def test_claims_sound_under_old_semantics(index):
    fn = function_at_index(index, 2, width=2, opcodes=_OPS,
                           include_flags=True)
    contradictions, _ = audit_function(fn, OLD, AuditOptions(),
                                       index=index)
    assert contradictions == []
