"""The incremental :class:`SolverSession` must answer every query
exactly as a fresh one-shot solver would — circuits and learned clauses
are shared across queries, so the risk this file guards is *state
leakage*: one query's assertions or conflict analysis polluting the
next answer."""

from hypothesis import given, settings, strategies as st

from repro.smt import SAT, UNSAT, Solver, SolverSession
from repro.smt import terms as T

W = 6


def _one_shot(term):
    solver = Solver()
    solver.add(term)
    return solver.check(), solver


class TestSessionAgreesWithOneShot:
    def test_mixed_sat_unsat_sequence(self):
        x = T.bv_var("x", W)
        y = T.bv_var("y", W)
        queries = [
            T.eq(T.bvadd(x, y), T.bv_const(5, W)),                 # SAT
            T.and_(T.ult(x, y), T.ult(y, x)),                      # UNSAT
            T.eq(T.bvmul(x, x), T.bv_const(4, W)),                 # SAT
            T.not_(T.eq(T.bvadd(x, y), T.bvadd(y, x))),            # UNSAT
            T.and_(T.eq(x, T.bv_const(3, W)),
                   T.eq(T.bvsub(x, y), T.bv_const(1, W))),         # SAT
        ]
        session = SolverSession()
        for q in queries:
            expected, _ = _one_shot(q)
            assert session.check(q) == expected

    def test_queries_are_independent(self):
        # The second query contradicts the first; a session that
        # conjoined them would wrongly answer UNSAT.
        x = T.bv_var("x", W)
        session = SolverSession()
        assert session.check(T.eq(x, T.bv_const(1, W))) == SAT
        assert session.check(T.eq(x, T.bv_const(2, W))) == SAT

    def test_recovers_after_unsat(self):
        p = T.bool_var("p")
        session = SolverSession()
        assert session.check(T.and_(p, T.not_(p))) == UNSAT
        assert session.check(p) == SAT
        assert session.model_bool(p) is True

    def test_repeated_identical_query(self):
        x = T.bv_var("x", W)
        q = T.eq(T.bvmul(x, T.bv_const(3, W)), T.bv_const(9, W))
        session = SolverSession()
        assert session.check(q) == SAT
        first = session.model_bv(x)
        assert session.check(q) == SAT
        assert session.model_bv(x) == first  # deterministic solver

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, (1 << W) - 1),
                              st.integers(0, (1 << W) - 1)),
                    min_size=1, max_size=6))
    def test_random_equation_sequence(self, pairs):
        x = T.bv_var("x", W)
        session = SolverSession()
        for a, b in pairs:
            q = T.eq(T.bvadd(x, T.bv_const(a, W)), T.bv_const(b, W))
            expected, _ = _one_shot(q)
            assert session.check(q) == expected
            if expected == SAT:
                got = session.model_bv(x)
                assert (got + a) % (1 << W) == b


class TestSessionModels:
    def test_model_satisfies_query(self):
        x = T.bv_var("x", W)
        y = T.bv_var("y", W)
        q = T.and_(T.eq(T.bvadd(x, y), T.bv_const(10, W)),
                   T.ult(x, T.bv_const(3, W)))
        session = SolverSession()
        assert session.check(q) == SAT
        mx, my = session.model_bv(x), session.model_bv(y)
        assert (mx + my) % (1 << W) == 10
        assert mx < 3

    def test_model_survives_snapshot(self):
        # Models are snapshotted at SAT time; reading one after another
        # query's backtrack must still reflect the *snapshotted* trail.
        x = T.bv_var("x", W)
        session = SolverSession()
        assert session.check(T.eq(x, T.bv_const(7, W))) == SAT
        assert session.model_bv(x) == 7

    def test_unconstrained_var_defaults(self):
        p = T.bool_var("never_used")
        z = T.bv_var("never_used_bv", W)
        session = SolverSession()
        assert session.check(T.bool_var("q")) == SAT
        assert session.model_bool(p) is False
        assert session.model_bv(z) == 0


class TestSessionReuse:
    def test_circuits_are_reused_across_queries(self):
        x = T.bv_var("x", W)
        y = T.bv_var("y", W)
        shared = T.bvmul(x, y)  # expensive subcircuit
        session = SolverSession()
        session.check(T.eq(shared, T.bv_const(6, W)))
        hits_before = session.blaster.cache_hits
        session.check(T.eq(shared, T.bv_const(8, W)))
        assert session.blaster.cache_hits > hits_before

    def test_query_counter(self):
        p = T.bool_var("p")
        session = SolverSession()
        session.check(p)
        session.check(T.not_(p))
        assert session.queries == 2
