"""CDCL SAT solver tests, including a brute-force differential check."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt.sat import SAT, UNSAT, SatSolver


def brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        ok = True
        for clause in clauses:
            if not any(
                bits[abs(l) - 1] == (l > 0) for l in clause
            ):
                ok = False
                break
        if ok:
            return True
    return False


def solve(num_vars, clauses):
    s = SatSolver()
    for _ in range(num_vars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    return s


class TestBasics:
    def test_empty_formula_sat(self):
        s = SatSolver()
        assert s.solve() == SAT

    def test_unit_clauses(self):
        s = solve(2, [[1], [-2]])
        assert s.solve() == SAT
        assert s.model_value(1) is True
        assert s.model_value(2) is False

    def test_contradiction(self):
        s = solve(1, [[1], [-1]])
        assert s.solve() == UNSAT

    def test_simple_implication_chain(self):
        # 1 -> 2 -> 3 -> ... with 1 forced
        clauses = [[1]] + [[-i, i + 1] for i in range(1, 10)]
        s = solve(10, clauses)
        assert s.solve() == SAT
        assert all(s.model_value(v) for v in range(1, 11))

    def test_pigeonhole_2_into_1(self):
        # two pigeons, one hole: unsat
        # vars: p1h1=1, p2h1=2
        s = solve(2, [[1], [2], [-1, -2]])
        assert s.solve() == UNSAT

    def test_pigeonhole_3_into_2(self):
        # vars: pigeon i in hole j -> 2*(i-1)+j
        clauses = []
        for i in range(3):
            clauses.append([2 * i + 1, 2 * i + 2])
        for j in (1, 2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-(2 * i1 + j), -(2 * i2 + j)])
        s = solve(6, clauses)
        assert s.solve() == UNSAT

    def test_xor_chain_sat(self):
        # (1 xor 2) and (2 xor 3) encoded in CNF, satisfiable
        clauses = [
            [1, 2], [-1, -2],
            [2, 3], [-2, -3],
        ]
        s = solve(3, clauses)
        assert s.solve() == SAT

    def test_model_satisfies_formula(self):
        clauses = [[1, 2, -3], [-1, 3], [2, 3], [-2, -1]]
        s = solve(3, clauses)
        assert s.solve() == SAT
        model = [None] + [s.model_value(v) for v in range(1, 4)]
        for clause in clauses:
            assert any(model[abs(l)] == (l > 0) for l in clause)


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_3sat_matches_brute_force(self, data):
        num_vars = data.draw(st.integers(3, 8))
        num_clauses = data.draw(st.integers(1, 24))
        clauses = []
        for _ in range(num_clauses):
            size = data.draw(st.integers(1, 3))
            clause = [
                data.draw(st.integers(1, num_vars))
                * (1 if data.draw(st.booleans()) else -1)
                for _ in range(size)
            ]
            clauses.append(clause)
        expected = brute_force(num_vars, clauses)
        s = solve(num_vars, clauses)
        result = s.solve()
        assert result == (SAT if expected else UNSAT)
        if result == SAT:
            model = [None] + [s.model_value(v) for v in range(1, num_vars + 1)]
            for clause in clauses:
                assert any(model[abs(l)] == (l > 0) for l in clause)

    def test_seeded_random_large(self):
        rng = random.Random(12345)
        for trial in range(30):
            num_vars = rng.randint(5, 12)
            clauses = []
            for _ in range(rng.randint(num_vars, num_vars * 4)):
                clause = [
                    rng.randint(1, num_vars) * rng.choice([1, -1])
                    for _ in range(3)
                ]
                clauses.append(clause)
            expected = brute_force(num_vars, clauses)
            s = solve(num_vars, clauses)
            assert s.solve() == (SAT if expected else UNSAT), \
                f"trial {trial} disagreed"
