"""Tests for the term layer, bit-blasting, and end-to-end solving."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import SAT, UNSAT, Solver, check_valid
from repro.smt import terms as T

W = 6
vals = st.integers(0, (1 << W) - 1)


class TestTermConstruction:
    def test_interning(self):
        a = T.bv_var("a", 8)
        assert a is T.bv_var("a", 8)
        assert T.bv_const(3, 8) is T.bv_const(3, 8)
        assert T.bv_const(3, 8) is not T.bv_const(3, 16)

    def test_constant_folding(self):
        a, b = T.bv_const(10, 8), T.bv_const(7, 8)
        assert T.bvadd(a, b).value == 17
        assert T.bvsub(b, a).value == 253
        assert T.bvmul(a, b).value == 70
        assert T.bvudiv(a, b).value == 1
        assert T.bvand(a, b).value == 2
        assert T.eq(a, a) is T.TRUE
        assert T.ult(b, a) is T.TRUE

    def test_identities(self):
        x = T.bv_var("x", 8)
        zero = T.bv_const(0, 8)
        assert T.bvadd(x, zero) is x
        assert T.bvsub(x, zero) is x
        assert T.bvmul(x, T.bv_const(1, 8)) is x
        assert T.bvmul(x, zero).value == 0
        assert T.bvxor(x, x).value == 0
        assert T.bvand(x, x) is x

    def test_bool_simplification(self):
        p = T.bool_var("p")
        assert T.and_(p, T.TRUE) is p
        assert T.and_(p, T.FALSE) is T.FALSE
        assert T.or_(p, T.TRUE) is T.TRUE
        assert T.not_(T.not_(p)) is p
        assert T.and_(p, T.not_(p)) is T.FALSE
        assert T.or_(p, T.not_(p)) is T.TRUE

    def test_ite_simplification(self):
        x, y = T.bv_var("x", 4), T.bv_var("y", 4)
        p = T.bool_var("p")
        assert T.ite(T.TRUE, x, y) is x
        assert T.ite(T.FALSE, x, y) is y
        assert T.ite(p, x, x) is x

    def test_extract_concat(self):
        c = T.bv_const(0b1011, 4)
        assert T.extract(c, 1, 0).value == 0b11
        assert T.extract(c, 3, 2).value == 0b10
        assert T.concat(T.bv_const(0b10, 2), T.bv_const(0b11, 2)).value == 0b1011

    def test_signed_folds(self):
        # -8 sdiv 2 == -4 in i4
        a = T.bv_const(8, 4)
        b = T.bv_const(2, 4)
        assert T.bvsdiv(a, b).value == 12  # -4 & 15
        assert T.sext(T.bv_const(0b100, 3), 6).value == 0b111100


class TestSolverEndToEnd:
    def test_simple_sat(self):
        x = T.bv_var("x", 8)
        s = Solver()
        s.add(T.eq(T.bvadd(x, T.bv_const(1, 8)), T.bv_const(0, 8)))
        assert s.check() == SAT
        assert s.model_bv(x) == 255

    def test_simple_unsat(self):
        x = T.bv_var("x", 8)
        s = Solver()
        s.add(T.eq(x, T.bv_const(1, 8)))
        s.add(T.eq(x, T.bv_const(2, 8)))
        assert s.check() == UNSAT

    def test_mul_inverse(self):
        # 3 * x == 1 mod 256 has the solution x == 171
        x = T.bv_var("x", 8)
        s = Solver()
        s.add(T.eq(T.bvmul(T.bv_const(3, 8), x), T.bv_const(1, 8)))
        assert s.check() == SAT
        assert (3 * s.model_bv(x)) % 256 == 1

    def test_no_even_root_of_odd(self):
        x = T.bv_var("x", 8)
        s = Solver()
        s.add(T.eq(T.bvmul(x, T.bv_const(2, 8)), T.bv_const(7, 8)))
        assert s.check() == UNSAT

    def test_valid_commutativity(self):
        x, y = T.bv_var("cx", W), T.bv_var("cy", W)
        assert check_valid(T.eq(T.bvadd(x, y), T.bvadd(y, x))) == "valid"

    def test_invalid_claim(self):
        x = T.bv_var("ix", W)
        assert check_valid(T.eq(x, T.bv_const(0, W))) == "invalid"

    def test_demorgan_valid(self):
        x, y = T.bv_var("dx", W), T.bv_var("dy", W)
        lhs = T.bvnot(T.bvand(x, y))
        rhs = T.bvor(T.bvnot(x), T.bvnot(y))
        assert check_valid(T.eq(lhs, rhs)) == "valid"

    def test_shift_is_mul_by_pow2(self):
        x = T.bv_var("sx", W)
        lhs = T.bvshl(x, T.bv_const(3, W))
        rhs = T.bvmul(x, T.bv_const(8, W))
        assert check_valid(T.eq(lhs, rhs)) == "valid"

    def test_sub_is_add_neg(self):
        x, y = T.bv_var("mx", W), T.bv_var("my", W)
        assert check_valid(
            T.eq(T.bvsub(x, y), T.bvadd(x, T.bvneg(y)))
        ) == "valid"

    def test_udiv_mul_bound(self):
        # (x udiv y) * y <= x is valid for y != 0
        x, y = T.bv_var("ux", W), T.bv_var("uy", W)
        prem = T.ne(y, T.bv_const(0, W))
        concl = T.ule(T.bvmul(T.bvudiv(x, y), y), x)
        assert check_valid(T.implies(prem, concl)) == "valid"


class TestDifferentialBitblast:
    """Compare circuit semantics against Python integer semantics."""

    @settings(max_examples=40, deadline=None)
    @given(vals, vals)
    def test_binary_ops(self, a, b):
        mask = (1 << W) - 1
        cases = {
            "bvadd": (T.bvadd, lambda x, y: (x + y) & mask),
            "bvsub": (T.bvsub, lambda x, y: (x - y) & mask),
            "bvmul": (T.bvmul, lambda x, y: (x * y) & mask),
            "bvand": (T.bvand, lambda x, y: x & y),
            "bvor": (T.bvor, lambda x, y: x | y),
            "bvxor": (T.bvxor, lambda x, y: x ^ y),
        }
        if b != 0:
            cases["bvudiv"] = (T.bvudiv, lambda x, y: x // y)
            cases["bvurem"] = (T.bvurem, lambda x, y: x % y)
        for name, (mk, py) in cases.items():
            x = T.bv_var(f"dv.{name}.x", W)
            y = T.bv_var(f"dv.{name}.y", W)
            s = Solver()
            s.add(T.eq(x, T.bv_const(a, W)))
            s.add(T.eq(y, T.bv_const(b, W)))
            out = mk(x, y)
            expected = py(a, b)
            s.add(T.ne(out, T.bv_const(expected, W)))
            assert s.check() == UNSAT, (
                f"{name}({a},{b}) circuit disagrees with {expected}"
            )

    @settings(max_examples=30, deadline=None)
    @given(vals, st.integers(0, (1 << W) - 1))
    def test_shifts(self, a, amt):
        mask = (1 << W) - 1
        signed_a = a - (1 << W) if a >= (1 << (W - 1)) else a
        cases = {
            "bvshl": (T.bvshl,
                      (a << amt) & mask if amt < W else 0),
            "bvlshr": (T.bvlshr, a >> amt if amt < W else 0),
            "bvashr": (T.bvashr,
                       (signed_a >> amt) & mask if amt < W
                       else (mask if signed_a < 0 else 0)),
        }
        for name, (mk, expected) in cases.items():
            x = T.bv_var(f"ds.{name}.x", W)
            y = T.bv_var(f"ds.{name}.y", W)
            s = Solver()
            s.add(T.eq(x, T.bv_const(a, W)))
            s.add(T.eq(y, T.bv_const(amt, W)))
            s.add(T.ne(mk(x, y), T.bv_const(expected, W)))
            assert s.check() == UNSAT, f"{name}({a},{amt}) != {expected}"

    @settings(max_examples=30, deadline=None)
    @given(vals, vals)
    def test_signed_division(self, a, b):
        if b == 0:
            return
        mask = (1 << W) - 1

        def signed(v):
            return v - (1 << W) if v >= (1 << (W - 1)) else v

        sa, sb = signed(a), signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        r = sa - q * sb
        x = T.bv_var("sd.x", W)
        y = T.bv_var("sd.y", W)
        s = Solver()
        s.add(T.eq(x, T.bv_const(a, W)))
        s.add(T.eq(y, T.bv_const(b, W)))
        s.add(T.or_(
            T.ne(T.bvsdiv(x, y), T.bv_const(q & mask, W)),
            T.ne(T.bvsrem(x, y), T.bv_const(r & mask, W)),
        ))
        assert s.check() == UNSAT

    @settings(max_examples=30, deadline=None)
    @given(vals, vals)
    def test_comparisons(self, a, b):
        def signed(v):
            return v - (1 << W) if v >= (1 << (W - 1)) else v

        x = T.bv_var("dc.x", W)
        y = T.bv_var("dc.y", W)
        s = Solver()
        s.add(T.eq(x, T.bv_const(a, W)))
        s.add(T.eq(y, T.bv_const(b, W)))
        checks = T.and_(
            T.eq(T.ult(x, y), T.bool_const(a < b)),
            T.eq(T.slt(x, y), T.bool_const(signed(a) < signed(b))),
            T.eq(T.eq(x, y), T.bool_const(a == b)),
        )
        s.add(T.not_(checks))
        assert s.check() == UNSAT
