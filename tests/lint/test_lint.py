"""Lint rules, renderers, and CLI."""

import json
import os

import pytest

from repro.cli import main as repro_main
from repro.ir import parse_function, parse_module
from repro.lint import (
    RULES,
    SEV_ERROR,
    SEV_NOTE,
    SEV_WARNING,
    lint_function,
    lint_module,
    render_json,
    render_sarif,
    render_text,
    worst_severity,
)
from repro.semantics import NEW, OLD

DEMO = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                    "examples", "lint_demo.ll")

ALL_RULES = {
    "branch-on-maybe-poison",
    "ub-sink-reaches-poison",
    "redundant-freeze",
    "missing-freeze-on-hoist",
    "dead-on-poison-flag",
}


def _rules_of(diags):
    return {d.rule_id for d in diags}


# ---------------------------------------------------------------------------
# rules


def test_registry_is_complete():
    assert set(RULES) == ALL_RULES


def test_branch_on_flagged_value_fires():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %of = add nsw i8 %x, 1
  %c = icmp eq i8 %of, 0
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 0
}""")
    diags = lint_function(fn)
    assert _rules_of(diags) == {"branch-on-maybe-poison"}
    (d,) = diags
    assert d.severity == SEV_WARNING
    assert d.loc.function == "f" and d.loc.block == "entry"


def test_branch_on_plain_argument_is_silent():
    # External-only origins must not fire: every function taking an i1
    # may formally receive poison; flagging that would flood real code.
    fn = parse_function("""
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 0
}""")
    assert lint_function(fn) == []


def test_branch_on_literal_poison_is_error():
    fn = parse_function("""
define i8 @f() {
entry:
  %c = icmp eq i8 poison, 0
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 0
}""")
    diags = lint_function(fn)
    assert [d for d in diags if d.rule_id == "branch-on-maybe-poison"
            and d.severity == SEV_ERROR]


def test_branch_rule_respects_old_semantics():
    # Under OLD, branch-on-poison is nondeterministic, not UB.
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %of = add nsw i8 %x, 1
  %c = icmp eq i8 %of, 0
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 0
}""")
    diags = lint_function(fn, semantics=OLD)
    assert "branch-on-maybe-poison" not in _rules_of(diags)


def test_ub_sink_divisor():
    fn = parse_function("""
define i8 @f(i8 %x, i8 %y) {
entry:
  %p = mul nuw i8 %x, 2
  %q = udiv i8 %y, %p
  ret i8 %q
}""")
    diags = lint_function(fn)
    assert "ub-sink-reaches-poison" in _rules_of(diags)


def test_ub_sink_silent_when_divisor_proven():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %q = udiv i8 %x, 3
  ret i8 %q
}""")
    assert "ub-sink-reaches-poison" not in _rules_of(lint_function(fn))


def test_redundant_freeze_via_refinement():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  br i1 %c, label %use, label %out
use:
  %f = freeze i8 %x
  ret i8 %f
out:
  ret i8 0
}""")
    diags = lint_function(fn)
    assert _rules_of(diags) == {"redundant-freeze"}
    (d,) = diags
    assert d.severity == SEV_NOTE


def test_necessary_freeze_not_flagged():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %f = freeze i8 %x
  ret i8 %f
}""")
    assert lint_function(fn) == []


def test_dead_flag_fires_on_unused_result():
    fn = parse_function("""
define i8 @f(i8 %x, i8 %y) {
entry:
  %dead = add nsw i8 %x, %y
  %sum = add i8 %x, %y
  ret i8 %sum
}""")
    diags = lint_function(fn)
    assert _rules_of(diags) == {"dead-on-poison-flag"}


def test_flag_observed_through_freeze_is_dead():
    # freeze launders poison: the nsw can never be observed behind it.
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add nsw i8 %x, 1
  %fr = freeze i8 %a
  ret i8 %fr
}""")
    diags = lint_function(fn)
    assert "dead-on-poison-flag" in _rules_of(diags)


def test_flag_reaching_return_is_live():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add nsw i8 %x, 1
  ret i8 %a
}""")
    assert "dead-on-poison-flag" not in _rules_of(lint_function(fn))


def test_rule_selection_and_unknown_rule():
    fn = parse_function("""
define i8 @f(i8 %x, i8 %y) {
entry:
  %dead = add nsw i8 %x, %y
  %sum = add i8 %x, %y
  ret i8 %sum
}""")
    assert lint_function(fn, rules=["redundant-freeze"]) == []
    with pytest.raises(ValueError, match="unknown lint rule"):
        lint_function(fn, rules=["no-such-rule"])


# ---------------------------------------------------------------------------
# the demo file fires every rule exactly once


def test_demo_fires_every_rule_exactly_once():
    with open(DEMO) as f:
        module = parse_module(f.read())
    diags = lint_module(module)
    assert len(diags) == len(ALL_RULES)
    assert _rules_of(diags) == ALL_RULES


# ---------------------------------------------------------------------------
# renderers


def _demo_diags():
    with open(DEMO) as f:
        module = parse_module(f.read())
    return lint_module(module, file="examples/lint_demo.ll")


def test_text_renderer():
    diags = _demo_diags()
    text = render_text(diags)
    for d in diags:
        assert f"[{d.rule_id}]" in text
        assert str(d.loc) in text
    assert render_text([]) == "no findings"


def test_json_renderer():
    doc = json.loads(render_json(_demo_diags()))
    assert doc["tool"] == "repro-lint"
    assert {f["rule"] for f in doc["findings"]} == ALL_RULES
    for f in doc["findings"]:
        assert f["file"] == "examples/lint_demo.ll"
        assert set(f["location"]) == {"function", "block", "index", "ref"}


def test_sarif_structure():
    doc = json.loads(render_sarif(_demo_diags()))
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    assert {r["id"] for r in driver["rules"]} == ALL_RULES
    assert len(run["results"]) == len(ALL_RULES)
    for result in run["results"]:
        assert result["ruleId"] in ALL_RULES
        assert result["level"] in ("note", "warning", "error")
        (loc,) = result["locations"]
        assert loc["physicalLocation"]["artifactLocation"]["uri"] == \
            "examples/lint_demo.ll"
        assert loc["logicalLocations"][0]["fullyQualifiedName"].startswith("@")


def test_worst_severity():
    diags = _demo_diags()
    assert worst_severity(diags) == SEV_WARNING
    assert worst_severity([]) is None


# ---------------------------------------------------------------------------
# CLI


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.ll"
    clean.write_text("""
define i8 @id(i8 %x) {
entry:
  ret i8 %x
}
""")
    assert repro_main(["lint", str(clean)]) == 0
    assert repro_main(["lint", DEMO]) == 1  # warnings present
    assert repro_main(["lint", str(tmp_path / "missing.ll")]) == 2
    assert repro_main(["lint"]) == 2
    assert repro_main(["lint", DEMO, "--rule", "bogus"]) == 2
    capsys.readouterr()


def test_cli_notes_only_pass(tmp_path, capsys):
    # note-severity findings alone do not fail the run
    assert repro_main(["lint", DEMO, "--rule", "dead-on-poison-flag"]) == 0
    out = capsys.readouterr().out
    assert "dead-on-poison-flag" in out


def test_cli_json_and_sarif(tmp_path, capsys):
    sarif_path = tmp_path / "out.sarif"
    code = repro_main(["lint", DEMO, "--json",
                       "--sarif", str(sarif_path)])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in doc["findings"]} == ALL_RULES
    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"


def test_cli_pipeline_unswitch_legacy_vs_fixed(capsys):
    example = os.path.join(os.path.dirname(DEMO), "unswitch_gvn.ll")
    # legacy config unswitches without freezing: the checker flags it
    code = repro_main(["lint", example, "--pipeline", "o2",
                       "--opt-config", "legacy"])
    out = capsys.readouterr().out
    assert code == 1
    assert "missing-freeze-on-hoist" in out
    # the fixed config freezes the hoisted condition: clean
    code = repro_main(["lint", example, "--pipeline", "o2",
                       "--opt-config", "fixed"])
    capsys.readouterr()
    assert code == 0


def test_cli_list_rules(capsys):
    assert repro_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ALL_RULES:
        assert rule_id in out


def test_cli_min_severity_filters_output_and_exit(capsys):
    # the demo's worst finding is a warning: an error floor drops
    # everything and the run passes
    assert repro_main(["lint", DEMO, "--min-severity", "error"]) == 0
    assert "no findings" in capsys.readouterr().out
    # a warning floor keeps the warnings (exit 1) but drops the
    # note-severity findings from every output format
    code = repro_main(["lint", DEMO, "--min-severity", "warning",
                       "--json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"]
    assert all(f["severity"] != "note" for f in doc["findings"])
    assert "dead-on-poison-flag" not in {f["rule"] for f in doc["findings"]}


def test_cli_min_severity_default_keeps_notes(capsys):
    code = repro_main(["lint", DEMO, "--json"])
    assert code == 1
    doc = json.loads(capsys.readouterr().out)
    assert "dead-on-poison-flag" in {f["rule"] for f in doc["findings"]}


def test_cli_help_documents_exit_codes(capsys):
    with pytest.raises(SystemExit):
        repro_main(["lint", "--help"])
    out = capsys.readouterr().out
    assert "exit codes" in out
    assert "2 = usage or parse error" in out
