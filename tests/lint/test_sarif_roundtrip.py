"""SARIF 2.1.0 round-trip: required fields survive serialization and
``ruleIndex`` stays consistent with the driver rule table under
``--rule`` filtering."""

import json
import os

from repro.cli import main as repro_main
from repro.ir import parse_module
from repro.lint import RULES, lint_module, render_sarif

DEMO = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                    "examples", "lint_demo.ll")


def _demo_diags(rules=None):
    with open(DEMO) as f:
        module = parse_module(f.read())
    return lint_module(module, rules=rules, file="examples/lint_demo.ll")


def _check_roundtrip(doc_text, expected_rules):
    doc = json.loads(doc_text)
    assert doc["version"] == "2.1.0"
    assert doc["$schema"].startswith("https://")
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    rule_ids = [r["id"] for r in driver["rules"]]
    assert set(rule_ids) == expected_rules
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"]
    for result in run["results"]:
        # every result must index back into the driver's rule table
        idx = result["ruleIndex"]
        assert rule_ids[idx] == result["ruleId"]
        assert result["message"]["text"]
        (loc,) = result["locations"]
        physical = loc["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == \
            "examples/lint_demo.ll"
    return doc


def test_full_document_roundtrip():
    doc = _check_roundtrip(render_sarif(_demo_diags()), set(RULES))
    results = doc["runs"][0]["results"]
    assert len(results) == len(RULES)  # the demo fires every rule once


def test_rule_filtering_keeps_ruleindex_stable():
    chosen = ["dead-on-poison-flag", "redundant-freeze"]
    diags = _demo_diags(rules=chosen)
    doc = _check_roundtrip(render_sarif(diags, rules=chosen), set(chosen))
    results = doc["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == set(chosen)
    # the filtered driver table contains exactly the selected rules, in
    # registry order, and each result's index agrees with it
    rule_ids = [r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]]
    assert rule_ids == [rid for rid in RULES if rid in chosen]


def test_unfiltered_render_accepts_diag_subset():
    # rendering a subset of diags without a rules= filter keeps the
    # full driver table; indices still match.
    chosen = ["branch-on-maybe-poison"]
    diags = _demo_diags(rules=chosen)
    _check_roundtrip(render_sarif(diags), set(RULES))


def test_cli_sarif_respects_rule_filter(tmp_path, capsys):
    sarif_path = tmp_path / "out.sarif"
    code = repro_main(["lint", DEMO, "--rule", "ub-sink-reaches-poison",
                       "--sarif", str(sarif_path)])
    capsys.readouterr()
    assert code == 1  # the demo's sink finding is warning severity
    doc = json.loads(sarif_path.read_text())
    (run,) = doc["runs"]
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == ["ub-sink-reaches-poison"]
    for result in run["results"]:
        assert result["ruleId"] == "ub-sink-reaches-poison"
        assert result["ruleIndex"] == 0
