"""MiniC frontend tests: parsing, codegen, and end-to-end execution."""

import pytest

from repro.backend import compile_module, run_program
from repro.frontend import CodegenOptions, CompileError, compile_c, parse_c
from repro.frontend.cast import CType, StructType
from repro.frontend.codegen import layout_struct
from repro.ir import FreezeInst, verify_module
from repro.opt import o2_pipeline, prototype_config
from repro.semantics import NEW, run_once


def run_c(source: str, entry: str = "main", args=(), optimize=True):
    mod = compile_c(source)
    if optimize:
        o2_pipeline(prototype_config()).run(mod)
        verify_module(mod)
    prog = compile_module(mod)
    result, cycles, instrs = run_program(prog, entry, list(args))
    return result


class TestBasics:
    def test_arithmetic(self):
        assert run_c("int main() { return 2 + 3 * 4; }") == 14

    def test_precedence_and_parens(self):
        assert run_c("int main() { return (2 + 3) * 4; }") == 20

    def test_division_and_modulo(self):
        assert run_c("int main() { return 17 / 5 * 10 + 17 % 5; }") == 32

    def test_negative_division_truncates(self):
        src = "int main() { int a = 0 - 7; return a / 2 + 10; }"
        assert run_c(src) == 7  # -7/2 == -3; -3 + 10 == 7

    def test_bitwise(self):
        assert run_c(
            "int main() { return (12 & 10) | (1 << 4) ^ 3; }"
        ) == (12 & 10) | (1 << 4) ^ 3

    def test_comparison_yields_01(self):
        assert run_c("int main() { return (3 < 5) + (5 < 3); }") == 1

    def test_unary(self):
        assert run_c("int main() { return -5 + 10; }") == 5
        assert run_c("int main() { return !0 + !7; }") == 1
        assert run_c("int main() { return (~0) & 255; }") == 255

    def test_variables_and_assignment(self):
        src = """
int main() {
    int a = 3;
    int b = 4;
    a = a * b;
    b += a;
    return b;
}"""
        assert run_c(src) == 16

    def test_compound_assignments(self):
        src = """
int main() {
    int x = 100;
    x -= 10; x /= 2; x *= 3; x %= 40; x |= 1; x &= 30; x ^= 2; x <<= 1;
    x >>= 1;
    return x;
}"""
        x = 100
        x -= 10; x //= 2; x *= 3; x %= 40; x |= 1; x &= 30; x ^= 2; x <<= 1
        x >>= 1
        assert run_c(src) == x

    def test_increment_decrement(self):
        src = """
int main() {
    int i = 5;
    ++i;
    --i;
    ++i;
    return i;
}"""
        assert run_c(src) == 6


class TestControlFlow:
    def test_if_else(self):
        src = """
int sign(int x) {
    if (x > 0) return 1;
    else if (x < 0) return 0 - 1;
    return 0;
}
int main() { return sign(5) * 100 + (sign(0-3) & 255) + sign(0); }
"""
        assert run_c(src) == 100 + 255

    def test_while_loop(self):
        src = """
int main() {
    int i = 0; int acc = 0;
    while (i < 10) { acc += i; i++; }
    return acc;
}"""
        assert run_c(src) == 45

    def test_do_while(self):
        src = """
int main() {
    int i = 0; int n = 0;
    do { n++; i++; } while (i < 3);
    return n;
}"""
        assert run_c(src) == 3

    def test_for_loop(self):
        src = """
int main() {
    int acc = 0;
    for (int i = 1; i <= 10; i++) acc += i;
    return acc;
}"""
        assert run_c(src) == 55

    def test_break_continue(self):
        src = """
int main() {
    int acc = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        acc += i;
    }
    return acc;
}"""
        assert run_c(src) == 1 + 3 + 5 + 7 + 9

    def test_short_circuit_and(self):
        src = """
int g = 0;
int bump() { g = g + 1; return 0; }
int main() {
    int r = bump() && bump();
    return g * 10 + r;
}"""
        assert run_c(src) == 10  # second bump not evaluated

    def test_short_circuit_or(self):
        src = """
int g = 0;
int bump() { g = g + 1; return 1; }
int main() {
    int r = bump() || bump();
    return g * 10 + r;
}"""
        assert run_c(src) == 11

    def test_ternary(self):
        src = "int main() { int x = 7; return x > 5 ? 100 : 200; }"
        assert run_c(src) == 100

    def test_nested_loops(self):
        src = """
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++)
        for (int j = 0; j < 5; j++)
            if (i != j) acc++;
    return acc;
}"""
        assert run_c(src) == 20


class TestFunctionsAndGlobals:
    def test_recursion(self):
        src = """
int fact(int n) {
    if (n <= 1) return 1;
    return n * fact(n - 1);
}
int main() { return fact(6); }
"""
        assert run_c(src) == 720

    def test_globals(self):
        src = """
int counter = 10;
void tick() { counter = counter + 1; }
int main() { tick(); tick(); return counter; }
"""
        assert run_c(src) == 12

    def test_global_array(self):
        src = """
int table[8];
int main() {
    for (int i = 0; i < 8; i++) table[i] = i * i;
    int acc = 0;
    for (int i = 0; i < 8; i++) acc += table[i];
    return acc;
}"""
        assert run_c(src) == sum(i * i for i in range(8))

    def test_local_array(self):
        src = """
int main() {
    int buf[4];
    buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4;
    return buf[0] + buf[1] * buf[2] + buf[3];
}"""
        assert run_c(src) == 11

    def test_char_short_conversions(self):
        src = """
int main() {
    char c = 200;
    short s = 70000;
    return (c + 1000) * 10 + (s & 255);
}"""
        # char 200 -> -56 signed; 70000 & 0xFFFF = 4464 signed; & 255
        assert run_c(src) == (-56 + 1000) * 10 + ((70000 & 0xFFFF) & 255)

    def test_unsigned_division(self):
        src = """
int main() {
    unsigned int x = 0 - 10;
    return x / 1000000000;
}"""
        assert run_c(src) == ((2**32 - 10) // 10**9)

    def test_extern_function_callable(self):
        src = """
extern void sink(int x);
int main() { sink(42); return 0; }
"""
        assert run_c(src) == 0


class TestStructLayout:
    def test_plain_fields(self):
        struct = StructType("s", (
            ("a", CType(32, True), None),
            ("b", CType(8, True), None),
            ("c", CType(32, True), None),
        ))
        fields, size = layout_struct(struct)
        assert fields["a"].byte_offset == 0
        assert fields["b"].byte_offset == 4
        assert fields["c"].byte_offset == 8  # aligned
        assert size == 12

    def test_bitfields_pack(self):
        struct = StructType("s", (
            ("a", CType(32, True), 3),
            ("b", CType(32, True), 5),
            ("c", CType(32, True), 8),
        ))
        fields, size = layout_struct(struct)
        assert fields["a"].bit_offset == 0
        assert fields["b"].bit_offset == 3
        assert fields["c"].bit_offset == 8
        assert size == 4  # all share one i32 unit

    def test_bitfields_overflow_to_new_unit(self):
        struct = StructType("s", (
            ("a", CType(32, True), 30),
            ("b", CType(32, True), 10),
        ))
        fields, size = layout_struct(struct)
        assert fields["a"].byte_offset == 0
        assert fields["b"].byte_offset == 4
        assert size == 8


class TestBitfields:
    SRC = """
struct flags { int a : 3; int b : 5; int c : 8; };
struct flags f;

int main() {
    f.a = 2;
    f.b = 9;
    f.c = 77;
    return f.a * 10000 + f.b * 100 + f.c;
}
"""

    def test_bitfield_store_load(self):
        assert run_c(self.SRC) == 2 * 10000 + 9 * 100 + 77

    def test_bitfield_signed_extraction(self):
        src = """
struct s { int v : 3; };
struct s x;
int main() {
    x.v = 7;
    return x.v + 100;
}"""
        # 7 in a signed 3-bit field reads back as -1
        assert run_c(src) == 99

    def test_adjacent_fields_preserved(self):
        src = """
struct s { int lo : 4; int hi : 4; };
struct s x;
int main() {
    x.lo = 5;
    x.hi = 7;
    x.lo = 3;
    return x.hi * 16 + x.lo;
}"""
        assert run_c(src) == 7 * 16 + 3

    def test_freeze_emitted_for_bitfield_stores(self):
        mod = compile_c(self.SRC)
        main = mod.get_function("main")
        freezes = [i for i in main.instructions()
                   if isinstance(i, FreezeInst)]
        assert len(freezes) == 3  # one per bit-field store

    def test_no_freeze_when_disabled(self):
        mod = compile_c(self.SRC,
                        CodegenOptions(freeze_bitfield_stores=False))
        main = mod.get_function("main")
        assert not any(isinstance(i, FreezeInst)
                       for i in main.instructions())

    def test_unfrozen_bitfield_store_poisons_under_new(self):
        """Section 5.3's whole point: without the freeze, the first
        bit-field store keeps the word poison under NEW semantics."""
        src = """
struct s { int v : 4; int w : 4; };
struct s x;
int main() {
    x.v = 5;
    return x.v;
}
"""
        from repro.semantics import PBIT

        mod = compile_c(src, CodegenOptions(freeze_bitfield_stores=False))
        behavior = run_once(mod.get_function("main"), [], NEW)
        assert behavior.ret == (PBIT,) * 32
        mod2 = compile_c(src)  # with freeze
        behavior2 = run_once(mod2.get_function("main"), [], NEW)
        assert behavior2.ret == tuple(
            int(b) for b in reversed(f"{5:032b}")
        )


class TestErrors:
    def test_unknown_variable(self):
        with pytest.raises(CompileError, match="unknown variable"):
            compile_c("int main() { return nope; }")

    def test_unknown_function(self):
        with pytest.raises(CompileError, match="unknown function"):
            compile_c("int main() { return nope(); }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside"):
            compile_c("int main() { break; return 0; }")

    def test_bad_bitfield_width(self):
        with pytest.raises(CompileError, match="bad bit-field"):
            compile_c("struct s { int v : 99; };\nint main() { return 0; }")

    def test_syntax_error(self):
        with pytest.raises(CompileError):
            compile_c("int main() { return 1 +; }")


class TestOptimizedVsUnoptimized:
    @pytest.mark.parametrize("source,expected", [
        ("int main() { int s = 0; for (int i=0;i<20;i++) s+=i*i; return s; }",
         sum(i * i for i in range(20))),
        ("""
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}
int main() { return collatz(27); }""", 111),
    ])
    def test_same_result(self, source, expected):
        assert run_c(source, optimize=False) == expected
        assert run_c(source, optimize=True) == expected
