"""Unit tests for request admission and the refine micro-batcher."""

import asyncio

import pytest

from repro.serve.queueing import Batcher, Draining, QueueFull, RequestGate


def run(coro):
    return asyncio.run(coro)


class TestRequestGate:
    def test_admit_release_cycle(self):
        gate = RequestGate(high_water=2)
        gate.try_admit()
        gate.try_admit()
        assert gate.inflight == 2
        gate.release()
        gate.release()
        assert gate.inflight == 0
        assert gate.admitted_total == 2

    def test_queue_full_past_high_water(self):
        gate = RequestGate(high_water=1)
        gate.try_admit()
        with pytest.raises(QueueFull):
            gate.try_admit()
        # a release frees the slot again
        gate.release()
        gate.try_admit()

    def test_draining_rejects_new_work(self):
        gate = RequestGate(high_water=4)
        gate.try_admit()
        gate.start_drain()
        with pytest.raises(Draining):
            gate.try_admit()
        assert gate.inflight == 1  # in-flight slot untouched

    def test_bad_high_water(self):
        with pytest.raises(ValueError):
            RequestGate(high_water=0)

    def test_wait_idle(self):
        async def scenario():
            gate = RequestGate(high_water=4)
            gate.try_admit()
            gate.start_drain()
            assert not await gate.wait_idle(timeout=0.01)
            gate.release()
            assert await gate.wait_idle(timeout=1.0)

        run(scenario())

    def test_wait_idle_immediate_when_never_used(self):
        async def scenario():
            gate = RequestGate()
            assert await gate.wait_idle(timeout=0.1)

        run(scenario())


class TestDrainRace:
    """start_drain racing newly-accepted connections: a slot claimed a
    tick before the drain must finish normally and hold wait_idle open;
    a connection arriving a tick after must be rejected — never half
    admitted, never leaked."""

    def test_admitted_just_before_drain_completes(self):
        async def scenario():
            gate = RequestGate(high_water=8)
            finished = []

            async def request(i, delay):
                gate.try_admit()
                try:
                    await asyncio.sleep(delay)
                    finished.append(i)
                finally:
                    gate.release()

            # admitted before the drain: must run to completion
            early = [asyncio.ensure_future(request(i, 0.03))
                     for i in range(3)]
            await asyncio.sleep(0)  # let them claim their slots
            assert gate.inflight == 3
            gate.start_drain()
            # arrives after the drain: rejected, no slot consumed
            with pytest.raises(Draining):
                gate.try_admit()
            assert gate.inflight == 3
            # the drain waits for exactly the admitted set
            assert not await gate.wait_idle(timeout=0.005)
            await asyncio.gather(*early)
            assert await gate.wait_idle(timeout=1.0)
            assert sorted(finished) == [0, 1, 2]
            assert gate.inflight == 0

        run(scenario())

    def test_storm_of_admissions_racing_one_drain(self):
        """Interleave 50 admission attempts with a mid-stream drain:
        every attempt either fully admits (and releases) or raises
        Draining — the bookkeeping never drifts."""

        async def scenario():
            gate = RequestGate(high_water=64)
            outcomes = {"done": 0, "rejected": 0}

            async def request(i):
                try:
                    gate.try_admit()
                except Draining:
                    outcomes["rejected"] += 1
                    return
                try:
                    await asyncio.sleep(0.001 * (i % 4))
                finally:
                    gate.release()
                outcomes["done"] += 1

            async def drainer():
                await asyncio.sleep(0.004)
                gate.start_drain()

            tasks = [asyncio.ensure_future(drainer())]
            for i in range(50):
                tasks.append(asyncio.ensure_future(request(i)))
                await asyncio.sleep(0.0003)
            await asyncio.gather(*tasks)
            assert await gate.wait_idle(timeout=1.0)
            return gate, outcomes

        gate, outcomes = run(scenario())
        assert outcomes["done"] + outcomes["rejected"] == 50
        assert outcomes["done"] >= 1      # someone got in before
        assert outcomes["rejected"] >= 1  # someone hit the drain
        assert gate.admitted_total == outcomes["done"]
        assert gate.inflight == 0

    def test_drain_on_idle_gate_is_immediately_idle(self):
        async def scenario():
            gate = RequestGate(high_water=2)
            gate.try_admit()
            gate.release()
            gate.start_drain()
            assert await gate.wait_idle(timeout=0.05)
            with pytest.raises(Draining):
                gate.try_admit()

        run(scenario())

    def test_release_after_drain_still_wakes_waiters(self):
        """The waiter ordering race: wait_idle entered *after* the
        drain begins but *before* the last release must still wake."""

        async def scenario():
            gate = RequestGate(high_water=2)
            gate.try_admit()
            gate.start_drain()
            waiter = asyncio.ensure_future(gate.wait_idle(timeout=1.0))
            await asyncio.sleep(0.01)  # waiter is parked on the event
            gate.release()
            assert await waiter

        run(scenario())


class TestBatcher:
    def test_groups_items_on_one_lane(self):
        batches = []

        async def run_batch(key, batch):
            batches.append((key, len(batch)))
            for item, future in batch:
                future.set_result(item * 10)

        async def scenario():
            batcher = Batcher(run_batch, max_batch=8, linger=0.05)
            results = await asyncio.gather(
                *(batcher.submit("lane", i) for i in range(5)))
            await batcher.aclose()
            return results

        assert run(scenario()) == [0, 10, 20, 30, 40]
        # the linger window collects trailing items into few batches
        assert sum(n for _, n in batches) == 5
        assert len(batches) <= 2

    def test_max_batch_cap(self):
        sizes = []

        async def run_batch(key, batch):
            sizes.append(len(batch))
            for item, future in batch:
                future.set_result(item)

        async def scenario():
            batcher = Batcher(run_batch, max_batch=2, linger=0.05)
            await asyncio.gather(
                *(batcher.submit("lane", i) for i in range(6)))
            await batcher.aclose()

        run(scenario())
        assert max(sizes) <= 2

    def test_lanes_are_independent(self):
        seen = {}

        async def run_batch(key, batch):
            seen.setdefault(key, 0)
            seen[key] += len(batch)
            for item, future in batch:
                future.set_result(item)

        async def scenario():
            batcher = Batcher(run_batch, max_batch=8, linger=0.02)
            await asyncio.gather(
                batcher.submit("a", 1), batcher.submit("b", 2),
                batcher.submit("a", 3))
            await batcher.aclose()

        run(scenario())
        assert seen == {"a": 2, "b": 1}

    def test_batch_exception_fails_every_waiter(self):
        async def run_batch(key, batch):
            raise RuntimeError("boom")

        async def scenario():
            batcher = Batcher(run_batch, linger=0.0)
            with pytest.raises(RuntimeError, match="boom"):
                await batcher.submit("lane", 1)
            await batcher.aclose()

        run(scenario())

    def test_dropped_item_fails_its_waiter(self):
        # a batch runner that forgets an item must not hang its caller
        async def run_batch(key, batch):
            batch[0][1].set_result("ok")  # resolves only the first

        async def scenario():
            batcher = Batcher(run_batch, max_batch=2, linger=0.2)
            first = asyncio.ensure_future(batcher.submit("lane", 1))
            second = asyncio.ensure_future(batcher.submit("lane", 2))
            results = await asyncio.gather(first, second,
                                           return_exceptions=True)
            await batcher.aclose()
            return results

        first, second = run(scenario())
        dropped = [r for r in (first, second)
                   if isinstance(r, RuntimeError)]
        assert len(dropped) == 1
        assert "dropped" in str(dropped[0])

    def test_closed_batcher_rejects(self):
        async def run_batch(key, batch):
            for _, future in batch:
                future.set_result(None)

        async def scenario():
            batcher = Batcher(run_batch)
            await batcher.aclose()
            with pytest.raises(Draining):
                await batcher.submit("lane", 1)

        run(scenario())
