"""Deadline propagation: timeout validation, the Deadline type, the
bad-payload wire error, and the never-memoize-a-deadline-abort rule."""

import asyncio
import time

import pytest

from repro.campaign import CampaignSpec
from repro.campaign.worker import check_source
from repro.perf import RefinementMemo
from repro.serve import (
    Deadline,
    ServeClient,
    ServeError,
    ServiceConfig,
    ValidationServer,
    validate_timeout,
)
from repro.serve.deadline import deadline_at

SRC = """define i4 @f(i4 %a, i4 %b) {
entry:
  %t = add i4 %a, %b
  ret i4 %t
}
"""

QUICK = {"pipeline": "quick", "fuel": 300, "max_inputs": 4000}


class TestValidateTimeout:
    def test_accepts_positive_numbers(self):
        assert validate_timeout(2.5) == 2.5
        assert validate_timeout(10) == 10.0
        assert isinstance(validate_timeout(10), float)

    @pytest.mark.parametrize("bad", [
        True, False,            # bools are not durations
        "ten", None, [5],       # non-numbers
        float("inf"), float("nan"),
        0, -5, -0.1,
    ])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            validate_timeout(bad)

    def test_error_names_the_field(self):
        with pytest.raises(ValueError, match="budget"):
            validate_timeout("x", name="budget")


class TestDeadline:
    def test_after_and_remaining(self):
        d = Deadline.after(60)
        assert 59 < d.remaining() <= 60
        assert not d.expired
        assert deadline_at(d) == d.at
        assert deadline_at(None) is None

    def test_expired(self):
        d = Deadline(time.monotonic() - 0.001)
        assert d.expired
        assert d.remaining() < 0

    def test_repr_is_informative(self):
        assert "Deadline" in repr(Deadline.after(1))


class TestWireValidation:
    def _bad_timeout(self, value):
        async def main():
            server = ValidationServer(
                config=ServiceConfig(workers=1, check_threads=1))
            host, port = await server.start()

            def scenario():
                with ServeClient(host=host, port=port) as client:
                    with pytest.raises(ServeError) as err:
                        client.collect("refine", {
                            "functions": [SRC], "timeout": value, **QUICK})
                    assert err.value.code == "bad-payload"
                    assert "timeout" in str(err.value)
                    # a structured reject leaves the connection usable
                    assert client.ping()["status"] == "ok"

            try:
                await asyncio.to_thread(scenario)
            finally:
                await server.shutdown(drain_timeout=10)

        asyncio.run(main())

    def test_string_timeout_is_bad_payload(self):
        self._bad_timeout("ten")

    def test_bool_timeout_is_bad_payload(self):
        self._bad_timeout(True)

    def test_negative_timeout_is_bad_payload(self):
        self._bad_timeout(-3)


class TestDeadlineAbortsAreNotMemoized:
    SPEC = CampaignSpec(mode="random", count=1, num_instructions=1,
                        pipeline="quick", fuel=300, max_inputs=4000)

    def test_expired_deadline_yields_timeout_without_memo_entry(self):
        memo = RefinementMemo("test-deadline")
        options = self.SPEC.check_options()
        options.deadline = time.monotonic() - 1.0

        outcome = check_source(self.SPEC, SRC, memo=memo, options=options)
        assert outcome["status"] == "checked"
        assert outcome["verdict"] == "timeout"
        assert outcome["deadline_expired"] is True
        # the abort is a property of this request's budget, not the
        # function: it must not poison later requests
        assert memo.lookup(outcome["hash"]) is None

        # the same function under a fresh budget concludes and memoizes
        fresh = check_source(self.SPEC, SRC, memo=memo)
        assert fresh["verdict"] == "verified"
        assert "deadline_expired" not in fresh
        assert memo.lookup(fresh["hash"]) == "verified"
