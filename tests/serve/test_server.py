"""End-to-end tests over real sockets: both protocols, backpressure,
drain, and a worker process dying mid-request."""

import asyncio
import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    ServeClient,
    ServeError,
    ServiceConfig,
    ValidationServer,
)

SRC = """define i4 @f(i4 %a, i4 %b) {
entry:
  %t = add i4 %a, %b
  ret i4 %t
}
"""

QUICK = {"pipeline": "quick", "fuel": 300, "max_inputs": 4000}

CAMPAIGN = {"mode": "random", "count": 8, "num_instructions": 1,
            "pipeline": "quick", "shard_size": 4, "fuel": 200,
            "max_inputs": 2000}


def with_server(scenario, config=None, **server_kw):
    """Start a server, run blocking ``scenario(host, port)`` in a
    thread, shut down."""

    async def main():
        server = ValidationServer(
            config=config or ServiceConfig(workers=1, check_threads=2),
            **server_kw)
        host, port = await server.start()
        try:
            return await asyncio.to_thread(scenario, host, port)
        finally:
            await server.shutdown(drain_timeout=10)

    return asyncio.run(main())


class TestNDJSONTransport:
    def test_many_requests_one_connection(self):
        def scenario(host, port):
            with ServeClient(host=host, port=port) as client:
                assert client.ping()["status"] == "ok"
                assert client.parse(SRC)["functions"] == ["f"]
                chunks, done = client.collect(
                    "refine", {"functions": [SRC], **QUICK})
                assert done["checked"] == 1
                assert chunks[0]["verdict"] == "verified"
                # the connection survives a request-level error
                with pytest.raises(ServeError) as err:
                    client.parse("garbage")
                assert err.value.code == "parse-error"
                assert client.ping()["status"] == "ok"

        with_server(scenario)

    def test_bad_frame_keeps_connection(self):
        def scenario(host, port):
            with socket.create_connection((host, port), timeout=30) as s:
                fh = s.makefile("rwb")
                fh.write(b"this is not json\n")
                fh.flush()
                frame = json.loads(fh.readline())
                assert frame["kind"] == "error"
                assert frame["code"] == "bad-frame"
                fh.write(json.dumps({"id": 1, "op": "ping"}).encode()
                         + b"\n")
                fh.flush()
                frame = json.loads(fh.readline())
                assert frame["kind"] == "done"
                assert frame["payload"]["status"] == "ok"

        with_server(scenario)

    def test_concurrent_clients_share_the_warm_cache(self):
        import threading

        def scenario(host, port):
            barrier = threading.Barrier(2)
            results = []

            def one_client():
                with ServeClient(host=host, port=port) as client:
                    barrier.wait()
                    _, done = client.collect(
                        "refine", {"functions": [SRC], **QUICK})
                    results.append(done)

            threads = [threading.Thread(target=one_client)
                       for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            lines = {tuple(r["verdict_lines"]) for r in results}
            assert len(lines) == 1  # identical verdicts either way
            # distinct connections, one verdict store: at least one of
            # the two requests was served warm (memo or micro-batch)
            with ServeClient(host=host, port=port) as client:
                _, done = client.collect("refine",
                                         {"functions": [SRC], **QUICK})
                assert done["cached"] == 1

        with_server(scenario)


class TestHTTPTransport:
    def test_healthz_metrics_stats(self):
        def scenario(host, port):
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(base + "/healthz") as r:
                assert r.status == 200
                assert json.load(r)["status"] == "ok"
            with urllib.request.urlopen(base + "/metrics") as r:
                text = r.read().decode()
                assert r.headers["Content-Type"].startswith("text/plain")
                assert "repro_serve_queue_depth" in text
                assert "# TYPE" in text
            with urllib.request.urlopen(base + "/stats") as r:
                assert "stats" in json.load(r)

        with_server(scenario)

    def test_api_streams_ndjson_frames(self):
        def scenario(host, port):
            req = urllib.request.Request(
                f"http://{host}:{port}/api/v1/refine",
                data=json.dumps({"functions": [SRC], **QUICK}).encode())
            with urllib.request.urlopen(req) as r:
                assert r.headers["Content-Type"] == "application/x-ndjson"
                frames = [json.loads(line)
                          for line in r.read().splitlines() if line.strip()]
            kinds = [f["kind"] for f in frames]
            assert kinds == ["chunk", "done"]
            assert frames[0]["payload"]["verdict"] == "verified"

        with_server(scenario)

    def test_error_statuses(self):
        def scenario(host, port):
            base = f"http://{host}:{port}"
            cases = [
                ("/api/v1/parse", {"source": 5}, 400, "bad-request"),
                ("/api/v1/parse", {"source": "garbage"}, 422,
                 "parse-error"),
                ("/api/v1/frobnicate", {}, 404, "unknown-op"),
            ]
            for path, payload, status, code in cases:
                req = urllib.request.Request(
                    base + path, data=json.dumps(payload).encode())
                with pytest.raises(urllib.error.HTTPError) as err:
                    urllib.request.urlopen(req)
                assert err.value.code == status, path
                assert json.load(err.value)["code"] == code
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(base + "/nowhere")
            assert err.value.code == 404

        with_server(scenario)


class TestWorkerCrash:
    def test_crash_mid_campaign_is_a_structured_record(self, monkeypatch):
        # Shard 0's worker process dies with os._exit(17) mid-request;
        # the client must get a structured per-shard error and a
        # terminal done frame — not a hang, not a dropped connection.
        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_SHARDS", "0")

        def scenario(host, port):
            with ServeClient(host=host, port=port, timeout=120) as client:
                shards = []
                done = client.campaign(
                    CAMPAIGN, on_shard=lambda s: shards.append(s))
            by_id = {s["shard"]["shard_id"]: s["shard"] for s in shards}
            assert by_id[0]["status"] == "errored"
            assert "died" in by_id[0]["error"]
            assert by_id[1]["status"] == "done"
            assert done["shards_errored"] == [0]
            # the healthy shard's verdicts still arrived
            assert len(done["verdict_lines"]) == by_id[1]["checked"]

        with_server(scenario)

    def test_server_survives_the_crash(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_SHARDS", "0,1")

        def scenario(host, port):
            with ServeClient(host=host, port=port, timeout=120) as client:
                done = client.campaign(CAMPAIGN)
                assert done["shards_errored"] == [0, 1]
                monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_SHARDS")
                # the pool replaced its dead workers; new work runs
                done = client.campaign(CAMPAIGN)
                assert done["shards_errored"] == []
                assert done["checked"] == 8

        with_server(scenario)


class TestBackpressureAndDrain:
    def test_queue_full_over_the_wire(self):
        config = ServiceConfig(workers=1, high_water=1, check_threads=1)

        def scenario(host, port):
            import threading
            import time

            started = threading.Event()
            slow_result = {}

            variants = [SRC.replace("add", op).replace("@f", f"@f{i}")
                        for i, op in enumerate(
                            ("add", "sub", "and", "or", "xor", "mul"))]

            def slow_request():
                with ServeClient(host=host, port=port, timeout=120) as c:
                    started.set()
                    slow_result.update(c.collect(
                        "refine",
                        {"functions": variants,
                         "pipeline": "o2", "fuel": 5000,
                         "max_inputs": 20000})[1])

            t = threading.Thread(target=slow_request)
            t.start()
            started.wait()
            rejected = None
            with ServeClient(host=host, port=port) as client:
                # ping is ungated: wait until the slow refine actually
                # holds the queue slot before hammering, so the hammer
                # cannot win the admission race and evict it.
                for _ in range(500):
                    if client.ping().get("inflight", 0) >= 1:
                        break
                    time.sleep(0.002)
                for _ in range(200):
                    try:
                        client.collect("lint", {"source": SRC})
                    except ServeError as e:
                        rejected = e
                        break
                t.join()
            assert rejected is not None
            assert rejected.code == "queue-full"
            assert slow_result.get("checked") == 6  # in-flight finished

        with_server(scenario, config)

    def test_drain_finishes_inflight_rejects_new(self):
        async def main():
            server = ValidationServer(
                config=ServiceConfig(workers=1, check_threads=2))
            host, port = await server.start()

            inflight = {}
            rejected = {}

            def slow_client():
                with ServeClient(host=host, port=port, timeout=120) as c:
                    inflight.update(c.collect(
                        "refine", {"functions": [SRC], **QUICK})[1])

            def late_client():
                try:
                    with ServeClient(host=host, port=port) as c:
                        c.collect("lint", {"source": SRC})
                except ServeError as e:
                    rejected["code"] = e.code

            slow = asyncio.ensure_future(asyncio.to_thread(slow_client))
            while server.service.gate.inflight == 0:
                await asyncio.sleep(0.005)
            server.service.start_drain()  # what SIGTERM triggers
            await asyncio.to_thread(late_client)
            clean = await server.shutdown(drain_timeout=30)
            await slow
            assert clean
            assert rejected["code"] == "draining"
            assert inflight.get("checked") == 1

        asyncio.run(main())
