"""Unit + property tests for the NDJSON wire protocol."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    ProtocolError,
    chunk_frame,
    decode_frame,
    done_frame,
    encode_frame,
    error_frame,
    request_frame,
    validate_request,
)


class TestFraming:
    def test_one_ascii_line(self):
        encoded = encode_frame({"id": 1, "op": "ping", "payload": {}})
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1
        encoded.decode("ascii")  # must not raise

    def test_round_trip(self):
        frame = {"id": 7, "op": "lint", "payload": {"source": "x\ny"}}
        assert decode_frame(encode_frame(frame)) == frame

    def test_newlines_stay_inside_the_frame(self):
        # The whole point of ensure_ascii framing: payload newlines
        # never produce a second wire line.
        frame = {"payload": {"source": "line1\nline2\r\nline3"}}
        encoded = encode_frame(frame)
        assert encoded.count(b"\n") == 1
        assert decode_frame(encoded) == frame

    def test_lone_surrogate_survives(self):
        frame = {"payload": {"text": "bad \ud800 escape"}}
        encoded = encode_frame(frame)
        encoded.decode("ascii")
        assert decode_frame(encoded) == frame

    def test_decode_str_input(self):
        assert decode_frame('{"a": 1}') == {"a": 1}

    def test_garbage_rejected(self):
        for bad in (b"", b"   \n", b"not json\n", b"[1,2]\n", b'"str"\n'):
            with pytest.raises(ProtocolError):
                decode_frame(bad)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"payload": "x" * (MAX_FRAME_BYTES + 1)})
        with pytest.raises(ProtocolError):
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_nan_rejected(self):
        with pytest.raises((ProtocolError, ValueError)):
            encode_frame({"x": float("nan")})


class TestRequestValidation:
    def test_valid(self):
        rid, op, payload = validate_request(
            request_frame(3, "lint", {"source": "s"}))
        assert (rid, op, payload) == (3, "lint", {"source": "s"})

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as err:
            validate_request({"id": 1})
        assert err.value.code == "bad-request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as err:
            validate_request({"id": 1, "op": "frobnicate"})
        assert err.value.code == "unknown-op"

    def test_non_dict_payload(self):
        with pytest.raises(ProtocolError) as err:
            validate_request({"op": "ping", "payload": [1]})
        assert err.value.code == "bad-request"

    def test_null_payload_tolerated(self):
        _, _, payload = validate_request({"op": "ping", "payload": None})
        assert payload == {}


class TestTerminalFrames:
    def test_chunk_done_error_shapes(self):
        assert chunk_frame(1, 0, {"a": 1})["kind"] == "chunk"
        assert done_frame(1)["payload"] == {}
        err = error_frame(1, "timeout", "too slow")
        assert err["code"] == "timeout"

    def test_unknown_code_coerced_to_internal(self):
        assert error_frame(1, "nonsense", "m")["code"] == "internal"

    def test_catalogued_codes(self):
        for code in ERROR_CODES:
            assert error_frame(None, code, "m")["code"] == code

    def test_every_op_is_requestable(self):
        for op in OPS:
            _, got, _ = validate_request(request_frame(1, op))
            assert got == op


# Text including newlines, control characters, and lone surrogates —
# everything JSON can name that line-delimited framing must survive.
_nasty_text = st.text(
    alphabet=st.characters(min_codepoint=0, max_codepoint=0x10FFFF),
    max_size=60)

_payloads = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2**53, max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False) | _nasty_text,
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(_nasty_text, children, max_size=4),
    max_leaves=12)


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(payload=st.dictionaries(_nasty_text, _payloads, max_size=4),
           rid=st.integers() | _nasty_text)
    def test_frame_round_trip(self, payload, rid):
        frame = request_frame(rid, "refine", payload)
        encoded = encode_frame(frame)
        # exactly one ASCII line on the wire, whatever the payload
        assert encoded.count(b"\n") == 1
        encoded.decode("ascii")
        assert decode_frame(encoded) == frame

    @settings(max_examples=100, deadline=None)
    @given(payload=_payloads)
    def test_json_value_round_trip(self, payload):
        frame = done_frame(1, {"value": payload})
        assert decode_frame(encode_frame(frame)) == frame
