"""Client-side containment: retry schedules, circuit breakers, and
idempotent replay over real sockets."""

import asyncio
import socket
import time

import pytest

from repro.serve import (
    CircuitBreaker,
    RetryingClient,
    RetryPolicy,
    ServeClient,
    ServeError,
    ServiceConfig,
    ValidationServer,
    breaker_for,
    reset_breakers,
)

SRC = """define i4 @f(i4 %a, i4 %b) {
entry:
  %t = add i4 %a, %b
  ret i4 %t
}
"""

QUICK = {"pipeline": "quick", "fuel": 300, "max_inputs": 4000}


@pytest.fixture(autouse=True)
def _fresh_breakers():
    reset_breakers()
    yield
    reset_breakers()


def free_port() -> int:
    """A port nothing is listening on (bind-then-close)."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def with_server(scenario, config=None):
    async def main():
        server = ValidationServer(
            config=config or ServiceConfig(workers=1, check_threads=2))
        host, port = await server.start()
        try:
            return await asyncio.to_thread(scenario, host, port)
        finally:
            await server.shutdown(drain_timeout=10)

    return asyncio.run(main())


class TestRetryPolicy:
    def test_backoff_is_deterministic_per_seed(self):
        policy = RetryPolicy(backoff_base=0.05, jitter=0.5, seed=7)
        a = RetryingClient(port=1, policy=policy,
                           breaker=CircuitBreaker())
        b = RetryingClient(port=1, policy=policy,
                           breaker=CircuitBreaker())
        assert [a._backoff(k) for k in (1, 2, 3)] \
            == [b._backoff(k) for k in (1, 2, 3)]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.2,
                             jitter=0.0)
        client = RetryingClient(port=1, policy=policy,
                                breaker=CircuitBreaker())
        assert client._backoff(1) == pytest.approx(0.1)
        assert client._backoff(2) == pytest.approx(0.2)
        assert client._backoff(5) == pytest.approx(0.2)  # capped


class TestCircuitBreaker:
    def test_opens_after_threshold_and_sheds(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.report()["shed"] == 1
        assert breaker.report()["opens"] == 1

    def test_half_open_trial_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.02)
        breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.03)
        assert breaker.state == "half-open"
        assert breaker.allow()  # one trial goes through
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.report()["consecutive_failures"] == 0

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.report()["opens"] == 2

    def test_registry_is_per_endpoint(self):
        a = breaker_for("127.0.0.1", 1234)
        assert breaker_for("127.0.0.1", 1234) is a
        assert breaker_for("127.0.0.1", 1235) is not a
        reset_breakers()
        assert breaker_for("127.0.0.1", 1234) is not a


class TestRetryingClient:
    def test_semantic_errors_do_not_retry(self):
        def scenario(host, port):
            with RetryingClient(host=host, port=port) as client:
                with pytest.raises(ServeError) as err:
                    client.parse("garbage")
                assert err.value.code == "parse-error"
                assert client.retries == 0

        with_server(scenario)

    def test_down_server_retries_then_opens_the_breaker(self):
        port = free_port()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.001, seed=1)
        with RetryingClient(port=port, policy=policy,
                            breaker=breaker) as client:
            with pytest.raises(ServeError) as err:
                client.ping()
            assert err.value.code == "internal"
            assert "connect failed" in str(err.value)
            assert client.retries == 2  # 3 attempts = 2 retries
            assert breaker.state == "open"

            # the open breaker sheds instantly, without a socket
            with pytest.raises(ServeError) as err:
                client.ping()
            assert err.value.code == "queue-full"
            assert "circuit breaker open" in str(err.value)

    def test_half_open_trial_heals_against_a_live_server(self):
        def scenario(host, port):
            breaker = CircuitBreaker(failure_threshold=1,
                                     reset_timeout=0.02)
            breaker.record_failure()  # open it by hand
            time.sleep(0.03)
            with RetryingClient(host=host, port=port,
                                breaker=breaker) as client:
                assert client.ping()["status"] == "ok"
            assert breaker.state == "closed"

        with_server(scenario)

    def test_idempotent_replay_skips_the_work(self):
        def scenario(host, port):
            with ServeClient(host=host, port=port) as client:
                payload = {"functions": [SRC], **QUICK,
                           "idempotency_key": "retry-test-1"}
                chunks1, done1 = client.collect("refine", dict(payload))
                assert len(chunks1) == 1
                # a duplicate send (the retry of a request whose answer
                # was lost in transit) replays the terminal payload;
                # chunks are not re-streamed
                chunks2, done2 = client.collect("refine", dict(payload))
                assert done2 == done1
                assert chunks2 == []
                stats = client.stats()["stats"].get("serve", {})
                assert stats.get("num-idempotent-replays", 0) >= 1

        with_server(scenario)
