"""Tests for the transport-independent service core.

Everything here drives :class:`ValidationService.run_request` directly
(no sockets); the end-to-end transport tests live in
``test_server.py``.  The load-bearing property is verdict parity: a
refine request must return byte-for-byte the verdict the batch
campaign path computes for the same source and budgets.
"""

import asyncio

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.worker import check_source
from repro.serve.service import (
    ServiceConfig,
    ServiceError,
    ValidationService,
)

SRC = """define i4 @f(i4 %a, i4 %b) {
entry:
  %t = add i4 %a, %b
  ret i4 %t
}
"""

LINTY = """define i8 @branchy(i8 %x) {
entry:
  %of = add nsw i8 %x, 1
  %c = icmp eq i8 %of, 0
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 0
}
"""

QUICK = {"pipeline": "quick", "fuel": 300, "max_inputs": 4000}


def serve(coro_fn, config=None):
    """Run one scenario against a fresh service, with cleanup."""

    async def scenario():
        service = ValidationService(config or ServiceConfig(
            workers=1, check_threads=2, batch_linger=0.0))
        try:
            return await coro_fn(service)
        finally:
            await service.aclose()

    return asyncio.run(scenario())


async def call(service, op, payload=None):
    chunks = []

    async def emit(chunk):
        chunks.append(chunk)

    done = await service.run_request(op, payload or {}, emit)
    return chunks, done


class TestBasicOps:
    def test_ping_health(self):
        async def scenario(service):
            _, done = await call(service, "ping")
            assert done["status"] == "ok"
            assert done["inflight"] == 0
            return done

        done = serve(scenario)
        assert done["workers"] == 1

    def test_parse(self):
        async def scenario(service):
            _, done = await call(service, "parse", {"source": SRC})
            assert done["functions"] == ["f"]
            assert "@f" in done["ir"]

        serve(scenario)

    def test_parse_error_is_structured(self):
        async def scenario(service):
            with pytest.raises(ServiceError) as err:
                await call(service, "parse", {"source": "define garbage"})
            assert err.value.code == "parse-error"

        serve(scenario)

    def test_bad_payloads(self):
        async def scenario(service):
            for op, payload in (("parse", {}), ("parse", {"source": 5}),
                                ("refine", {"functions": []}),
                                ("refine", {"functions": [1]}),
                                ("campaign", {"spec": {"mode": "nope"}}),
                                ("campaign", {"spec": {"bogus": 1}})):
                with pytest.raises(ServiceError) as err:
                    await call(service, op, payload)
                assert err.value.code == "bad-request", (op, payload)

        serve(scenario)

    def test_unknown_op(self):
        async def scenario(service):
            with pytest.raises(ServiceError) as err:
                await call(service, "frobnicate")
            assert err.value.code == "unknown-op"

        serve(scenario)

    def test_optimize(self):
        async def scenario(service):
            _, done = await call(service, "optimize",
                                 {"source": SRC, "pipeline": "quick"})
            assert "@f" in done["ir"]
            assert done["pipeline"] == "quick"

        serve(scenario)

    def test_metrics_and_stats(self):
        async def scenario(service):
            await call(service, "parse", {"source": SRC})
            _, metrics = await call(service, "metrics")
            assert "repro_serve_queue_depth" in metrics["prometheus"]
            _, stats = await call(service, "stats")
            assert stats["stats"].get("serve", {}).get("num-requests")

        serve(scenario)


class TestLint:
    def test_findings_stream_as_chunks(self):
        async def scenario(service):
            chunks, done = await call(service, "lint",
                                      {"source": LINTY, "sarif": True})
            assert done["findings"] == len(chunks) == 1
            finding = chunks[0]["finding"]
            assert finding["rule"] == "branch-on-maybe-poison"
            assert done["worst"] == finding["severity"]
            import json

            sarif = json.loads(done["sarif"])
            assert sarif["version"] == "2.1.0"
            results = sarif["runs"][0]["results"]
            assert len(results) == 1

        serve(scenario)

    def test_clean_module_has_no_chunks(self):
        async def scenario(service):
            chunks, done = await call(service, "lint", {"source": SRC})
            assert chunks == []
            assert done == {"findings": 0, "worst": ""}

        serve(scenario)


class TestRefine:
    def test_verdict_parity_with_campaign_worker(self):
        # The service must answer exactly what the batch per-function
        # path answers — same hash, same verdict.
        spec = CampaignSpec(**QUICK)
        batch = check_source(spec, SRC, options=spec.check_options(),
                             semantics=spec.semantics())

        async def scenario(service):
            chunks, done = await call(service, "refine",
                                      {"functions": [SRC], **QUICK})
            assert chunks[0]["hash"] == batch["hash"]
            assert chunks[0]["verdict"] == batch["verdict"]
            assert done["verdict_lines"] == [
                f"{batch['hash']} {batch['verdict']}"]

        serve(scenario)

    def test_warm_cache_across_requests(self):
        async def scenario(service):
            chunks1, done1 = await call(service, "refine",
                                        {"functions": [SRC], **QUICK})
            assert not chunks1[0]["cached"]
            chunks2, done2 = await call(service, "refine",
                                        {"functions": [SRC], **QUICK})
            assert chunks2[0]["cached"]
            assert done2["cached"] == 1
            # a cache hit never changes the answer
            assert done1["verdict_lines"] == done2["verdict_lines"]

        serve(scenario)

    def test_batch_of_functions(self):
        other = SRC.replace("add", "sub").replace("@f", "@g")

        async def scenario(service):
            chunks, done = await call(service, "refine",
                                      {"functions": [SRC, other], **QUICK})
            assert [c["index"] for c in chunks] == [0, 1]
            assert done["checked"] == 2
            assert sum(done["verdicts"].values()) == 2

        serve(scenario)

    def test_pair_exhaustive(self):
        async def scenario(service):
            _, done = await call(service, "refine",
                                 {"source": SRC, "target": SRC})
            assert done["verdict"] == "verified"
            assert done["inputs_checked"] > 0

        serve(scenario)

    def test_pair_symbolic_session_reuse(self):
        async def scenario(service):
            _, first = await call(service, "refine",
                                  {"source": SRC, "target": SRC,
                                   "method": "symbolic"})
            _, second = await call(service, "refine",
                                   {"source": SRC, "target": SRC,
                                    "method": "symbolic"})
            assert first["verdict"] == second["verdict"] == "verified"
            # the session went back to the pool and was reused
            assert len(service._sessions) == 1

        serve(scenario)

    def test_pair_detects_miscompile(self):
        bad = SRC.replace("add i4 %a, %b", "add i4 %a, %a")

        async def scenario(service):
            _, done = await call(service, "refine",
                                 {"source": SRC, "target": bad})
            assert done["verdict"] == "failed"
            assert "counterexample" in done

        serve(scenario)

    def test_pair_sampled_verdict_is_flagged(self):
        # SRC's input space is 17 x 17 = 289; capping max_inputs below
        # that with sampling on must mark the verdict, not dress the
        # sample up as an exhaustive proof.
        async def scenario(service):
            _, done = await call(service, "refine",
                                 {"source": SRC, "target": SRC,
                                  "spec": {"max_inputs": 100,
                                           "sample_inputs": 5}})
            assert done["verdict"] == "verified"
            assert done["sampled"] is True
            assert done["inputs_checked"] == 5
            # the exhaustive path never carries the flag
            _, full = await call(service, "refine",
                                 {"source": SRC, "target": SRC})
            assert "sampled" not in full

        serve(scenario)

    def test_batch_sampled_verdicts_flagged_in_chunks(self):
        async def scenario(service):
            chunks, _ = await call(service, "refine",
                                   {"functions": [SRC],
                                    "max_inputs": 100,
                                    "sample_inputs": 5,
                                    "pipeline": "quick", "fuel": 300})
            assert chunks[0]["verdict"] == "verified"
            assert chunks[0]["sampled"] is True

        serve(scenario)


class TestCampaign:
    SPEC = {"mode": "random", "count": 8, "num_instructions": 1,
            "pipeline": "quick", "shard_size": 4, "fuel": 200,
            "max_inputs": 2000}

    def test_verdicts_match_batch_cli(self):
        batch = run_campaign(CampaignSpec(**self.SPEC), workers=1)

        async def scenario(service):
            chunks, done = await call(service, "campaign",
                                      {"spec": self.SPEC})
            assert len(chunks) == 2  # 8 functions / shard_size 4
            assert done["checked"] == batch.checked
            assert done["verdict_lines"] == batch.verdict_lines()

        serve(scenario)

    def test_campaign_warms_the_refine_memo(self, tmp_path):
        config = ServiceConfig(workers=1, check_threads=1,
                               batch_linger=0.0,
                               memo_dir=str(tmp_path / "memo"))

        async def scenario(service):
            _, done = await call(service, "campaign", {"spec": self.SPEC})
            spec = CampaignSpec(**self.SPEC)
            memo = service.memo_for(spec)
            # worker processes appended to the shared store; the
            # service adopted their verdicts
            cacheable = [v for v in done["verdict_lines"]
                         if not v.endswith(" failed")]
            assert len(memo) == len(cacheable)

        serve(scenario, config)


class TestRequestDiscipline:
    def test_timeout_is_structured(self):
        async def scenario(service):
            with pytest.raises(ServiceError) as err:
                await call(service, "refine",
                           {"functions": [SRC], "timeout": 0.0001,
                            **QUICK})
            assert err.value.code == "timeout"

        serve(scenario)

    def test_queue_full(self):
        config = ServiceConfig(workers=1, high_water=1,
                               batch_linger=0.0)

        async def scenario(service):
            release = asyncio.Event()

            async def slow(payload, emit):
                await release.wait()
                return {}

            service._handlers["parse"] = slow
            task = asyncio.ensure_future(call(service, "parse",
                                              {"source": SRC}))
            await asyncio.sleep(0.02)
            with pytest.raises(ServiceError) as err:
                await call(service, "lint", {"source": SRC})
            assert err.value.code == "queue-full"
            # ungated ops still answer at saturation
            _, ping = await call(service, "ping")
            assert ping["inflight"] == 1
            release.set()
            await task

        serve(scenario, config)

    def test_draining_rejects_but_finishes_inflight(self):
        async def scenario(service):
            release = asyncio.Event()

            async def slow(payload, emit):
                await release.wait()
                return {"slow": True}

            service._handlers["parse"] = slow
            task = asyncio.ensure_future(call(service, "parse", {}))
            await asyncio.sleep(0.02)
            service.start_drain()
            with pytest.raises(ServiceError) as err:
                await call(service, "lint", {"source": SRC})
            assert err.value.code == "draining"
            release.set()
            _, done = await task
            assert done == {"slow": True}
            assert await service.gate.wait_idle(timeout=1.0)

        serve(scenario)

    def test_internal_errors_are_structured(self):
        async def scenario(service):
            async def broken(payload, emit):
                raise ZeroDivisionError("surprise")

            service._handlers["parse"] = broken
            with pytest.raises(ServiceError) as err:
                await call(service, "parse", {})
            assert err.value.code == "internal"
            assert "ZeroDivisionError" in str(err.value)

        serve(scenario)
