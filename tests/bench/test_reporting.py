"""Tests for the table/figure renderers."""

from repro.bench.harness import Comparison, Measurement
from repro.bench.reporting import (
    render_code_size,
    render_compile_time,
    render_figure6,
    render_memory,
    render_summary_row,
)


def fake_measurement(variant: str, cycles: int, size: int = 100,
                     freeze: int = 0) -> Measurement:
    return Measurement(
        workload="demo", suite="CINT", variant=variant,
        compile_seconds=0.01, peak_memory_bytes=1024,
        ir_instructions=50, freeze_instructions=freeze,
        code_size_bytes=size, cycles=cycles,
        instructions_retired=cycles, checksum=42, checksum_ok=True,
    )


def fake_comparison(base_cycles=1000, proto_cycles=990) -> Comparison:
    return Comparison(
        "demo", "CINT",
        fake_measurement("baseline", base_cycles),
        fake_measurement("prototype", proto_cycles, freeze=2),
    )


class TestDeltas:
    def test_runtime_delta_sign(self):
        c = fake_comparison(1000, 990)
        assert c.runtime_delta_pct == -1.0  # prototype faster

    def test_zero_baseline_safe(self):
        c = Comparison("demo", "CINT",
                       fake_measurement("baseline", 0),
                       fake_measurement("prototype", 10))
        assert c.runtime_delta_pct == 0.0

    def test_freeze_fraction(self):
        m = fake_measurement("prototype", 100, freeze=5)
        assert m.freeze_fraction == 5 / 50


class TestRenderers:
    def test_figure6_contains_improvement(self):
        text = render_figure6([fake_comparison()])
        assert "demo" in text and "+1.00%" in text

    def test_figure6_flags_bad_checksums(self):
        c = fake_comparison()
        c.prototype.checksum_ok = False
        assert "CHECKSUM" in render_figure6([c])

    def test_compile_time_table(self):
        text = render_compile_time([fake_comparison()])
        assert "demo" in text and "mean delta" in text

    def test_memory_table(self):
        assert "demo" in render_memory([fake_comparison()])

    def test_code_size_table(self):
        text = render_code_size([fake_comparison()])
        assert "freeze/IR" in text and "4.00%" in text

    def test_summary_row(self):
        row = render_summary_row(fake_measurement("prototype", 123))
        assert "demo" in row and "ok=True" in row
