"""Tests for the benchmark subsystem: workloads, harness, catalog."""

import pytest

from repro.backend import compile_module, run_program
from repro.bench import (
    CATALOG,
    CONFIGS,
    SUITE,
    baseline_variant,
    check_entry,
    measure,
    prototype_variant,
    render_figure6,
    render_matrix,
)
from repro.bench.harness import Comparison, compile_workload
from repro.frontend import compile_c
from repro.ir import verify_module


# Keep this subset small: these compile + optimize + execute end to end.
FAST_WORKLOADS = ("gcc", "perlbench", "gobmk")


class TestWorkloads:
    def test_suite_complete(self):
        assert len(SUITE) == 20
        assert {w.suite for w in SUITE.values()} == \
            {"CINT", "CFP", "Stanford"}

    def test_all_workloads_compile_unoptimized(self):
        for name, workload in SUITE.items():
            module = compile_c(workload.source)
            verify_module(module)

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    def test_checksum_reproduces_unoptimized(self, name):
        workload = SUITE[name]
        module = compile_c(workload.source)
        program = compile_module(module)
        result, _, _ = run_program(program, "main", [], fuel=50_000_000)
        assert result == workload.expected

    @pytest.mark.parametrize("name", FAST_WORKLOADS)
    def test_checksum_reproduces_under_both_pipelines(self, name):
        workload = SUITE[name]
        for variant in (baseline_variant(), prototype_variant()):
            m = measure(workload, variant, measure_memory=False)
            assert m.checksum_ok, (
                f"{name} under {variant.name}: got {m.checksum}, "
                f"expected {workload.expected}"
            )

    def test_gcc_analog_has_bitfields_and_freezes(self):
        m = measure(SUITE["gcc"], prototype_variant(),
                    measure_memory=False)
        assert m.freeze_instructions > 0
        m0 = measure(SUITE["gcc"], baseline_variant(),
                     measure_memory=False)
        assert m0.freeze_instructions == 0


class TestHarness:
    def test_measurement_fields(self):
        m = measure(SUITE["gobmk"], prototype_variant(),
                    measure_memory=True)
        assert m.compile_seconds > 0
        assert m.peak_memory_bytes > 0
        assert m.ir_instructions > 0
        assert m.code_size_bytes > 0
        assert m.cycles > 0

    def test_comparison_deltas(self):
        base = measure(SUITE["gobmk"], baseline_variant(),
                       measure_memory=False)
        proto = measure(SUITE["gobmk"], prototype_variant(),
                        measure_memory=False)
        c = Comparison("gobmk", "CINT", base, proto)
        assert isinstance(c.runtime_delta_pct, float)
        assert isinstance(c.code_size_delta_pct, float)

    def test_figure6_renderer(self):
        base = measure(SUITE["gobmk"], baseline_variant(),
                       measure_memory=False)
        proto = measure(SUITE["gobmk"], prototype_variant(),
                        measure_memory=False)
        text = render_figure6([Comparison("gobmk", "CINT", base, proto)])
        assert "Figure 6" in text and "gobmk" in text


class TestCatalog:
    @pytest.mark.parametrize("entry", CATALOG, ids=lambda e: e.key)
    def test_every_expectation_holds(self, entry):
        for config_name in CONFIGS:
            result = check_entry(entry, config_name)
            expected = entry.expected(config_name)
            if expected is True:
                assert result.ok, (
                    f"{entry.key}/{config_name}: expected verified, "
                    f"got {result}"
                )
            elif expected is False:
                assert result.failed, (
                    f"{entry.key}/{config_name}: expected failure, "
                    f"got {result}"
                )

    def test_matrix_renders(self):
        text = render_matrix()
        assert "soundness matrix" in text
        assert "?!" not in text  # no expectation mismatches
