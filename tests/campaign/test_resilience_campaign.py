"""Campaign × resilience: guarded shards survive buggy passes.

Chaos campaigns must finish with zero dead shards, per-function crash
records must be retried on resume (while fuel-exhausted functions get a
terminal ``timeout`` verdict), and every recorded failure must come
with a replayable crash bundle.
"""

import os

import pytest

from repro.campaign import CampaignSpec, CheckpointStore, run_campaign
from repro.campaign.worker import FUEL_REASON, run_shard
from repro.campaign.sharding import plan_shards
from repro.opt.resilience import load_bundle, replay_bundle
from repro.refine.exhaustive import RefinementResult

#: Small corpus; every function runs under the guarded o2 pipeline with
#: a fault rate high enough to inject on each function's pass stream.
CHAOS_SPEC = CampaignSpec(
    mode="enumerate", num_instructions=1, opcodes=("mul", "shl"),
    pipeline="o2", opt_config="fixed", shard_size=32,
    policy="recover", chaos_seed=11, chaos_rate=0.02,
)


class TestChaosCampaign:
    def test_zero_dead_shards_under_chaos(self, tmp_path):
        summary = run_campaign(CHAOS_SPEC, out_dir=str(tmp_path))
        assert summary.shards_errored == []
        assert summary.checked == 128
        assert summary.recoveries > 0
        assert summary.crashes == []

    def test_every_recovery_has_a_replayable_bundle(self, tmp_path):
        summary = run_campaign(CHAOS_SPEC, out_dir=str(tmp_path))
        assert len(summary.bundle_paths) == summary.recoveries
        path = summary.bundle_paths[0]
        assert os.path.isdir(path)
        bundle = load_bundle(path)
        assert bundle["injected"]
        # the worker's black-box flight recorder rides in every bundle
        assert bundle["flight_recorder"] is not None
        assert bundle["flight_recorder"]["events"]
        result = replay_bundle(path)
        assert result.reproduced, result.outcome

    def test_chaos_verdicts_match_clean_run(self):
        # Recovered faults must not change what the campaign concludes:
        # rollback means the checked function saw only successful passes.
        chaotic = run_campaign(CHAOS_SPEC)
        clean = run_campaign(CHAOS_SPEC.with_(chaos_seed=None,
                                              policy="none"))
        assert chaotic.verdict_lines() == clean.verdict_lines()

    def test_chaos_campaign_deterministic_across_worker_counts(
            self, tmp_path):
        one = run_campaign(CHAOS_SPEC, out_dir=str(tmp_path / "w1"))
        two = run_campaign(CHAOS_SPEC, out_dir=str(tmp_path / "w2"),
                           workers=2)
        assert one.verdict_lines() == two.verdict_lines()
        assert one.recoveries == two.recoveries
        assert sorted(os.path.basename(p) for p in one.bundle_paths) == \
            sorted(os.path.basename(p) for p in two.bundle_paths)


class TestStrictPolicy:
    def test_strict_records_per_function_crashes(self, tmp_path):
        spec = CHAOS_SPEC.with_(policy="strict", shard_size=64)
        summary = run_campaign(spec, out_dir=str(tmp_path))
        # chaos rate 0.02 faults every function at the same application
        # index, so under strict every function crashes — but the shards
        # themselves complete and report.
        assert summary.crashes
        assert summary.shards_errored
        assert len(summary.shards_errored) == summary.shards_total
        first = summary.crashes[0]
        assert first["pass"]
        assert first["hash"]
        assert "define" in first["source"]

    def test_resume_retries_crashed_functions(self, tmp_path):
        spec = CHAOS_SPEC.with_(policy="strict", shard_size=64)
        first = run_campaign(spec, out_dir=str(tmp_path))
        assert first.checked == 0 and first.crashes
        # rerun without chaos: the crashed functions get verdicts now
        store = CheckpointStore(str(tmp_path))
        retry_spec = spec.with_(chaos_seed=None, policy="recover")
        retried = run_campaign(retry_spec, out_dir=str(tmp_path),
                               resume=True)
        assert retried.shards_errored == []
        assert len(store.load_dedup()) == 128

    def test_crashed_functions_get_no_dedup_verdict(self, tmp_path):
        spec = CHAOS_SPEC.with_(policy="strict", shard_size=64)
        run_campaign(spec, out_dir=str(tmp_path))
        assert CheckpointStore(str(tmp_path)).load_dedup() == {}


class TestTimeoutVerdict:
    def test_fuel_exhaustion_is_terminal_timeout(self, monkeypatch):
        # Satellite: the interpreter running out of fuel is a timeout
        # verdict, not a crash — terminal, deduped, never retried.
        import repro.campaign.worker as worker_module

        def fake_check(src, tgt, semantics, options=None):
            return RefinementResult(
                verdict="inconclusive",
                reason="target execution exceeded its fuel budget")

        monkeypatch.setattr(worker_module, "check_refinement", fake_check)
        spec = CHAOS_SPEC.with_(chaos_seed=None)
        shard = plan_shards(spec)[0]
        record = run_shard(spec, shard)
        assert record["status"] == "done"
        assert record["crashes"] == []
        assert record["verdicts"]["timeout"] == record["checked"]
        assert all(v == "timeout" for v in record["hashes"].values())

    def test_other_inconclusive_stays_inconclusive(self, monkeypatch):
        import repro.campaign.worker as worker_module

        def fake_check(src, tgt, semantics, options=None):
            return RefinementResult(
                verdict="inconclusive",
                reason="path explosion: too many nondeterministic choices")

        monkeypatch.setattr(worker_module, "check_refinement", fake_check)
        spec = CHAOS_SPEC.with_(chaos_seed=None)
        record = run_shard(spec, plan_shards(spec)[0])
        assert record["verdicts"]["timeout"] == 0
        assert record["verdicts"]["inconclusive"] == record["checked"]

    def test_fuel_reason_matches_refinement_module(self):
        # The sentinel must keep matching the reasons the checker emits.
        import inspect

        import repro.refine.refinement as refinement

        assert FUEL_REASON in inspect.getsource(refinement)


class TestSpecValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            CampaignSpec(policy="yolo")

    def test_unknown_chaos_mode_rejected(self):
        with pytest.raises(ValueError, match="chaos mode"):
            CampaignSpec(chaos_mode="sideways")

    def test_spec_roundtrips_resilience_fields(self):
        spec = CHAOS_SPEC.with_(verify_each=True, chaos_mode="corrupt")
        assert CampaignSpec.from_dict(spec.as_dict()) == spec

    def test_policy_none_builds_plain_manager(self):
        from repro.opt import GuardedPassManager, PassManager

        plain = CampaignSpec(policy="none").make_pipeline()
        assert type(plain) is not GuardedPassManager
        assert isinstance(plain, PassManager)
        guarded = CHAOS_SPEC.make_pipeline()
        assert isinstance(guarded, GuardedPassManager)
        assert guarded.verify_each  # forced on by chaos
