"""Differential lint audit: claim validation, planted-bug detection,
reduction, bundles, and the campaign CLI surface."""

import json
import os
from unittest import mock

from repro.campaign import lint_audit
from repro.campaign.cli import campaign_main
from repro.campaign.lint_audit import (
    AuditOptions,
    audit_function,
    run_lint_audit,
)
from repro.analysis.poison_flow import MUST_NOT_POISON, MUST_POISON
from repro.ir import parse_module
from repro.opt.resilience.bundle import list_bundles, load_bundle
from repro.semantics import NEW


def _fn(text, name="f"):
    return parse_module(text).get_function(name)


def test_sound_claims_have_no_contradictions():
    fn = _fn("""
define i2 @f(i2 %a, i2 %b) {
entry:
  %v0 = add i2 %a, %b
  %v1 = shl nsw i2 %v0, poison
  ret i2 %v1
}""")
    found, tally = audit_function(fn, NEW, AuditOptions())
    assert found == []
    assert tally["must"] >= 1  # %v1 has a poison operand: must-poison
    assert tally["observations"] > 0


def test_silent_verdicts_counted():
    fn = _fn("""
define i2 @f(i2 %a) {
entry:
  %v0 = add i2 0, 1
  %v1 = udiv i2 %a, %v0
  ret i2 %v1
}""")
    _, tally = audit_function(fn, NEW, AuditOptions())
    assert tally["must_not"] == 1
    assert tally["silent_verdicts"] == 1


def test_planted_bug_is_caught_and_reduced(tmp_path):
    # Force the auditor to believe `add nsw %a, 1` is never poison; the
    # interpreter refutes it on an overflowing input.
    def bogus(fn, semantics):
        return [(inst, MUST_NOT_POISON)
                for b in fn.blocks for inst in b.instructions
                if not inst.type.is_void and not inst.is_terminator]

    fn = _fn("""
define i2 @f(i2 %a) {
entry:
  %v0 = add nsw i2 %a, 1
  ret i2 %v0
}""")
    bundles = str(tmp_path / "bundles")
    with mock.patch.object(lint_audit, "_collect_claims", bogus):
        found, _ = audit_function(
            fn, NEW, AuditOptions(bundle_dir=bundles), index=7)
    assert len(found) == 1
    (c,) = found
    assert c.claim == MUST_NOT_POISON and c.value_ref == "%v0"
    assert "p" in c.observed_bits
    # the reduced reproducer is parseable and contains only the slice
    reduced = parse_module(c.reduced_ir)
    body = reduced.get_function("reduced")
    assert [i.ref() for i in body.entry.instructions[:1]] == ["%v0"]
    # a crash bundle was written for offline triage
    assert c.bundle_path
    paths = list_bundles(bundles)
    assert len(paths) == 1
    bundle = load_bundle(paths[0])
    assert bundle["kind"] == "lint-audit-soundness"
    assert bundle["pass"] == "poison-flow"
    assert bundle["application"] == 7
    assert "refuted" in bundle["error"]


def test_planted_must_poison_bug_is_caught():
    def bogus(fn, semantics):
        return [(inst, MUST_POISON)
                for b in fn.blocks for inst in b.instructions
                if not inst.type.is_void and not inst.is_terminator]

    fn = _fn("""
define i2 @f(i2 %a) {
entry:
  %v0 = add i2 %a, 1
  ret i2 %v0
}""")
    with mock.patch.object(lint_audit, "_collect_claims", bogus):
        found, _ = audit_function(fn, NEW, AuditOptions())
    assert found and found[0].claim == MUST_POISON


def test_run_lint_audit_strided_clean():
    report = run_lint_audit(width=2, instructions=1,
                            opcodes=("add", "udiv"),
                            include_flags=True, limit=60, stride=17)
    assert report["contradictions"] == []
    # the strided walk covers the whole (small) space
    assert 0 < report["totals"]["functions"] <= 60
    assert report["totals"]["observations"] > 0
    assert report["spec"]["stride"] == 17


def test_campaign_cli_lint_audit(tmp_path, capsys):
    out = str(tmp_path / "campaign")
    code = campaign_main([
        "lint-audit", "--instructions", "1", "--opcodes", "add,udiv",
        "--limit", "40", "--out", out, "--json"])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report["contradictions"] == []
    assert report["totals"]["functions"] == 40
    # default stride spreads the limit across the whole space
    assert report["spec"]["stride"] > 1


def test_campaign_cli_lint_audit_human_output(tmp_path, capsys):
    out = str(tmp_path / "campaign")
    code = campaign_main([
        "lint-audit", "--instructions", "1", "--opcodes", "add",
        "--limit", "20", "--out", out])
    assert code == 0
    text = capsys.readouterr().out
    assert "no contradictions" in text
