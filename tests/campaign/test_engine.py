"""End-to-end campaign engine tests: determinism across worker counts,
resume-skips-done-shards, worker-crash accounting, dedup, diag flow."""

import os

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CheckpointStore,
    run_campaign,
    run_shard,
    plan_shards,
)
from repro.campaign.executor import NUM_CHECKED, NUM_SHARDS_ERRORED
from repro.campaign.worker import CRASH_ENV
from repro.diag import default_emitter

#: A corpus small enough for the test suite but rich enough to contain
#: the Section 3 instcombine bugs: 1-instruction mul/shl over i2.
LEGACY_SPEC = CampaignSpec(
    mode="enumerate", num_instructions=1, opcodes=("mul", "shl"),
    pipeline="instcombine", opt_config="legacy", shard_size=32,
)
FIXED_SPEC = LEGACY_SPEC.with_(opt_config="fixed")


@pytest.fixture(scope="module")
def legacy_summary():
    return run_campaign(LEGACY_SPEC, workers=1)


class TestVerdicts:
    def test_legacy_campaign_finds_the_bugs(self, legacy_summary):
        assert legacy_summary.checked == 128
        assert legacy_summary.failed > 0
        assert len(legacy_summary.counterexamples) == legacy_summary.failed

    def test_fixed_campaign_is_clean(self):
        summary = run_campaign(FIXED_SPEC, workers=1)
        assert summary.failed == 0
        assert summary.checked == 128

    def test_counterexamples_carry_reproducers(self, legacy_summary):
        cex = legacy_summary.counterexamples[0]
        assert "define" in cex["source"]
        assert "define" in cex["optimized"]
        assert cex["counterexample"]
        assert len(cex["hash"]) == 64


class TestWorkerCountIndependence:
    def test_verdict_sets_identical_across_worker_counts(
            self, legacy_summary, tmp_path):
        parallel = run_campaign(LEGACY_SPEC, out_dir=str(tmp_path),
                                workers=2)
        assert parallel.verdict_lines() == legacy_summary.verdict_lines()
        assert parallel.failed == legacy_summary.failed

    def test_shard_results_are_deterministic(self):
        shard = plan_shards(LEGACY_SPEC)[1]
        a = run_shard(LEGACY_SPEC, shard)
        b = run_shard(LEGACY_SPEC, shard)
        assert a["hashes"] == b["hashes"]
        assert a["verdicts"] == b["verdicts"]


class TestResume:
    def test_resume_skips_done_shards(self, tmp_path, legacy_summary):
        out = str(tmp_path)
        partial = run_campaign(LEGACY_SPEC, out_dir=out, stop_after=2)
        assert partial.shards_run == 2
        assert partial.shards_total == 4

        resumed = run_campaign(LEGACY_SPEC, out_dir=out, resume=True)
        assert resumed.shards_skipped == 2
        assert resumed.shards_run == 2
        # the resumed summary covers the whole campaign
        assert resumed.checked == 128
        assert resumed.verdict_lines() == legacy_summary.verdict_lines()

    def test_resume_after_everything_done_runs_nothing(self, tmp_path):
        out = str(tmp_path)
        run_campaign(LEGACY_SPEC, out_dir=out)
        again = run_campaign(LEGACY_SPEC, out_dir=out, resume=True)
        assert again.shards_run == 0
        assert again.shards_skipped == 4
        assert again.checked == 128

    def test_resume_preloads_dedup_from_prior_runs(self, tmp_path):
        out = str(tmp_path)
        run_campaign(LEGACY_SPEC, out_dir=out)
        store = CheckpointStore(out)
        known = store.load_dedup()
        assert len(known) == 128
        # a later shard run against the preloaded cache skips everything
        shard = plan_shards(LEGACY_SPEC)[0]
        record = run_shard(LEGACY_SPEC, shard, known)
        assert record["checked"] == 0
        assert record["dedup_hits"] == shard.size


class TestWorkerCrash:
    def test_crashed_shard_is_accounted_not_lost(self, tmp_path,
                                                 legacy_summary):
        out = str(tmp_path)
        os.environ[CRASH_ENV] = "1"
        try:
            summary = run_campaign(LEGACY_SPEC, out_dir=out, workers=2)
        finally:
            del os.environ[CRASH_ENV]
        assert summary.shards_errored == [1]
        assert summary.checked == 96  # the other three shards completed
        record = CheckpointStore(out).load()[1]
        assert record["status"] == "errored"
        assert "exit code" in record["error"]

        # resume retries exactly the crashed shard and completes
        resumed = run_campaign(LEGACY_SPEC, out_dir=out, resume=True,
                               workers=2)
        assert resumed.shards_run == 1
        assert resumed.shards_skipped == 3
        assert resumed.shards_errored == []
        assert resumed.verdict_lines() == legacy_summary.verdict_lines()

    def test_inprocess_exception_is_accounted(self, tmp_path):
        bad = LEGACY_SPEC.with_(pipeline="no-such-pass")
        summary = run_campaign(bad, out_dir=str(tmp_path))
        assert len(summary.shards_errored) == summary.shards_total
        assert summary.checked == 0


class TestDedup:
    def test_random_streams_dedup_within_shards(self):
        # 120 draws from a ~64-function space: plenty of structural
        # duplicates for the canonical-hash cache to absorb.
        spec = CampaignSpec(mode="random", num_instructions=1,
                            opcodes=("add",), count=120, seed=5,
                            shard_size=40, pipeline="instcombine")
        summary = run_campaign(spec)
        assert summary.dedup_hits > 0
        assert summary.checked + summary.dedup_hits == 120
        assert 0.0 < summary.dedup_hit_rate < 1.0
        # Shards dedup internally; a duplicate spanning two shards of
        # the same run is checked twice but *reported* once (the merge
        # keeps the first occurrence), so the verdict set is still the
        # set of distinct functions.
        assert len(summary.verdicts) <= summary.checked
        assert set(summary.verdicts.values()) == {"verified"}


class TestDiagIntegration:
    def test_stats_flow_into_default_registry(self):
        before = NUM_CHECKED.value
        run_campaign(FIXED_SPEC.with_(opcodes=("add",)))
        assert NUM_CHECKED.value == before + 64

    def test_errored_shards_counted(self, tmp_path):
        before = NUM_SHARDS_ERRORED.value
        run_campaign(LEGACY_SPEC.with_(pipeline="no-such-pass"),
                     out_dir=str(tmp_path))
        assert NUM_SHARDS_ERRORED.value == before + 4

    def test_failures_emitted_as_remarks(self):
        with default_emitter().collect() as remarks:
            run_campaign(LEGACY_SPEC)
        campaign_remarks = [r for r in remarks
                            if r.pass_name == "campaign"]
        assert campaign_remarks
        assert all("refinement failure" in r.message
                   for r in campaign_remarks)

    def test_per_shard_timing_in_summary(self, legacy_summary):
        stats = legacy_summary.timing.passes["campaign-shard"]
        assert stats.runs == 4
        assert set(stats.per_function) == {
            "shard0", "shard1", "shard2", "shard3"}
        assert stats.seconds > 0

    def test_shard_records_carry_stats_deltas(self):
        shard = plan_shards(LEGACY_SPEC)[0]
        record = run_shard(LEGACY_SPEC, shard)
        assert record["stats"]["optfuzz"]["num-functions-enumerated"] == 32
