"""Unit tests for the worker supervisor's restart/quarantine policy,
plus integration tests for supervised healing in the executor pool."""

import time

import pytest

from repro.campaign import CampaignSpec, ShardExecutor, run_campaign
from repro.campaign.sharding import plan_shards
from repro.campaign.supervisor import SupervisorPolicy, WorkerSupervisor

SPEC = CampaignSpec(mode="random", count=12, num_instructions=1,
                    pipeline="quick", shard_size=4, fuel=200,
                    max_inputs=2000)


class TestDecisionLadder:
    def test_first_crash_restarts_with_backoff(self):
        sup = WorkerSupervisor(SupervisorPolicy(backoff_base=0.1,
                                                jitter=0.0))
        before = time.monotonic()
        decision = sup.on_failure(1, None, "worker died (exit code -9)")
        assert decision.action == "restart"
        assert decision.not_before >= before + 0.1
        assert sup.restarts == 1

    def test_backoff_grows_exponentially_and_caps(self):
        policy = SupervisorPolicy(max_restarts=10, backoff_base=0.1,
                                  backoff_cap=0.4, jitter=0.0)
        sup = WorkerSupervisor(policy)
        delays = []
        for _ in range(4):
            before = time.monotonic()
            decision = sup.on_failure(1, None, "crash")
            delays.append(decision.not_before - before)
        assert delays[0] == pytest.approx(0.1, abs=0.02)
        assert delays[1] == pytest.approx(0.2, abs=0.02)
        assert delays[2] == pytest.approx(0.4, abs=0.02)  # capped
        assert delays[3] == pytest.approx(0.4, abs=0.02)

    def test_jitter_is_deterministic_per_seed(self):
        policy = SupervisorPolicy(jitter=0.5, seed=42)
        a = WorkerSupervisor(policy)._backoff(1)
        b = WorkerSupervisor(policy)._backoff(1)
        assert a == b
        c = WorkerSupervisor(SupervisorPolicy(jitter=0.5,
                                              seed=43))._backoff(1)
        assert a != c

    def test_quarantine_after_max_restarts(self):
        sup = WorkerSupervisor(SupervisorPolicy(max_restarts=2,
                                                backoff_base=0.0))
        assert sup.on_failure(7, None, "crash").action == "restart"
        assert sup.on_failure(7, None, "crash").action == "restart"
        final = sup.on_failure(7, None, "crash")
        assert final.action == "quarantine"
        assert "quarantined after 3 failed attempts" in final.reason
        assert "crash" in final.reason  # raw reason embedded
        assert sup.quarantined == 1
        assert sup.poison_pills[0]["job_id"] == 7
        assert sup.poison_pills[0]["attempts"] == 3

    def test_non_retryable_failure_quarantines_immediately(self):
        sup = WorkerSupervisor(SupervisorPolicy())
        decision = sup.on_failure(1, None, "shard exceeded its timeout",
                                  retryable=False)
        assert decision.action == "quarantine"
        assert sup.restarts == 0

    def test_retry_timeouts_opt_in(self):
        sup = WorkerSupervisor(SupervisorPolicy(retry_timeouts=True,
                                                backoff_base=0.0))
        decision = sup.on_failure(1, None, "shard exceeded its timeout",
                                  retryable=False)
        assert decision.action == "restart"

    def test_expired_deadline_fails_without_spending_budget(self):
        sup = WorkerSupervisor(SupervisorPolicy())
        decision = sup.on_failure(1, None, "crash",
                                  deadline=time.monotonic() - 1.0)
        assert decision.action == "fail"
        assert sup.restarts == 0

    def test_insufficient_runway_fails_instead_of_restarting(self):
        # backoff would be 1.0s but only ~0.1s of deadline remains
        sup = WorkerSupervisor(SupervisorPolicy(backoff_base=1.0,
                                                jitter=0.0))
        decision = sup.on_failure(1, None, "crash",
                                  deadline=time.monotonic() + 0.1)
        assert decision.action == "fail"
        assert sup.restarts == 0

    def test_global_restart_budget(self):
        sup = WorkerSupervisor(SupervisorPolicy(restart_budget=2,
                                                backoff_base=0.0))
        assert sup.on_failure(1, None, "crash").action == "restart"
        assert sup.on_failure(2, None, "crash").action == "restart"
        spent = sup.on_failure(3, None, "crash")
        assert spent.action == "fail"
        assert "restart budget" in spent.reason

    def test_forget_drops_history(self):
        sup = WorkerSupervisor(SupervisorPolicy(backoff_base=0.0))
        sup.on_failure(5, None, "crash")
        assert sup.history_for(5).attempts == 1
        sup.forget(5)
        assert sup.history_for(5) is None

    def test_report_shape(self):
        sup = WorkerSupervisor(SupervisorPolicy(max_restarts=0))
        sup.on_failure(9, None, "boom")
        report = sup.report()
        assert report["restarts"] == 0
        assert report["quarantined"] == 1
        assert report["poison_pills"][0]["reasons"] == ["boom"]


class TestSupervisedExecutor:
    def test_crash_heals_with_identical_verdicts(self, monkeypatch):
        """A crashing shard is respawned and its verdicts match the
        batch path — the healed record is the record."""
        batch = run_campaign(SPEC, workers=1)

        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_SHARDS", "1")
        executor = ShardExecutor(workers=2)
        crashed_once = {"done": False}

        # crash exactly the first attempt of shard 1: flip the env off
        # once the supervisor has scheduled the restart (the backoff
        # delay guarantees the retry forks after the delenv)
        try:
            shards = plan_shards(SPEC)
            for shard in shards:
                executor.submit(SPEC, shard)
            records = {}
            while not executor.idle:
                for _job, shard, record in executor.poll(wait=0.01):
                    records[shard.shard_id] = record
                if (not crashed_once["done"]
                        and executor.supervisor.restarts > 0):
                    monkeypatch.delenv("REPRO_CAMPAIGN_CRASH_SHARDS")
                    crashed_once["done"] = True
        finally:
            executor.shutdown(kill=True)

        assert crashed_once["done"], "the injected crash never fired"
        assert records[1]["status"] == "done"
        assert records[1]["restarts"] >= 1
        merged = {}
        for sid in sorted(records):
            for h, v in sorted(records[sid]["hashes"].items()):
                merged.setdefault(h, v)
        assert ([f"{h} {v}" for h, v in sorted(merged.items())]
                == batch.verdict_lines())

    def test_permanent_crasher_is_quarantined(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_SHARDS", "0")
        executor = ShardExecutor(
            workers=1,
            supervisor=WorkerSupervisor(
                SupervisorPolicy(max_restarts=1, backoff_base=0.0)))
        try:
            shard = plan_shards(SPEC)[0]
            executor.submit(SPEC, shard)
            records = [r for _j, _s, r in executor.drain()]
        finally:
            executor.shutdown(kill=True)

        assert len(records) == 1
        assert records[0]["status"] == "errored"
        assert records[0].get("quarantined") is True
        assert "quarantined after 2 failed attempts" in records[0]["error"]
        report = executor.supervisor.report()
        assert report["quarantined"] == 1
        assert report["poison_pills"][0]["shard_id"] == shard.shard_id
