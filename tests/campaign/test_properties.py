"""Property tests guarding the canonical-hash layer (hypothesis).

The dedup cache keys on a hash of *re-printed, re-parsed* IR, so its
soundness rests on the printer/parser being a bijection on the corpus:
``print -> parse -> print`` must be a fixed point for every function
opt-fuzz can generate, and canonical hashing must be stable across the
round-trip and across alpha-renaming.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import canonical_hash, canonical_text
from repro.fuzz import enumerate_functions, function_at_index, random_functions
from repro.ir import parse_function, print_function, print_module

_FAST = settings(max_examples=60, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _random_fn(seed):
    return next(iter(random_functions(1, seed=seed)))


class TestRoundTrip:
    @_FAST
    @given(st.integers(0, 100_000))
    def test_print_parse_print_fixed_point_random(self, seed):
        fn = _random_fn(seed)
        text = print_module(fn.module)
        reparsed = parse_function(text)
        assert print_function(reparsed) == print_function(fn)
        assert print_module(reparsed.module) == text

    @_FAST
    @given(st.integers(0, 447))
    def test_print_parse_print_fixed_point_enumerated(self, index):
        fn = function_at_index(index, 1)
        text = print_function(fn)
        assert print_function(parse_function(text)) == text


class TestCanonicalHashProperties:
    @_FAST
    @given(st.integers(0, 100_000))
    def test_hash_stable_across_round_trip(self, seed):
        fn = _random_fn(seed)
        reparsed = parse_function(print_module(fn.module))
        assert canonical_hash(fn) == canonical_hash(reparsed)

    @_FAST
    @given(st.integers(0, 100_000))
    def test_hash_invariant_under_renaming(self, seed):
        fn = _random_fn(seed)
        renamed = parse_function(print_module(fn.module))
        renamed.name = "completely_different"
        for i, arg in enumerate(renamed.args):
            arg.name = f"zz{i}"
        for i, block in enumerate(renamed.blocks):
            block.name = f"blk_{i}"
        n = 0
        for inst in renamed.instructions():
            if not inst.type.is_void:
                inst.name = f"val{n}"
                n += 1
        assert canonical_hash(renamed) == canonical_hash(fn)

    @_FAST
    @given(st.integers(0, 100_000))
    def test_canonical_text_is_canonical(self, seed):
        """Canonicalizing twice is the same as canonicalizing once."""
        fn = _random_fn(seed)
        once = canonical_text(fn)
        assert canonical_text(once) == once

    @_FAST
    @given(st.integers(0, 446), st.integers(1, 447))
    def test_distinct_corpus_functions_hash_distinct(self, i, delta):
        j = (i + delta) % 448
        a = function_at_index(i, 1)
        b = function_at_index(j, 1)
        assert canonical_hash(a) != canonical_hash(b)


class TestSlicingEquivalence:
    @_FAST
    @given(st.integers(0, 447), st.integers(1, 64))
    def test_sliced_enumeration_matches_full_walk(self, start, size):
        stop = min(start + size, 448)
        sliced = [print_function(f)
                  for f in enumerate_functions(1, start=start, stop=stop)]
        prefix = [print_function(f)
                  for f in enumerate_functions(1, limit=stop)]
        assert sliced == prefix[start:stop]
