"""Canonical hashing: renumbering invariance and dedup accounting."""

import pytest

from repro.campaign import DedupCache, canonical_hash, canonical_text
from repro.fuzz import enumerate_functions
from repro.ir import parse_function, print_function

BASE = """
define i2 @f(i2 %a, i2 %b) {
entry:
  %x = mul i2 %a, %b
  %y = add i2 %x, 1
  ret i2 %y
}
"""

RENAMED = """
define i2 @weird(i2 %lhs, i2 %rhs) {
top:
  %product = mul i2 %lhs, %rhs
  %sum = add i2 %product, 1
  ret i2 %sum
}
"""

SWAPPED_OPERANDS = """
define i2 @f(i2 %a, i2 %b) {
entry:
  %x = mul i2 %b, %a
  %y = add i2 %x, 1
  ret i2 %y
}
"""


class TestCanonicalHash:
    def test_alpha_renaming_invariant(self):
        assert canonical_hash(BASE) == canonical_hash(RENAMED)
        assert canonical_text(BASE) == canonical_text(RENAMED)

    def test_operand_order_is_significant(self):
        # mul %a, %b and mul %b, %a are different *functions of the
        # arguments*; canonicalization must not conflate them.
        assert canonical_hash(BASE) != canonical_hash(SWAPPED_OPERANDS)

    def test_accepts_function_objects_and_text(self):
        fn = parse_function(BASE)
        assert canonical_hash(fn) == canonical_hash(BASE)

    def test_input_function_not_mutated(self):
        fn = parse_function(BASE)
        before = print_function(fn)
        canonical_text(fn)
        assert print_function(fn) == before

    def test_multi_block_renaming(self):
        a = """
define i2 @f(i2 %a, i1 %c) {
entry:
  br i1 %c, label %then, label %done
then:
  br label %done
done:
  %r = phi i2 [ %a, %entry ], [ 1, %then ]
  ret i2 %r
}
"""
        b = a.replace("%then", "%left").replace("then:", "left:") \
             .replace("%done", "%exit").replace("done:", "exit:") \
             .replace("%r", "%result")
        assert canonical_hash(a) == canonical_hash(b)

    def test_corpus_hashes_are_distinct(self):
        # The exhaustive 1-instruction corpus is duplicate-free by
        # construction (448 structurally distinct functions); the hash
        # must not collide any of them.
        hashes = {canonical_hash(fn) for fn in enumerate_functions(1)}
        assert len(hashes) == 448

    def test_flags_are_significant(self):
        plain = BASE
        flagged = BASE.replace("add i2", "add nsw i2")
        assert canonical_hash(plain) != canonical_hash(flagged)


class TestDedupCache:
    def test_hit_miss_accounting(self):
        cache = DedupCache({"h1": "verified"})
        assert cache.lookup("h1") == "verified"
        assert cache.lookup("h2") is None
        cache.add("h2", "failed")
        assert cache.lookup("h2") == "failed"
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_preloaded_entries_count_as_hits(self):
        cache = DedupCache()
        assert cache.lookup("x") is None
        assert "x" not in cache
        cache.add("x", "verified")
        assert "x" in cache
        assert len(cache) == 1
        assert cache.as_dict() == {"x": "verified"}
