"""Checkpoint store: JSONL round-trips, interrupt tolerance, manifest."""

import json
import os

from repro.campaign import (
    CampaignSpec,
    CheckpointStore,
    load_manifest,
    plan_shards,
    save_manifest,
    shard_stream_seed,
)


def _record(sid, status="done", checked=5):
    return {"shard_id": sid, "status": status, "checked": checked,
            "dedup_hits": 0, "verdicts": {"verified": checked},
            "hashes": {f"h{sid}": "verified"}, "counterexamples": [],
            "wall_seconds": 0.1}


class TestCheckpointStore:
    def test_append_load_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append(_record(0))
        store.append(_record(2))
        loaded = store.load()
        assert set(loaded) == {0, 2}
        assert loaded[0]["verdicts"] == {"verified": 5}

    def test_last_record_per_shard_wins(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append(_record(1, status="errored", checked=0))
        store.append(_record(1, status="done", checked=7))
        assert store.load()[1]["checked"] == 7
        assert store.done_ids() == {1}

    def test_errored_shards_are_not_done(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append(_record(0))
        store.append(_record(1, status="errored"))
        assert store.done_ids() == {0}

    def test_truncated_final_line_is_skipped(self, tmp_path):
        """A mid-write kill leaves a partial line; the loader must
        recover the intact prefix instead of raising."""
        store = CheckpointStore(str(tmp_path))
        store.append(_record(0))
        with open(store.path, "a") as f:
            f.write(json.dumps(_record(1))[: 25])  # torn write
        loaded = store.load()
        assert set(loaded) == {0}

    def test_dedup_log_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append_dedup({"aa": "verified", "bb": "failed"})
        store.append_dedup({"cc": "verified"})
        assert store.load_dedup() == {
            "aa": "verified", "bb": "failed", "cc": "verified"}

    def test_reduced_log_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.append_reduced([{"hash": "aa", "reduced": "..."}])
        assert store.load_reduced() == [{"hash": "aa", "reduced": "..."}]


class TestManifest:
    def test_round_trip(self, tmp_path):
        spec = CampaignSpec(mode="random", num_instructions=3, count=100,
                            seed=7, opcodes=("add", "shl"),
                            pipeline="instcombine", opt_config="legacy",
                            shard_size=40)
        save_manifest(str(tmp_path), spec)
        loaded, payload = load_manifest(str(tmp_path))
        assert loaded == spec
        assert payload["total_functions"] == 100

    def test_spec_dict_round_trip(self):
        spec = CampaignSpec(opcodes=("mul",), limit=10)
        assert CampaignSpec.from_dict(spec.as_dict()) == spec


class TestShardPlan:
    def test_covers_space_exactly(self):
        spec = CampaignSpec(num_instructions=1, opcodes=("add",),
                            shard_size=20)
        shards = plan_shards(spec)
        assert shards[0].start == 0
        assert shards[-1].stop == spec.total_functions()
        for a, b in zip(shards, shards[1:]):
            assert a.stop == b.start
        assert sum(s.size for s in shards) == spec.total_functions()

    def test_respects_start_and_limit(self):
        spec = CampaignSpec(num_instructions=1, opcodes=("add",),
                            shard_size=10, start=5, limit=25)
        shards = plan_shards(spec)
        assert shards[0].start == 5
        assert shards[-1].stop == 30
        assert sum(s.size for s in shards) == 25

    def test_random_mode_derives_distinct_stream_seeds(self):
        spec = CampaignSpec(mode="random", count=100, shard_size=40,
                            seed=3)
        shards = plan_shards(spec)
        seeds = [s.seed for s in shards]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [shard_stream_seed(3, s.shard_id) for s in shards]
        # derived seeds are a pure function of (base seed, shard id)
        assert seeds == [s.seed for s in plan_shards(spec)]

    def test_plan_is_pure_function_of_spec(self):
        spec = CampaignSpec(num_instructions=2, opcodes=("add", "mul"),
                            shard_size=100)
        assert plan_shards(spec) == plan_shards(spec)
