"""The behavior-set memo cache must be output-invisible.

The whole contract of ``repro.perf`` is that the cache only removes
work: every campaign summary — verdict lines, counterexample records,
dedup counts — is byte-identical with the cache on, off, cold, or warm.
These tests hold that contract, including the one deliberate hole: the
memo is disabled under chaos injection, where skipping a function would
shift the shared fault stream.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.canon import canonical_hash
from repro.diag import stats_snapshot
from repro.fuzz import random_functions
from repro.ir import parse_function, print_module
from repro.perf import RefinementMemo
from repro.refine import CheckOptions, check_refinement

_FAST = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

#: mul/shl over i2 through legacy instcombine: small, but contains the
#: Section 3 miscompiles, so all four verdict classes are exercised.
SPEC = CampaignSpec(
    mode="enumerate", num_instructions=1, opcodes=("mul", "shl"),
    pipeline="instcombine", opt_config="legacy", shard_size=32,
)

OPTS = CheckOptions(max_choices=20, fuel=600)


def _perf(name):
    return stats_snapshot().get("perf", {}).get(name, 0)


class TestCampaignInvariance:
    def test_no_cache_flag_is_byte_identical(self):
        cached = run_campaign(SPEC, workers=1)
        uncached = run_campaign(SPEC.with_(use_cache=False), workers=1)
        assert cached.verdict_lines() == uncached.verdict_lines()
        assert cached.counterexamples == uncached.counterexamples
        assert cached.checked == uncached.checked
        assert cached.dedup_hits == uncached.dedup_hits

    def test_warm_disk_replay_is_byte_identical(self, tmp_path):
        memo_dir = str(tmp_path / "memo")
        spec = SPEC.with_(cache_dir=memo_dir)
        cold = run_campaign(spec, workers=1)
        hits_before = _perf("num-memo-hits")
        warm = run_campaign(spec, workers=1)
        assert warm.verdict_lines() == cold.verdict_lines()
        assert warm.counterexamples == cold.counterexamples
        # The warm run replayed every cacheable verdict ("failed" never
        # caches, so those re-ran and regenerated their records).
        replayed = _perf("num-memo-hits") - hits_before
        assert replayed == cold.checked - cold.failed

    def test_runner_defaults_cache_dir_under_out_dir(self, tmp_path):
        out = str(tmp_path / "camp")
        first = run_campaign(SPEC, out_dir=out, workers=1)
        hits_before = _perf("num-memo-hits")
        second = run_campaign(SPEC, out_dir=str(tmp_path / "camp2"),
                              workers=1)
        assert second.verdict_lines() == first.verdict_lines()
        # Separate out_dirs: no shared disk layer, so no replay between
        # the runs (each stays correct, just cold).
        assert (tmp_path / "camp" / "memo").is_dir()
        assert _perf("num-memo-hits") == hits_before

    def test_memo_disabled_under_chaos(self):
        # ChaosEngine draws are shared across a shard; memo-skipping a
        # function would shift every later function's faults.
        assert SPEC.memo_enabled()
        assert not SPEC.with_(chaos_seed=7).memo_enabled()
        assert not SPEC.with_(use_cache=False).memo_enabled()

    def test_context_separates_incompatible_specs(self):
        base = SPEC.memo_context()
        assert SPEC.with_(pipeline="gvn").memo_context() != base
        assert SPEC.with_(fuel=601).memo_context() != base
        assert SPEC.with_(opt_config="fixed").memo_context() != base
        # Execution-irrelevant knobs share the context.
        assert SPEC.with_(shard_size=64).memo_context() == base
        assert SPEC.with_(limit=10).memo_context() == base

    def test_context_separates_verdict_shaping_knobs(self):
        """Audit fix: ``sample_inputs`` changes what "verified" means
        and ``engine`` changes who computed it; replaying across either
        flip would launder a sampled or vector verdict into a different
        spec's cache."""
        base = SPEC.memo_context()
        assert SPEC.with_(sample_inputs=50).memo_context() != base
        assert SPEC.with_(engine="scalar").memo_context() != base
        assert SPEC.with_(engine="vector").memo_context() != base
        assert (SPEC.with_(engine="scalar").memo_context()
                != SPEC.with_(engine="vector").memo_context())
        # cross_check is not a context key — it never changes verdicts,
        # it only audits them — but it disables the memo outright so
        # both engines really run.
        assert SPEC.with_(cross_check=True).memo_context() == base
        assert not SPEC.with_(cross_check=True).memo_enabled()

    def test_sampled_verdicts_replay_as_sampled(self):
        """Bugfix: a sampled pass must round-trip the memo as
        "verified-sampled", never as a plain exhaustive "verified"."""
        memo = RefinementMemo("ctx")
        memo.record("h1", "verified-sampled")
        assert memo.lookup("h1") == "verified-sampled"


class TestMemoMatchesFreshCheck:
    @_FAST
    @given(st.integers(0, 100_000))
    def test_replayed_verdict_equals_fresh_verdict(self, seed):
        """verdict(check) == verdict(memo record + replay), function by
        function: the property that makes replaying sound."""
        fn = next(iter(random_functions(1, seed=seed)))
        src = parse_function(print_module(fn.module))
        tgt = parse_function(print_module(fn.module))
        SPEC.with_(opt_config="fixed").make_pipeline().run_on_function(tgt)

        fresh = check_refinement(src, tgt, options=OPTS).verdict
        again = check_refinement(src, tgt, options=OPTS).verdict
        assert fresh == again  # the checker itself is deterministic

        memo = RefinementMemo("ctx")
        memo.record(canonical_hash(src), fresh)
        replayed = memo.lookup(canonical_hash(src))
        if fresh == "failed":
            assert replayed is None  # failures always re-run
        else:
            assert replayed == fresh
