"""Adversarial lint-attack campaigns: determinism, resume, taxonomy
completeness, disagreement bundling, and CLI dispatch."""

import json
import os
from unittest import mock

import pytest

from repro.campaign import campaign_main, manifest_kind
from repro.campaign.checkpoint import load_manifest
from repro.campaign.lint_attack import (
    AttackRunner,
    AttackSpec,
    plan_attack_shards,
    run_attack_shard,
)
from repro.campaign.sharding import Shard
from repro.lint import RULES
from repro.mutate import VERDICTS

# Small but representative slice: striding spreads 4 seeds across the
# whole flag-carrying enumeration space, which covers every rule.
SPEC = AttackSpec(limit=4, stride=156816, shard_size=2,
                  max_inputs=512, max_paths=256)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("attack-base"))
    summary = AttackRunner(SPEC, out_dir=out, workers=1).run()
    return out, summary


# ---------------------------------------------------------------------------
# spec


def test_spec_round_trips():
    spec = SPEC.with_(mutators=("add-nsw",), rules=("dead-on-poison-flag",))
    assert AttackSpec.from_dict(spec.as_dict()) == spec


def test_spec_validation():
    with pytest.raises(ValueError, match="shard_size"):
        AttackSpec(shard_size=0)
    with pytest.raises(ValueError, match="stride"):
        AttackSpec(stride=0)
    with pytest.raises(ValueError, match="unknown mutator"):
        AttackSpec(mutators=("bogus",))
    with pytest.raises(ValueError, match="unknown lint rule"):
        AttackSpec(rules=("bogus",))
    with pytest.raises(ValueError, match="semantics"):
        AttackSpec(semantics_name="weird")


def test_plan_partitions_positions():
    shards = plan_attack_shards(SPEC)
    assert [s.shard_id for s in shards] == list(range(len(shards)))
    covered = [p for s in shards for p in range(s.start, s.stop)]
    assert covered == list(range(SPEC.total_functions()))


# ---------------------------------------------------------------------------
# taxonomy over a healthy checker


def test_healthy_checker_has_no_disagreements(baseline):
    _, summary = baseline
    assert summary.mutants > 0
    assert summary.unclassified == 0
    assert summary.disagreements == []
    assert summary.bundle_paths == []
    # every registered rule received at least one classified observation
    assert set(summary.taxonomy) == set(RULES)
    for rule, bucket in summary.taxonomy.items():
        classified = sum(bucket.get(v, 0) for v in VERDICTS
                         if v != "unclassified")
        assert classified >= 1, rule


def test_taxonomy_byte_identical_across_worker_counts(baseline, tmp_path):
    _, summary = baseline
    multi = AttackRunner(SPEC, out_dir=str(tmp_path), workers=2).run()
    assert multi.taxonomy_lines() == summary.taxonomy_lines()


def test_interrupt_and_resume_matches_uninterrupted(baseline, tmp_path):
    _, summary = baseline
    out = str(tmp_path)
    partial = AttackRunner(SPEC, out_dir=out, workers=1).run(stop_after=1)
    assert partial.shards_run == 1
    resumed = AttackRunner(SPEC, out_dir=out, workers=1).run(resume=True)
    assert resumed.shards_skipped == 1
    assert resumed.taxonomy_lines() == summary.taxonomy_lines()


def test_shard_records_are_pure_functions_of_inputs():
    shard = plan_attack_shards(SPEC)[0]
    a = run_attack_shard(SPEC, shard)
    b = run_attack_shard(SPEC, shard)
    for key in ("seeds", "mutants", "observations", "taxonomy",
                "disagreements"):
        assert a[key] == b[key]


# ---------------------------------------------------------------------------
# disagreements: a deliberately broken rule is caught, reduced, bundled


def _silence(rule_id):
    orig = RULES[rule_id]
    return type(orig)(
        rule_id=orig.rule_id, severity=orig.severity,
        description=orig.description, check=lambda *a, **k: [],
        polarity=orig.polarity, attacked_by=orig.attacked_by,
        origin_gated=orig.origin_gated)


def test_silenced_soundness_rule_yields_bundled_fns(tmp_path):
    spec = SPEC.with_(limit=2, rules=("ub-sink-reaches-poison",))
    broken = {"ub-sink-reaches-poison":
              _silence("ub-sink-reaches-poison")}
    with mock.patch.dict(RULES, broken):
        summary = AttackRunner(spec, out_dir=str(tmp_path),
                               workers=1).run()
    fns = [d for d in summary.disagreements if d["verdict"] == "fn"]
    assert fns, "silenced soundness rule must produce false negatives"
    assert summary.unclassified == 0
    assert len(summary.bundle_paths) == len(summary.disagreements)
    for entry in summary.disagreements:
        assert entry["rule"] == "ub-sink-reaches-poison"
        assert entry["reduced_ir"].lstrip().startswith(("declare",
                                                        "define"))


def test_disagreement_bundles_replay(tmp_path):
    from repro.opt.resilience import load_bundle, replay_bundle

    spec = SPEC.with_(limit=1, rules=("ub-sink-reaches-poison",))
    broken = {"ub-sink-reaches-poison":
              _silence("ub-sink-reaches-poison")}
    with mock.patch.dict(RULES, broken):
        summary = AttackRunner(spec, out_dir=str(tmp_path),
                               workers=1).run()
    assert summary.bundle_paths
    path = summary.bundle_paths[0]
    bundle = load_bundle(path)
    assert bundle["kind"] == "lint-attack-soundness"
    assert bundle["pass"] == "poison-flow"
    # the bundle replays through the registered poison-flow check
    # (the disagreement is semantic, so the pass itself runs clean)
    result = replay_bundle(path)
    assert result.pass_name == "poison-flow"


# ---------------------------------------------------------------------------
# CLI integration


def test_cli_run_resume_report_dispatch(tmp_path, capsys):
    out = str(tmp_path / "atk")
    argv = ["lint-attack", "--limit", "2", "--stride", "156816",
            "--shard-size", "1", "--max-inputs", "512",
            "--max-paths", "256", "--out", out]
    assert campaign_main(argv + ["--stop-after", "1"]) == 0
    assert manifest_kind(out) == "lint-attack"
    with pytest.raises(ValueError, match="lint-attack"):
        load_manifest(out)  # refine loaders refuse attack manifests
    assert campaign_main(["resume", "--out", out]) == 0
    capsys.readouterr()
    assert campaign_main(["report", "--out", out, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["kind"] == "lint-attack"
    assert report["unclassified"] == 0
    assert report["shards_total"] == 2
    assert campaign_main(["reduce", "--out", out]) == 1
    capsys.readouterr()


def test_cli_list_mutators(capsys):
    assert campaign_main(["lint-attack", "--list-mutators"]) == 0
    out = capsys.readouterr().out
    assert "add-nsw" in out
    assert "insert-freeze" in out
    assert "attacks:" in out


def test_stats_flow_into_record():
    shard = Shard(0, 0, 1)
    record = run_attack_shard(SPEC, shard)
    attack_stats = record["stats"].get("lint-attack", {})
    assert attack_stats.get("num-seeds-attacked") == 1
    assert attack_stats.get("num-mutants") == record["mutants"]
    # lint fire counters ride along for campaign report (satellite b)
    assert "lint" in record["stats"]


# ---------------------------------------------------------------------------
# satellite: refine-campaign report surfaces lint + vector breakdowns


def test_campaign_report_surfaces_lint_and_vector_stats():
    from repro.campaign.report import aggregate_records, render_report
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec()
    records = {0: {
        "shard_id": 0, "status": "done", "checked": 4,
        "stats": {
            "lint": {"num-functions-linted": 4,
                     "num-branch-on-maybe-poison": 2},
            "refine": {"num-vector-ineligible-has-loop": 3,
                       "num-checks": 9},
        },
    }}
    agg = aggregate_records(spec, records)
    assert agg["lint_findings"] == {"branch-on-maybe-poison": 2}
    assert agg["vector_ineligible"] == {"has-loop": 3}
    text = render_report(spec, records)
    assert "branch-on-maybe-poison: 2" in text
    assert "has-loop: 3" in text
