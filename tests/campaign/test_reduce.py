"""Counterexample reducer: failure preservation and minimality."""

import pytest

from repro.campaign import (
    CampaignSpec,
    make_failure_oracle,
    reduce_counterexamples,
    reduce_failure,
    run_campaign,
)
from repro.ir import parse_function

LEGACY_SPEC = CampaignSpec(
    mode="enumerate", num_instructions=1, opcodes=("mul", "shl"),
    pipeline="instcombine", opt_config="legacy", shard_size=64,
)

#: A 2-instruction function the legacy InstCombine miscompiles (the
#: Section 3.1 mul -> add duplicated-undef bug), padded with a dead
#: instruction the reducer should strip.
PADDED_FAILURE = """
define i2 @f(i2 %a, i2 %b) {
entry:
  %dead = add i2 %a, %b
  %v1 = mul i2 undef, -2
  ret i2 %v1
}
"""


@pytest.fixture(scope="module")
def oracle():
    return make_failure_oracle(LEGACY_SPEC)


class TestOracle:
    def test_accepts_failing_function(self, oracle):
        assert oracle(PADDED_FAILURE)

    def test_rejects_sound_function(self, oracle):
        assert not oracle("define i2 @f(i2 %a, i2 %b) {\nentry:\n"
                          "  %v0 = add i2 %a, %b\n  ret i2 %v0\n}\n")

    def test_rejects_garbage(self, oracle):
        assert not oracle("this is not IR")


class TestReduceFailure:
    def test_preserves_the_refinement_failure(self, oracle):
        result = reduce_failure(PADDED_FAILURE, oracle)
        assert result.still_failing
        assert oracle(result.reduced)

    def test_strips_the_dead_instruction(self, oracle):
        result = reduce_failure(PADDED_FAILURE, oracle)
        assert result.reduced_instructions < result.original_instructions
        assert "dead" not in result.reduced
        assert parse_function(result.reduced).num_instructions() == 2

    def test_reduction_is_a_fixpoint(self, oracle):
        once = reduce_failure(PADDED_FAILURE, oracle)
        again = reduce_failure(once.reduced, oracle)
        assert again.reduced_instructions == once.reduced_instructions

    def test_records_the_steps_taken(self, oracle):
        result = reduce_failure(PADDED_FAILURE, oracle)
        assert result.steps
        assert result.candidates_tried >= len(result.steps)

    def test_non_failing_input_returned_unshrunk(self, oracle):
        sound = ("define i2 @f(i2 %a, i2 %b) {\nentry:\n"
                 "  %v0 = add i2 %a, %b\n  ret i2 %v0\n}\n")
        result = reduce_failure(sound, oracle)
        assert not result.still_failing
        assert result.candidates_tried == 0

    def test_multi_block_collapse(self):
        spec = LEGACY_SPEC
        oracle = make_failure_oracle(spec)
        branchy = """
define i2 @f(i2 %a, i1 %c) {
entry:
  br i1 %c, label %left, label %right
left:
  %v0 = mul i2 undef, -2
  ret i2 %v0
right:
  %v1 = add i2 %a, 1
  ret i2 %v1
}
"""
        if not oracle(branchy):
            pytest.skip("branchy seed no longer fails under this pipeline")
        result = reduce_failure(branchy, oracle)
        assert result.still_failing
        assert len(parse_function(result.reduced).blocks) == 1


class TestCampaignIntegration:
    def test_every_legacy_failure_shrinks_to_a_failing_repro(self):
        """The acceptance property: each counterexample the legacy
        campaign finds reduces to a reproducer that still fails
        exhaustive refinement."""
        summary = run_campaign(LEGACY_SPEC)
        assert summary.failed > 0
        oracle = make_failure_oracle(LEGACY_SPEC)
        reduced = reduce_counterexamples(summary.counterexamples,
                                         LEGACY_SPEC)
        assert reduced  # at least one unique failure
        for record in reduced:
            assert record["still_failing"]
            assert oracle(record["reduced"])
            assert (record["reduced_instructions"]
                    <= record["original_instructions"])
            # the generated corpus failures are all 1-instruction bugs:
            # the minimal repro is one instruction plus the return
            assert record["reduced_instructions"] == 2

    def test_dedup_by_hash(self):
        summary = run_campaign(LEGACY_SPEC)
        cexs = summary.counterexamples + summary.counterexamples
        reduced = reduce_counterexamples(cexs, LEGACY_SPEC)
        assert len(reduced) == len(summary.counterexamples)
