"""Tests for the reusable :class:`ShardExecutor` submission API.

The batch :class:`CampaignRunner` and the serve layer both sit on this
pool, so its contract — submit any number of jobs, poll records as
they land, convert dead/overdue workers to ``errored`` records — is
what keeps a long-running server honest about crashes.
"""

import pytest

from repro.campaign import CampaignSpec, ShardExecutor, run_campaign
from repro.campaign.sharding import plan_shards

SPEC = CampaignSpec(mode="random", count=12, num_instructions=1,
                    pipeline="quick", shard_size=4, fuel=200,
                    max_inputs=2000)


def drain_records(executor):
    return {shard.shard_id: record
            for _job, shard, record in executor.drain()}


class TestSubmitPoll:
    def test_records_match_the_batch_runner(self):
        batch = run_campaign(SPEC, workers=1)
        executor = ShardExecutor(workers=2)
        try:
            shards = plan_shards(SPEC)
            for shard in shards:
                executor.submit(SPEC, shard)
            records = drain_records(executor)
        finally:
            executor.shutdown(kill=True)
        assert len(records) == len(shards) == 3
        merged = {}
        for sid in sorted(records):
            for h, v in sorted(records[sid]["hashes"].items()):
                merged.setdefault(h, v)
        assert ([f"{h} {v}" for h, v in sorted(merged.items())]
                == batch.verdict_lines())

    def test_pool_caps_concurrency(self):
        executor = ShardExecutor(workers=1)
        try:
            for shard in plan_shards(SPEC):
                executor.submit(SPEC, shard)
            assert executor.inflight == 1
            assert executor.queued == 2
            records = drain_records(executor)
            assert len(records) == 3
            assert executor.idle
        finally:
            executor.shutdown(kill=True)

    def test_pool_is_reusable_between_submissions(self):
        executor = ShardExecutor(workers=2)
        try:
            first = plan_shards(SPEC)[0]
            executor.submit(SPEC, first)
            one = drain_records(executor)
            assert one[first.shard_id]["status"] == "done"
            executor.submit(SPEC, first)
            two = drain_records(executor)
            assert two[first.shard_id]["hashes"] == \
                one[first.shard_id]["hashes"]
        finally:
            executor.shutdown(kill=True)

    def test_job_ids_are_unique_and_returned(self):
        executor = ShardExecutor(workers=1)
        try:
            shards = plan_shards(SPEC)
            ids = [executor.submit(SPEC, s) for s in shards]
            assert len(set(ids)) == len(shards)
            seen = {job for job, _, _ in executor.drain()}
            assert seen == set(ids)
        finally:
            executor.shutdown(kill=True)

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            ShardExecutor(workers=0)


class TestCrashAccounting:
    def test_hard_crash_becomes_errored_record(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_CRASH_SHARDS", "1")
        executor = ShardExecutor(workers=2)
        try:
            for shard in plan_shards(SPEC):
                executor.submit(SPEC, shard)
            records = drain_records(executor)
        finally:
            executor.shutdown(kill=True)
        assert records[1]["status"] == "errored"
        assert "exit code 17" in records[1]["error"]
        assert records[0]["status"] == records[2]["status"] == "done"

    def test_shard_timeout_becomes_errored_record(self, monkeypatch):
        slow = SPEC.with_(count=4, fuel=10_000, max_inputs=20_000,
                          num_instructions=3)
        executor = ShardExecutor(workers=1, shard_timeout=0.01)
        try:
            executor.submit(slow, plan_shards(slow)[0])
            records = drain_records(executor)
        finally:
            executor.shutdown(kill=True)
        (record,) = records.values()
        assert record["status"] == "errored"
        assert "timeout" in record["error"]

    def test_shutdown_kill_clears_everything(self):
        executor = ShardExecutor(workers=1)
        for shard in plan_shards(SPEC):
            executor.submit(SPEC, shard)
        executor.shutdown(kill=True)
        assert executor.idle
        assert executor.poll(wait=0.0) == []
