"""Campaign-level behavior of the vector engine and sampled verdicts.

Two contracts:

* **engine invisibility** — a campaign run under ``engine="vector"``
  (or with ``cross_check=True``) produces byte-identical verdict lines
  to the scalar run; drift is a crash, never a quiet different answer;
* **sampled visibility** — a "verified" that only sampled the input
  space is flagged at every surface: worker outcome, shard record,
  summary, and the rendered report.
"""

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.checkpoint import CheckpointStore
from repro.campaign.report import render_report
from repro.semantics import numpy_available

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed ([vector] extra)")

#: the E5 smoke shape: complete 1-instruction i2 corpus through fixed
#: instcombine; memo off so every engine does real work.
SMOKE = CampaignSpec(
    mode="enumerate", num_instructions=1, opcodes=("mul", "shl"),
    pipeline="instcombine", opt_config="fixed", shard_size=32,
    use_cache=False,
)

#: i2 two-arg functions have a 25-tuple input space under NEW; capping
#: max_inputs below that forces every verified verdict to be sampled.
SAMPLED = SMOKE.with_(opcodes=("add", "sub"), max_inputs=10,
                      sample_inputs=5)


class TestEngineInvisibility:
    @requires_numpy
    def test_vector_campaign_verdicts_identical(self):
        scalar = run_campaign(SMOKE.with_(engine="scalar"), workers=1)
        vector = run_campaign(SMOKE.with_(engine="vector"), workers=1)
        assert vector.verdict_lines() == scalar.verdict_lines()
        assert vector.checked == scalar.checked
        assert not vector.crashes

    @requires_numpy
    def test_cross_check_campaign_is_clean(self):
        scalar = run_campaign(SMOKE.with_(engine="scalar"), workers=1)
        cross = run_campaign(SMOKE.with_(engine="vector",
                                         cross_check=True), workers=1)
        assert cross.verdict_lines() == scalar.verdict_lines()
        assert not [c for c in cross.crashes
                    if c.get("kind") == "cross-check-mismatch"]

    def test_scalar_engine_spec_round_trips(self):
        spec = SMOKE.with_(engine="vector", cross_check=True,
                           sample_inputs=7)
        clone = CampaignSpec.from_dict(spec.as_dict())
        assert clone.engine == "vector"
        assert clone.cross_check is True
        assert clone.sample_inputs == 7

    def test_bad_engine_rejected_at_spec(self):
        with pytest.raises(ValueError):
            SMOKE.with_(engine="warp-drive")


class TestSampledSurfacing:
    @pytest.fixture(scope="class")
    def sampled_run(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("sampled-campaign"))
        summary = run_campaign(SAMPLED, out_dir=out, workers=1)
        return out, summary

    def test_summary_counts_sampled_verified(self, sampled_run):
        _, summary = sampled_run
        assert summary.verified > 0
        # every verified verdict in this spec sampled 5 of 25 inputs
        assert summary.sampled_verified == summary.verified
        assert summary.as_dict()["sampled_verified"] == summary.verified

    def test_report_renders_sampled_count(self, sampled_run):
        out, summary = sampled_run
        report = render_report(SAMPLED, CheckpointStore(out).load())
        assert (f"{summary.verified} verified "
                f"({summary.sampled_verified} sampled)") in report

    def test_exhaustive_run_reports_no_sampling(self):
        summary = run_campaign(SMOKE, workers=1)
        assert summary.sampled_verified == 0

    def test_sampled_survives_memo_replay(self, tmp_path):
        """Bugfix follow-through: a warm-cache rerun must replay the
        verdict *as sampled*, not launder it into an exhaustive
        "verified"."""
        spec = SAMPLED.with_(use_cache=True,
                             cache_dir=str(tmp_path / "memo"))
        cold = run_campaign(spec, workers=1)
        warm = run_campaign(spec, workers=1)
        assert warm.verdict_lines() == cold.verdict_lines()
        assert warm.sampled_verified == cold.sampled_verified
        assert warm.sampled_verified == warm.verified > 0
