"""Campaign observability: cross-process span tracing, worker→runner
stats merging, metrics series, and the flight recorder in failure
records.

The tentpole guarantees under test:

* a parallel (multi-process) campaign run with ``trace_dir`` set
  streams per-shard span and metrics files and merges into one
  Perfetto-loadable ``trace.json`` covering every worker;
* worker-process statistics are no longer lost: the campaign summary
  (and the parent process registry) see nonzero ``refine/*`` and
  ``perf/*`` counters after a parallel run;
* tracing never changes verdicts;
* crashed functions carry the worker's black-box flight recorder.
"""

import glob
import json
import os

from repro.campaign import CampaignSpec, run_campaign
from repro.diag import default_registry
from repro.diag.metrics import merge_latest_metrics, render_prometheus
from repro.diag.metrics_catalog import uncataloged
from repro.diag.trace_export import build_profile, merge_trace, render_top

#: the E5-style smoke corpus: 128 functions, single-pass pipeline.
SPEC = CampaignSpec(
    mode="enumerate", num_instructions=1, opcodes=("mul", "shl"),
    pipeline="instcombine", opt_config="legacy", shard_size=32,
)


def _traced_spec(tmp_path):
    return SPEC.with_(trace_dir=str(tmp_path / "spans"),
                      metrics_interval=0.0)


class TestWorkerStatsMerge:
    def test_parallel_run_reports_worker_stats(self, tmp_path):
        # Satellite #1: before this layer, stats bumped inside worker
        # *processes* never reached the campaign report.
        summary = run_campaign(SPEC, out_dir=str(tmp_path), workers=2)
        assert summary.stats["refine"]["num-checks"] == summary.checked
        assert summary.stats["refine"]["num-inputs-checked"] > 0
        assert summary.stats["perf"]["num-memo-misses"] > 0

    def test_parent_registry_absorbs_subprocess_deltas(self, tmp_path):
        registry = default_registry()
        before = registry.get("refine", "num-checks")
        summary = run_campaign(SPEC, out_dir=str(tmp_path), workers=2)
        gained = registry.get("refine", "num-checks") - before
        assert gained == summary.checked

    def test_summary_stats_serialize(self, tmp_path):
        summary = run_campaign(SPEC, out_dir=str(tmp_path), workers=2)
        d = summary.as_dict()
        assert d["stats"]["refine"]["num-checks"] == summary.checked
        json.dumps(d)

    def test_reported_stats_are_cataloged(self, tmp_path):
        summary = run_campaign(SPEC, out_dir=str(tmp_path), workers=2)
        pairs = [(p, n) for p, counters in summary.stats.items()
                 for n in counters]
        assert not uncataloged(pairs)


class TestSpanTracing:
    def test_traced_parallel_run_produces_a_merged_trace(self, tmp_path):
        spec = _traced_spec(tmp_path)
        summary = run_campaign(spec, out_dir=str(tmp_path), workers=2)
        assert summary.checked == 128

        span_files = sorted(glob.glob(str(tmp_path / "spans" /
                                          "spans-*.jsonl")))
        assert len(span_files) == 4  # one per shard

        trace = merge_trace(str(tmp_path / "spans"),
                            str(tmp_path / "trace.json"))
        xs = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        pids = {e["pid"] for e in xs}
        assert len(pids) >= 2  # spans from at least two workers
        names = {e["name"] for e in xs}
        # the instrumented layers all show up in one trace
        assert {"shard", "check-function", "refine-check",
                "instcombine"} <= names

        check_spans = [e for e in xs if e["name"] == "check-function"]
        assert len(check_spans) == 128
        verdicts = [e["args"]["attrs"].get("verdict")
                    for e in check_spans]
        assert verdicts.count("verified") == summary.verified

    def test_diag_top_renders_from_the_trace(self, tmp_path):
        spec = _traced_spec(tmp_path)
        run_campaign(spec, out_dir=str(tmp_path), workers=2)
        trace = merge_trace(str(tmp_path / "spans"))
        profile = build_profile(trace)
        assert profile["refine-check"]["count"] == 128
        # the phase cheap tier aggregated per-input enumeration work
        assert profile["refine-check/enumerate-src"]["count"] > 128
        text = render_top(profile, sort="total")
        assert "refine-check" in text and "check-function" in text

    def test_span_stat_deltas_cover_the_checks(self, tmp_path):
        spec = _traced_spec(tmp_path)
        run_campaign(spec, out_dir=str(tmp_path), workers=2)
        trace = merge_trace(str(tmp_path / "spans"))
        profile = build_profile(trace)
        stats = profile["check-function"]["stats"]
        assert stats.get("refine/num-checks") == 128

    def test_tracing_does_not_change_verdicts(self, tmp_path):
        traced = run_campaign(_traced_spec(tmp_path),
                              out_dir=str(tmp_path / "traced"),
                              workers=2)
        plain = run_campaign(SPEC, out_dir=str(tmp_path / "plain"),
                             workers=2)
        assert traced.verdict_lines() == plain.verdict_lines()

    def test_untraced_run_writes_no_span_files(self, tmp_path):
        run_campaign(SPEC, out_dir=str(tmp_path), workers=2)
        assert not glob.glob(str(tmp_path / "spans" / "*.jsonl"))


class TestMetricsSeries:
    def test_shard_metrics_merge_to_campaign_totals(self, tmp_path):
        spec = _traced_spec(tmp_path)
        summary = run_campaign(spec, out_dir=str(tmp_path), workers=2)
        files = sorted(glob.glob(str(tmp_path / "spans" /
                                     "metrics-*.jsonl")))
        assert len(files) == 4
        merged = merge_latest_metrics(files)
        # per-shard deltas sum to the campaign's true totals even when
        # one worker process ran several shards
        assert merged["stats"]["repro_refine_num_checks_total"] == \
            summary.checked
        text = render_prometheus(merged)
        assert f"repro_refine_num_checks_total {summary.checked}" in text

    def test_final_record_is_marked(self, tmp_path):
        spec = _traced_spec(tmp_path)
        run_campaign(spec, out_dir=str(tmp_path), workers=2)
        for path in glob.glob(str(tmp_path / "spans" /
                                  "metrics-*.jsonl")):
            records = [json.loads(l) for l in open(path) if l.strip()]
            assert records[-1]["final"] is True
            assert "checked" in records[-1]


class TestFlightRecorderInRecords:
    def test_crashed_functions_carry_the_black_box(self, tmp_path):
        # Satellite #6: strict policy + chaos crashes every function;
        # each crash record must carry the worker's flight recorder
        # with the doomed function as the latest breadcrumb.
        spec = SPEC.with_(pipeline="o2", opt_config="fixed",
                          policy="strict", chaos_seed=11,
                          chaos_rate=0.02, shard_size=64)
        summary = run_campaign(spec, out_dir=str(tmp_path), workers=2)
        assert summary.crashes
        for crash in summary.crashes:
            recorder = crash["flight_recorder"]
            assert recorder["events"], crash["error"]
            breadcrumbs = [e for e in recorder["events"]
                           if e["kind"] == "check-function"]
            assert breadcrumbs[-1]["hash"] == crash["hash"]

    def test_bundles_store_the_recorder_dump(self, tmp_path):
        spec = SPEC.with_(pipeline="o2", opt_config="fixed",
                          policy="recover", chaos_seed=11,
                          chaos_rate=0.02)
        summary = run_campaign(spec, out_dir=str(tmp_path), workers=2)
        assert summary.bundle_paths
        with open(os.path.join(summary.bundle_paths[0],
                               "bundle.json")) as f:
            bundle = json.load(f)
        assert bundle["flight_recorder"] is not None
        assert bundle["flight_recorder"]["events"]
