"""Mutator library: registry coverage and mutant well-formedness."""

import pytest

from repro.ir import Opcode, parse_function, parse_module
from repro.lint import RULES
from repro.mutate import (
    KIND_UB_INJECT,
    KIND_UB_REMOVE,
    MUTATORS,
    all_mutator_names,
    mutate_function,
    rules_attacked_by,
)

SEED = parse_function("""
define i4 @seed(i4 %x, i4 %y) {
entry:
  %a = add nsw i4 %x, %y
  %b = mul i4 %a, %y
  ret i4 %b
}""")


def _mutants(name):
    return mutate_function(parse_function(print_seed()), [name])


def print_seed():
    from repro.ir import print_function

    return print_function(SEED)


def test_registry_names_and_kinds():
    assert len(MUTATORS) >= 15
    for name, m in MUTATORS.items():
        assert m.name == name
        assert m.kind in (KIND_UB_INJECT, KIND_UB_REMOVE)
        assert m.description
    assert set(all_mutator_names()) == set(MUTATORS)


def test_every_rule_names_real_mutators():
    for rule in RULES.values():
        assert rule.attacked_by, rule.rule_id
        for name in rule.attacked_by:
            assert name in MUTATORS, (rule.rule_id, name)


def test_every_mutator_attacks_some_rule():
    covered = set()
    for rule in RULES.values():
        covered.update(rule.attacked_by)
    assert covered == set(MUTATORS)


def test_rules_attacked_by_join():
    assert "dead-on-poison-flag" in rules_attacked_by("add-nsw")
    assert "ub-sink-reaches-poison" in rules_attacked_by("route-divisor")


def test_unknown_mutator_raises():
    with pytest.raises(ValueError, match="unknown mutator"):
        mutate_function(SEED, ["no-such-mutator"])


def test_all_mutants_parse_and_keep_seed_name():
    mutations = mutate_function(SEED)
    assert mutations
    seen = set()
    for m in mutations:
        assert m.seed == "seed"
        assert m.mutator in MUTATORS
        assert m.kind == MUTATORS[m.mutator].kind
        module = parse_module(m.ir)  # every mutant is well-formed IR
        assert module.get_function("seed") is not None
        seen.add(m.mutator)
    # the seed has a flagged add, a flagless mul, and a valued return:
    # a representative slice of the library applies (narrow-shift needs
    # a shift site and has its own test below).
    for name in ("add-nuw", "drop-flags", "insert-freeze", "route-branch",
                 "route-divisor", "discard-result"):
        assert name in seen


def test_add_nsw_sets_flag_on_flagless_site():
    fn = parse_function("""
define i4 @seed(i4 %x) {
entry:
  %a = add i4 %x, 1
  ret i4 %a
}""")
    (m,) = mutate_function(fn, ["add-nsw"])
    mutant = parse_module(m.ir).get_function("seed")
    (inst,) = [i for i in mutant.blocks[0].instructions
               if getattr(i, "opcode", None) == Opcode.ADD]
    assert inst.nsw
    assert m.kind == KIND_UB_INJECT


def test_narrow_shift_uses_full_width_amount():
    fn = parse_function("""
define i4 @seed(i4 %x) {
entry:
  %a = shl i4 %x, 1
  ret i4 %a
}""")
    mutations = mutate_function(fn, ["narrow-shift"])
    assert mutations
    assert any("shl i4 %x, 4" in m.ir for m in mutations)


def test_insert_freeze_is_ub_removing_and_parses():
    (m,) = mutate_function(SEED, ["insert-freeze"])
    assert m.kind == KIND_UB_REMOVE
    assert "freeze" in m.ir
    parse_module(m.ir)


def test_route_call_declares_sink_before_use():
    mutations = mutate_function(SEED, ["route-call"])
    assert mutations
    for m in mutations:
        assert m.ir.index("declare") < m.ir.index("define")
        parse_module(m.ir)


def test_mutation_as_dict_round_trips_fields():
    (m,) = mutate_function(SEED, ["guard-branch"])
    data = m.as_dict()
    assert data["mutator"] == "guard-branch"
    assert data["seed"] == "seed"
    assert data["ir"] == m.ir
