"""IRBuilder coverage: every construction helper produces verifiable IR."""

import pytest

from repro.ir import (
    Function,
    FunctionType,
    IRBuilder,
    IcmpPred,
    IntType,
    Module,
    Opcode,
    PointerType,
    VectorType,
    verify_function,
)
from repro.ir.types import VOID, I8, I32


def fresh(ret=I32, params=(I32, I32)):
    fn = Function(FunctionType(ret, tuple(params)), "f",
                  module=Module(), arg_names=["a", "b"][: len(params)])
    block = fn.add_block("entry")
    return fn, IRBuilder(block)


class TestArithmeticBuilders:
    def test_all_binops(self):
        fn, b = fresh()
        a, c = fn.args
        results = [
            b.add(a, c), b.sub(a, c), b.mul(a, c),
            b.udiv(a, c), b.sdiv(a, c), b.urem(a, c), b.srem(a, c),
            b.shl(a, c), b.lshr(a, c), b.ashr(a, c),
            b.and_(a, c), b.or_(a, c), b.xor(a, c),
        ]
        b.ret(results[-1])
        verify_function(fn)
        assert len(fn.entry.instructions) == 14

    def test_flags(self):
        fn, b = fresh()
        a, c = fn.args
        nsw = b.add(a, c, nsw=True)
        nuw = b.mul(a, c, nuw=True)
        exact = b.udiv(a, c, exact=True)
        b.ret(nsw)
        assert nsw.nsw and nuw.nuw and exact.exact
        verify_function(fn)

    def test_neg_not_helpers(self):
        fn, b = fresh()
        a, _ = fn.args
        neg = b.neg(a)
        inv = b.not_(a)
        b.ret(b.add(neg, inv))
        verify_function(fn)
        assert neg.opcode is Opcode.SUB
        assert inv.opcode is Opcode.XOR

    def test_icmp_shorthands(self):
        fn, b = fresh(ret=IntType(1))
        a, c = fn.args
        for helper, pred in [
            (b.icmp_eq, IcmpPred.EQ), (b.icmp_ne, IcmpPred.NE),
            (b.icmp_slt, IcmpPred.SLT), (b.icmp_sle, IcmpPred.SLE),
            (b.icmp_sgt, IcmpPred.SGT), (b.icmp_ult, IcmpPred.ULT),
        ]:
            assert helper(a, c).pred is pred
        b.ret(b.true())
        verify_function(fn)

    def test_flag_validation(self):
        from repro.ir import BinaryInst

        fn, b = fresh()
        a, c = fn.args
        with pytest.raises(ValueError):
            BinaryInst(Opcode.AND, a, c, nsw=True)
        with pytest.raises(ValueError):
            BinaryInst(Opcode.ADD, a, c, exact=True)


class TestMemoryBuilders:
    def test_alloca_store_load_gep(self):
        fn, b = fresh(ret=I8, params=(I8,))
        slot = b.alloca(VectorType(4, I8))
        base = b.bitcast(slot, PointerType(I8))
        p = b.gep(base, b.const(32, 2), inbounds=True)
        b.store(fn.args[0], p)
        v = b.load(p)
        b.ret(v)
        verify_function(fn)

    def test_vector_ops(self):
        vec_ty = VectorType(2, I8)
        fn, b = fresh(ret=I8, params=(vec_ty,))
        v = fn.args[0]
        e = b.extractelement(v, b.const(32, 0))
        v2 = b.insertelement(v, e, b.const(32, 1))
        e2 = b.extractelement(v2, b.const(32, 1))
        b.ret(e2)
        verify_function(fn)


class TestControlFlowBuilders:
    def test_cond_br_and_phi(self):
        fn, b = fresh()
        a, c = fn.args
        t = fn.add_block("t")
        e = fn.add_block("e")
        join = fn.add_block("join")
        b.cond_br(b.icmp_ult(a, c), t, e)
        b.set_insert_point(t)
        b.br(join)
        b.set_insert_point(e)
        b.br(join)
        b.set_insert_point(join)
        phi = b.phi(I32)
        phi.add_incoming(a, t)
        phi.add_incoming(c, e)
        b.ret(phi)
        verify_function(fn)

    def test_switch_builder(self):
        fn, b = fresh()
        default = fn.add_block("default")
        case1 = fn.add_block("case1")
        sw = b.switch(fn.args[0], default)
        sw.add_case(b.const(32, 1), case1)
        b.set_insert_point(default)
        b.ret(b.const(32, 0))
        b.set_insert_point(case1)
        b.ret(b.const(32, 1))
        verify_function(fn)

    def test_insert_before_anchor(self):
        fn, b = fresh()
        a, c = fn.args
        add = b.add(a, c)
        ret = b.ret(add)
        b.set_insert_point(fn.entry, before=ret)
        mul = b.mul(a, c)
        assert fn.entry.instructions.index(mul) == 1
        verify_function(fn)

    def test_freeze_and_select(self):
        fn, b = fresh()
        a, c = fn.args
        fr = b.freeze(a)
        sel = b.select(b.icmp_eq(fr, c), fr, c)
        b.ret(sel)
        verify_function(fn)

    def test_call_builder(self):
        module = Module()
        callee = Function(FunctionType(I32, (I32,)), "g", module=module)
        fn = Function(FunctionType(I32, (I32,)), "f", module=module,
                      arg_names=["x"])
        block = fn.add_block("entry")
        b = IRBuilder(block)
        result = b.call(callee, [fn.args[0]])
        b.ret(result)
        verify_function(fn)
        assert result.callee is callee
