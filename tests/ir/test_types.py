"""Tests for the IR type system."""

import pytest

from repro.ir.types import (
    I1,
    I8,
    I32,
    FunctionType,
    IntType,
    LabelType,
    PointerType,
    VectorType,
    VoidType,
    same_shape,
)


class TestInterning:
    def test_int_types_are_interned(self):
        assert IntType(32) is IntType(32)
        assert IntType(32) is I32

    def test_distinct_widths_differ(self):
        assert IntType(8) is not IntType(16)

    def test_pointer_interning(self):
        assert PointerType(I32) is PointerType(I32)
        assert PointerType(I32) is not PointerType(I8)

    def test_vector_interning(self):
        assert VectorType(4, I8) is VectorType(4, I8)
        assert VectorType(4, I8) is not VectorType(2, I8)

    def test_nested_pointer(self):
        pp = PointerType(PointerType(I32))
        assert pp.pointee is PointerType(I32)

    def test_function_type_interning(self):
        a = FunctionType(I32, (I32, I8))
        b = FunctionType(I32, (I32, I8))
        assert a is b

    def test_void_and_label_singletons(self):
        assert VoidType() is VoidType()
        assert LabelType() is LabelType()


class TestIntType:
    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(0)
        with pytest.raises(ValueError):
            IntType(-3)

    def test_ranges(self):
        t = IntType(4)
        assert t.num_values == 16
        assert t.signed_min == -8
        assert t.signed_max == 7
        assert t.unsigned_max == 15

    def test_bitwidth(self):
        assert IntType(13).bitwidth() == 13

    def test_is_bool(self):
        assert I1.is_bool
        assert not I8.is_bool

    def test_str(self):
        assert str(IntType(24)) == "i24"


class TestPointerType:
    def test_bitwidth_is_32(self):
        assert PointerType(I8).bitwidth() == 32

    def test_str(self):
        assert str(PointerType(I32)) == "i32*"
        assert str(PointerType(PointerType(I8))) == "i8**"

    def test_classification(self):
        p = PointerType(I32)
        assert p.is_pointer and not p.is_int and p.is_first_class


class TestVectorType:
    def test_bitwidth(self):
        assert VectorType(4, I8).bitwidth() == 32

    def test_scalar_property(self):
        assert VectorType(4, I8).scalar is I8
        assert I8.scalar is I8

    def test_str(self):
        assert str(VectorType(2, IntType(16))) == "<2 x i16>"

    def test_invalid_element(self):
        with pytest.raises(ValueError):
            VectorType(4, VoidType())

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            VectorType(0, I8)

    def test_vector_of_pointers(self):
        v = VectorType(2, PointerType(I32))
        assert v.bitwidth() == 64


class TestSameShape:
    def test_scalar_scalar(self):
        assert same_shape(I8, I32)

    def test_vector_vector(self):
        assert same_shape(VectorType(4, I8), VectorType(4, I32))
        assert not same_shape(VectorType(4, I8), VectorType(2, I8))

    def test_mixed(self):
        assert not same_shape(I8, VectorType(4, I8))
