"""Verifier tests: structural and SSA-dominance violations."""

import pytest

from repro.ir import (
    BasicBlock,
    BranchInst,
    Function,
    FunctionType,
    IRBuilder,
    VerificationError,
    parse_function,
    verify_function,
)
from repro.ir.types import I8, I32


def test_valid_function_passes(fn_of):
    fn_of("""
define i8 @f(i8 %x) {
entry:
  %y = add i8 %x, 1
  ret i8 %y
}
""")


def test_missing_terminator():
    fn = Function(FunctionType(I8, (I8,)), "f")
    BasicBlock("entry", parent=fn)
    with pytest.raises(VerificationError, match="no terminator"):
        verify_function(fn)


def test_use_before_def_same_block():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 1
  %b = add i8 %a, 1
  ret i8 %b
}
""")
    entry = fn.entry
    a, b = entry.instructions[0], entry.instructions[1]
    entry.remove(a)
    entry.insert_before(entry.terminator, a)  # now a comes after b
    with pytest.raises(VerificationError, match="does not dominate"):
        verify_function(fn)


def test_use_not_dominated_across_blocks():
    fn = parse_function("""
define i8 @f(i1 %c, i8 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i8 %x, 1
  br label %join
b:
  br label %join
join:
  %w = add i8 %x, 2
  ret i8 %w
}
""")
    join = fn.block_by_name("join")
    v = fn.block_by_name("a").instructions[0]
    w = join.instructions[0]
    w.set_operand(0, v)  # %v does not dominate %join
    with pytest.raises(VerificationError, match="does not dominate"):
        verify_function(fn)


def test_phi_missing_incoming():
    fn = parse_function("""
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i8 [ 1, %a ], [ 2, %b ]
  ret i8 %p
}
""")
    phi = fn.block_by_name("join").phis()[0]
    phi.remove_incoming(fn.block_by_name("b"))
    with pytest.raises(VerificationError, match="missing incoming"):
        verify_function(fn)


def test_phi_value_dominates_edge_not_block(fn_of):
    # The phi's incoming value is defined in the predecessor itself —
    # legal even though it does not dominate the phi's block.
    fn_of("""
define i8 @f(i1 %c, i8 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i8 %x, 1
  br label %join
b:
  br label %join
join:
  %p = phi i8 [ %v, %a ], [ %x, %b ]
  ret i8 %p
}
""")


def test_loop_carried_phi_is_legal(fn_of):
    fn_of("""
define i8 @f(i8 %n) {
entry:
  br label %loop
loop:
  %i = phi i8 [ 0, %entry ], [ %next, %loop ]
  %next = add i8 %i, 1
  %c = icmp ult i8 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i8 %i
}
""")


def test_forbid_undef_mode():
    fn = parse_function("""
define i8 @f() {
entry:
  %a = add i8 undef, 1
  ret i8 %a
}
""")
    verify_function(fn)  # fine under OLD rules
    with pytest.raises(VerificationError, match="undef"):
        verify_function(fn, forbid_undef=True)


def test_forbid_undef_allows_poison():
    fn = parse_function("""
define i8 @f() {
entry:
  %a = add i8 poison, 1
  ret i8 %a
}
""")
    verify_function(fn, forbid_undef=True)


# -- exact diagnostics ------------------------------------------------------
# The resilience layer matches on these messages (crash-bundle kinds,
# verify-each remarks), so the exact text is part of the contract.
def test_cross_block_dominance_exact_message():
    fn = parse_function("""
define i8 @f(i1 %c, i8 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i8 %x, 1
  br label %join
b:
  br label %join
join:
  %w = add i8 %x, 2
  ret i8 %w
}
""")
    v = fn.block_by_name("a").instructions[0]
    w = fn.block_by_name("join").instructions[0]
    w.set_operand(0, v)
    with pytest.raises(VerificationError) as exc:
        verify_function(fn)
    assert exc.value.errors == [
        "@f: def %v does not dominate use in %w"
    ]


def test_forbid_undef_exact_message():
    fn = parse_function("""
define i8 @f() {
entry:
  %a = add i8 undef, 1
  ret i8 %a
}
""")
    with pytest.raises(VerificationError) as exc:
        verify_function(fn, forbid_undef=True)
    assert exc.value.errors == [
        "@f: undef operand in add "
        "(forbidden under the poison/freeze semantics)"
    ]


def test_phi_missing_incoming_exact_message():
    fn = parse_function("""
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i8 [ 1, %a ], [ 2, %b ]
  ret i8 %p
}
""")
    phi = fn.block_by_name("join").phis()[0]
    phi.remove_incoming(fn.block_by_name("b"))
    with pytest.raises(VerificationError) as exc:
        verify_function(fn)
    assert exc.value.errors == [
        "@f: phi %p missing incoming for pred %b"
    ]


def test_phi_duplicate_incoming_exact_message():
    fn = parse_function("""
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i8 [ 1, %a ], [ 2, %b ]
  ret i8 %p
}
""")
    phi = fn.block_by_name("join").phis()[0]
    value, block = phi.incoming[0]
    phi.add_incoming(value, block)
    with pytest.raises(VerificationError) as exc:
        verify_function(fn)
    assert exc.value.errors == [
        "@f: phi %p has duplicate incoming blocks"
    ]


def test_missing_terminator_exact_message():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 1
  ret i8 %a
}
""")
    entry = fn.entry
    term = entry.instructions.pop()
    term.drop_all_operands()
    term.parent = None
    with pytest.raises(VerificationError) as exc:
        verify_function(fn)
    assert exc.value.errors == [
        "@f: block %entry has no terminator"
    ]


def test_entry_with_predecessor_rejected():
    fn = parse_function("""
define void @f() {
entry:
  br label %next
next:
  ret void
}
""")
    next_block = fn.block_by_name("next")
    next_block.erase(next_block.terminator)
    builder = IRBuilder(next_block)
    builder.br(fn.entry)
    with pytest.raises(VerificationError, match="entry block"):
        verify_function(fn)


# ---------------------------------------------------------------------------
# structured diagnostics (IRLocation)


def test_diagnostics_carry_structured_locations():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 1
  %b = add i8 %a, 1
  ret i8 %b
}
""")
    entry = fn.entry
    a = entry.instructions[0]
    entry.remove(a)
    entry.insert_before(entry.terminator, a)  # use-before-def
    with pytest.raises(VerificationError) as exc:
        verify_function(fn)
    diags = exc.value.diagnostics
    assert diags, "structured diagnostics must accompany string errors"
    (d,) = diags
    assert d.loc.function == "f"
    assert d.loc.block == "entry"
    assert d.loc.index is not None
    # the rendered diagnostic leads with the clickable location
    assert str(d).startswith("@f:%entry:#")


def test_diagnostics_match_legacy_strings():
    fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 1
  ret i8 %a
}
""")
    entry = fn.entry
    term = entry.instructions.pop()
    term.drop_all_operands()
    term.parent = None
    with pytest.raises(VerificationError) as exc:
        verify_function(fn)
    # legacy string list is unchanged; the structured list parallels it
    assert exc.value.errors == ["@f: block %entry has no terminator"]
    assert len(exc.value.diagnostics) == 1
    assert exc.value.diagnostics[0].loc.block == "entry"
    assert exc.value.diagnostics[0].loc.index is None


def test_lint_reuses_verifier_location_type():
    from repro.ir.location import IRLocation
    from repro.lint import lint_function

    fn = parse_function("""
define i8 @f(i8 %x, i8 %y) {
entry:
  %dead = add nsw i8 %x, %y
  %sum = add i8 %x, %y
  ret i8 %sum
}
""")
    (diag,) = lint_function(fn)
    assert isinstance(diag.loc, IRLocation)
    assert diag.loc.function == "f" and diag.loc.index == 0
