"""Tests for values, constants, and use lists."""

import pytest

from repro.ir import IRBuilder
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.types import I8, I32, FunctionType, IntType, VectorType
from repro.ir.values import (
    ConstantInt,
    ConstantVector,
    PoisonValue,
    UndefValue,
    const_bool,
    const_int,
)


def make_fn():
    fn = Function(FunctionType(I32, (I32, I32)), "f", arg_names=["a", "b"])
    block = BasicBlock("entry", parent=fn)
    return fn, block


class TestConstantInt:
    def test_wrapping_on_construction(self):
        c = ConstantInt(I8, 300)
        assert c.value == 44

    def test_negative_construction(self):
        c = ConstantInt(I8, -1)
        assert c.value == 255
        assert c.signed_value == -1

    def test_signed_value(self):
        assert ConstantInt(I8, 127).signed_value == 127
        assert ConstantInt(I8, 128).signed_value == -128

    def test_predicates(self):
        assert ConstantInt(I8, 0).is_zero
        assert ConstantInt(I8, 1).is_one
        assert ConstantInt(I8, 255).is_all_ones

    def test_equality_and_hash(self):
        assert ConstantInt(I8, 5) == ConstantInt(I8, 5)
        assert ConstantInt(I8, 5) != ConstantInt(I32, 5)
        assert hash(ConstantInt(I8, 5)) == hash(ConstantInt(I8, 5))

    def test_ref_bool_rendering(self):
        assert const_bool(True).ref() == "true"
        assert const_bool(False).ref() == "false"
        assert const_int(8, -2).ref() == "-2"

    def test_requires_int_type(self):
        with pytest.raises(TypeError):
            ConstantInt(VectorType(2, I8), 0)


class TestDeferredConstants:
    def test_undef_equality(self):
        assert UndefValue(I8) == UndefValue(I8)
        assert UndefValue(I8) != UndefValue(I32)
        assert UndefValue(I8) != PoisonValue(I8)

    def test_poison_render(self):
        assert PoisonValue(I8).ref() == "poison"
        assert UndefValue(I8).ref() == "undef"

    def test_classification(self):
        assert UndefValue(I8).is_undef
        assert PoisonValue(I8).is_poison
        assert not PoisonValue(I8).is_undef


class TestConstantVector:
    def test_element_count_checked(self):
        with pytest.raises(ValueError):
            ConstantVector(VectorType(3, I8), [ConstantInt(I8, 1)])

    def test_mixed_elements(self):
        v = ConstantVector(
            VectorType(2, I8), [ConstantInt(I8, 1), PoisonValue(I8)]
        )
        assert "poison" in v.ref()


class TestUseLists:
    def test_uses_tracked(self):
        fn, block = make_fn()
        b = IRBuilder(block)
        a = fn.args[0]
        add = b.add(a, a)
        assert add.num_uses == 0
        assert a.num_uses == 2
        mul = b.mul(add, fn.args[1])
        assert add.num_uses == 1
        assert list(add.users()) == [mul]

    def test_replace_all_uses_with(self):
        fn, block = make_fn()
        b = IRBuilder(block)
        a, c = fn.args
        add = b.add(a, c)
        mul = b.mul(add, add)
        add.replace_all_uses_with(a)
        assert mul.operand(0) is a
        assert mul.operand(1) is a
        assert add.num_uses == 0
        assert a.num_uses > 0

    def test_replace_with_self_is_noop(self):
        fn, block = make_fn()
        b = IRBuilder(block)
        add = b.add(fn.args[0], fn.args[1])
        mul = b.mul(add, add)
        add.replace_all_uses_with(add)
        assert mul.operand(0) is add

    def test_set_operand_updates_uses(self):
        fn, block = make_fn()
        b = IRBuilder(block)
        a, c = fn.args
        add = b.add(a, a)
        add.set_operand(1, c)
        assert a.num_uses == 1
        assert c.num_uses == 1
        assert add.rhs is c

    def test_has_one_use(self):
        fn, block = make_fn()
        b = IRBuilder(block)
        add = b.add(fn.args[0], fn.args[1])
        b.mul(add, fn.args[0])
        assert add.has_one_use()

    def test_drop_all_operands(self):
        fn, block = make_fn()
        b = IRBuilder(block)
        a = fn.args[0]
        add = b.add(a, a)
        add.drop_all_operands()
        assert a.num_uses == 0
        assert add.num_operands == 0
