"""Parser / printer round-trip and error tests."""

import pytest

from repro.ir import (
    FreezeInst,
    Opcode,
    ParseError,
    parse_function,
    parse_module,
    print_function,
    print_module,
    verify_module,
)

EXAMPLE = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %sum = add nsw i32 %a, %b
  %dbl = mul i32 %sum, 2
  %c = icmp slt i32 %dbl, 10
  br i1 %c, label %low, label %high
low:
  %l = sub i32 %dbl, 1
  br label %join
high:
  br label %join
join:
  %r = phi i32 [ %l, %low ], [ %b, %high ]
  %fr = freeze i32 %r
  ret i32 %fr
}
"""


class TestRoundTrip:
    def test_parse_print_parse(self):
        fn = parse_function(EXAMPLE)
        text = print_function(fn)
        fn2 = parse_function(text)
        assert print_function(fn2) == text

    def test_module_roundtrip(self):
        src = """
@g = global i32 7

declare i32 @ext(i32)

define i32 @main() {
entry:
  %p = call i32 @ext(i32 3)
  %v = load i32, i32* @g
  %s = add i32 %p, %v
  store i32 %s, i32* @g
  ret i32 %s
}
"""
        m = parse_module(src)
        verify_module(m)
        text = print_module(m)
        m2 = parse_module(text)
        assert print_module(m2) == text

    def test_all_binops_roundtrip(self):
        ops = ["add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
               "shl", "lshr", "ashr", "and", "or", "xor"]
        body = "\n".join(
            f"  %v{i} = {op} i8 %a, %b" for i, op in enumerate(ops)
        )
        src = f"define i8 @f(i8 %a, i8 %b) {{\nentry:\n{body}\n  ret i8 %v0\n}}"
        fn = parse_function(src)
        text = print_function(fn)
        assert print_function(parse_function(text)) == text

    def test_flags_roundtrip(self):
        src = """
define i8 @f(i8 %a) {
entry:
  %x = add nuw nsw i8 %a, 1
  %y = udiv exact i8 %x, 2
  %z = shl nsw i8 %y, 1
  ret i8 %z
}
"""
        fn = parse_function(src)
        text = print_function(fn)
        assert "add nuw nsw" in text
        assert "udiv exact" in text
        assert print_function(parse_function(text)) == text

    def test_vector_ops_roundtrip(self):
        src = """
define <2 x i8> @f(<2 x i8> %v, i8 %x) {
entry:
  %a = add <2 x i8> %v, %v
  %e = extractelement <2 x i8> %a, i32 0
  %i = insertelement <2 x i8> %a, i8 %x, i32 1
  ret <2 x i8> %i
}
"""
        fn = parse_function(src)
        text = print_function(fn)
        assert print_function(parse_function(text)) == text

    def test_vector_constant(self):
        src = """
define <2 x i8> @f() {
entry:
  %a = add <2 x i8> <i8 1, i8 2>, <i8 3, i8 poison>
  ret <2 x i8> %a
}
"""
        fn = parse_function(src)
        assert "poison" in print_function(fn)

    def test_memory_roundtrip(self):
        src = """
define i16 @f(i16* %p, i32 %i) {
entry:
  %q = getelementptr inbounds i16, i16* %p, i32 %i
  %a = alloca i16
  %v = load i16, i16* %q
  store i16 %v, i16* %a
  %w = load i16, i16* %a
  ret i16 %w
}
"""
        fn = parse_function(src)
        text = print_function(fn)
        assert "getelementptr inbounds" in text
        assert print_function(parse_function(text)) == text

    def test_switch_roundtrip(self):
        src = """
define i8 @f(i8 %x) {
entry:
  switch i8 %x, label %d [ i8 0, label %a i8 1, label %b ]
a:
  ret i8 10
b:
  ret i8 20
d:
  ret i8 30
}
"""
        fn = parse_function(src)
        text = print_function(fn)
        assert print_function(parse_function(text)) == text

    def test_casts_roundtrip(self):
        src = """
define i64 @f(i32 %x) {
entry:
  %s = sext i32 %x to i64
  %t = trunc i64 %s to i8
  %z = zext i8 %t to i64
  ret i64 %z
}
"""
        fn = parse_function(src)
        text = print_function(fn)
        assert print_function(parse_function(text)) == text

    def test_undef_poison_operands(self):
        src = """
define i8 @f() {
entry:
  %a = add i8 undef, 1
  %b = add i8 poison, %a
  ret i8 %b
}
"""
        fn = parse_function(src)
        text = print_function(fn)
        assert "undef" in text and "poison" in text


class TestForwardReferences:
    def test_phi_forward_reference(self):
        src = """
define i8 @f(i8 %n) {
entry:
  br label %loop
loop:
  %i = phi i8 [ 0, %entry ], [ %next, %loop ]
  %next = add i8 %i, 1
  %c = icmp ult i8 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i8 %i
}
"""
        fn = parse_function(src)
        phi = fn.block_by_name("loop").phis()[0]
        next_inst = [i for i in fn.instructions() if i.name == "next"][0]
        assert phi.incoming[1][0] is next_inst

    def test_forward_block_reference(self):
        src = """
define void @f(i1 %c) {
entry:
  br i1 %c, label %later, label %now
now:
  ret void
later:
  ret void
}
"""
        fn = parse_function(src)
        assert [b.name for b in fn.blocks] == ["entry", "now", "later"]


class TestParseErrors:
    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_function("define void @f() {\nentry:\n  frobnicate\n}")

    def test_undefined_value(self):
        with pytest.raises(ParseError, match="undefined value"):
            parse_function(
                "define i8 @f() {\nentry:\n  %x = add i8 %nope, 1\n  ret i8 %x\n}"
            )

    def test_undefined_label(self):
        with pytest.raises(ParseError, match="undefined label"):
            parse_function(
                "define void @f() {\nentry:\n  br label %ghost\n}"
            )

    def test_unknown_callee(self):
        with pytest.raises(ParseError, match="unknown function"):
            parse_function(
                "define void @f() {\nentry:\n  call void @nope()\n  ret void\n}"
            )

    def test_type_mismatch_in_store(self):
        with pytest.raises(ValueError):
            parse_function(
                "define void @f(i8* %p) {\nentry:\n"
                "  store i16 3, i8* %p\n  ret void\n}"
            )

    def test_freeze_parses_to_instruction(self):
        fn = parse_function(
            "define i8 @f(i8 %x) {\nentry:\n  %y = freeze i8 %x\n  ret i8 %y\n}"
        )
        inst = fn.entry.instructions[0]
        assert isinstance(inst, FreezeInst)
        assert inst.opcode is Opcode.FREEZE
