"""Tests for the bit-granular memory model."""

from repro.semantics.domains import PBIT, UBIT
from repro.semantics.memory import Memory


def test_uninitialized_reads_uninit_bit():
    for bit in (UBIT, PBIT):
        m = Memory(bit)
        addr = m.alloc(2)
        bits = m.load_bits(addr, 16)
        assert bits == (bit,) * 16


def test_store_load_roundtrip():
    m = Memory(PBIT)
    addr = m.alloc(2)
    pattern = tuple(int(c) for c in "1011001110001111")
    assert m.store_bits(addr, pattern)
    assert m.load_bits(addr, 16) == pattern


def test_out_of_bounds_load_fails():
    m = Memory(PBIT)
    addr = m.alloc(1)
    assert m.load_bits(addr, 16) is None
    assert m.load_bits(addr + 100, 8) is None
    assert m.load_bits(addr, 8) is not None


def test_out_of_bounds_store_fails():
    m = Memory(PBIT)
    addr = m.alloc(1)
    assert not m.store_bits(addr, (0,) * 16)
    assert m.store_bits(addr, (0,) * 8)


def test_unallocated_access_fails():
    m = Memory(PBIT)
    assert m.load_bits(0x0, 8) is None
    assert not m.store_bits(0x4, (1,) * 8)


def test_blocks_do_not_overlap():
    m = Memory(PBIT)
    a = m.alloc(4)
    b = m.alloc(4)
    assert a != b
    m.store_bits(a, (1,) * 32)
    assert m.load_bits(b, 32) == (PBIT,) * 32


def test_partial_store_preserves_neighbors():
    m = Memory(UBIT)
    addr = m.alloc(4)
    m.store_bits(addr, (1,) * 32)
    m.store_bits(addr + 1, (0,) * 8)  # overwrite byte 1
    bits = m.load_bits(addr, 32)
    assert bits[:8] == (1,) * 8
    assert bits[8:16] == (0,) * 8
    assert bits[16:] == (1,) * 16


def test_non_byte_width_store_keeps_padding():
    m = Memory(UBIT)
    addr = m.alloc(1)
    m.store_bits(addr, (1,) * 8)
    m.store_bits(addr, (0, 0, 0))  # i3 store
    bits = m.load_bits(addr, 8)
    assert bits == (0, 0, 0, 1, 1, 1, 1, 1)


def test_poison_bits_in_memory():
    m = Memory(UBIT)
    addr = m.alloc(1)
    m.store_bits(addr, (1, PBIT, 0, UBIT, 1, 1, 0, 0))
    assert m.load_bits(addr, 8) == (1, PBIT, 0, UBIT, 1, 1, 0, 0)


def test_free_block():
    m = Memory(PBIT)
    addr = m.alloc(4)
    assert m.is_valid(addr, 32)
    m.free_block(addr)
    assert not m.is_valid(addr, 32)


def test_snapshot_block():
    m = Memory(PBIT)
    addr = m.alloc(2, name="g")
    m.store_bits(addr, (1,) * 16)
    snap = m.snapshot_block(addr)
    assert snap == (1,) * 16
    assert m.snapshot_block(0x0) is None


def test_clone_is_independent():
    m = Memory(PBIT)
    addr = m.alloc(1)
    m.store_bits(addr, (1,) * 8)
    m2 = m.clone()
    m2.store_bits(addr, (0,) * 8)
    assert m.load_bits(addr, 8) == (1,) * 8
    assert m2.load_bits(addr, 8) == (0,) * 8
