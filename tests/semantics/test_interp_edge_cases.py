"""Edge-case interpreter tests: vectors, GEP, switch, casts, calls."""

import pytest

from repro.ir import parse_function, parse_module
from repro.semantics import (
    NEW,
    OLD,
    PBIT,
    POISON,
    UBError,
    enumerate_behaviors,
    full_undef,
    run_once,
)


def ret_ints(behaviors):
    out = set()
    for b in behaviors:
        if b.kind != "ret" or b.ret is None:
            continue
        if all(isinstance(bit, int) for bit in b.ret):
            out.add(sum(bit << i for i, bit in enumerate(b.ret)))
    return sorted(out)


class TestVectors:
    def test_elementwise_binop(self):
        fn = parse_function("""
define <2 x i4> @f(<2 x i4> %v) {
entry:
  %r = add <2 x i4> %v, <i4 1, i4 2>
  ret <2 x i4> %r
}""")
        b = run_once(fn, [(3, 10)], NEW)
        # lane0 = 4, lane1 = 12; bits LSB-first per lane
        assert b.ret == (0, 0, 1, 0, 0, 0, 1, 1)

    def test_poison_lane_isolated_in_binop(self):
        fn = parse_function("""
define <2 x i4> @f(<2 x i4> %v) {
entry:
  %r = add <2 x i4> %v, <i4 1, i4 1>
  ret <2 x i4> %r
}""")
        b = run_once(fn, [(POISON, 5)], NEW)
        assert b.ret[:4] == (PBIT,) * 4
        assert b.ret[4:] == (0, 1, 1, 0)  # 6

    def test_extractelement_out_of_bounds_poison(self):
        fn = parse_function("""
define i4 @f(<2 x i4> %v) {
entry:
  %e = extractelement <2 x i4> %v, i32 5
  ret i4 %e
}""")
        b = run_once(fn, [(1, 2)], NEW)
        assert b.ret == (PBIT,) * 4

    def test_extractelement_poison_index(self):
        fn = parse_function("""
define i4 @f(<2 x i4> %v, i32 %i) {
entry:
  %e = extractelement <2 x i4> %v, i32 %i
  ret i4 %e
}""")
        b = run_once(fn, [(1, 2), POISON], NEW)
        assert b.ret == (PBIT,) * 4

    def test_insertelement(self):
        fn = parse_function("""
define <2 x i4> @f(<2 x i4> %v, i4 %x) {
entry:
  %r = insertelement <2 x i4> %v, i4 %x, i32 1
  ret <2 x i4> %r
}""")
        b = run_once(fn, [(1, 2), 9], NEW)
        assert b.ret == (1, 0, 0, 0, 1, 0, 0, 1)

    def test_vector_icmp_per_lane(self):
        fn = parse_function("""
define <2 x i1> @f(<2 x i4> %v) {
entry:
  %c = icmp ult <2 x i4> %v, <i4 3, i4 3>
  ret <2 x i1> %c
}""")
        b = run_once(fn, [(1, 7)], NEW)
        assert b.ret == (1, 0)

    def test_bitcast_vector_to_scalar_spreads_poison(self):
        fn = parse_function("""
define i8 @f(<2 x i4> %v) {
entry:
  %s = bitcast <2 x i4> %v to i8
  ret i8 %s
}""")
        b = run_once(fn, [(POISON, 5)], NEW)
        assert b.ret == (PBIT,) * 8  # any poison bit poisons the scalar

    def test_bitcast_scalar_to_vector_localizes(self):
        fn = parse_function("""
define <2 x i4> @f(i8 %x) {
entry:
  %v = bitcast i8 %x to <2 x i4>
  ret <2 x i4> %v
}""")
        b = run_once(fn, [0x53], NEW)
        # low lane 3, high lane 5
        assert b.ret == (1, 1, 0, 0, 1, 0, 1, 0)


class TestGep:
    def test_negative_index(self):
        fn = parse_function("""
define i8 @f() {
entry:
  %buf = alloca <4 x i8>
  %base = bitcast <4 x i8>* %buf to i8*
  %p2 = getelementptr i8, i8* %base, i32 2
  store i8 7, i8* %p2
  %back = getelementptr i8, i8* %p2, i32 -2
  %v0 = getelementptr i8, i8* %back, i32 2
  %v = load i8, i8* %v0
  ret i8 %v
}""")
        b = run_once(fn, [], NEW)
        assert sum(bit << i for i, bit in enumerate(b.ret)) == 7

    def test_narrow_index_sign_extended(self):
        fn = parse_function("""
define i8 @f() {
entry:
  %buf = alloca <4 x i8>
  %base = bitcast <4 x i8>* %buf to i8*
  %p2 = getelementptr i8, i8* %base, i32 2
  store i8 9, i8* %base
  %back = getelementptr i8, i8* %p2, i4 -2
  %v = load i8, i8* %back
  ret i8 %v
}""")
        b = run_once(fn, [], NEW)
        assert sum(bit << i for i, bit in enumerate(b.ret)) == 9

    def test_gep_scaling_by_element_size(self):
        fn = parse_function("""
define i16 @f() {
entry:
  %buf = alloca <4 x i16>
  %base = bitcast <4 x i16>* %buf to i16*
  %p1 = getelementptr i16, i16* %base, i32 1
  store i16 500, i16* %p1
  %v = load i16, i16* %p1
  ret i16 %v
}""")
        b = run_once(fn, [], NEW)
        assert sum(bit << i for i, bit in enumerate(b.ret)) == 500


class TestSwitch:
    SRC = """
define i4 @f(i4 %x) {
entry:
  switch i4 %x, label %d [ i4 1, label %a i4 2, label %b ]
a:
  ret i4 10
b:
  ret i4 11
d:
  ret i4 12
}"""

    def test_case_dispatch(self):
        fn = parse_function(self.SRC)
        assert ret_ints([run_once(fn, [1], NEW)]) == [10]
        assert ret_ints([run_once(fn, [2], NEW)]) == [11]
        assert ret_ints([run_once(fn, [9], NEW)]) == [12]

    def test_switch_on_poison_ub_new(self):
        fn = parse_function(self.SRC)
        assert all(b.is_ub for b in enumerate_behaviors(fn, [POISON], NEW))

    def test_switch_on_poison_nondet_old(self):
        fn = parse_function(self.SRC)
        outs = ret_ints(enumerate_behaviors(fn, [POISON], OLD))
        assert outs == [10, 11, 12]

    def test_switch_on_undef_picks_any_old(self):
        fn = parse_function(self.SRC)
        outs = ret_ints(enumerate_behaviors(fn, [full_undef(4)], OLD))
        assert outs == [10, 11, 12]


class TestCalls:
    def test_poison_flows_through_defined_call(self):
        mod = parse_module("""
define i4 @id(i4 %x) {
entry:
  ret i4 %x
}

define i4 @f(i4 %x) {
entry:
  %r = call i4 @id(i4 %x)
  ret i4 %r
}""")
        b = run_once(mod.get_function("f"), [POISON], NEW)
        assert b.ret == (PBIT,) * 4

    def test_recursion_depth_limited(self):
        mod = parse_module("""
define i4 @loop(i4 %x) {
entry:
  %r = call i4 @loop(i4 %x)
  ret i4 %r
}""")
        b = run_once(mod.get_function("loop"), [1], NEW)
        assert b.kind == "timeout"

    def test_event_order_preserved(self):
        mod = parse_module("""
declare void @a(i4)
declare void @b(i4)

define void @f() {
entry:
  call void @a(i4 1)
  call void @b(i4 2)
  call void @a(i4 3)
  ret void
}""")
        b = run_once(mod.get_function("f"), [], NEW)
        assert [e[0] for e in b.events] == ["a", "b", "a"]


class TestCastEdgeCases:
    def test_trunc_keeps_low_bits_of_partial_undef(self):
        # load of half-initialized word, truncated to the defined half
        fn = parse_function("""
define i2 @f() {
entry:
  %p = alloca i4
  %p2 = bitcast i4* %p to i2*
  store i2 3, i2* %p2
  %w = load i4, i4* %p
  %t = trunc i4 %w to i2
  ret i2 %t
}""")
        outs = ret_ints(enumerate_behaviors(fn, [], OLD))
        assert outs == [3]  # the undef high bits are discarded

    def test_trunc_of_poisoned_word_is_poison_new(self):
        fn = parse_function("""
define i2 @f() {
entry:
  %p = alloca i4
  %p2 = bitcast i4* %p to i2*
  store i2 3, i2* %p2
  %w = load i4, i4* %p
  %t = trunc i4 %w to i2
  ret i2 %t
}""")
        (b,) = enumerate_behaviors(fn, [], NEW)
        # the uninitialized high bits are poison, so ty-up poisons the
        # whole i4 load and the trunc result
        assert b.ret == (PBIT, PBIT)

    def test_sext_chain(self):
        fn = parse_function("""
define i16 @f(i2 %x) {
entry:
  %a = sext i2 %x to i8
  %b = sext i8 %a to i16
  ret i16 %b
}""")
        b = run_once(fn, [2], NEW)  # -2 in i2
        value = sum(bit << i for i, bit in enumerate(b.ret))
        assert value == 0xFFFE
