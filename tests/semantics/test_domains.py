"""Tests for runtime value domains and the ty↓/ty↑ conversions (Fig. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.types import I8, IntType, PointerType, VectorType
from repro.semantics.domains import (
    PBIT,
    POISON,
    UBIT,
    PartialUndef,
    bits_to_scalar,
    bits_to_value,
    full_undef,
    poison_value,
    scalar_to_bits,
    undef_value,
    value_to_bits,
)


class TestPartialUndef:
    def test_requires_nonzero_mask(self):
        with pytest.raises(ValueError):
            PartialUndef(0, 0, 8)

    def test_fully_undef(self):
        u = full_undef(8)
        assert u.is_fully_undef
        assert u.num_undef_bits() == 8

    def test_concretize_fills_masked_positions(self):
        # value 0b0101 with undef bits at positions 1 and 3
        u = PartialUndef(0b0101, 0b1010, 4)
        assert u.concretize(0b00) == 0b0101
        assert u.concretize(0b01) == 0b0111   # first undef bit -> pos 1
        assert u.concretize(0b10) == 0b1101   # second undef bit -> pos 3
        assert u.concretize(0b11) == 0b1111

    def test_defined_bits_masked_out_of_value(self):
        u = PartialUndef(0b1111, 0b0011, 4)
        assert u.value == 0b1100

    def test_equality(self):
        assert PartialUndef(1, 2, 4) == PartialUndef(1, 2, 4)
        assert PartialUndef(1, 2, 4) != PartialUndef(0, 2, 4)


class TestScalarBits:
    def test_concrete_roundtrip(self):
        bits = scalar_to_bits(0b1011, 4)
        assert bits == (1, 1, 0, 1)  # LSB first
        assert bits_to_scalar(bits) == 0b1011

    def test_poison_scalar_is_all_poison_bits(self):
        assert scalar_to_bits(POISON, 4) == (PBIT,) * 4

    def test_any_poison_bit_poisons_scalar(self):
        assert bits_to_scalar((0, 1, PBIT, 0)) is POISON

    def test_undef_bits_make_partial_undef(self):
        v = bits_to_scalar((1, UBIT, 0, UBIT))
        assert isinstance(v, PartialUndef)
        assert v.value == 0b0001
        assert v.mask == 0b1010

    def test_poison_beats_undef(self):
        assert bits_to_scalar((UBIT, PBIT)) is POISON

    def test_partial_undef_roundtrip(self):
        u = PartialUndef(0b01, 0b10, 2)
        assert bits_to_scalar(scalar_to_bits(u, 2)) == u

    @given(st.integers(min_value=0, max_value=255))
    def test_roundtrip_property(self, v):
        assert bits_to_scalar(scalar_to_bits(v, 8)) == v


class TestVectorBits:
    def test_vector_lowering_concatenates(self):
        ty = VectorType(2, IntType(4))
        bits = value_to_bits((0b0001, 0b0010), ty)
        assert bits == (1, 0, 0, 0, 0, 1, 0, 0)

    def test_poison_lane_stays_in_lane(self):
        """The heart of Section 5.4: a poison element poisons only its
        own lane on the way back up."""
        ty = VectorType(2, IntType(4))
        bits = value_to_bits((POISON, 0b0110), ty)
        back = bits_to_value(bits, ty)
        assert back[0] is POISON
        assert back[1] == 0b0110

    def test_scalar_reinterpret_spreads_poison(self):
        """Contrast with 5.4: loading the same bits at a scalar type
        poisons everything."""
        ty = VectorType(2, IntType(4))
        bits = value_to_bits((POISON, 0b0110), ty)
        assert bits_to_scalar(bits) is POISON

    def test_poison_undef_value_builders(self):
        ty = VectorType(3, IntType(2))
        assert poison_value(ty) == (POISON,) * 3
        uv = undef_value(ty)
        assert all(isinstance(u, PartialUndef) for u in uv)

    def test_pointer_width(self):
        p = PointerType(I8)
        assert len(value_to_bits(0x1000, p)) == 32
