"""Differential tests: numpy lane kernels vs. the scalar evaluator.

Every vector kernel must agree element-wise with *both* the generic
``eval_*`` functions and the per-instruction specializers they mirror
(``binop_evaluator`` & co.), over random widths, flags, and poison
lanes.  The scalar side is the oracle; the outcome correspondence is

* ``UBError`` raised        <-> the kernel's ub lane is set,
* ``POISON`` returned       <-> the poison lane is set,
* a concrete value returned <-> equal value lanes.

The whole module skips when numpy is absent (the scalar engine is the
only one in play on that CI leg).
"""

import pytest
from hypothesis import given, strategies as st

from repro.ir.instructions import IcmpPred, Opcode
from repro.semantics import NEW, OLD, POISON
from repro.semantics.eval import (
    UBError,
    binop_evaluator,
    cast_evaluator,
    eval_binop,
    eval_cast,
    eval_icmp,
    icmp_evaluator,
)
from repro.semantics.vector import (
    MAX_WIDTH,
    VectorIneligible,
    vector_binop_kernel,
    vector_cast_kernel,
    vector_icmp_kernel,
)

np = pytest.importorskip("numpy")

BINOPS = [
    Opcode.ADD, Opcode.SUB, Opcode.MUL,
    Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM,
    Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
    Opcode.AND, Opcode.OR, Opcode.XOR,
]
#: opcodes where nsw/nuw are meaningful
WRAP_FLAG_OPS = (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SHL)
#: opcodes where exact is meaningful
EXACT_OPS = (Opcode.UDIV, Opcode.SDIV, Opcode.LSHR, Opcode.ASHR)


def _lane_arrays(lanes):
    """(aval, apois, bval, bpois) tuples -> numpy lane arrays."""
    aval = np.array([a for a, _, _, _ in lanes], dtype=np.int64)
    apois = np.array([ap for _, ap, _, _ in lanes], dtype=bool)
    bval = np.array([b for _, _, b, _ in lanes], dtype=np.int64)
    bpois = np.array([bp for _, _, _, bp in lanes], dtype=bool)
    return aval, apois, bval, bpois


def _scalar_outcome(fn, *args):
    """Run a scalar evaluator, normalizing to an outcome tag."""
    try:
        result = fn(*args)
    except UBError:
        return ("ub", None)
    if result is POISON:
        return ("poison", None)
    return ("val", int(result))


def _kernel_outcome(val, pois, ub, i):
    if ub is not None and bool(ub[i]):
        return ("ub", None)
    if bool(pois[i]):
        return ("poison", None)
    return ("val", int(val[i]))


def _assert_lane_invariants(val, pois, ub, width):
    """Value lanes stay masked into [0, 2^w) and zeroed under
    poison/UB — the plan layer relies on bounded garbage."""
    mask = (1 << width) - 1
    assert bool(np.all((val >= 0) & (val <= mask)))
    dead = pois if ub is None else (pois | ub)
    assert bool(np.all(val[dead] == 0))


def _check_binop_lanes(opcode, width, lanes, nsw, nuw, exact):
    kernel = vector_binop_kernel(opcode, width, NEW,
                                 nsw=nsw, nuw=nuw, exact=exact)
    specialized = binop_evaluator(opcode, width, NEW,
                                  nsw=nsw, nuw=nuw, exact=exact)
    aval, apois, bval, bpois = _lane_arrays(lanes)
    val, pois, ub = kernel(aval, apois, bval, bpois)
    val, pois = np.broadcast_to(val, aval.shape), np.broadcast_to(
        pois, aval.shape)
    if ub is not None:
        ub = np.broadcast_to(ub, aval.shape)
    _assert_lane_invariants(val, pois, ub, width)
    for i, (a, ap, b, bp) in enumerate(lanes):
        sa = POISON if ap else a
        sb = POISON if bp else b
        want_generic = _scalar_outcome(
            eval_binop, opcode, sa, sb, width, NEW, nsw, nuw, exact)
        want_special = _scalar_outcome(specialized, sa, sb)
        got = _kernel_outcome(val, pois, ub, i)
        context = (f"{opcode.value} w={width} nsw={nsw} nuw={nuw} "
                   f"exact={exact} lane {i}: a={sa} b={sb}")
        assert want_generic == want_special, context
        assert got == want_generic, context


@st.composite
def binop_cases(draw):
    opcode = draw(st.sampled_from(BINOPS))
    width = draw(st.integers(1, MAX_WIDTH))
    nsw = nuw = exact = False
    if opcode in WRAP_FLAG_OPS:
        nsw = draw(st.booleans())
        nuw = draw(st.booleans())
    if opcode in EXACT_OPS:
        exact = draw(st.booleans())
    maxu = (1 << width) - 1
    lanes = draw(st.lists(
        st.tuples(st.integers(0, maxu), st.booleans(),
                  st.integers(0, maxu), st.booleans()),
        min_size=1, max_size=24))
    return opcode, width, lanes, nsw, nuw, exact


class TestBinopKernels:
    @given(binop_cases())
    def test_matches_scalar_evaluators(self, case):
        _check_binop_lanes(*case)

    @pytest.mark.parametrize("opcode", BINOPS)
    def test_exhaustive_small_width(self, opcode):
        """Every (a, b) pair over i2 including poison lanes, under
        every meaningful flag combination."""
        width = 2
        flag_sets = [(False, False, False)]
        if opcode in WRAP_FLAG_OPS:
            flag_sets += [(True, False, False), (False, True, False),
                          (True, True, False)]
        if opcode in EXACT_OPS:
            flag_sets += [(False, False, True)]
        candidates = [(v, False) for v in range(4)] + [(0, True)]
        lanes = [(a, ap, b, bp)
                 for a, ap in candidates for b, bp in candidates]
        for nsw, nuw, exact in flag_sets:
            _check_binop_lanes(opcode, width, lanes, nsw, nuw, exact)

    @pytest.mark.parametrize("opcode", [Opcode.SHL, Opcode.LSHR,
                                        Opcode.ASHR])
    def test_shift_under_undef_config_is_ineligible(self, opcode):
        # OLD's out-of-range shifts produce undef, which the lane
        # model cannot represent — the kernel must refuse, not guess.
        with pytest.raises(VectorIneligible) as exc:
            vector_binop_kernel(opcode, 4, OLD)
        assert exc.value.reason == "shift-oob-undef"


class TestIcmpKernels:
    @given(st.sampled_from(list(IcmpPred)),
           st.integers(1, MAX_WIDTH),
           st.data())
    def test_matches_scalar_evaluators(self, pred, width, data):
        maxu = (1 << width) - 1
        lanes = data.draw(st.lists(
            st.tuples(st.integers(0, maxu), st.booleans(),
                      st.integers(0, maxu), st.booleans()),
            min_size=1, max_size=24))
        kernel = vector_icmp_kernel(pred, width)
        specialized = icmp_evaluator(pred, width)
        aval, apois, bval, bpois = _lane_arrays(lanes)
        val, pois, ub = kernel(aval, apois, bval, bpois)
        assert ub is None
        _assert_lane_invariants(val, pois, None, 1)
        for i, (a, ap, b, bp) in enumerate(lanes):
            sa = POISON if ap else a
            sb = POISON if bp else b
            want = _scalar_outcome(eval_icmp, pred, sa, sb, width)
            assert _scalar_outcome(specialized, sa, sb) == want
            assert _kernel_outcome(val, pois, None, i) == want, \
                f"{pred.value} w={width} lane {i}: a={sa} b={sb}"

    def test_exhaustive_small_width(self):
        width = 3
        candidates = [(v, False) for v in range(8)] + [(0, True)]
        lanes = [(a, ap, b, bp)
                 for a, ap in candidates for b, bp in candidates]
        aval, apois, bval, bpois = _lane_arrays(lanes)
        for pred in IcmpPred:
            val, pois, _ = vector_icmp_kernel(pred, width)(
                aval, apois, bval, bpois)
            for i, (a, ap, b, bp) in enumerate(lanes):
                sa = POISON if ap else a
                sb = POISON if bp else b
                want = _scalar_outcome(eval_icmp, pred, sa, sb, width)
                assert _kernel_outcome(val, pois, None, i) == want


CAST_OPS = [Opcode.ZEXT, Opcode.SEXT, Opcode.TRUNC]


@st.composite
def cast_cases(draw):
    opcode = draw(st.sampled_from(CAST_OPS))
    if opcode is Opcode.TRUNC:
        src_w = draw(st.integers(2, MAX_WIDTH))
        dest_w = draw(st.integers(1, src_w - 1))
    else:
        dest_w = draw(st.integers(2, MAX_WIDTH))
        src_w = draw(st.integers(1, dest_w - 1))
    maxu = (1 << src_w) - 1
    lanes = draw(st.lists(
        st.tuples(st.integers(0, maxu), st.booleans()),
        min_size=1, max_size=24))
    return opcode, src_w, dest_w, lanes


class TestCastKernels:
    @given(cast_cases())
    def test_matches_scalar_evaluators(self, case):
        opcode, src_w, dest_w, lanes = case
        kernel = vector_cast_kernel(opcode, src_w, dest_w)
        specialized = cast_evaluator(opcode, src_w, dest_w)
        aval = np.array([a for a, _ in lanes], dtype=np.int64)
        apois = np.array([ap for _, ap in lanes], dtype=bool)
        val, pois, ub = kernel(aval, apois)
        assert ub is None
        _assert_lane_invariants(val, pois, None, dest_w)
        for i, (a, ap) in enumerate(lanes):
            sa = POISON if ap else a
            want = _scalar_outcome(eval_cast, opcode, sa, src_w, dest_w)
            assert _scalar_outcome(specialized, sa) == want
            assert _kernel_outcome(val, pois, None, i) == want, \
                (f"{opcode.value} i{src_w}->i{dest_w} lane {i}: "
                 f"a={sa}")

    def test_pointer_casts_are_ineligible(self):
        with pytest.raises(VectorIneligible) as exc:
            vector_cast_kernel(Opcode.PTRTOINT, 4, 8)
        assert exc.value.reason == "unsupported-op"
