"""Tests for the scalar operation evaluator (poison rules, flags, UB)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.instructions import IcmpPred, Opcode
from repro.semantics.config import NEW, OLD
from repro.semantics.domains import POISON, PartialUndef
from repro.semantics.eval import UBError, eval_binop, eval_cast, eval_icmp

W = 4  # default width for the tests
MAXU = (1 << W) - 1


class TestWrapArithmetic:
    @given(st.integers(0, MAXU), st.integers(0, MAXU))
    def test_add_wraps(self, a, b):
        assert eval_binop(Opcode.ADD, a, b, W, NEW) == (a + b) & MAXU

    @given(st.integers(0, MAXU), st.integers(0, MAXU))
    def test_sub_wraps(self, a, b):
        assert eval_binop(Opcode.SUB, a, b, W, NEW) == (a - b) & MAXU

    @given(st.integers(0, MAXU), st.integers(0, MAXU))
    def test_mul_wraps(self, a, b):
        assert eval_binop(Opcode.MUL, a, b, W, NEW) == (a * b) & MAXU

    def test_bitwise(self):
        assert eval_binop(Opcode.AND, 0b1100, 0b1010, W, NEW) == 0b1000
        assert eval_binop(Opcode.OR, 0b1100, 0b1010, W, NEW) == 0b1110
        assert eval_binop(Opcode.XOR, 0b1100, 0b1010, W, NEW) == 0b0110


class TestOverflowFlags:
    def test_nsw_overflow_is_poison(self):
        # 7 + 1 = -8 in i4: signed overflow
        assert eval_binop(Opcode.ADD, 7, 1, W, NEW, nsw=True) is POISON

    def test_nsw_ok(self):
        assert eval_binop(Opcode.ADD, 3, 3, W, NEW, nsw=True) == 6

    def test_nuw_overflow_is_poison(self):
        assert eval_binop(Opcode.ADD, 15, 1, W, NEW, nuw=True) is POISON

    def test_sub_nuw_underflow(self):
        assert eval_binop(Opcode.SUB, 0, 1, W, NEW, nuw=True) is POISON

    def test_sub_nsw(self):
        # -8 - 1 underflows in i4
        assert eval_binop(Opcode.SUB, 8, 1, W, NEW, nsw=True) is POISON

    def test_mul_nsw_overflow(self):
        assert eval_binop(Opcode.MUL, 4, 4, W, NEW, nsw=True) is POISON

    def test_mul_nuw_overflow(self):
        assert eval_binop(Opcode.MUL, 8, 2, W, NEW, nuw=True) is POISON

    def test_negative_nsw_ok(self):
        # -1 + -1 = -2: fine
        assert eval_binop(Opcode.ADD, 15, 15, W, NEW, nsw=True) == 14


class TestDivision:
    def test_udiv(self):
        assert eval_binop(Opcode.UDIV, 13, 3, W, NEW) == 4

    def test_sdiv_truncates_toward_zero(self):
        # -7 / 2 == -3 (C semantics)
        assert eval_binop(Opcode.SDIV, 9, 2, W, NEW) == (-3) & MAXU

    def test_srem_sign_follows_dividend(self):
        # -7 % 2 == -1
        assert eval_binop(Opcode.SREM, 9, 2, W, NEW) == (-1) & MAXU

    def test_divide_by_zero_is_ub(self):
        for op in (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM):
            with pytest.raises(UBError):
                eval_binop(op, 1, 0, W, NEW)

    def test_divide_by_poison_is_ub(self):
        with pytest.raises(UBError):
            eval_binop(Opcode.UDIV, 1, POISON, W, NEW)

    def test_poison_dividend_is_poison(self):
        assert eval_binop(Opcode.UDIV, POISON, 3, W, NEW) is POISON

    def test_sdiv_int_min_by_minus_one_is_ub(self):
        with pytest.raises(UBError):
            eval_binop(Opcode.SDIV, 8, 15, W, NEW)  # -8 / -1

    def test_exact_udiv(self):
        assert eval_binop(Opcode.UDIV, 6, 3, W, NEW, exact=True) == 2
        assert eval_binop(Opcode.UDIV, 7, 3, W, NEW, exact=True) is POISON

    @given(st.integers(0, MAXU), st.integers(1, MAXU))
    def test_sdiv_srem_identity(self, a, b):
        sa = a - 16 if a >= 8 else a
        sb = b - 16 if b >= 8 else b
        if sa == -8 and sb == -1:
            return
        q = eval_binop(Opcode.SDIV, a, b, W, NEW)
        r = eval_binop(Opcode.SREM, a, b, W, NEW)
        assert (q * sb + (r - 16 if r >= 8 else r)) & MAXU == a or True
        # precise identity on signed values:
        sq = q - 16 if q >= 8 else q
        sr = r - 16 if r >= 8 else r
        assert sq * sb + sr == sa


class TestShifts:
    def test_shl(self):
        assert eval_binop(Opcode.SHL, 0b0011, 2, W, NEW) == 0b1100

    def test_out_of_range_shift_new_is_poison(self):
        assert eval_binop(Opcode.SHL, 1, 4, W, NEW) is POISON
        assert eval_binop(Opcode.LSHR, 1, 5, W, NEW) is POISON

    def test_out_of_range_shift_old_is_undef(self):
        r = eval_binop(Opcode.SHL, 1, 4, W, OLD)
        assert isinstance(r, PartialUndef) and r.is_fully_undef

    def test_shl_nuw(self):
        assert eval_binop(Opcode.SHL, 0b1000, 1, W, NEW, nuw=True) is POISON
        assert eval_binop(Opcode.SHL, 0b0100, 1, W, NEW, nuw=True) == 0b1000

    def test_shl_nsw(self):
        # shifting 0b0100 (=4) left by 1 gives -8: sign changes
        assert eval_binop(Opcode.SHL, 4, 1, W, NEW, nsw=True) is POISON
        assert eval_binop(Opcode.SHL, 1, 1, W, NEW, nsw=True) == 2
        # -1 << 1 = -2: sign preserved
        assert eval_binop(Opcode.SHL, 15, 1, W, NEW, nsw=True) == 14

    def test_lshr_ashr(self):
        assert eval_binop(Opcode.LSHR, 0b1000, 3, W, NEW) == 1
        assert eval_binop(Opcode.ASHR, 0b1000, 3, W, NEW) == 0b1111

    def test_exact_shr(self):
        assert eval_binop(Opcode.LSHR, 0b0101, 1, W, NEW,
                          exact=True) is POISON
        assert eval_binop(Opcode.ASHR, 0b0100, 2, W, NEW, exact=True) == 1


class TestPoisonPropagation:
    @pytest.mark.parametrize("op", [
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
        Opcode.XOR, Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
    ])
    def test_poison_in_poison_out(self, op):
        assert eval_binop(op, POISON, 1, W, NEW) is POISON
        assert eval_binop(op, 1, POISON, W, NEW) is POISON


class TestIcmp:
    def test_signed_vs_unsigned(self):
        # 15 is -1 signed
        assert eval_icmp(IcmpPred.UGT, 15, 1, W) == 1
        assert eval_icmp(IcmpPred.SGT, 15, 1, W) == 0

    def test_poison_operand(self):
        assert eval_icmp(IcmpPred.EQ, POISON, 1, W) is POISON

    @given(st.integers(0, MAXU), st.integers(0, MAXU))
    def test_inverse_predicate(self, a, b):
        for pred in IcmpPred:
            r = eval_icmp(pred, a, b, W)
            ri = eval_icmp(pred.inverse(), a, b, W)
            assert r != ri

    @given(st.integers(0, MAXU), st.integers(0, MAXU))
    def test_swapped_predicate(self, a, b):
        for pred in IcmpPred:
            assert eval_icmp(pred, a, b, W) == \
                eval_icmp(pred.swapped(), b, a, W)


class TestCasts:
    def test_zext(self):
        assert eval_cast(Opcode.ZEXT, 0b1111, 4, 8) == 0b00001111

    def test_sext(self):
        assert eval_cast(Opcode.SEXT, 0b1111, 4, 8) == 0b11111111
        assert eval_cast(Opcode.SEXT, 0b0111, 4, 8) == 0b00000111

    def test_trunc(self):
        assert eval_cast(Opcode.TRUNC, 0b10110, 5, 3) == 0b110

    def test_poison_propagates(self):
        assert eval_cast(Opcode.ZEXT, POISON, 4, 8) is POISON
