"""Interpreter tests: the operational semantics of Figure 5.

These tests pin down the behaviors the paper's arguments depend on:
per-use undef expansion, freeze pinning, poison propagation through
phi/select, branch-on-poison as UB vs nondeterminism, and the bit-level
memory semantics (incl. the bit-field and load-widening scenarios).
"""

import pytest

from repro.ir import parse_function, parse_module
from repro.semantics import (
    NEW,
    OLD,
    OLD_GVN_VIEW,
    POISON,
    Behavior,
    PartialUndef,
    SelectSemantics,
    enumerate_behaviors,
    full_undef,
    run_once,
    undef_value,
)


def rets(behaviors):
    """Distinct return-bit observations (as tuples), sorted."""
    return sorted({b.ret for b in behaviors if b.kind == "ret"},
                  key=lambda x: (x is None, x))


def ret_ints(behaviors):
    """Distinct concrete return values (skipping poison/undef bits)."""
    out = set()
    for b in behaviors:
        if b.kind != "ret" or b.ret is None:
            continue
        if all(isinstance(bit, int) for bit in b.ret):
            out.add(sum(bit << i for i, bit in enumerate(b.ret)))
    return sorted(out)


class TestBasicExecution:
    def test_simple_arithmetic(self):
        fn = parse_function("""
define i8 @f(i8 %a, i8 %b) {
entry:
  %s = add i8 %a, %b
  %m = mul i8 %s, 2
  ret i8 %m
}""")
        b = run_once(fn, [3, 4])
        assert b.kind == "ret"
        assert ret_ints([b]) == [14]

    def test_branching(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %c = icmp slt i8 %x, 0
  br i1 %c, label %neg, label %pos
neg:
  ret i8 0
pos:
  ret i8 1
}""")
        assert ret_ints([run_once(fn, [200])]) == [0]
        assert ret_ints([run_once(fn, [5])]) == [1]

    def test_loop(self):
        fn = parse_function("""
define i8 @sum(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i8 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i8 %acc, %i
  %i2 = add i8 %i, 1
  br label %head
exit:
  ret i8 %acc
}""")
        assert ret_ints([run_once(fn, [5])]) == [10]

    def test_phis_read_simultaneously(self):
        # Swapping phis: the textbook test for parallel phi reads.
        fn = parse_function("""
define i8 @f() {
entry:
  br label %loop
loop:
  %a = phi i8 [ 1, %entry ], [ %b, %loop ]
  %b = phi i8 [ 2, %entry ], [ %a, %loop ]
  %i = phi i8 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i8 %i, 1
  %c = icmp ult i8 %i2, 3
  br i1 %c, label %loop, label %out
out:
  ret i8 %a
}""")
        # Two swap steps happen (entering iterations 2 and 3), so %a is
        # back to 1.  A buggy *sequential* phi evaluation would smear
        # %a into %b and return 2.
        assert ret_ints([run_once(fn, [])]) == [1]

    def test_division_by_zero_is_ub(self):
        fn = parse_function("""
define i8 @f(i8 %a, i8 %b) {
entry:
  %q = udiv i8 %a, %b
  ret i8 %q
}""")
        assert run_once(fn, [1, 0]).is_ub
        assert not run_once(fn, [1, 2]).is_ub

    def test_unreachable_is_ub(self):
        fn = parse_function("""
define void @f() {
entry:
  unreachable
}""")
        assert run_once(fn, []).is_ub

    def test_infinite_loop_times_out(self):
        fn = parse_function("""
define void @f() {
entry:
  br label %loop
loop:
  br label %loop
}""")
        assert run_once(fn, [], fuel=100).kind == "timeout"


class TestUndefSemantics:
    def test_each_use_independent(self):
        """Section 3.1: add %x, %x with undef x spans all values."""
        fn = parse_function("""
define i4 @f(i4 %x) {
entry:
  %y = add i4 %x, %x
  ret i4 %y
}""")
        outs = ret_ints(enumerate_behaviors(fn, [full_undef(4)], OLD))
        assert outs == list(range(16))

    def test_mul_by_two_stays_even(self):
        fn = parse_function("""
define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 2
  ret i4 %y
}""")
        outs = ret_ints(enumerate_behaviors(fn, [full_undef(4)], OLD))
        assert outs == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_undef_stored_then_loaded_not_pinned(self):
        """Storing undef stores undef bits; two loads may differ."""
        fn = parse_function("""
define i2 @f() {
entry:
  %p = alloca i2
  store i2 undef, i2* %p
  %a = load i2, i2* %p
  %b = load i2, i2* %p
  %d = sub i2 %a, %b
  ret i2 %d
}""")
        outs = ret_ints(enumerate_behaviors(fn, [], OLD))
        assert outs == [0, 1, 2, 3]

    def test_branch_on_undef_takes_both_ways(self):
        fn = parse_function("""
define i2 @f() {
entry:
  br i1 undef, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}""")
        assert ret_ints(enumerate_behaviors(fn, [], OLD)) == [1, 2]

    def test_undef_treated_as_poison_under_new(self):
        fn = parse_function("""
define i2 @f() {
entry:
  br i1 undef, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}""")
        behaviors = enumerate_behaviors(fn, [], NEW)
        assert all(b.is_ub for b in behaviors)


class TestPoisonSemantics:
    def test_poison_propagates_through_arithmetic(self):
        fn = parse_function("""
define i4 @f(i4 %x) {
entry:
  %a = add i4 %x, 1
  %b = mul i4 %a, 3
  %c = xor i4 %b, 7
  ret i4 %c
}""")
        from repro.semantics import PBIT

        behaviors = enumerate_behaviors(fn, [POISON], NEW)
        (only,) = rets(behaviors)
        assert only == (PBIT,) * 4

    def test_branch_on_poison_ub_new(self):
        fn = parse_function("""
define i2 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}""")
        assert all(b.is_ub for b in enumerate_behaviors(fn, [POISON], NEW))

    def test_branch_on_poison_nondet_old(self):
        fn = parse_function("""
define i2 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}""")
        assert ret_ints(enumerate_behaviors(fn, [POISON], OLD)) == [1, 2]

    def test_branch_on_poison_ub_old_gvn_view(self):
        fn = parse_function("""
define i2 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}""")
        assert all(
            b.is_ub for b in enumerate_behaviors(fn, [POISON], OLD_GVN_VIEW)
        )

    def test_phi_only_taken_edge_matters(self):
        fn = parse_function("""
define i2 @f(i1 %c, i2 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i2 [ %x, %a ], [ 1, %b ]
  ret i2 %p
}""")
        # poison only flows in via the %a edge
        behaviors = enumerate_behaviors(fn, [0, POISON], NEW)
        assert ret_ints(behaviors) == [1]

    def test_store_to_poison_address_is_ub(self):
        fn = parse_function("""
define void @f(i2* %p) {
entry:
  store i2 0, i2* %p
  ret void
}""")
        assert all(b.is_ub for b in enumerate_behaviors(fn, [POISON], NEW))

    def test_storing_poison_value_is_ok(self):
        fn = parse_function("""
define void @f() {
entry:
  %p = alloca i2
  store i2 poison, i2* %p
  ret void
}""")
        behaviors = enumerate_behaviors(fn, [], NEW)
        assert all(b.kind == "ret" for b in behaviors)


class TestSelectSemantics:
    SRC = """
define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  %s = select i1 %c, i2 %a, i2 %b
  ret i2 %s
}"""

    def test_new_conditional_poison_arm_ignored(self):
        fn = parse_function(self.SRC)
        assert ret_ints(enumerate_behaviors(fn, [1, 2, POISON], NEW)) == [2]

    def test_new_poison_cond_gives_poison(self):
        from repro.semantics import PBIT

        fn = parse_function(self.SRC)
        (only,) = rets(enumerate_behaviors(fn, [POISON, 1, 2], NEW))
        assert only == (PBIT, PBIT)

    def test_old_arithmetic_any_poison_arm_poisons(self):
        from repro.semantics import PBIT

        fn = parse_function(self.SRC)
        (only,) = rets(enumerate_behaviors(fn, [1, 2, POISON], OLD))
        assert only == (PBIT, PBIT)

    def test_ub_cond_variant(self):
        fn = parse_function(self.SRC)
        cfg = NEW.with_(select_semantics=SelectSemantics.UB_COND)
        assert all(
            b.is_ub for b in enumerate_behaviors(fn, [POISON, 1, 2], cfg)
        )

    def test_nondet_cond_variant(self):
        fn = parse_function(self.SRC)
        cfg = NEW.with_(select_semantics=SelectSemantics.NONDET_COND)
        assert ret_ints(enumerate_behaviors(fn, [POISON, 1, 2], cfg)) == [1, 2]


class TestFreeze:
    def test_freeze_concrete_is_nop(self):
        fn = parse_function("""
define i4 @f(i4 %x) {
entry:
  %y = freeze i4 %x
  ret i4 %y
}""")
        assert ret_ints(enumerate_behaviors(fn, [9], NEW)) == [9]

    def test_freeze_poison_spans_all_values(self):
        fn = parse_function("""
define i2 @f(i2 %x) {
entry:
  %y = freeze i2 %x
  ret i2 %y
}""")
        assert ret_ints(enumerate_behaviors(fn, [POISON], NEW)) == [0, 1, 2, 3]

    def test_freeze_pins_value_across_uses(self):
        """All uses of one freeze see the same value (unlike undef)."""
        fn = parse_function("""
define i2 @f(i2 %x) {
entry:
  %y = freeze i2 %x
  %d = sub i2 %y, %y
  ret i2 %d
}""")
        assert ret_ints(enumerate_behaviors(fn, [POISON], NEW)) == [0]

    def test_two_freezes_are_independent(self):
        fn = parse_function("""
define i2 @f(i2 %x) {
entry:
  %y = freeze i2 %x
  %z = freeze i2 %x
  %d = sub i2 %y, %z
  ret i2 %d
}""")
        assert ret_ints(enumerate_behaviors(fn, [POISON], NEW)) == [0, 1, 2, 3]

    def test_freeze_of_undef_pins(self):
        fn = parse_function("""
define i2 @f(i2 %x) {
entry:
  %y = freeze i2 %x
  %d = sub i2 %y, %y
  ret i2 %d
}""")
        assert ret_ints(enumerate_behaviors(fn, [full_undef(2)], OLD)) == [0]

    def test_vector_freeze_per_lane(self):
        fn = parse_function("""
define <2 x i2> @f(<2 x i2> %v) {
entry:
  %y = freeze <2 x i2> %v
  ret <2 x i2> %y
}""")
        behaviors = enumerate_behaviors(fn, [(POISON, 1)], NEW)
        outs = {b.ret for b in behaviors}
        # lane 1 fixed at 1, lane 0 arbitrary: 4 outcomes
        assert len(outs) == 4


class TestMemoryScenarios:
    def test_uninit_load_undef_old_poison_new(self):
        fn = parse_function("""
define i2 @f() {
entry:
  %p = alloca i2
  %v = load i2, i2* %p
  ret i2 %v
}""")
        from repro.semantics import PBIT, UBIT

        (old_ret,) = rets(enumerate_behaviors(fn, [], OLD))
        assert old_ret == (UBIT, UBIT)
        (new_ret,) = rets(enumerate_behaviors(fn, [], NEW))
        assert new_ret == (PBIT, PBIT)

    def test_bitfield_store_without_freeze_poisons_new(self):
        """Section 5.3: the masked-store idiom on uninitialized memory
        yields a fully-poisoned word under NEW without a freeze."""
        fn = parse_function("""
define i8 @f(i8 %v) {
entry:
  %p = alloca i8
  %old = load i8, i8* %p
  %cleared = and i8 %old, -16
  %field = and i8 %v, 15
  %new = or i8 %cleared, %field
  store i8 %new, i8* %p
  %r = load i8, i8* %p
  ret i8 %r
}""")
        from repro.semantics import PBIT

        (only,) = rets(enumerate_behaviors(fn, [5], NEW))
        assert only == (PBIT,) * 8

    def test_bitfield_store_with_freeze_works_new(self):
        fn = parse_function("""
define i8 @f(i8 %v) {
entry:
  %p = alloca i8
  %old = load i8, i8* %p
  %fr = freeze i8 %old
  %cleared = and i8 %fr, -16
  %field = and i8 %v, 15
  %new = or i8 %cleared, %field
  store i8 %new, i8* %p
  %r = load i8, i8* %p
  ret i8 %r
}""")
        behaviors = enumerate_behaviors(fn, [5], NEW)
        # low nibble always 5; high nibble arbitrary but defined
        for b in behaviors:
            low = b.ret[:4]
            assert low == (1, 0, 1, 0)
            assert all(isinstance(bit, int) for bit in b.ret)

    def test_load_widening_scalar_poisons_everything(self):
        """Section 5.4: i16 load widened over a poison-initialized upper
        half at scalar type gives poison..."""
        mod = parse_module("""
@g = global i16

define i16 @f() {
entry:
  %v = load i16, i16* @g
  ret i16 %v
}""")
        fn = mod.get_function("f")
        from repro.semantics import PBIT

        # initialize low byte defined, high byte poison
        init = {"g": tuple([1] * 8 + [PBIT] * 8)}
        (only,) = rets(enumerate_behaviors(fn, [], NEW, global_init=init))
        assert only == (PBIT,) * 16

    def test_load_widening_vector_keeps_lanes(self):
        """...but the <2 x i8> vector load keeps the defined lane."""
        mod = parse_module("""
@g = global <2 x i8>

define i8 @f() {
entry:
  %v = load <2 x i8>, <2 x i8>* @g
  %e = extractelement <2 x i8> %v, i32 0
  ret i8 %e
}""")
        fn = mod.get_function("f")
        from repro.semantics import PBIT

        init = {"g": tuple([1] * 8 + [PBIT] * 8)}
        (only,) = rets(enumerate_behaviors(fn, [], NEW, global_init=init))
        assert only == (1,) * 8

    def test_global_initializer(self):
        mod = parse_module("""
@g = global i8 42

define i8 @f() {
entry:
  %v = load i8, i8* @g
  ret i8 %v
}""")
        assert ret_ints([run_once(mod.get_function("f"), [])]) == [42]

    def test_gep_indexing(self):
        mod = parse_module("""
@arr = global <4 x i8>

define void @f() {
entry:
  %base = bitcast <4 x i8>* @arr to i8*
  %p1 = getelementptr i8, i8* %base, i32 2
  store i8 7, i8* %p1
  ret void
}""")
        fn = mod.get_function("f")
        b = run_once(fn, [])
        assert b.kind == "ret"
        (name, bits) = b.memory[0]
        assert name == "arr"
        byte2 = bits[16:24]
        assert byte2 == (1, 1, 1, 0, 0, 0, 0, 0)  # 7, LSB first

    def test_out_of_bounds_store_is_ub(self):
        fn = parse_function("""
define void @f() {
entry:
  %p = alloca i8
  %q = getelementptr i8, i8* %p, i32 40
  store i8 1, i8* %q
  ret void
}""")
        assert run_once(fn, []).is_ub

    def test_inbounds_gep_overflow_is_poison_then_ub_on_use(self):
        fn = parse_function("""
define void @f() {
entry:
  %p = alloca i8
  %q = getelementptr inbounds i8, i8* %p, i32 40
  store i8 1, i8* %q
  ret void
}""")
        assert run_once(fn, []).is_ub  # store to poison address


class TestExternalCalls:
    def test_call_event_recorded(self):
        mod = parse_module("""
declare void @sink(i4)

define void @f(i4 %x) {
entry:
  call void @sink(i4 %x)
  ret void
}""")
        fn = mod.get_function("f")
        b = run_once(fn, [5])
        assert len(b.events) == 1
        name, args, ret = b.events[0]
        assert name == "sink"
        assert args[0] == (1, 0, 1, 0)
        assert ret is None

    def test_poison_argument_observable(self):
        mod = parse_module("""
declare void @sink(i4)

define void @f(i4 %x) {
entry:
  call void @sink(i4 %x)
  ret void
}""")
        from repro.semantics import PBIT

        fn = mod.get_function("f")
        b = run_once(fn, [POISON])
        assert b.events[0][1][0] == (PBIT,) * 4

    def test_external_return_nondeterministic(self):
        mod = parse_module("""
declare i2 @env()

define i2 @f() {
entry:
  %v = call i2 @env()
  ret i2 %v
}""")
        fn = mod.get_function("f")
        outs = ret_ints(enumerate_behaviors(fn, [], NEW))
        assert outs == [0, 1, 2, 3]

    def test_defined_call_interpreted(self):
        mod = parse_module("""
define i8 @helper(i8 %x) {
entry:
  %y = mul i8 %x, 3
  ret i8 %y
}

define i8 @f(i8 %x) {
entry:
  %v = call i8 @helper(i8 %x)
  %w = add i8 %v, 1
  ret i8 %w
}""")
        fn = mod.get_function("f")
        assert ret_ints([run_once(fn, [5])]) == [16]
