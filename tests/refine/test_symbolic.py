"""Symbolic (SMT) refinement checker tests, cross-checked against the
exhaustive checker at small widths."""

import pytest

from repro.ir import parse_function
from repro.refine import (
    check_refinement,
    check_refinement_auto,
    check_refinement_symbolic,
)
from repro.semantics import NEW


def sym(src, tgt):
    return check_refinement_symbolic(parse_function(src), parse_function(tgt))


class TestBasicVerification:
    def test_identity(self):
        r = sym(
            "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}",
            "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}",
        )
        assert r.ok

    def test_add_commutes_at_i32(self):
        r = sym(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}""",
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %b, %a
  ret i32 %s
}""",
        )
        assert r.ok

    def test_mul2_equals_shl1_at_i16(self):
        r = sym(
            """
define i16 @f(i16 %x) {
entry:
  %y = mul i16 %x, 2
  ret i16 %y
}""",
            """
define i16 @f(i16 %x) {
entry:
  %y = shl i16 %x, 1
  ret i16 %y
}""",
        )
        assert r.ok

    def test_wrong_constant_refuted(self):
        r = sym(
            """
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, 1
  ret i32 %y
}""",
            """
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, 2
  ret i32 %y
}""",
        )
        assert r.failed


class TestPoisonReasoning:
    def test_dropping_nsw_is_sound(self):
        r = sym(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add nsw i32 %a, %b
  ret i32 %s
}""",
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}""",
        )
        assert r.ok

    def test_adding_nsw_is_unsound(self):
        r = sym(
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  ret i32 %s
}""",
            """
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add nsw i32 %a, %b
  ret i32 %s
}""",
        )
        assert r.failed

    def test_select_to_or_unsound_symbolically(self):
        r = sym(
            """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 true, i1 %x
  ret i1 %s
}""",
            """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = or i1 %c, %x
  ret i1 %s
}""",
        )
        assert r.failed

    def test_select_to_or_with_freeze_sound_symbolically(self):
        r = sym(
            """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 true, i1 %x
  ret i1 %s
}""",
            """
define i1 @f(i1 %c, i1 %x) {
entry:
  %xf = freeze i1 %x
  %s = or i1 %c, %xf
  ret i1 %s
}""",
        )
        assert r.ok

    def test_branch_ub_covers_anything(self):
        # source branches on a poison-producing comparison; target returns
        # a constant: fine, because the source is UB whenever poison flows
        r = sym(
            """
define i8 @f(i8 %x) {
entry:
  %a = add nsw i8 %x, 1
  %c = icmp eq i8 %a, 0
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 2
}""",
            """
define i8 @f(i8 %x) {
entry:
  %c = icmp eq i8 %x, -1
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 2
}""",
        )
        # x = INT_MAX: source's add nsw is poison -> branch on poison UB;
        # everywhere else the functions agree.
        assert r.ok

    def test_tgt_introducing_branch_ub_refuted(self):
        r = sym(
            """
define i8 @f(i8 %x) {
entry:
  ret i8 0
}""",
            """
define i8 @f(i8 %x) {
entry:
  %a = add nsw i8 %x, 1
  %c = icmp eq i8 %a, 0
  br i1 %c, label %t, label %e
t:
  ret i8 0
e:
  ret i8 0
}""",
        )
        assert r.failed  # x = INT_MAX makes the target UB


class TestFragmentLimits:
    def test_loops_fall_out(self):
        loop = """
define i8 @f(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %head ]
  %i1 = add i8 %i, 1
  %c = icmp ult i8 %i1, %n
  br i1 %c, label %head, label %exit
exit:
  ret i8 %i
}"""
        r = sym(loop, loop)
        assert r.verdict == "inconclusive"

    def test_undef_falls_out(self):
        src = """
define i8 @f() {
entry:
  %x = add i8 undef, 1
  ret i8 %x
}"""
        r = sym(src, src)
        assert r.verdict == "inconclusive"

    def test_source_freeze_falls_out(self):
        src = """
define i8 @f(i8 %x) {
entry:
  %y = freeze i8 %x
  ret i8 %y
}"""
        r = sym(src, src)
        assert r.verdict == "inconclusive"

    def test_auto_falls_back_to_exhaustive(self):
        src = """
define i2 @f(i2 %n) {
entry:
  br label %head
head:
  %i = phi i2 [ 0, %entry ], [ %i1, %head ]
  %i1 = add i2 %i, 1
  %c = icmp ult i2 %i1, %n
  br i1 %c, label %head, label %exit
exit:
  ret i2 %i1
}"""
        r = check_refinement_auto(parse_function(src), parse_function(src))
        assert r.ok  # decided by the exhaustive fallback


class TestCrossValidation:
    """The two checkers must agree on the same small-width programs."""

    PAIRS = [
        # (src, tgt)
        ("""
define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 2
  ret i4 %y
}""", """
define i4 @f(i4 %x) {
entry:
  %y = add i4 %x, %x
  ret i4 %y
}"""),
        ("""
define i4 @f(i4 %a, i4 %b) {
entry:
  %add = add nsw i4 %a, %b
  %cmp = icmp sgt i4 %add, %a
  %r = zext i1 %cmp to i4
  ret i4 %r
}""", """
define i4 @f(i4 %a, i4 %b) {
entry:
  %cmp = icmp sgt i4 %b, 0
  %r = zext i1 %cmp to i4
  ret i4 %r
}"""),
        ("""
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  %s = select i1 %c, i4 %a, i4 %b
  ret i4 %s
}""", """
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  %s = select i1 %c, i4 %b, i4 %a
  ret i4 %s
}"""),
        ("""
define i4 @f(i4 %x) {
entry:
  %q = udiv i4 %x, 2
  ret i4 %q
}""", """
define i4 @f(i4 %x) {
entry:
  %q = lshr i4 %x, 1
  ret i4 %q
}"""),
    ]

    @pytest.mark.parametrize("idx", range(len(PAIRS)))
    def test_checkers_agree(self, idx):
        src_text, tgt_text = self.PAIRS[idx]
        src, tgt = parse_function(src_text), parse_function(tgt_text)
        symbolic = check_refinement_symbolic(src, tgt)
        exhaustive = check_refinement(src, tgt, NEW)
        assert symbolic.verdict != "inconclusive"
        assert exhaustive.verdict != "inconclusive"
        assert symbolic.ok == exhaustive.ok, (
            f"disagreement: symbolic={symbolic}, exhaustive={exhaustive}"
        )
