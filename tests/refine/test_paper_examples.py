"""Every §2/§3 example from the paper, decided by the refinement checker.

This file is the executable form of the paper's core claims: each test
shows a transformation being sound under one semantics and unsound under
another, exactly as the paper argues.  The benchmark
``benchmarks/bench_e6_soundness_matrix.py`` renders the same catalog as
the E6 table.
"""

import pytest

from repro.semantics import (
    NEW,
    OLD,
    OLD_GVN_VIEW,
    OLD_UNSWITCH_VIEW,
    SelectSemantics,
)
from tests.conftest import assert_not_refines, assert_refines


class TestSection21NswHoisting:
    """Figure 1: hoisting `x + 1` (nsw) out of a loop."""

    SRC = """
define void @f(i4 %x, i4 %n) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i4 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i4 %x, 1
  %i1 = add nsw i4 %i, 1
  br label %head
exit:
  ret void
}
"""
    TGT = """
define void @f(i4 %x, i4 %n) {
entry:
  %x1 = add nsw i4 %x, 1
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i4 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i1 = add nsw i4 %i, 1
  br label %head
exit:
  ret void
}
"""

    def test_hoist_sound_with_deferred_ub_new(self):
        # Deferred UB (poison) makes speculation legal: the hoisted add
        # may produce poison in the n == 0 case, but nothing uses it.
        assert_refines(self.SRC, self.TGT, NEW)

    def test_hoist_not_refuted_under_old(self):
        # Under OLD, an undef/poison loop bound makes the source loop
        # nondeterministically divergent, which exhaustive checking
        # cannot decide; the decidable inputs all verify.
        from repro.ir import parse_function
        from repro.refine import check_refinement

        r = check_refinement(parse_function(self.SRC),
                             parse_function(self.TGT), OLD)
        assert not r.failed

    def test_hoist_verifies_under_old_on_defined_bounds(self):
        from repro.ir import parse_function
        from repro.refine import CheckOptions, check_refinement

        r = check_refinement(
            parse_function(self.SRC), parse_function(self.TGT), OLD,
            options=CheckOptions(poison_inputs=False, undef_inputs=False),
        )
        assert r.ok


class TestSection24PoisonVsUndef:
    """a+b > a  ==>  b > 0 (signed overflow deferred)."""

    TGT = """
define i1 @f(i4 %a, i4 %b) {
entry:
  %cmp = icmp sgt i4 %b, 0
  ret i1 %cmp
}
"""

    def _src(self, flags: str) -> str:
        return f"""
define i1 @f(i4 %a, i4 %b) {{
entry:
  %add = add {flags} i4 %a, %b
  %cmp = icmp sgt i4 %add, %a
  ret i1 %cmp
}}
"""

    def test_without_nsw_unsound(self):
        assert_not_refines(self._src(""), self.TGT, NEW)

    def test_with_nsw_sound_under_poison(self):
        assert_refines(self._src("nsw"), self.TGT, NEW)
        # also sound under OLD because nsw overflow yields poison there
        # too, and icmp propagates it.
        assert_refines(self._src("nsw"), self.TGT, OLD)

    def test_undef_would_be_inadequate(self):
        """Section 2.4's point: an add that yielded *undef* on signed
        overflow would be too weak to justify the rewrite: with
        a = INT_MAX, b = 1 the source computes `undef > INT_MAX`, which
        is false under every concretization of undef, while `b > 0` is
        true.  We model undef-on-overflow with an explicit widened
        overflow check selecting undef."""
        src = """
define i1 @f(i4 %a, i4 %b) {
entry:
  %aw = sext i4 %a to i8
  %bw = sext i4 %b to i8
  %sw = add i8 %aw, %bw
  %add = add i4 %a, %b
  %addw = sext i4 %add to i8
  %ovf = icmp ne i8 %sw, %addw
  %val = select i1 %ovf, i4 undef, i4 %add
  %cmp = icmp sgt i4 %val, %a
  ret i1 %cmp
}
"""
        assert_not_refines(src, self.TGT, OLD)


class TestSection24InductionVariableWidening:
    """Figure 3's sext-elimination, at i2 -> i4 scale.

    Computing sext(i) at width 4 from an i2 counter must match widening
    the counter itself only when counter overflow is deferred UB.
    """

    def _src(self, flags: str) -> str:
        return f"""
declare void @use(i4)

define void @f(i2 %n) {{
entry:
  br label %head
head:
  %i = phi i2 [ 0, %entry ], [ %i1, %body ]
  %c = icmp sle i2 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i2 %i to i4
  call void @use(i4 %iext)
  %i1 = add {flags} i2 %i, 1
  br label %head
exit:
  ret void
}}
"""

    TGT = """
declare void @use(i4)

define void @f(i2 %n) {
entry:
  %next = sext i2 %n to i4
  br label %head
head:
  %iw = phi i4 [ 0, %entry ], [ %iw1, %body ]
  %c = icmp sle i4 %iw, %next
  br i1 %c, label %body, label %exit
body:
  call void @use(i4 %iw)
  %iw1 = add nsw i4 %iw, 1
  br label %head
exit:
  ret void
}
"""

    def test_widening_sound_with_nsw(self):
        assert_refines(self._src("nsw"), self.TGT, NEW,
                       max_choices=40, fuel=2000)

    def test_widening_unsound_with_wrapping(self):
        # n = 1 (i2): the narrow counter wraps 0,1,-2,... and loops
        # forever re-calling use; the wide counter exits after i = 2.
        # The difference is (non)termination, which exhaustive execution
        # can only bound — the checker must at minimum refuse to call
        # this transformation correct.
        from repro.ir import parse_function
        from repro.refine import CheckOptions, check_refinement

        r = check_refinement(
            parse_function(self._src("")), parse_function(self.TGT), NEW,
            options=CheckOptions(max_choices=40, fuel=2000),
        )
        assert not r.ok


class TestSection31DuplicateSSAUses:
    SRC = """
define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 2
  ret i4 %y
}
"""
    TGT = """
define i4 @f(i4 %x) {
entry:
  %y = add i4 %x, %x
  ret i4 %y
}
"""

    def test_unsound_under_old(self):
        r = assert_not_refines(self.SRC, self.TGT, OLD)
        # the counterexample must be the undef input
        assert "undef" in str(r.counterexample)

    def test_sound_under_new(self):
        assert_refines(self.SRC, self.TGT, NEW)

    def test_reverse_direction_always_sound(self):
        # add x, x -> mul x, 2 *increases* the result set under OLD:
        # refinement holds in that direction.
        assert_refines(self.TGT, self.SRC, OLD)
        assert_refines(self.TGT, self.SRC, NEW)


class TestSection32HoistingPastControlFlow:
    """if (k != 0) while (c) use(1/k)  ==>  hoisting 1/k out of the loop."""

    SRC = """
declare void @use(i4)

define void @f(i4 %k, i1 %c) {
entry:
  %guard = icmp ne i4 %k, 0
  br i1 %guard, label %pre, label %exit
pre:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  %q = udiv i4 1, %k
  call void @use(i4 %q)
  br label %head
exit:
  ret void
}
"""
    TGT = """
declare void @use(i4)

define void @f(i4 %k, i1 %c) {
entry:
  %guard = icmp ne i4 %k, 0
  br i1 %guard, label %pre, label %exit
pre:
  %q = udiv i4 1, %k
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  call void @use(i4 %q)
  br label %head
exit:
  ret void
}
"""

    def test_unsound_under_old(self):
        """PR21412: a deferred-UB k can pass the guard and still divide
        by zero (undef: each use independent; poison: the guard branch
        is a nondeterministic choice)."""
        r = assert_not_refines(self.SRC, self.TGT, OLD,
                               max_choices=40, fuel=2000)
        cex = str(r.counterexample)
        assert "undef" in cex or "poison" in cex

    def test_unsound_under_old_with_undef_k(self):
        """Specifically the undef story: exclude poison inputs so the
        counterexample must exploit per-use undef expansion."""
        from repro.ir import parse_function
        from repro.refine import CheckOptions, check_refinement

        r = check_refinement(
            parse_function(self.SRC), parse_function(self.TGT), OLD,
            options=CheckOptions(max_choices=40, fuel=2000,
                                 poison_inputs=False),
        )
        assert r.failed
        assert "undef" in str(r.counterexample)

    def test_sound_under_new(self):
        """Without undef, branch-on-poison-UB makes the guard meaningful:
        a poison k is already UB at the guard."""
        assert_refines(self.SRC, self.TGT, NEW, max_choices=40, fuel=2000)


class TestSection33GvnVsLoopUnswitching:
    """The two halves of the conflict, each checked under each reading."""

    # A one-trip "loop" (the body runs at most once) keeps every
    # execution finite so the exhaustive checker can decide all inputs;
    # the semantic crux — does the branch on %c2 execute when the body
    # would never have run? — is identical to the while-loop version.
    UNSWITCH_SRC = """
declare void @foo(i4)

define void @f(i1 %c, i1 %c2) {
entry:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  call void @foo(i4 1)
  br label %exit
e:
  call void @foo(i4 2)
  br label %exit
exit:
  ret void
}
"""
    UNSWITCH_TGT_NO_FREEZE = """
declare void @foo(i4)

define void @f(i1 %c, i1 %c2) {
entry:
  br i1 %c2, label %head.t, label %head.e
head.t:
  br i1 %c, label %body.t, label %exit
body.t:
  call void @foo(i4 1)
  br label %exit
head.e:
  br i1 %c, label %body.e, label %exit
body.e:
  call void @foo(i4 2)
  br label %exit
exit:
  ret void
}
"""
    UNSWITCH_TGT_FREEZE = UNSWITCH_TGT_NO_FREEZE.replace(
        "entry:\n  br i1 %c2",
        "entry:\n  %c2f = freeze i1 %c2\n  br i1 %c2f",
    )

    GVN_SRC = """
declare void @foo(i4)

define void @f(i4 %x, i4 %y) {
entry:
  %t = add nsw i4 %x, 1
  %cmp = icmp eq i4 %t, %y
  br i1 %cmp, label %then, label %exit
then:
  %w = add nsw i4 %x, 1
  call void @foo(i4 %w)
  br label %exit
exit:
  ret void
}
"""
    GVN_TGT = """
declare void @foo(i4)

define void @f(i4 %x, i4 %y) {
entry:
  %t = add nsw i4 %x, 1
  %cmp = icmp eq i4 %t, %y
  br i1 %cmp, label %then, label %exit
then:
  call void @foo(i4 %y)
  br label %exit
exit:
  ret void
}
"""

    def test_unswitching_ok_when_branch_poison_nondet(self):
        assert_refines(self.UNSWITCH_SRC, self.UNSWITCH_TGT_NO_FREEZE,
                       OLD_UNSWITCH_VIEW, max_choices=48, fuel=4000)

    def test_unswitching_bad_when_branch_poison_ub(self):
        assert_not_refines(self.UNSWITCH_SRC, self.UNSWITCH_TGT_NO_FREEZE,
                           OLD_GVN_VIEW, max_choices=48, fuel=4000)
        assert_not_refines(self.UNSWITCH_SRC, self.UNSWITCH_TGT_NO_FREEZE,
                           NEW, max_choices=48, fuel=4000)

    def test_gvn_ok_when_branch_poison_ub(self):
        assert_refines(self.GVN_SRC, self.GVN_TGT, NEW)

    def test_gvn_ok_under_old_gvn_view_without_undef(self):
        from repro.ir import parse_function
        from repro.refine import CheckOptions, check_refinement

        r = check_refinement(
            parse_function(self.GVN_SRC), parse_function(self.GVN_TGT),
            OLD_GVN_VIEW, options=CheckOptions(undef_inputs=False),
        )
        assert r.ok

    def test_gvn_equality_propagation_broken_by_undef(self):
        """Even under the branch-on-poison-is-UB reading, *undef* breaks
        GVN's equality propagation: `t == undef` can evaluate to true,
        after which the target passes undef where the source passed a
        defined value.  One more reason the paper removes undef."""
        r = assert_not_refines(self.GVN_SRC, self.GVN_TGT, OLD_GVN_VIEW)
        assert "undef" in str(r.counterexample)

    def test_gvn_bad_when_branch_poison_nondet(self):
        """If branching on poison merely picks a side, `t == y` can be
        poison while execution still enters %then with y poison: the
        call argument degrades from a defined value to poison."""
        assert_not_refines(self.GVN_SRC, self.GVN_TGT, OLD_UNSWITCH_VIEW)

    def test_freeze_fixes_unswitching_under_new(self):
        assert_refines(self.UNSWITCH_SRC, self.UNSWITCH_TGT_FREEZE, NEW,
                       max_choices=48, fuel=4000)

    def test_no_single_old_semantics_supports_both(self):
        """The punchline of Section 3.3: for each OLD reading, one of the
        two transformations is unsound."""
        for view in (OLD_UNSWITCH_VIEW, OLD_GVN_VIEW):
            from repro.ir import parse_function
            from repro.refine import CheckOptions, check_refinement

            opts = CheckOptions(max_choices=48, fuel=4000)
            unswitch_ok = check_refinement(
                parse_function(self.UNSWITCH_SRC),
                parse_function(self.UNSWITCH_TGT_NO_FREEZE),
                view, options=opts,
            ).ok
            gvn_ok = check_refinement(
                parse_function(self.GVN_SRC),
                parse_function(self.GVN_TGT),
                view, options=opts,
            ).ok
            assert not (unswitch_ok and gvn_ok)


class TestSection34Select:
    SELECT_TO_OR_SRC = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 true, i1 %x
  ret i1 %s
}
"""
    SELECT_TO_OR_TGT = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = or i1 %c, %x
  ret i1 %s
}
"""
    SELECT_TO_OR_TGT_FREEZE = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %xf = freeze i1 %x
  %s = or i1 %c, %xf
  ret i1 %s
}
"""

    def test_select_to_or_sound_when_select_is_arithmetic(self):
        assert_refines(self.SELECT_TO_OR_SRC, self.SELECT_TO_OR_TGT,
                       NEW.with_(select_semantics=SelectSemantics.ARITHMETIC))

    def test_select_to_or_unsound_under_conditional_select(self):
        # c = true, x = poison: select gives true, or gives poison.
        assert_not_refines(self.SELECT_TO_OR_SRC, self.SELECT_TO_OR_TGT, NEW)

    def test_select_to_or_with_frozen_arm_sound_under_new(self):
        assert_refines(self.SELECT_TO_OR_SRC, self.SELECT_TO_OR_TGT_FREEZE,
                       NEW)

    UDIV_SRC = """
define i4 @f(i4 %a) {
entry:
  %r = udiv i4 %a, 12
  ret i4 %r
}
"""
    UDIV_TGT = """
define i4 @f(i4 %a) {
entry:
  %c = icmp ult i4 %a, 12
  %r = select i1 %c, i4 0, i4 1
  ret i4 %r
}
"""

    def test_udiv_to_select_sound_under_conditional(self):
        assert_refines(self.UDIV_SRC, self.UDIV_TGT, NEW)

    def test_udiv_to_select_unsound_when_select_cond_poison_is_ub(self):
        # a = poison: udiv gives poison; select-on-poison-cond UB.
        assert_not_refines(
            self.UDIV_SRC, self.UDIV_TGT,
            NEW.with_(select_semantics=SelectSemantics.UB_COND),
        )

    PHI_SRC = """
define i4 @f(i1 %cond, i4 %a, i4 %b) {
entry:
  br i1 %cond, label %t, label %e
t:
  br label %merge
e:
  br label %merge
merge:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}
"""
    PHI_TGT = """
define i4 @f(i1 %cond, i4 %a, i4 %b) {
entry:
  %x = select i1 %cond, i4 %a, i4 %b
  ret i4 %x
}
"""

    def test_phi_to_select_sound_under_new(self):
        assert_refines(self.PHI_SRC, self.PHI_TGT, NEW)

    def test_phi_to_select_unsound_when_select_arithmetic_branch_nondet(self):
        """Under the OLD LangRef reading (select poisoned by either arm)
        phi->select leaks the not-taken arm's poison."""
        assert_not_refines(self.PHI_SRC, self.PHI_TGT, OLD)

    def test_select_to_branch_sound_when_both_ub(self):
        assert_refines(
            self.PHI_TGT, self.PHI_SRC,
            NEW.with_(select_semantics=SelectSemantics.UB_COND),
        )

    def test_select_to_branch_unsound_under_new(self):
        """Figure-5 select returns poison on a poison condition, but the
        branch version is UB: branching is *more* UB than select."""
        assert_not_refines(self.PHI_TGT, self.PHI_SRC, NEW)

    SEL_UNDEF_SRC = """
define i4 @f(i1 %c, i4 %x) {
entry:
  %v = select i1 %c, i4 %x, i4 undef
  ret i4 %v
}
"""
    SEL_UNDEF_TGT = """
define i4 @f(i1 %c, i4 %x) {
entry:
  ret i4 %x
}
"""

    def test_select_undef_collapse_unsound_conditional(self):
        """PR31633: %x may be poison, and poison is stronger than undef;
        when %c is false the source returns undef but the target returns
        poison.  The bug needs the conditional (chosen-arm) select
        semantics — under the ARITHMETIC reading the poison arm already
        poisons the source."""
        cfg = OLD.with_(select_semantics=SelectSemantics.CONDITIONAL)
        r = assert_not_refines(self.SEL_UNDEF_SRC, self.SEL_UNDEF_TGT, cfg)
        assert "poison" in str(r.counterexample)

    def test_select_undef_collapse_accidentally_ok_when_arithmetic(self):
        assert_refines(self.SEL_UNDEF_SRC, self.SEL_UNDEF_TGT, OLD)


class TestSection4FreezeBasics:
    def test_freeze_nop_on_defined(self):
        # The inner freeze guarantees %a is never poison, so the outer
        # freeze can be dropped.  (Dropping a freeze of a *possibly
        # poison* value is NOT a refinement: freeze pins to a defined
        # value, while the original stays poison.)
        assert_refines(
            """
define i4 @f(i4 %x) {
entry:
  %x1 = freeze i4 %x
  %a = add i4 %x1, 1
  %y = freeze i4 %a
  ret i4 %y
}
""",
            """
define i4 @f(i4 %x) {
entry:
  %x1 = freeze i4 %x
  %a = add i4 %x1, 1
  ret i4 %a
}
""",
            NEW,
        )

    def test_dropping_freeze_of_possibly_poison_ret_unsound(self):
        # The target can return poison where the source returned a
        # pinned concrete value — the refinement goes the *wrong way*.
        assert_not_refines(
            """
define i4 @f(i4 %x) {
entry:
  %y = freeze i4 %x
  ret i4 %y
}
""",
            """
define i4 @f(i4 %x) {
entry:
  ret i4 %x
}
""",
            NEW,
        )

    def test_dropping_freeze_of_possibly_poison_unsound(self):
        assert_not_refines(
            """
define i4 @f(i4 %x) {
entry:
  %a = add nsw i4 %x, 1
  %y = freeze i4 %a
  %z = sub i4 %y, %y
  ret i4 %z
}
""",
            """
define i4 @f(i4 %x) {
entry:
  %a = add nsw i4 %x, 1
  %z = sub i4 %a, %a
  ret i4 %z
}
""",
            NEW,
        )

    def test_freeze_duplication_unsound(self):
        """Section 5.5 (pitfall 1): two freezes of the same poison value
        may differ; one freeze with two uses may not."""
        assert_not_refines(
            """
define i4 @f(i4 %x) {
entry:
  %y = freeze i4 %x
  %z = sub i4 %y, %y
  ret i4 %z
}
""",
            """
define i4 @f(i4 %x) {
entry:
  %y1 = freeze i4 %x
  %y2 = freeze i4 %x
  %z = sub i4 %y1, %y2
  ret i4 %z
}
""",
            NEW,
        )

    def test_merging_freezes_is_sound(self):
        # the reverse direction (two freezes -> one) shrinks behaviors
        assert_refines(
            """
define i4 @f(i4 %x) {
entry:
  %y1 = freeze i4 %x
  %y2 = freeze i4 %x
  %z = sub i4 %y1, %y2
  ret i4 %z
}
""",
            """
define i4 @f(i4 %x) {
entry:
  %y = freeze i4 %x
  %z = sub i4 %y, %y
  ret i4 %z
}
""",
            NEW,
        )

    def test_freeze_of_freeze_collapses(self):
        assert_refines(
            """
define i4 @f(i4 %x) {
entry:
  %y = freeze i4 %x
  %z = freeze i4 %y
  ret i4 %z
}
""",
            """
define i4 @f(i4 %x) {
entry:
  %y = freeze i4 %x
  ret i4 %y
}
""",
            NEW,
        )
