"""Engine dispatch, eligibility boundaries, and the two verdict bugfixes.

The vector engine is an optimization, never an authority: on every
shape it cannot lower it must fall back to the scalar interpreter with
an identical verdict, and on every shape it can, ``cross_check`` holds
the two engines to byte-identical results.
"""

import pytest

from repro.diag import stats_snapshot
from repro.ir import parse_function
from repro.refine import CheckOptions, CrossCheckMismatch, check_refinement
from repro.refine.exhaustive import RefinementResult, check_equivalence
from repro.semantics import NEW, OLD, numpy_available

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed ([vector] extra)")

STRAIGHT_SRC = """
define i4 @f(i4 %x, i4 %y) {
entry:
  %a = add i4 %x, %y
  %m = mul i4 %a, 2
  ret i4 %m
}
"""
# mul 2 -> shl 1: a sound strength reduction.
STRAIGHT_TGT = """
define i4 @f(i4 %x, i4 %y) {
entry:
  %a = add i4 %x, %y
  %m = shl i4 %a, 1
  ret i4 %m
}
"""
# add nsw -> add drops no information, but the reverse direction
# *introduces* poison: a refinement failure with a counterexample.
NSW_SRC = """
define i4 @f(i4 %x) {
entry:
  %r = add i4 %x, 1
  ret i4 %r
}
"""
NSW_TGT = """
define i4 @f(i4 %x) {
entry:
  %r = add nsw i4 %x, 1
  ret i4 %r
}
"""
LOOP_FN = """
define i4 @f(i4 %n) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i1, %head ]
  %i1 = add i4 %i, 1
  %c = icmp ult i4 %i1, %n
  br i1 %c, label %head, label %exit
exit:
  ret i4 %i1
}
"""


def _refine_stat(name):
    return stats_snapshot().get("refine", {}).get(name, 0)


def _key(result):
    return (result.verdict, str(result), result.reason,
            result.inputs_checked, result.sampled)


def _check(src, tgt, engine, config=NEW, **kwargs):
    return check_refinement(parse_function(src), parse_function(tgt),
                            config, options=CheckOptions(engine=engine,
                                                         **kwargs))


class TestDispatch:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown refinement engine"):
            _check(STRAIGHT_SRC, STRAIGHT_TGT, "warp-drive")

    def test_scalar_engine_never_touches_vector(self):
        before = _refine_stat("num-vector-checks")
        result = _check(STRAIGHT_SRC, STRAIGHT_TGT, "scalar")
        assert result.ok
        assert _refine_stat("num-vector-checks") == before

    @requires_numpy
    def test_vector_decides_and_matches_scalar(self):
        before = _refine_stat("num-vector-checks")
        vec = _check(STRAIGHT_SRC, STRAIGHT_TGT, "vector")
        assert _refine_stat("num-vector-checks") == before + 1
        assert _key(vec) == _key(_check(STRAIGHT_SRC, STRAIGHT_TGT,
                                        "scalar"))
        assert vec.ok and vec.inputs_checked == 17 * 17

    @requires_numpy
    def test_counterexamples_byte_identical(self):
        vec = _check(NSW_SRC, NSW_TGT, "vector")
        sca = _check(NSW_SRC, NSW_TGT, "scalar")
        assert vec.failed and sca.failed
        # str() renders the counterexample; inputs_checked tells how
        # far enumeration got.  All of it must match the oracle.
        assert _key(vec) == _key(sca)

    @requires_numpy
    def test_cross_check_passes_when_engines_agree(self):
        before = _refine_stat("num-cross-checks")
        result = _check(STRAIGHT_SRC, STRAIGHT_TGT, "auto",
                        cross_check=True)
        assert result.ok
        assert _refine_stat("num-cross-checks") == before + 1

    def test_cross_check_mismatch_is_a_runtime_error(self):
        # The exception type is part of the campaign contract (the
        # worker books it as a crash, not a verdict).
        assert issubclass(CrossCheckMismatch, RuntimeError)


class TestEligibilityBoundary:
    @requires_numpy
    def test_loop_falls_back_to_scalar_identically(self):
        before = _refine_stat("num-vector-fallbacks")
        vec = _check(LOOP_FN, LOOP_FN, "vector")
        assert _refine_stat("num-vector-fallbacks") == before + 1
        assert _refine_stat("num-vector-ineligible-cfg-loop") >= 1
        assert _key(vec) == _key(_check(LOOP_FN, LOOP_FN, "scalar"))

    @requires_numpy
    def test_undef_config_falls_back(self):
        # OLD has undef: not lane-representable.
        vec = _check(STRAIGHT_SRC, STRAIGHT_TGT, "vector", config=OLD)
        assert _key(vec) == _key(_check(STRAIGHT_SRC, STRAIGHT_TGT,
                                        "scalar", config=OLD))

    @requires_numpy
    def test_large_input_space_falls_back(self):
        vec = _check(STRAIGHT_SRC, STRAIGHT_TGT, "vector", max_inputs=10)
        sca = _check(STRAIGHT_SRC, STRAIGHT_TGT, "scalar", max_inputs=10)
        assert vec.verdict == "inconclusive"
        assert _key(vec) == _key(sca)

    def test_numpy_absence_is_a_clean_fallback(self, monkeypatch):
        # Simulate the no-numpy install: the auto engine must degrade
        # to scalar without error (this is the [vector]-less CI leg).
        import repro.semantics.vector as vector_mod
        monkeypatch.setattr(vector_mod, "_np", None)
        assert not vector_mod.numpy_available()
        result = _check(STRAIGHT_SRC, STRAIGHT_TGT, "auto")
        assert result.ok
        result = _check(STRAIGHT_SRC, STRAIGHT_TGT, "vector")
        assert result.ok


class TestSampledVerdictRendering:
    """Bugfix: the ok-path ``__str__`` dropped ``reason``, so sampled
    passes printed exactly like exhaustive proofs."""

    def test_sampled_str_and_flag(self):
        src = parse_function("""
define i8 @f(i8 %a, i8 %b) {
entry:
  %r = add i8 %a, %b
  ret i8 %r
}
""")
        result = check_refinement(
            src, src, NEW,
            options=CheckOptions(max_inputs=100, sample_inputs=50))
        assert result.ok
        assert result.sampled
        assert str(result) == "verified (sampled 50 of 66049 inputs)"

    def test_exhaustive_str_unchanged(self):
        result = _check(STRAIGHT_SRC, STRAIGHT_TGT, "scalar")
        assert not result.sampled
        assert str(result) == "verified (289 inputs)"

    def test_sampled_default_false(self):
        assert RefinementResult("verified").sampled is False


class TestCrossSemanticsEquivalence:
    """Bugfix: ``check_equivalence`` hardcoded one config for both
    directions, so OLD-vs-NEW equivalence crashed feeding undef inputs
    to a NEW-semantics interpreter."""

    SRC = """
define i4 @f(i4 %x) {
entry:
  %r = add i4 %x, 0
  ret i4 %r
}
"""

    def test_cross_config_does_not_crash(self):
        a = parse_function(self.SRC)
        b = parse_function(self.SRC)
        fwd, rev = check_equivalence(a, b, OLD, tgt_config=NEW)
        assert fwd.ok and rev.ok

    def test_reverse_direction_swaps_configs(self):
        # x and freeze(x) are equivalent only when x cannot be undef:
        # OLD->NEW holds forward but the NEW->OLD reverse is the
        # direction that must be checked under OLD source semantics.
        a = parse_function(self.SRC)
        b = parse_function(self.SRC)
        fwd, rev = check_equivalence(a, b, NEW, tgt_config=OLD)
        assert fwd.verdict == rev.verdict == "verified"

    def test_same_config_default_unchanged(self):
        a = parse_function(self.SRC)
        fwd, rev = check_equivalence(a, parse_function(self.SRC), NEW)
        assert fwd.ok and rev.ok
