"""Memory initial-content enumeration corners (``_bit_patterns``).

The audit behind these tests: OLD-mode uninitialized memory is *undef*,
so even under the no-poison-in-memory reading the candidate set must
keep its undef patterns — dropping them silently narrowed the checked
state space.  Conversely NEW-mode uninitialized memory is poison, so
with poison excluded from memory the all-uninit pattern is not a legal
state and must not be enumerated.
"""

from repro.refine.exhaustive import _bit_patterns, input_candidates
from repro.ir.types import IntType
from repro.semantics import NEW, OLD
from repro.semantics.domains import PBIT, UBIT, full_undef


def _has(patterns, bit):
    return any(bit in p for p in patterns)


class TestSmallRegions:
    def test_old_no_poison_keeps_undef(self):
        patterns = _bit_patterns(2, OLD, poison_in_memory=False)
        assert (UBIT, UBIT) in patterns  # the uninitialized state
        assert _has(patterns, UBIT)
        assert not _has(patterns, PBIT)

    def test_new_no_poison_drops_uninit_pattern(self):
        # NEW uninit is poison; with poison barred from memory the
        # all-uninit pattern is not a representable state.
        patterns = _bit_patterns(2, NEW, poison_in_memory=False)
        assert not _has(patterns, PBIT)
        assert not _has(patterns, UBIT)  # NEW has no undef at all
        assert (0, 0) in patterns and (1, 1) in patterns

    def test_new_with_poison_keeps_uninit_pattern(self):
        patterns = _bit_patterns(2, NEW, poison_in_memory=True)
        assert (PBIT, PBIT) in patterns
        assert not _has(patterns, UBIT)

    def test_old_exhaustive_covers_mixed_undef(self):
        patterns = _bit_patterns(2, OLD, poison_in_memory=True)
        assert (UBIT, 0) in patterns and (0, UBIT) in patterns


class TestLargeRegions:
    def test_old_large_region_keeps_partial_undef(self):
        # Large regions fall back to a fixed candidate list; it must
        # still include a partially-undef pattern in OLD mode even with
        # poison excluded (the regression this file guards).
        patterns = _bit_patterns(16, OLD, poison_in_memory=False)
        assert (UBIT,) * 16 in patterns
        assert (UBIT,) + (0,) * 15 in patterns
        assert not _has(patterns, PBIT)

    def test_new_large_region_no_poison_is_concrete_only(self):
        patterns = _bit_patterns(16, NEW, poison_in_memory=False)
        assert patterns  # never empty
        assert not _has(patterns, PBIT)
        assert not _has(patterns, UBIT)

    def test_large_region_poison_pattern_gated(self):
        with_p = _bit_patterns(16, NEW, poison_in_memory=True)
        assert (PBIT,) + (0,) * 15 in with_p

    def test_no_duplicates(self):
        for config in (OLD, NEW):
            for nbits in (2, 16):
                for pim in (True, False):
                    patterns = _bit_patterns(nbits, config,
                                             poison_in_memory=pim)
                    assert len(patterns) == len(set(patterns))


class TestInputCandidates:
    def test_old_includes_full_undef(self):
        i2 = IntType(2)
        values = input_candidates(i2, OLD)
        assert full_undef(2) in values

    def test_new_excludes_undef_even_when_requested(self):
        i2 = IntType(2)
        values = input_candidates(i2, NEW, undef_inputs=True)
        assert full_undef(2) not in values
