"""Regression tests for two refinement-checker soundness bugs.

1. **Memory positional-zip**: ``behavior_covers`` compared memory
   regions by list position.  Two behaviors whose regions were recorded
   in different orders compared region A against region B, yielding
   spurious counterexamples (or, worse, spurious coverage when the bit
   patterns happened to align).  Fixed twice over: ``Behavior``
   construction sorts regions by name, and coverage matches regions by
   name.

2. **Silent undef-expansion truncation**: union-expanding a target
   behavior's undef bits was capped at 4096 concretizations, and
   exceeding the cap silently fell through to a *definite* verdict.
   The overflow is now an explicit inconclusive verdict, counted in the
   ``refine`` stats and surfaced as a missed-optimization remark.
"""

import pytest

from repro.diag import REMARK_MISSED, default_emitter
from repro.refine import CheckOptions, check_refinement
from repro.refine.refinement import (
    NUM_UNDEF_EXPANSION_OVERFLOW,
    behavior_covers,
    check_behavior_sets,
)
from repro.ir import parse_function
from repro.semantics import NEW, OLD
from repro.semantics.domains import PBIT, UBIT
from repro.semantics.interp import RET, Behavior


def _ret(bits, memory=()):
    return Behavior(RET, tuple(bits), (), tuple(memory))


class TestMemoryRegionCoverage:
    def test_construction_sorts_regions_by_name(self):
        b = Behavior(RET, (0,), (), (("b", (1, 0)), ("a", (0, 1))))
        assert b.memory == (("a", (0, 1)), ("b", (1, 0)))

    def test_construction_order_does_not_affect_equality(self):
        fwd = Behavior(RET, (0,), (), (("a", (0, 1)), ("b", (1, 0))))
        rev = Behavior(RET, (0,), (), (("b", (1, 0)), ("a", (0, 1))))
        assert fwd == rev
        assert hash(fwd) == hash(rev)

    def test_coverage_is_by_region_name_not_position(self):
        # src: @a may be anything (poison), @b must be 0.  A tgt built
        # in the opposite order must still be matched a-to-a and b-to-b:
        # under the old positional zip, @a's poison licensed tgt's @b
        # and src's concrete @b was compared against tgt's @a.
        src = _ret((0,), (("a", (PBIT, PBIT)), ("b", (0, 0))))
        tgt = _ret((0,), (("b", (0, 0)), ("a", (1, 1))))
        assert behavior_covers(src, tgt)
        bad = _ret((0,), (("b", (1, 0)), ("a", (1, 1))))
        assert not behavior_covers(src, bad)

    def test_same_bits_under_different_region_names_do_not_cover(self):
        # The positional zip ignored names entirely; identical bit
        # patterns in differently-named regions must not match.
        src = _ret((0,), (("a", (1, 1)),))
        tgt = _ret((0,), (("c", (1, 1)),))
        assert not behavior_covers(src, tgt)

    def test_region_count_mismatch_does_not_cover(self):
        src = _ret((0,), (("a", (1, 1)),))
        tgt = _ret((0,), (("a", (1, 1)), ("b", (0, 0))))
        assert not behavior_covers(src, tgt)

    def test_store_reordering_refines_end_to_end(self):
        # Reordering independent stores must verify in both directions.
        src = parse_function("""
@a = global i2
@b = global i2
define void @f(i2 %x) {
entry:
  store i2 %x, i2* @a
  store i2 1, i2* @b
  ret void
}
""")
        tgt = parse_function("""
@a = global i2
@b = global i2
define void @f(i2 %x) {
entry:
  store i2 1, i2* @b
  store i2 %x, i2* @a
  ret void
}
""")
        assert check_refinement(src, tgt, NEW).ok
        assert check_refinement(tgt, src, NEW).ok


class TestUndefExpansionCap:
    # src licenses every 16-bit value whose low bit is 0 (one behavior)
    # or 1 (the other); tgt's all-undef return is covered only by the
    # *union* — expanding it needs 2^16 concretizations.
    SRC = frozenset({_ret((0,) + (UBIT,) * 15), _ret((1,) + (UBIT,) * 15)})
    TGT = frozenset({_ret((UBIT,) * 16)})

    def test_overflow_is_explicit_inconclusive(self):
        before = NUM_UNDEF_EXPANSION_OVERFLOW.value
        result = check_behavior_sets(self.SRC, self.TGT, undef_cap=4096)
        assert not result.ok
        assert result.inconclusive
        assert result.witness is None
        assert "65536" in result.reason and "4096" in result.reason
        assert NUM_UNDEF_EXPANSION_OVERFLOW.value == before + 1

    def test_overflow_emits_missed_remark(self):
        with default_emitter().collect() as remarks:
            check_behavior_sets(self.SRC, self.TGT, undef_cap=16,
                                function="f16")
        overflow = [r for r in remarks if "undef expansion" in r.message]
        assert overflow, remarks
        assert overflow[0].kind == REMARK_MISSED
        assert overflow[0].function == "f16"

    def test_cap_boundary_is_inclusive(self):
        # needed == cap must still expand (only needed > cap overflows).
        result = check_behavior_sets(self.SRC, self.TGT, undef_cap=1 << 16)
        assert result.ok

    def test_truncation_never_yields_refines(self):
        # Union coverage genuinely fails here (no source behavior
        # licenses low-bit 1).  With the cap too small the verdict must
        # be inconclusive — never "covered" off a truncated expansion.
        src = frozenset({_ret((0,) + (UBIT,) * 15)})
        capped = check_behavior_sets(src, self.TGT, undef_cap=4096)
        assert not capped.ok and capped.inconclusive
        full = check_behavior_sets(src, self.TGT, undef_cap=1 << 16)
        assert not full.ok and not full.inconclusive
        assert full.witness is not None

    def test_cap_reaches_check_refinement(self):
        # OLD mode: `add %x, 0 -> %x` on an undef %x.  The source
        # expands undef at the add, so its behaviors are the four
        # concrete returns; the target returns the undef un-expanded.
        # Coverage needs the union expansion (4 concretizations).
        src = parse_function("""
define i2 @f(i2 %x) {
entry:
  %r = add i2 %x, 0
  ret i2 %r
}
""")
        tgt = parse_function("""
define i2 @f(i2 %x) {
entry:
  ret i2 %x
}
""")
        ok = check_refinement(src, tgt, OLD)
        assert ok.ok
        capped = check_refinement(
            src, tgt, OLD, options=CheckOptions(undef_expansion_cap=2))
        assert capped.verdict == "inconclusive"
        assert "concretizations" in capped.reason
