"""Backend tests: ISel, legalization, regalloc, machine execution.

The key property: for well-defined programs (no deferred UB observed),
the machine code computes the same results as the IR interpreter.
"""

import pytest

from repro.backend import (
    MOp,
    MachineTrap,
    allocate_registers,
    compile_module,
    function_size,
    print_assembly,
    program_size,
    run_program,
    select_function,
)
from repro.ir import parse_function, parse_module
from repro.semantics import NEW, run_once


def machine_result(src: str, entry: str, args, allocate=True):
    mod = parse_module(src)
    prog = compile_module(mod, allocate=allocate)
    result, cycles, instrs = run_program(prog, entry, args)
    return result


def ir_result(src: str, entry: str, args):
    mod = parse_module(src)
    behavior = run_once(mod.get_function(entry), list(args), NEW)
    assert behavior.kind == "ret", f"IR execution: {behavior}"
    if behavior.ret is None:
        return None
    return sum(bit << i for i, bit in enumerate(behavior.ret))


def both_agree(src: str, entry: str, args):
    expected = ir_result(src, entry, args)
    for allocate in (False, True):
        got = machine_result(src, entry, args, allocate=allocate)
        width_mask = None
        assert got == expected, (
            f"machine (allocate={allocate}) returned {got}, IR {expected}"
        )
    return expected


class TestStraightLine:
    def test_arithmetic(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, 3
  %z = sub i32 %y, %a
  %w = xor i32 %z, 255
  ret i32 %w
}"""
        both_agree(src, "f", [10, 20])
        both_agree(src, "f", [0xFFFFFFFF, 1])

    def test_division(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  %r = urem i32 %a, %b
  %s = add i32 %q, %r
  ret i32 %s
}"""
        both_agree(src, "f", [100, 7])

    def test_signed_division(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  ret i32 %q
}"""
        # -100 / 7 == -14
        assert both_agree(src, "f", [(-100) & 0xFFFFFFFF, 7]) \
            == (-14) & 0xFFFFFFFF

    def test_shifts(self):
        src = """
define i32 @f(i32 %a) {
entry:
  %x = shl i32 %a, 4
  %y = lshr i32 %x, 2
  %z = ashr i32 %y, 1
  ret i32 %z
}"""
        both_agree(src, "f", [0x12345])

    def test_comparisons_and_select(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}"""
        assert both_agree(src, "f", [5, 9]) == 5
        assert both_agree(src, "f", [(-5) & 0xFFFFFFFF, 9]) \
            == (-5) & 0xFFFFFFFF

    def test_casts(self):
        src = """
define i32 @f(i8 %a) {
entry:
  %s = sext i8 %a to i32
  %z = zext i8 %a to i32
  %d = sub i32 %z, %s
  ret i32 %d
}"""
        assert both_agree(src, "f", [200]) == 256

    def test_division_by_zero_traps(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %q = udiv i32 %a, %b
  ret i32 %q
}"""
        with pytest.raises(MachineTrap):
            machine_result(src, "f", [1, 0])


class TestIllegalTypes:
    """Legalization: i1/i2/i4 promoted to i8, i13 -> i16, etc."""

    @pytest.mark.parametrize("width,a,b", [
        (2, 3, 2), (4, 9, 7), (13, 5000, 3000),
    ])
    def test_narrow_add_wraps_correctly(self, width, a, b):
        src = f"""
define i{width} @f(i{width} %a, i{width} %b) {{
entry:
  %s = add i{width} %a, %b
  ret i{width} %s
}}"""
        assert both_agree(src, "f", [a, b]) == (a + b) % (1 << width)

    def test_narrow_unsigned_division(self):
        src = """
define i4 @f(i4 %a, i4 %b) {
entry:
  %q = udiv i4 %a, %b
  ret i4 %q
}"""
        assert both_agree(src, "f", [12, 5]) == 2

    def test_narrow_signed_compare(self):
        src = """
define i1 @f(i4 %a, i4 %b) {
entry:
  %c = icmp slt i4 %a, %b
  ret i1 %c
}"""
        # -1 (15) < 1 signed
        assert both_agree(src, "f", [15, 1]) == 1

    def test_narrow_ashr(self):
        src = """
define i4 @f(i4 %a) {
entry:
  %r = ashr i4 %a, 1
  ret i4 %r
}"""
        # -2 >> 1 == -1 in i4
        assert both_agree(src, "f", [14]) == 15

    def test_freeze_of_illegal_type(self):
        """Section 6: type legalization must handle freeze."""
        src = """
define i4 @f(i4 %x) {
entry:
  %fr = freeze i4 %x
  %s = add i4 %fr, 1
  ret i4 %s
}"""
        assert both_agree(src, "f", [7]) == 8


class TestControlFlow:
    def test_loop_sum(self):
        src = """
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc1, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc1 = add i32 %acc, %i
  %i1 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}"""
        assert both_agree(src, "f", [100]) == 4950

    def test_phi_swap(self):
        src = """
define i32 @f() {
entry:
  br label %loop
loop:
  %a = phi i32 [ 1, %entry ], [ %b, %loop ]
  %b = phi i32 [ 2, %entry ], [ %a, %loop ]
  %i = phi i32 [ 0, %entry ], [ %i1, %loop ]
  %i1 = add i32 %i, 1
  %c = icmp ult i32 %i1, 3
  br i1 %c, label %loop, label %out
out:
  ret i32 %a
}"""
        assert both_agree(src, "f", []) == 1

    def test_switch(self):
        src = """
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [ i32 1, label %a i32 5, label %b ]
a:
  ret i32 10
b:
  ret i32 50
d:
  ret i32 0
}"""
        assert both_agree(src, "f", [1]) == 10
        assert both_agree(src, "f", [5]) == 50
        assert both_agree(src, "f", [7]) == 0

    def test_nested_calls(self):
        src = """
define i32 @sq(i32 %x) {
entry:
  %r = mul i32 %x, %x
  ret i32 %r
}

define i32 @f(i32 %a, i32 %b) {
entry:
  %x = call i32 @sq(i32 %a)
  %y = call i32 @sq(i32 %b)
  %s = add i32 %x, %y
  ret i32 %s
}"""
        assert both_agree(src, "f", [3, 4]) == 25


class TestMemory:
    def test_global_roundtrip(self):
        src = """
@g = global i32 0

define i32 @f(i32 %x) {
entry:
  store i32 %x, i32* @g
  %v = load i32, i32* @g
  ret i32 %v
}"""
        assert machine_result(src, "f", [1234]) == 1234

    def test_alloca_roundtrip(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %p = alloca i32
  store i32 %x, i32* %p
  %v = load i32, i32* %p
  %w = add i32 %v, 1
  ret i32 %w
}"""
        assert both_agree(src, "f", [41]) == 42

    def test_gep_array_walk(self):
        src = """
define i32 @f() {
entry:
  %buf = alloca i32
  %b2 = alloca i32
  store i32 7, i32* %buf
  store i32 35, i32* %b2
  %a = load i32, i32* %buf
  %b = load i32, i32* %b2
  %s = add i32 %a, %b
  ret i32 %s
}"""
        assert both_agree(src, "f", []) == 42

    def test_narrow_store_preserves_neighbors(self):
        src = """
@g = global i32 0

define i32 @f() {
entry:
  store i32 -1, i32* @g
  %p8 = bitcast i32* @g to i8*
  store i8 0, i8* %p8
  %v = load i32, i32* @g
  ret i32 %v
}"""
        assert machine_result(src, "f", []) == 0xFFFFFF00


class TestRegisterPressure:
    def test_spilling_correct(self):
        # 20 simultaneously-live values force spills with 10 registers
        lines = [f"  %v{i} = add i32 %x, {i}" for i in range(20)]
        total = []
        prev = "%v0"
        for i in range(1, 20):
            total.append(f"  %s{i} = add i32 {prev}, %v{i}")
            prev = f"%s{i}"
        src = (
            "define i32 @f(i32 %x) {\nentry:\n"
            + "\n".join(lines) + "\n" + "\n".join(total)
            + f"\n  ret i32 {prev}\n}}"
        )
        expected = sum(5 + i for i in range(20)) & 0xFFFFFFFF
        assert both_agree(src, "f", [5]) == expected

    def _high_pressure_src(self):
        # Loads are ordered roots, so they cannot be sunk to their uses:
        # 20 loaded values are simultaneously live.
        header = "@g = global i32 7\n\n"
        lines = ["  store i32 %x, i32* @g"]
        lines += [f"  %v{i} = load i32, i32* @g" for i in range(20)]
        total = []
        prev = "%v0"
        for i in range(1, 20):
            total.append(f"  %s{i} = add i32 {prev}, %v{i}")
            prev = f"%s{i}"
        return (
            header + "define i32 @f(i32 %x) {\nentry:\n"
            + "\n".join(lines) + "\n" + "\n".join(total)
            + f"\n  ret i32 {prev}\n}}"
        )

    def test_spill_slots_allocated(self):
        mod = parse_module(self._high_pressure_src())
        mf = select_function(mod.get_function("f"))
        allocate_registers(mf)
        assert mf.num_spill_slots > 0

    def test_spilled_code_still_correct(self):
        src = self._high_pressure_src()
        assert machine_result(src, "f", [3]) == 60


class TestPoisonLowering:
    def test_poison_becomes_pinned_undef_register(self):
        src = """
define i32 @f() {
entry:
  %x = add i32 poison, 1
  %d = sub i32 %x, %x
  ret i32 %d
}"""
        # at machine level the undef register is pinned: x - x == 0
        assert machine_result(src, "f", []) == 0

    def test_freeze_becomes_copy(self):
        src = """
define i32 @f(i32 %x) {
entry:
  %fr = freeze i32 %x
  ret i32 %fr
}"""
        mod = parse_module(src)
        mf = select_function(mod.get_function("f"))
        assert any(i.op is MOp.COPY for i in mf.instructions())


class TestSizeModel:
    def test_sizes_positive_and_stable(self):
        src = """
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  ret i32 %x
}"""
        mod = parse_module(src)
        prog = compile_module(mod)
        size1 = program_size(prog)
        prog2 = compile_module(parse_module(src))
        assert size1 == program_size(prog2) > 0

    def test_assembly_prints(self):
        src = """
define i32 @f(i32 %a) {
entry:
  %c = icmp eq i32 %a, 0
  br i1 %c, label %t, label %e
t:
  ret i32 1
e:
  ret i32 2
}"""
        mod = parse_module(src)
        prog = compile_module(mod)
        asm = print_assembly(prog.functions["f"])
        assert "f:" in asm and "ret" in asm and "jmp" in asm


class TestLegalizationRegressions:
    def test_promoted_shift_amount_normalized(self):
        """Regression: a promoted shift *amount* with garbage high bits
        must not change the count for defined inputs.  Found by the
        repository's own backend-differential fuzzing."""
        src = """
define i2 @f(i2 %a, i2 %b) {
entry:
  %v0 = add i2 %a, -1
  %v1 = mul i2 -1, %v0
  %v2 = shl i2 %b, %v1
  ret i2 %v2
}"""
        # a=1: v0=0, v1=0, result = b << 0 = b
        assert both_agree(src, "f", [1, 2]) == 2

    def test_promoted_ashr_amount_normalized(self):
        src = """
define i2 @f(i2 %a, i2 %b) {
entry:
  %v0 = sub i2 %a, %b
  %v1 = ashr i2 -2, %v0
  ret i2 %v1
}"""
        # a=3, b=2: v0=1; ashr -2, 1 == -1 == 3
        assert both_agree(src, "f", [3, 2]) == 3

    def test_promoted_lshr_amount_normalized(self):
        src = """
define i4 @f(i4 %a) {
entry:
  %v0 = sub i4 %a, 1
  %v1 = lshr i4 -1, %v0
  ret i4 %v1
}"""
        # a=3: v0=2; lshr 15, 2 == 3
        assert both_agree(src, "f", [3]) == 3
