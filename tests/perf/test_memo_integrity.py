"""Memo-store integrity: checksums, quarantine, degraded mode, fsck,
compact, and the ``repro memo`` CLI."""

import json
import os

import pytest

from repro.perf import RefinementMemo, compact, fsck
from repro.perf.cli import EXIT_CORRUPT, memo_main
from repro.perf.memo import _checksum, _classify, _encode_record

CTX = "ctx-integrity"


def write_lines(path, lines):
    with open(path, "wb") as fh:
        for line in lines:
            fh.write(line if isinstance(line, bytes)
                     else line.encode("ascii"))
            fh.write(b"\n")


def record_line(context, key, verdict, stamp="good"):
    entry = {"c": context, "k": key, "v": verdict}
    if stamp == "good":
        entry["s"] = _checksum(context, key, verdict)
    elif stamp == "bad":
        entry["s"] = "00000000"
    # stamp == "legacy": no "s" field at all
    return json.dumps(entry)


class TestChecksum:
    def test_roundtrip(self):
        line = _encode_record(CTX, "h1", "verified").rstrip(b"\n")
        kind, entry = _classify(line)
        assert kind == "valid"
        assert entry == {"c": CTX, "k": "h1", "v": "verified",
                         "s": _checksum(CTX, "h1", "verified")}

    def test_checksum_covers_every_semantic_field(self):
        base = _checksum(CTX, "h1", "verified")
        assert _checksum("other", "h1", "verified") != base
        assert _checksum(CTX, "h2", "verified") != base
        assert _checksum(CTX, "h1", "timeout") != base

    @pytest.mark.parametrize("line,why", [
        (b"not json", "unparsable"),
        (b"[1, 2]", "non-object"),
        (b'{"c": "x", "k": "y"}', "missing verdict"),
        (b'{"c": 1, "k": "y", "v": "verified"}', "non-string field"),
    ])
    def test_malformed_lines_are_corrupt(self, line, why):
        assert _classify(line)[0] == "corrupt", why

    def test_bad_stamp_is_corrupt_and_missing_stamp_is_legacy(self):
        assert _classify(
            record_line(CTX, "h", "verified", "bad").encode())[0] \
            == "corrupt"
        assert _classify(
            record_line(CTX, "h", "verified", "legacy").encode())[0] \
            == "legacy"


class TestQuarantine:
    def test_corrupt_records_never_enter_the_table(self, tmp_path):
        path = tmp_path / "memo-1.jsonl"
        write_lines(path, [
            record_line(CTX, "good", "verified"),
            record_line(CTX, "evil", "verified", "bad"),
            record_line(CTX, "old", "timeout", "legacy"),
        ])
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert memo.lookup("good") == "verified"
        assert memo.lookup("old") == "timeout"  # legacy accepted
        assert memo.lookup("evil") is None
        assert memo.quarantined() == {str(path): 1}

    def test_torn_tail_is_not_quarantined(self, tmp_path):
        path = tmp_path / "memo-1.jsonl"
        complete = record_line(CTX, "done", "verified")
        torn = record_line(CTX, "torn", "verified")[:20]
        with open(path, "wb") as fh:
            fh.write(complete.encode() + b"\n" + torn.encode())
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert memo.lookup("done") == "verified"
        assert memo.lookup("torn") is None
        assert memo.quarantined() == {}
        # the writer finishes the line; a refresh adopts it whole
        with open(path, "ab") as fh:
            fh.write(record_line(CTX, "torn", "verified")[20:].encode()
                     + b"\n")
        memo.refresh()
        assert memo.lookup("torn") == "verified"

    def test_flush_then_reload_is_checksummed(self, tmp_path):
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        memo.record("k1", "verified")
        assert memo.flush() == 1
        report = fsck(str(tmp_path))
        assert report["valid"] == 1
        assert report["legacy"] == report["corrupt"] == 0
        again = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert again.lookup("k1") == "verified"


class TestDegradedMode:
    def test_flush_failures_requeue_then_degrade(self, tmp_path,
                                                 monkeypatch):
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path / "store"))

        def boom(*a, **kw):
            raise OSError("disk full")

        monkeypatch.setattr(os, "makedirs", boom)
        for attempt in range(3):
            memo.record(f"k{attempt}", "verified")
            assert memo.flush() == 0
            # warm hits survive every failed flush
            assert memo.lookup(f"k{attempt}") == "verified"
        assert memo.degraded

        # degraded mode never touches disk again — flush drains the
        # queue in memory even though makedirs still raises
        monkeypatch.undo()
        memo.record("k3", "verified")
        assert memo.flush() == 4  # 3 re-queued + 1 new, no I/O
        assert not os.path.isdir(str(tmp_path / "store"))
        assert memo.lookup("k3") == "verified"

    def test_one_failure_recovers_without_losing_entries(self, tmp_path,
                                                         monkeypatch):
        store = tmp_path / "store"
        memo = RefinementMemo(CTX, disk_dir=str(store))
        memo.record("k1", "verified")

        real_makedirs = os.makedirs
        calls = {"n": 0}

        def flaky(*a, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return real_makedirs(*a, **kw)

        monkeypatch.setattr(os, "makedirs", flaky)
        assert memo.flush() == 0
        assert not memo.degraded
        assert memo.flush() == 1  # the re-queued entry lands on disk
        assert RefinementMemo(CTX, disk_dir=str(store)) \
            .lookup("k1") == "verified"


class TestFsckAndCompact:
    def _seed_store(self, tmp_path):
        write_lines(tmp_path / "memo-1.jsonl", [
            record_line(CTX, "a", "verified"),
            record_line(CTX, "b", "timeout", "legacy"),
            record_line(CTX, "c", "verified", "bad"),
        ])
        write_lines(tmp_path / "memo-2.jsonl", [
            record_line(CTX, "a", "verified"),   # duplicate of file 1
            record_line(CTX, "d", "inconclusive"),
        ])

    def test_fsck_reports_per_file_and_totals(self, tmp_path):
        self._seed_store(tmp_path)
        report = fsck(str(tmp_path))
        assert not report["ok"]
        assert (report["valid"], report["legacy"],
                report["corrupt"]) == (3, 1, 1)
        by_file = {e["file"]: e for e in report["files"]}
        assert by_file["memo-1.jsonl"]["corrupt"] == 1
        assert by_file["memo-2.jsonl"]["corrupt"] == 0

    def test_fsck_on_clean_or_missing_store(self, tmp_path):
        assert fsck(str(tmp_path / "nope"))["ok"]
        write_lines(tmp_path / "memo-1.jsonl",
                    [record_line(CTX, "a", "verified")])
        assert fsck(str(tmp_path))["ok"]

    def test_compact_dedups_drops_and_rewrites(self, tmp_path):
        self._seed_store(tmp_path)
        result = compact(str(tmp_path))
        assert result["ok"]
        assert result["kept"] == 3          # a, b, d (c corrupt, a dup)
        assert result["dropped_corrupt"] == 1
        assert result["dropped_duplicates"] == 1
        assert result["files_removed"] == 2
        assert os.listdir(tmp_path) == ["memo-compacted.jsonl"]
        # the rebuilt store is fully checksummed (legacy re-stamped)
        report = fsck(str(tmp_path))
        assert report["ok"]
        assert report["valid"] == 3 and report["legacy"] == 0
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert memo.lookup("a") == "verified"
        assert memo.lookup("b") == "timeout"
        assert memo.lookup("d") == "inconclusive"
        assert memo.lookup("c") is None


class TestMemoCLI:
    def test_fsck_exit_codes(self, tmp_path, capsys):
        write_lines(tmp_path / "memo-1.jsonl",
                    [record_line(CTX, "a", "verified")])
        assert memo_main(["fsck", "--dir", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out
        write_lines(tmp_path / "memo-2.jsonl",
                    [record_line(CTX, "b", "verified", "bad")])
        assert memo_main(["fsck", "--dir", str(tmp_path)]) \
            == EXIT_CORRUPT
        assert "CORRUPTION FOUND" in capsys.readouterr().out

    def test_fsck_json_output(self, tmp_path, capsys):
        write_lines(tmp_path / "memo-1.jsonl",
                    [record_line(CTX, "a", "verified")])
        assert memo_main(["fsck", "--dir", str(tmp_path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["valid"] == 1 and report["ok"]

    def test_compact_via_cli(self, tmp_path, capsys):
        write_lines(tmp_path / "memo-1.jsonl", [
            record_line(CTX, "a", "verified"),
            record_line(CTX, "b", "verified", "bad"),
        ])
        assert memo_main(["compact", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kept 1" in out
        assert memo_main(["fsck", "--dir", str(tmp_path)]) == 0

    def test_dispatch_through_repro_cli(self, tmp_path, capsys):
        from repro.cli import main
        write_lines(tmp_path / "memo-1.jsonl",
                    [record_line(CTX, "a", "verified")])
        assert main(["memo", "fsck", "--dir", str(tmp_path)]) == 0
