"""Concurrency tests for the shared on-disk memo layer.

The serve layer keeps one :class:`RefinementMemo` warm for the life of
the server while campaign worker processes append to the same
directory underneath it and request threads query it in parallel.
These tests drive exactly that: multi-process appenders racing a
refreshing reader, torn partial writes, and threaded mutation.
"""

import json
import multiprocessing
import os
import threading
import time

from repro.perf import RefinementMemo

CTX = "ctx"


def _appender(disk_dir: str, worker: int, count: int) -> None:
    memo = RefinementMemo(CTX, disk_dir=disk_dir)
    for i in range(count):
        memo.record(f"w{worker}-h{i}", "verified")
        memo.flush()  # one line per flush: maximal interleaving


class TestMultiProcess:
    def test_concurrent_appenders_one_reader(self, tmp_path):
        disk_dir = str(tmp_path)
        workers, per_worker = 4, 25
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        procs = [ctx.Process(target=_appender,
                             args=(disk_dir, w, per_worker))
                 for w in range(workers)]
        reader = RefinementMemo(CTX, disk_dir=disk_dir)
        for p in procs:
            p.start()
        # refresh concurrently with the appends; must never crash or
        # adopt a duplicate
        seen = 0
        while any(p.is_alive() for p in procs):
            seen += reader.refresh()
            time.sleep(0.002)
        for p in procs:
            p.join()
            assert p.exitcode == 0
        seen += reader.refresh()
        assert seen == workers * per_worker
        assert len(reader) == workers * per_worker
        for w in range(workers):
            assert reader.lookup(f"w{w}-h0") == "verified"

    def test_one_file_per_process(self, tmp_path):
        disk_dir = str(tmp_path)
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        procs = [ctx.Process(target=_appender, args=(disk_dir, w, 3))
                 for w in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        files = [n for n in os.listdir(disk_dir)
                 if n.startswith("memo-") and n.endswith(".jsonl")]
        assert len(files) == 3  # appenders never share a file


class TestTornWrites:
    def _line(self, key: str, verdict: str = "verified") -> bytes:
        return (json.dumps({"c": CTX, "k": key, "v": verdict})
                .encode() + b"\n")

    def test_torn_final_line_is_not_consumed(self, tmp_path):
        path = tmp_path / "memo-99.jsonl"
        full = self._line("complete")
        torn = self._line("torn")[:-10]  # no newline, truncated JSON
        path.write_bytes(full + torn)

        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert memo.lookup("complete") == "verified"
        assert memo.lookup("torn") is None

        # the writer finishes its line; a refresh adopts it whole
        with open(path, "ab") as fh:
            fh.write(self._line("torn")[-10:])
        assert memo.refresh() == 1
        assert memo.lookup("torn") == "verified"

    def test_torn_line_followed_by_good_line(self, tmp_path):
        # a writer killed mid-write left garbage *with* a newline;
        # skip it, keep reading the good lines after it
        path = tmp_path / "memo-99.jsonl"
        path.write_bytes(self._line("a")
                         + b'{"c": "ctx", "k": "br\n'
                         + self._line("b"))
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert memo.lookup("a") == "verified"
        assert memo.lookup("b") == "verified"
        assert len(memo) == 2

    def test_refresh_is_incremental(self, tmp_path):
        path = tmp_path / "memo-99.jsonl"
        path.write_bytes(self._line("a"))
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert memo.refresh() == 0  # nothing new
        with open(path, "ab") as fh:
            fh.write(self._line("b"))
        assert memo.refresh() == 1
        assert memo.refresh() == 0

    def test_other_context_not_adopted(self, tmp_path):
        path = tmp_path / "memo-99.jsonl"
        path.write_bytes(
            json.dumps({"c": "other", "k": "x", "v": "verified"})
            .encode() + b"\n" + self._line("mine"))
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert len(memo) == 1
        assert memo.lookup("x") is None

    def test_failed_verdict_on_disk_is_ignored(self, tmp_path):
        path = tmp_path / "memo-99.jsonl"
        path.write_bytes(self._line("bad", "failed"))
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert memo.lookup("bad") is None


class TestThreaded:
    def test_record_lookup_flush_race(self, tmp_path):
        memo = RefinementMemo(CTX, disk_dir=str(tmp_path))
        stop = threading.Event()
        errors = []

        def writer(base):
            try:
                for i in range(200):
                    memo.record(f"{base}-{i}", "verified")
                    if i % 20 == 0:
                        memo.flush()
            except Exception as e:  # noqa: BLE001
                errors.append(e)

        def reader():
            try:
                while not stop.is_set():
                    memo.lookup("t0-0")
                    memo.refresh()
            except Exception as e:  # noqa: BLE001
                errors.append(e)

        threads = [threading.Thread(target=writer, args=(f"t{n}",))
                   for n in range(4)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads[:-1]:
            t.join()
        stop.set()
        threads[-1].join()
        assert errors == []
        memo.flush()
        assert len(memo) == 4 * 200
        # everything flushed is replayable by a fresh process
        again = RefinementMemo(CTX, disk_dir=str(tmp_path))
        assert len(again) == 4 * 200
