"""Unit tests for the behavior-set verdict memo (``repro.perf``)."""

import json
import os

from repro.diag import stats_snapshot
from repro.perf import RefinementMemo


def _perf_stats():
    return stats_snapshot().get("perf", {})


class TestInMemory:
    def test_record_then_lookup(self):
        memo = RefinementMemo("ctx")
        assert memo.lookup("h1") is None
        memo.record("h1", "verified")
        assert memo.lookup("h1") == "verified"
        assert len(memo) == 1

    def test_all_terminal_verdicts_cacheable(self):
        memo = RefinementMemo("ctx")
        memo.record("a", "verified")
        memo.record("b", "inconclusive")
        memo.record("c", "timeout")
        assert len(memo) == 3

    def test_failed_is_never_memoized(self):
        # A failure must re-run so its counterexample record is
        # regenerated; caching it would change campaign output.
        memo = RefinementMemo("ctx")
        memo.record("h1", "failed")
        assert memo.lookup("h1") is None
        assert len(memo) == 0

    def test_first_record_wins(self):
        memo = RefinementMemo("ctx")
        memo.record("h1", "verified")
        memo.record("h1", "timeout")
        assert memo.lookup("h1") == "verified"

    def test_hit_miss_counters(self):
        memo = RefinementMemo("ctx")
        before = _perf_stats()
        memo.lookup("missing")
        memo.record("h1", "verified")
        memo.lookup("h1")
        after = _perf_stats()
        assert (after["num-memo-misses"]
                - before.get("num-memo-misses", 0)) == 1
        assert (after["num-memo-hits"]
                - before.get("num-memo-hits", 0)) == 1


class TestDiskLayer:
    def test_round_trip(self, tmp_path):
        d = str(tmp_path)
        first = RefinementMemo("ctx", disk_dir=d)
        first.record("h1", "verified")
        first.record("h2", "timeout")
        assert first.flush() == 2
        second = RefinementMemo("ctx", disk_dir=d)
        assert second.lookup("h1") == "verified"
        assert second.lookup("h2") == "timeout"

    def test_flush_is_incremental(self, tmp_path):
        memo = RefinementMemo("ctx", disk_dir=str(tmp_path))
        memo.record("h1", "verified")
        assert memo.flush() == 1
        assert memo.flush() == 0  # nothing fresh
        memo.record("h2", "verified")
        assert memo.flush() == 1

    def test_contexts_are_isolated(self, tmp_path):
        d = str(tmp_path)
        a = RefinementMemo("ctx-a", disk_dir=d)
        a.record("h1", "verified")
        a.flush()
        b = RefinementMemo("ctx-b", disk_dir=d)
        assert b.lookup("h1") is None
        again = RefinementMemo("ctx-a", disk_dir=d)
        assert again.lookup("h1") == "verified"

    def test_torn_and_hostile_lines_are_skipped(self, tmp_path):
        d = str(tmp_path)
        good = json.dumps({"c": "ctx", "k": "h1", "v": "verified"})
        bad_verdict = json.dumps({"c": "ctx", "k": "h2", "v": "failed"})
        with open(os.path.join(d, "memo-1.jsonl"), "w") as fh:
            fh.write('{"c": "ctx", "k": "h9", "v"\n')  # torn write
            fh.write("not json at all\n")
            fh.write(bad_verdict + "\n")  # uncacheable verdict on disk
            fh.write(good + "\n")
        memo = RefinementMemo("ctx", disk_dir=d)
        assert memo.lookup("h1") == "verified"
        assert memo.lookup("h2") is None
        assert memo.lookup("h9") is None
        assert len(memo) == 1

    def test_missing_dir_is_empty_memo(self, tmp_path):
        memo = RefinementMemo("ctx", disk_dir=str(tmp_path / "nope"))
        assert len(memo) == 0

    def test_multiple_writer_files_merge(self, tmp_path):
        d = str(tmp_path)
        for i, (key, verdict) in enumerate(
            [("h1", "verified"), ("h2", "inconclusive")]
        ):
            with open(os.path.join(d, f"memo-{i}.jsonl"), "w") as fh:
                fh.write(json.dumps({"c": "ctx", "k": key, "v": verdict})
                         + "\n")
        memo = RefinementMemo("ctx", disk_dir=d)
        assert memo.lookup("h1") == "verified"
        assert memo.lookup("h2") == "inconclusive"
