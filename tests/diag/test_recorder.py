"""The black-box flight recorder: bounded ring, wiring, dumps."""

import json

import pytest

from repro.diag.recorder import (
    FlightRecorder,
    current_recorder,
    recorder_dump,
    set_recorder,
)
from repro.diag.remarks import default_emitter, emit_remark
from repro.diag.spans import SpanCollector


class TestRing:
    def test_capacity_bounds_memory_and_counts_drops(self):
        r = FlightRecorder(capacity=3)
        for i in range(5):
            r.record("step", i=i)
        assert len(r) == 3
        d = r.dump()
        assert d["capacity"] == 3
        assert d["recorded"] == 5
        assert d["dropped"] == 2
        assert [e["i"] for e in d["events"]] == [2, 3, 4]

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_dump_is_json_safe(self):
        r = FlightRecorder(capacity=4)
        r.record("check-function", shard=1, fn="f", hash="abc")
        json.dumps(r.dump())

    def test_clear_resets_everything(self):
        r = FlightRecorder(capacity=2)
        r.record("x")
        r.clear()
        assert len(r) == 0
        assert r.dump()["recorded"] == 0


class TestWiring:
    def test_installed_recorder_sees_remarks(self):
        r = FlightRecorder(capacity=8)
        r.install(emitter=default_emitter())
        try:
            emit_remark("gvn", "eliminated a load", function="f")
        finally:
            r.uninstall()
        kinds = [e["kind"] for e in r.events()]
        assert "remark" in kinds
        remark = next(e for e in r.events() if e["kind"] == "remark")
        assert remark["pass_name"] == "gvn"
        assert remark["message"] == "eliminated a load"

    def test_installed_recorder_sees_completed_spans(self):
        sc = SpanCollector(keep=True)
        r = FlightRecorder(capacity=8)
        r.install(collector=sc)
        try:
            with sc.span("refine-check", cat="refine", function="f") as sp:
                sp.set(verdict="verified")
        finally:
            r.uninstall()
        spans = [e for e in r.events() if e["kind"] == "span"]
        assert len(spans) == 1
        assert spans[0]["name"] == "refine-check"
        assert spans[0]["fn"] == "f"
        assert spans[0]["attrs"] == {"verdict": "verified"}

    def test_uninstall_detaches_and_is_idempotent(self):
        sc = SpanCollector(keep=True)
        r = FlightRecorder()
        r.install(emitter=default_emitter(), collector=sc)
        r.uninstall()
        r.uninstall()  # second call must not raise
        with sc.span("after"):
            pass
        emit_remark("gvn", "after uninstall")
        assert len(r) == 0

    def test_emitter_stays_inactive_after_uninstall(self):
        # The remark no-op fast path must survive a recorder lifecycle.
        emitter = default_emitter()
        was_active = emitter.active
        r = FlightRecorder().install(emitter=emitter)
        r.uninstall()
        assert emitter.active == was_active


class TestProcessWideSlot:
    def test_set_and_restore(self):
        r = FlightRecorder()
        old = set_recorder(r)
        try:
            assert current_recorder() is r
            assert recorder_dump() == r.dump()
        finally:
            set_recorder(old)

    def test_dump_is_none_without_a_recorder(self):
        old = set_recorder(None)
        try:
            assert recorder_dump() is None
        finally:
            set_recorder(old)
