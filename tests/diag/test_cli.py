"""The ``python -m repro`` driver: flag handling and the JSON report
contract (the acceptance surface for the observability layer)."""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLE = str(Path(__file__).resolve().parents[2]
              / "examples" / "unswitch_gvn.ll")


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestJsonReport:
    @pytest.fixture()
    def report(self, capsys):
        rc, out = run_cli(capsys, EXAMPLE, "--stats", "--time-passes",
                          "--remarks=json")
        assert rc == 0
        return json.loads(out)

    def test_contains_an_instcombine_counter(self, report):
        counters = report["stats"]["instcombine"]
        assert any(v > 0 for v in counters.values())

    def test_contains_the_unswitch_freeze_remark(self, report):
        froze = [r for r in report["remarks"]
                 if r["pass_name"] == "loop-unswitch"
                 and "froze" in r["message"]]
        assert froze
        assert report["stats"]["loop-unswitch"]["num-conditions-frozen"] > 0

    def test_contains_per_pass_timing(self, report):
        timing = report["timing"]
        assert "instcombine" in timing
        assert timing["instcombine"]["runs"] > 0
        assert timing["instcombine"]["per_function"]

    def test_header_identifies_the_compile(self, report):
        assert report["input"] == EXAMPLE
        assert report["pipeline"] == "o2"
        assert report["opt_config"] == "fixed"


class TestModes:
    def test_json_flag_without_remarks(self, capsys):
        rc, out = run_cli(capsys, EXAMPLE, "--stats", "--json")
        assert rc == 0
        assert "remarks" not in json.loads(out)

    def test_text_stats(self, capsys):
        rc, out = run_cli(capsys, EXAMPLE, "--stats")
        assert rc == 0
        assert "Statistics Collected" in out
        assert "loop-unswitch" in out

    def test_text_remarks_and_timing(self, capsys):
        rc, out = run_cli(capsys, EXAMPLE, "--remarks", "--time-passes")
        assert rc == 0
        assert "remark: loop-unswitch: froze hoisted condition" in out
        assert "Pass execution timing report" in out

    def test_trace_runs_the_entry_function(self, capsys):
        rc, out = run_cli(capsys, EXAMPLE, "--trace", "--json")
        assert rc == 0
        trace = json.loads(out)["trace"]
        assert trace["function"] == "main"
        assert trace["kind"] == "ret"
        assert trace["events"]["steps"] > 0

    def test_legacy_config_emits_no_freeze_remark(self, capsys):
        rc, out = run_cli(capsys, EXAMPLE, "--opt-config", "legacy",
                          "--remarks=json")
        assert rc == 0
        remarks = json.loads(out)["remarks"]
        assert not any("froze hoisted" in r["message"] for r in remarks)
        assert any("without freeze" in r["message"] for r in remarks)

    def test_emit_ir(self, capsys):
        rc, out = run_cli(capsys, EXAMPLE, "--emit-ir")
        assert rc == 0
        assert "define i8 @main" in out

    def test_missing_file_fails(self, capsys):
        rc = main(["/nonexistent/input.ll"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_input_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.ll"
        bad.write_text("define i8 @f( {\n garbage\n")
        rc = main([str(bad), "--stats"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "error" in err and "expected a type" in err
