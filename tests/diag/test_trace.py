"""Interpreter event tracing: counters on Behavior, fuel-exhaustion
diagnostics, and the interp statistics."""

import pytest

from repro.diag import ExecTrace, default_registry, reset_stats
from repro.ir import parse_function
from repro.semantics import NEW, OLD, run_once
from repro.semantics.domains import POISON
from repro.semantics.interp import (
    Behavior,
    FuelExhausted,
    Interpreter,
    Oracle,
)

LOOP_FOREVER = """
define i8 @spin() {
entry:
  br label %loop
loop:
  %i = phi i8 [ 0, %entry ], [ %j, %loop ]
  %j = add i8 %i, 1
  br label %loop
}
"""

MEM_FN = """
define i8 @mem(i8 %x) {
entry:
  %p = alloca i8
  store i8 %x, i8* %p
  %v = load i8, i8* %p
  ret i8 %v
}
"""

FREEZE_FN = """
define i8 @fr(i8 %x) {
entry:
  %f = freeze i8 %x
  ret i8 %f
}
"""

BRANCH_FN = """
define i8 @br_on(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i8 1
b:
  ret i8 2
}
"""


class TestTraceCounters:
    def test_every_behavior_carries_a_trace(self):
        b = run_once(parse_function(MEM_FN), [5], NEW)
        assert b.trace is not None
        assert b.trace.steps > 0

    def test_loads_and_stores_counted(self):
        b = run_once(parse_function(MEM_FN), [5], NEW)
        assert b.trace.loads == 1
        assert b.trace.stores == 1

    def test_freeze_resolution_counted_only_for_poison(self):
        fn = parse_function(FREEZE_FN)
        frozen = run_once(fn, [POISON], NEW)
        assert frozen.trace.freeze_resolutions == 1
        concrete = run_once(fn, [5], NEW)
        assert concrete.trace.freeze_resolutions == 0

    def test_ub_trace_names_the_event(self):
        b = run_once(parse_function(BRANCH_FN), [POISON], NEW)
        assert b.is_ub
        assert b.trace.ub_triggers == 1
        assert "poison" in b.trace.ub_reason

    def test_trace_excluded_from_behavior_equality(self):
        """Two runs observing the same behavior through different event
        counts are the same behavior (Behavior lives in frozensets)."""
        t1, t2 = ExecTrace(steps=1), ExecTrace(steps=99)
        a = Behavior("ret", (0, 0), (), (), t1)
        b = Behavior("ret", (0, 0), (), (), t2)
        assert a == b
        assert len({a, b}) == 1


class TestFuelExhaustion:
    def test_timeout_behavior_counts_exhaustion(self):
        reset_stats()
        b = run_once(parse_function(LOOP_FOREVER), [], NEW, fuel=50)
        assert b.kind == "timeout"
        assert b.trace.fuel_exhausted == 1
        assert default_registry().get("interp", "num-fuel-exhausted") == 1
        reset_stats()

    def test_message_reports_steps_and_position(self):
        """The FuelExhausted message pinpoints where fuel ran out:
        step count, function, and block."""
        fn = parse_function(LOOP_FOREVER)
        interp = Interpreter(NEW, Oracle(), fuel=50)
        interp.setup_memory(fn, None)
        with pytest.raises(FuelExhausted) as exc:
            interp._call_function(fn, [], depth=0)
        msg = str(exc.value)
        assert "fuel exhausted after" in msg
        assert "51 steps" in msg
        assert "@spin:%loop" in msg

    def test_call_depth_message_reports_function_and_steps(self):
        fn = parse_function("""
define i8 @rec(i8 %x) {
entry:
  %r = call i8 @rec(i8 %x)
  ret i8 %r
}
""")
        interp = Interpreter(NEW, Oracle(), fuel=100_000)
        interp.setup_memory(fn, None)
        with pytest.raises(FuelExhausted) as exc:
            interp._call_function(fn, [0], depth=0)
        msg = str(exc.value)
        assert "call depth" in msg and "@rec" in msg and "steps" in msg


class TestUbStatistics:
    def test_ub_executions_counted_in_registry(self):
        reset_stats()
        fn = parse_function(BRANCH_FN)
        run_once(fn, [POISON], NEW)
        run_once(fn, [POISON], NEW)
        run_once(fn, [1], NEW)  # defined: no UB
        assert default_registry().get("interp", "num-ub-executions") == 2
        reset_stats()

    def test_undef_expansions_counted_under_old(self):
        fn = parse_function("""
define i4 @g(i4 %x) {
entry:
  %a = add i4 %x, 0
  ret i4 %a
}
""")
        from repro.semantics.domains import full_undef

        b = run_once(fn, [full_undef(4)], OLD)
        assert b.trace.undef_expansions >= 1


class TestExecTrace:
    def test_as_dict_lists_every_counter(self):
        t = ExecTrace(steps=3, loads=1, ub_reason="why")
        d = t.as_dict()
        assert d["steps"] == 3 and d["loads"] == 1
        assert d["ub_reason"] == "why"
        assert set(d) == {
            "steps", "loads", "stores", "poison_created",
            "undef_expansions", "freeze_resolutions", "external_calls",
            "ub_triggers", "ub_reason", "fuel_exhausted",
        }

    def test_merge_accumulates_and_keeps_first_reason(self):
        a = ExecTrace(steps=2, ub_reason="first")
        b = ExecTrace(steps=3, ub_reason="second", ub_triggers=1)
        a.merge(b)
        assert a.steps == 5
        assert a.ub_triggers == 1
        assert a.ub_reason == "first"

    def test_str_mentions_key_counters(self):
        s = str(ExecTrace(steps=7, ub_reason="branch on poison"))
        assert "steps=7" in s and "branch on poison" in s
