"""The stable-names check: every stat the stack can emit is cataloged.

Renaming a counter or adding one without a catalog entry breaks
dashboards, Prometheus scrapes, and BENCH gates silently — so the
catalog is the reviewed interface and this test is its enforcement.
"""

import importlib
import pkgutil
import re

import repro
from repro.diag import default_registry
from repro.diag.metrics_catalog import (
    METRIC_CATALOG,
    STAT_CATALOG,
    catalog_prom_names,
    is_cataloged,
    uncataloged,
)

_PROM_NAME = re.compile(r"^[a-z_][a-z0-9_]*$")


def _import_everything():
    """Import every repro module so all module-scope Statistics
    register in the default registry."""
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        importlib.import_module(info.name)


class TestCatalogCoverage:
    def test_every_registered_stat_is_cataloged(self):
        _import_everything()
        pairs = [(p, n) for p, n, _ in default_registry()]
        assert pairs, "no statistics registered at all?"
        missing = uncataloged(pairs)
        assert not missing, (
            f"uncataloged stats {sorted(missing)}: add them to "
            f"repro/diag/metrics_catalog.py (reviewed interface)")

    def test_catalog_entries_look_like_stats(self):
        for pass_name, counter in STAT_CATALOG:
            assert pass_name and counter
            assert counter.startswith("num-"), (pass_name, counter)


class TestPatterns:
    def test_per_pass_guard_failures_match_any_pass(self):
        assert is_cataloged("instcombine", "num-guard-failures")
        assert is_cataloged("some-future-pass", "num-guard-failures")

    def test_lint_rules_are_open_ended(self):
        assert is_cataloged("lint", "num-some-new-rule")

    def test_unknown_stats_are_rejected(self):
        assert not is_cataloged("refine", "num-borrowed-checks")
        assert not is_cataloged("nope", "num-things")


class TestPromNames:
    def test_every_catalog_name_is_prometheus_legal(self):
        for name in catalog_prom_names():
            assert _PROM_NAME.match(name), name

    def test_stat_names_are_distinct_after_sanitization(self):
        names = [name for name in catalog_prom_names()
                 if name not in METRIC_CATALOG]
        assert len(names) == len(set(names)) == len(STAT_CATALOG)
