"""The statistics registry: registration, sharing, reset, emission."""

import json

from repro.diag import (
    Statistic,
    StatsRegistry,
    default_registry,
    format_stats,
    reset_stats,
    stats_snapshot,
)


class TestRegistration:
    def test_counter_starts_at_zero(self):
        reg = StatsRegistry()
        s = Statistic("mypass", "num-things", "Things done", registry=reg)
        assert s.value == 0
        assert reg.get("mypass", "num-things") == 0
        assert reg.description("mypass", "num-things") == "Things done"

    def test_registration_is_visible_before_any_increment(self):
        reg = StatsRegistry()
        Statistic("mypass", "num-things", registry=reg)
        assert list(reg) == [("mypass", "num-things", 0)]

    def test_handles_with_same_key_share_one_value(self):
        reg = StatsRegistry()
        a = Statistic("p", "n", registry=reg)
        b = Statistic("p", "n", registry=reg)
        a.inc()
        b.inc(2)
        assert a.value == b.value == 3

    def test_increment_styles(self):
        reg = StatsRegistry()
        s = Statistic("p", "n", registry=reg)
        s.inc()
        s.inc(4)
        s += 2
        assert int(s) == 7

    def test_second_registration_keeps_description(self):
        reg = StatsRegistry()
        Statistic("p", "n", "the description", registry=reg)
        Statistic("p", "n", registry=reg)  # no description
        assert reg.description("p", "n") == "the description"


class TestReset:
    def test_reset_zeroes_but_keeps_registrations(self):
        reg = StatsRegistry()
        s = Statistic("p", "n", "desc", registry=reg)
        s.inc(5)
        reg.reset()
        assert s.value == 0
        # still registered: shows up (as zero) in full iteration
        assert ("p", "n", 0) in list(reg)
        assert reg.description("p", "n") == "desc"

    def test_reset_stats_zeroes_the_default_registry(self):
        s = Statistic("diag-test", "num-reset-check")
        s.inc(3)
        assert default_registry().get("diag-test", "num-reset-check") == 3
        reset_stats()
        assert s.value == 0


class TestSnapshotsAndJson:
    def _populated(self):
        reg = StatsRegistry()
        Statistic("alpha", "one", registry=reg).inc(1)
        Statistic("alpha", "two", registry=reg).inc(2)
        Statistic("beta", "zero", registry=reg)
        return reg

    def test_snapshot_is_nested_by_pass(self):
        reg = self._populated()
        assert reg.snapshot() == {
            "alpha": {"one": 1, "two": 2},
            "beta": {"zero": 0},
        }

    def test_snapshot_nonzero_only_drops_zero_counters(self):
        reg = self._populated()
        assert reg.snapshot(nonzero_only=True) == {
            "alpha": {"one": 1, "two": 2},
        }

    def test_json_round_trip(self):
        reg = self._populated()
        text = reg.to_json()
        restored = StatsRegistry()
        restored.load_dict(json.loads(text))
        assert restored.snapshot() == reg.snapshot()
        assert restored.get("alpha", "two") == 2

    def test_format_text_reports_values_and_descriptions(self):
        reg = StatsRegistry()
        Statistic("loop-unswitch", "num-conditions-frozen",
                  "Hoisted conditions frozen", registry=reg).inc(7)
        text = reg.format_text()
        assert "Statistics Collected" in text
        assert "7 loop-unswitch - num-conditions-frozen" in text
        assert "(Hoisted conditions frozen)" in text

    def test_format_text_with_no_counters(self):
        assert "(no statistics collected)" in StatsRegistry().format_text()


class TestCompilerCounters:
    """The passes register their counters at import time, in the
    process-wide default registry."""

    def test_known_counters_are_registered(self):
        import repro.opt  # noqa: F401  (importing registers the counters)
        import repro.semantics  # noqa: F401

        snap = stats_snapshot()
        assert "num-combined" in snap["instcombine"]
        assert "num-selects-frozen" in snap["instcombine"]
        assert "num-conditions-frozen" in snap["loop-unswitch"]
        assert "num-fuel-exhausted" in snap["interp"]

    def test_format_stats_matches_default_registry(self):
        reset_stats()
        s = Statistic("diag-test", "num-format-check", "for the test")
        s.inc(2)
        assert "2 diag-test" in format_stats()
        reset_stats()
