"""CLI surface of the resilience layer: guarded compile flags, exit
codes, and the ``crash``/``bisect`` subcommands."""

import json
from pathlib import Path

import pytest

from repro.cli import EXIT_GUARDED_FAILURE, main

EXAMPLE = str(Path(__file__).resolve().parents[2]
              / "examples" / "unswitch_gvn.ll")

CHAOS = ["--chaos", "--chaos-seed", "7", "--chaos-rate", "0.3"]


def run_cli(capsys, *argv):
    rc = main(list(argv))
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestGuardedCompile:
    def test_chaos_recover_exits_zero_with_report(self, capsys):
        rc, out, _ = run_cli(capsys, EXAMPLE, *CHAOS, "--verify-each",
                             "--json")
        assert rc == 0
        report = json.loads(out)
        resilience = report["resilience"]
        assert resilience["policy"] == "recover"
        assert resilience["failures"] > 0
        assert resilience["recoveries"] == resilience["failures"]
        assert resilience["chaos"]["injected"] > 0

    def test_strict_chaos_exits_nonzero(self, capsys):
        rc, _, err = run_cli(capsys, EXAMPLE, *CHAOS, "--verify-each",
                             "--policy", "strict")
        assert rc == EXIT_GUARDED_FAILURE
        assert "failed on @" in err

    def test_verify_each_alone_defaults_to_strict(self, capsys):
        rc, out, _ = run_cli(capsys, EXAMPLE, "--verify-each", "--json")
        assert rc == 0  # clean pipeline: nothing to be strict about
        assert json.loads(out)["resilience"]["policy"] == "strict"

    def test_unguarded_compile_has_no_resilience_section(self, capsys):
        rc, out, _ = run_cli(capsys, EXAMPLE, "--json")
        assert rc == 0
        assert "resilience" not in json.loads(out)

    def test_crash_dir_writes_bundles(self, capsys, tmp_path):
        crash_dir = tmp_path / "crashes"
        rc, out, _ = run_cli(capsys, EXAMPLE, *CHAOS, "--verify-each",
                             "--crash-dir", str(crash_dir), "--json")
        assert rc == 0
        bundles = json.loads(out)["resilience"]["bundles"]
        assert bundles
        assert all((Path(p) / "bundle.json").is_file() for p in bundles)
        assert all((Path(p) / "before.ll").is_file() for p in bundles)

    def test_opt_bisect_limit_zero_disables_all_passes(self, capsys):
        rc, out, _ = run_cli(capsys, EXAMPLE, "--opt-bisect-limit", "0",
                             "--emit-ir", "--json")
        assert rc == 0
        report = json.loads(out)
        assert report["resilience"]["applications"] > 0
        # with every pass skipped the module still round-trips
        assert "define" in report["ir"]


class TestCrashSubcommand:
    @pytest.fixture()
    def crash_dir(self, capsys, tmp_path):
        crash_dir = tmp_path / "crashes"
        rc, _, _ = run_cli(capsys, EXAMPLE, *CHAOS, "--verify-each",
                           "--crash-dir", str(crash_dir))
        assert rc == 0
        return str(crash_dir)

    def test_list(self, capsys, crash_dir):
        rc, out, _ = run_cli(capsys, "crash", "list", crash_dir, "--json")
        assert rc == 0
        rows = json.loads(out)
        assert rows
        assert all(row["pass"] for row in rows)

    def test_show(self, capsys, crash_dir):
        rc, out, _ = run_cli(capsys, "crash", "list", crash_dir, "--json")
        bundle = json.loads(out)[0]["path"]
        rc, out, _ = run_cli(capsys, "crash", "show", bundle, "--ir")
        assert rc == 0
        assert "bundle_id:" in out
        assert "define" in out

    def test_replay_all_reproduce(self, capsys, crash_dir):
        rc, out, _ = run_cli(capsys, "crash", "replay", crash_dir,
                             "--json")
        assert rc == 0
        results = json.loads(out)
        assert results
        assert all(r["reproduced"] for r in results)

    def test_replay_missing_path_fails(self, capsys, tmp_path):
        rc, _, err = run_cli(capsys, "crash", "replay",
                             str(tmp_path / "nope"))
        assert rc == 1
        assert "no bundles" in err


class TestBisectSubcommand:
    def test_pinpoints_injected_application(self, capsys):
        rc, out, _ = run_cli(capsys, "bisect", EXAMPLE,
                             "--chaos-fail-at", "5",
                             "--chaos-mode", "corrupt", "--json")
        assert rc == 0
        result = json.loads(out)
        assert result["status"] == "found"
        assert result["culprit"] == 5
        assert result["pass"]

    def test_clean_input_reports_clean(self, capsys):
        rc, out, _ = run_cli(capsys, "bisect", EXAMPLE, "--json")
        assert rc == 0
        assert json.loads(out)["status"] == "clean"

    def test_interp_checker(self, capsys):
        rc, out, _ = run_cli(capsys, "bisect", EXAMPLE,
                             "--checker", "interp",
                             "--chaos-fail-at", "3",
                             "--chaos-mode", "corrupt", "--json")
        assert rc == 0
        assert json.loads(out)["status"] == "found"


class TestCampaignResilienceFlags:
    def test_chaos_campaign_summary(self, capsys, tmp_path):
        rc, out, _ = run_cli(
            capsys, "campaign", "run", "--width", "2",
            "--instructions", "1", "--opcodes", "mul,shl",
            "--pipeline", "o2", "--shard-size", "64",
            "--out", str(tmp_path), "--chaos-seed", "11",
            "--chaos-rate", "0.02", "--json")
        assert rc == 0
        summary = json.loads(out)
        assert summary["shards_errored"] == []
        assert summary["recoveries"] > 0
        assert summary["bundles"]
        assert (tmp_path / "crashes").is_dir()
