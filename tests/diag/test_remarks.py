"""Optimization remarks: emitter contract, serialization, and the
legacy-vs-fixed pipelines telling different stories on the paper's
Section 3 examples."""

import json

import pytest

from repro.diag import (
    REMARK_ANALYSIS,
    REMARK_PASSED,
    Remark,
    RemarkEmitter,
    default_emitter,
    emit_remark,
    remarks_from_json,
    remarks_to_json,
)
from repro.ir import parse_function
from repro.opt import InstCombine, LoopUnswitch, OptConfig


class TestEmitter:
    def test_no_subscribers_is_a_noop(self):
        e = RemarkEmitter()
        assert not e.active
        assert e.emit("p", "nothing listens") is None

    def test_subscribers_called_in_subscription_order(self):
        e = RemarkEmitter()
        order = []
        e.subscribe(lambda r: order.append(("first", r.message)))
        e.subscribe(lambda r: order.append(("second", r.message)))
        e.emit("p", "m1")
        e.emit("p", "m2")
        assert order == [("first", "m1"), ("second", "m1"),
                         ("first", "m2"), ("second", "m2")]

    def test_unsubscribe_stops_delivery(self):
        e = RemarkEmitter()
        seen = []
        cb = e.subscribe(seen.append)
        e.emit("p", "before")
        e.unsubscribe(cb)
        e.emit("p", "after")
        assert [r.message for r in seen] == ["before"]

    def test_collect_captures_and_detaches(self):
        e = RemarkEmitter()
        with e.collect() as remarks:
            e.emit("p", "inside")
        e.emit("p", "outside")
        assert [r.message for r in remarks] == ["inside"]
        assert not e.active

    def test_nested_collectors_both_receive(self):
        e = RemarkEmitter()
        with e.collect() as outer:
            with e.collect() as inner:
                e.emit("p", "m")
        assert len(outer) == len(inner) == 1

    def test_unknown_kind_rejected(self):
        e = RemarkEmitter()
        e.subscribe(lambda r: None)
        with pytest.raises(ValueError):
            e.emit("p", "m", kind="celebration")

    def test_module_level_emit_uses_default_emitter(self):
        with default_emitter().collect() as remarks:
            emit_remark("p", "via helper", function="f", block="entry",
                        instruction="%x")
        assert len(remarks) == 1
        r = remarks[0]
        assert (r.pass_name, r.function, r.block, r.instruction) == \
            ("p", "f", "entry", "%x")


class TestSerialization:
    REMARK = Remark(pass_name="loop-unswitch", kind=REMARK_PASSED,
                    function="f", block="entry", instruction="%c2.fr",
                    message="froze hoisted condition %c2")

    def test_single_remark_round_trip(self):
        assert Remark.from_json(self.REMARK.to_json()) == self.REMARK

    def test_list_round_trip(self):
        other = Remark(pass_name="gvn", kind=REMARK_ANALYSIS, function="g",
                       block="b", instruction="", message="m")
        text = remarks_to_json([self.REMARK, other])
        assert remarks_from_json(text) == [self.REMARK, other]
        # and the payload is plain JSON a non-Python consumer can read
        payload = json.loads(text)
        assert payload[0]["pass_name"] == "loop-unswitch"
        assert payload[0]["message"] == "froze hoisted condition %c2"

    def test_str_rendering(self):
        s = str(self.REMARK)
        assert s.startswith("loop-unswitch: froze hoisted condition %c2")
        assert "[@f:%entry]" in s
        missed = Remark(pass_name="p", kind="missed", function="",
                        block="", instruction="", message="declined")
        assert str(missed) == "p: declined (missed)"


UNSWITCH_LOOP = """
declare void @effect(i8)

define void @f(i1 %c2, i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %next, %latch ]
  %cmp = icmp ult i8 %i, %n
  br i1 %cmp, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  call void @effect(i8 1)
  br label %latch
e:
  call void @effect(i8 2)
  br label %latch
latch:
  %next = add i8 %i, 1
  br label %head
exit:
  ret void
}
"""

SELECT_ARITH = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 %x, i1 false
  ret i1 %s
}
"""


class TestLegacyVsFixedStreams:
    """Section 3/5.1: the fixed and legacy pipelines make *different*
    decisions on the motivating examples, and the remark streams are
    where that difference becomes observable."""

    def _run(self, pass_cls, config, source):
        fn = parse_function(source)
        with default_emitter().collect() as remarks:
            pass_cls(config).run_on_function(fn)
        return remarks

    def test_unswitch_fixed_freezes_legacy_does_not(self):
        fixed = self._run(LoopUnswitch, OptConfig.fixed(), UNSWITCH_LOOP)
        legacy = self._run(LoopUnswitch, OptConfig.legacy(), UNSWITCH_LOOP)

        # both unswitch...
        assert any("unswitched loop" in r.message for r in fixed)
        assert any("unswitched loop" in r.message for r in legacy)
        # ...but only the fixed pipeline freezes the hoisted condition
        froze = [r for r in fixed if "froze hoisted condition" in r.message]
        assert froze and froze[0].kind == REMARK_PASSED
        assert froze[0].instruction  # anchored to the freeze instruction
        assert not any("froze" in r.message for r in legacy)
        # the legacy stream instead explains the latent bug
        warn = [r for r in legacy if "without freeze" in r.message]
        assert warn and warn[0].kind == REMARK_ANALYSIS

    def test_select_arith_streams_differ(self):
        """Section 3.4's select -> and rewrite: the fixed pipeline
        freezes the non-selected arm, the legacy one leaks its poison —
        and says so, as an analysis remark."""
        fixed = self._run(InstCombine, OptConfig.fixed(), SELECT_ARITH)
        legacy = self._run(InstCombine, OptConfig.legacy(), SELECT_ARITH)
        assert any("froze non-selected arm" in r.message for r in fixed)
        leaks = [r for r in legacy if "without freezing" in r.message]
        assert leaks and leaks[0].kind == REMARK_ANALYSIS
        assert [r.message for r in fixed] != [r.message for r in legacy]

    def test_passes_stay_silent_with_no_subscribers(self):
        # instrumented passes are free when nobody listens: nothing
        # blows up and no state accumulates in the emitter
        fn = parse_function(UNSWITCH_LOOP)
        LoopUnswitch(OptConfig.fixed()).run_on_function(fn)
        assert not default_emitter().active
