"""Hierarchical spans: the collector, the null fast path, the JSONL
sink, and the phase cheap tier."""

import json

from repro.diag import flat_delta
from repro.diag.spans import (
    NULL_SPAN,
    SPAN_SCHEMA,
    SpanCollector,
    current_collector,
    phase,
    set_collector,
    span,
)


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_singleton(self):
        sc = SpanCollector()
        assert not sc.enabled
        assert sc.span("anything") is NULL_SPAN
        assert sc.phase("anything") is NULL_SPAN

    def test_null_span_supports_the_full_surface(self):
        with NULL_SPAN as sp:
            assert sp.set(verdict="verified") is sp
            assert sp.stats == {}
            assert sp.attrs == {}

    def test_module_helpers_default_to_disabled(self):
        assert not current_collector().enabled or True  # never raises
        with span("x", cat="test"):
            with phase("y"):
                pass

    def test_phase_outside_any_span_is_null(self):
        sc = SpanCollector(keep=True)
        assert sc.phase("orphan") is NULL_SPAN


class TestInMemoryCollection:
    def test_spans_nest_and_record_parents(self):
        sc = SpanCollector(keep=True)
        with sc.span("outer", cat="test") as outer:
            with sc.span("inner", cat="test") as inner:
                pass
        assert [s.name for s in sc.spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.wall >= inner.wall >= 0.0
        assert outer.cpu >= 0.0

    def test_attrs_and_function_ride_in_the_dict(self):
        sc = SpanCollector(keep=True)
        with sc.span("check", cat="refine", function="f") as sp:
            sp.set(verdict="verified", inputs=3)
        d = sc.spans[0].as_dict()
        assert d["name"] == "check"
        assert d["cat"] == "refine"
        assert d["fn"] == "f"
        assert d["attrs"] == {"verdict": "verified", "inputs": 3}
        json.dumps(d)  # JSON-safe

    def test_phases_accumulate_into_the_enclosing_span(self):
        sc = SpanCollector(keep=True)
        with sc.span("check", cat="refine"):
            for _ in range(5):
                with sc.phase("enumerate"):
                    pass
            with sc.phase("compare"):
                pass
        d = sc.spans[0].as_dict()
        assert d["phases"]["enumerate"]["count"] == 5
        assert d["phases"]["compare"]["count"] == 1
        assert d["phases"]["enumerate"]["seconds"] >= 0.0
        # phases emit no records of their own (the cheap tier)
        assert len(sc.spans) == 1

    def test_current_returns_the_innermost_open_span(self):
        sc = SpanCollector(keep=True)
        assert sc.current() is None
        with sc.span("outer") as outer:
            assert sc.current() is outer
            with sc.span("inner") as inner:
                assert sc.current() is inner
            assert sc.current() is outer
        assert sc.current() is None

    def test_on_complete_callbacks_see_finished_spans(self):
        sc = SpanCollector(keep=True)
        seen = []
        sc.on_complete.append(lambda s: seen.append(s.name))
        with sc.span("a"):
            with sc.span("b"):
                pass
        assert seen == ["b", "a"]


class TestJsonlSink:
    def test_open_writes_meta_then_streams_spans(self, tmp_path):
        path = str(tmp_path / "spans-shard0000.jsonl")
        sc = SpanCollector()
        sc.open(path, pid=3, label="shard 3")
        assert sc.enabled
        with sc.span("work", cat="test"):
            pass
        sc.close()
        assert not sc.enabled
        lines = [json.loads(l) for l in open(path)]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["schema"] == SPAN_SCHEMA
        assert lines[0]["pid"] == 3
        assert lines[0]["label"] == "shard 3"
        # spans are batched: one JSON array line per SINK_BATCH spans
        assert isinstance(lines[1], list)
        assert lines[1][0]["name"] == "work"

    def test_reopen_appends_a_new_session(self, tmp_path):
        path = str(tmp_path / "spans-shard0000.jsonl")
        for attempt in range(2):
            sc = SpanCollector()
            sc.open(path, pid=0, label="shard 0")
            with sc.span("attempt"):
                pass
            sc.close()
        lines = [json.loads(l) for l in open(path)]
        metas = [l for l in lines
                 if isinstance(l, dict) and l.get("kind") == "meta"]
        assert len(metas) == 2  # retried shard = fresh id namespace

    def test_open_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "spans-shard0000.jsonl")
        sc = SpanCollector()
        sc.open(path, pid=0)
        sc.close()
        assert (tmp_path / "deep").is_dir()


class TestInstallation:
    def test_set_collector_swaps_and_restores(self):
        mine = SpanCollector(keep=True)
        old = set_collector(mine)
        try:
            with span("routed", cat="test"):
                pass
            assert [s.name for s in mine.spans] == ["routed"]
        finally:
            set_collector(old)
        assert current_collector() is old


class TestStatsDelta:
    def test_flat_delta_reports_only_increments(self):
        before = {"refine/num-checks": 2, "perf/num-memo-hits": 1}
        after = {"refine/num-checks": 5, "perf/num-memo-hits": 1,
                 "smt/num-session-queries": 4}
        assert flat_delta(before, after) == {
            "refine/num-checks": 3,
            "smt/num-session-queries": 4,
        }
