"""Trace export round-trips: arbitrary span forests written as JSONL
survive merging into a Chrome trace with ids, parents, phases, and
stats intact — torn final lines and shard retries included."""

import json
import shutil

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.diag.spans import SpanCollector
from repro.diag.trace_export import (
    build_profile,
    load_span_file,
    merge_trace,
    render_top,
)

_NAMES = st.sampled_from(
    ["shard", "check-function", "refine-check", "smt-query",
     "plan-compile", "instcombine"])
_CATS = st.sampled_from(["campaign", "refine", "smt", "interp", "pass"])


@st.composite
def span_records(draw, max_spans=8):
    """A session's span list with sequential ids and well-formed
    parents (every parent id is an earlier span's id)."""
    n = draw(st.integers(min_value=0, max_value=max_spans))
    spans = []
    for i in range(n):
        record = {
            "name": draw(_NAMES),
            "cat": draw(_CATS),
            "id": i + 1,
            "ts": draw(st.floats(min_value=0.0, max_value=1e4,
                                 allow_nan=False, allow_infinity=False)),
            "dur": draw(st.floats(min_value=0.0, max_value=10.0,
                                  allow_nan=False,
                                  allow_infinity=False)),
            "cpu": draw(st.floats(min_value=0.0, max_value=10.0,
                                  allow_nan=False,
                                  allow_infinity=False)),
        }
        if i and draw(st.booleans()):
            record["parent"] = draw(st.integers(min_value=1, max_value=i))
        if draw(st.booleans()):
            record["phases"] = {
                "enumerate": {"count": draw(st.integers(1, 100)),
                              "seconds": 0.001, "cpu_seconds": 0.001}}
        if draw(st.booleans()):
            record["stats"] = {
                "perf/num-memo-hits": draw(st.integers(0, 5)),
                "perf/num-memo-misses": draw(st.integers(0, 5))}
        spans.append(record)
    return spans


@st.composite
def shard_files(draw, max_shards=3, max_sessions=2):
    """{shard id: [session span lists]} — one file per shard, possibly
    re-opened (retried) for extra sessions."""
    num_shards = draw(st.integers(min_value=1, max_value=max_shards))
    return {
        shard: [draw(span_records())
                for _ in range(draw(st.integers(1, max_sessions)))]
        for shard in range(num_shards)
    }


def _write_files(tmp_path, files, torn=False):
    """Materialize the generated shard files into a fresh spans dir
    (hypothesis reuses one tmp_path across examples)."""
    out = tmp_path / "spans"
    if out.exists():
        shutil.rmtree(out)
    out.mkdir()
    for shard, sessions in files.items():
        path = out / f"spans-shard{shard:04d}.jsonl"
        with open(path, "w") as f:
            for session in sessions:
                f.write(json.dumps({"kind": "meta", "schema": 1,
                                    "pid": shard, "os_pid": 1,
                                    "label": f"shard {shard}"}) + "\n")
                for record in session:
                    f.write(json.dumps(record) + "\n")
            if torn:
                f.write('{"name": "killed", "ts": 1.0, "du')
    return out


@settings(max_examples=30,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(files=shard_files())
def test_merged_trace_is_wellformed(tmp_path, files):
    out = _write_files(tmp_path, files)
    trace = merge_trace(str(out), str(tmp_path / "trace.json"))

    # round-trips through JSON byte-for-byte
    assert json.loads(json.dumps(trace)) == trace
    assert json.load(open(tmp_path / "trace.json")) == trace

    events = trace["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    total_spans = sum(len(s) for sessions in files.values()
                      for s in sessions)
    assert len(xs) == total_spans

    # every shard appears as a named pid; every lane is named
    pids = {e["pid"] for e in events if e["name"] == "process_name"}
    assert pids == set(files)
    named_tids = {(e["pid"], e["tid"]) for e in events
                  if e["name"] == "thread_name"}
    assert {(e["pid"], e["tid"]) for e in xs} <= named_tids

    for e in xs:
        assert e["ts"] >= 0.0 and e["dur"] >= 0.0  # rebased, µs


@settings(max_examples=30,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(files=shard_files())
def test_parent_ids_resolve_within_their_session(tmp_path, files):
    out = _write_files(tmp_path, files)
    trace = merge_trace(str(out))
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    ids = {(e["pid"], e["args"]["session"], e["args"]["id"])
           for e in xs}
    for e in xs:
        parent = e["args"].get("parent")
        if parent is not None:
            key = (e["pid"], e["args"]["session"], parent)
            assert key in ids, f"dangling parent {key}"


@settings(max_examples=30,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(files=shard_files(), sort=st.sampled_from(["self", "total",
                                                  "count"]))
def test_profile_aggregates_and_renders(tmp_path, files, sort):
    out = _write_files(tmp_path, files)
    trace = merge_trace(str(out))
    profile = build_profile(trace)
    for row in profile.values():
        assert row["count"] >= 1
        assert row["self_us"] >= 0.0
        if row["cat"] != "phase":
            assert row["self_us"] <= row["total_us"] + 1e-6
    text = render_top(profile, sort=sort)
    assert text  # renders something for every generated forest


@settings(max_examples=20,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(files=shard_files())
def test_torn_final_lines_are_tolerated(tmp_path, files):
    out = _write_files(tmp_path, files, torn=True)
    trace = merge_trace(str(out))
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    total_spans = sum(len(s) for sessions in files.values()
                      for s in sessions)
    assert len(xs) == total_spans  # the torn record is dropped, no crash


class TestCollectorRoundTrip:
    def test_real_collector_output_merges_cleanly(self, tmp_path):
        for shard in (0, 1):
            sc = SpanCollector()
            sc.open(str(tmp_path / f"spans-shard{shard:04d}.jsonl"),
                    pid=shard, label=f"shard {shard}")
            with sc.span("shard", cat="campaign"):
                with sc.span("check-function", cat="campaign",
                             function="f") as sp:
                    with sc.phase("enumerate-src"):
                        pass
                    sp.set(verdict="verified")
                    sp.stats = {"refine/num-checks": 1}
            sc.close()
        trace = merge_trace(str(tmp_path))
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 4
        assert {e["pid"] for e in xs} == {0, 1}
        check = next(e for e in xs if e["name"] == "check-function")
        assert check["args"]["attrs"]["verdict"] == "verified"
        assert check["args"]["stats"] == {"refine/num-checks": 1}
        assert check["args"]["phases"]["enumerate-src"]["count"] == 1

        profile = build_profile(trace)
        assert profile["check-function"]["count"] == 2
        assert profile["check-function/enumerate-src"]["cat"] == "phase"
        assert profile["shard"]["self_us"] <= profile["shard"]["total_us"]

    def test_loader_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "spans-shard0000.jsonl"
        path.write_text('\n{"kind": "meta", "pid": 0}\nnot json\n'
                        '{"name": "ok", "id": 1, "ts": 0.0, '
                        '"dur": 1.0}\n[1, 2]\n')
        records = load_span_file(str(path))
        assert [r.get("name", r.get("kind")) for r in records] == \
            ["meta", "ok"]

    def test_empty_directory_merges_to_an_empty_trace(self, tmp_path):
        trace = merge_trace(str(tmp_path))
        assert trace["traceEvents"] == []
        assert render_top(build_profile(trace)) == "(empty trace)"

    def test_sessions_do_not_leak_parents_across_retries(self, tmp_path):
        # Two sessions in one file reuse span id 1; ids must resolve
        # within their own session namespace only.
        path = tmp_path / "spans-shard0000.jsonl"
        lines = []
        for _ in range(2):
            lines.append({"kind": "meta", "pid": 0, "label": "shard 0"})
            lines.append({"name": "root", "cat": "campaign", "id": 1,
                          "ts": 0.0, "dur": 2.0})
            lines.append({"name": "child", "cat": "campaign", "id": 2,
                          "parent": 1, "ts": 0.5, "dur": 1.0})
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        merged = merge_trace(str(tmp_path))
        xs = [e for e in merged["traceEvents"] if e["ph"] == "X"]
        assert {e["args"]["session"] for e in xs} == {0, 1}
        profile = build_profile(merged)
        # each root's self time excludes exactly its own session's child
        assert profile["root"]["count"] == 2
        assert profile["root"]["self_us"] >= 0
