"""The typed-metrics layer: registries, snapshots, the Prometheus
renderer, and the JSONL time series."""

import json

import pytest

from repro.diag.metrics import (
    MetricsRegistry,
    MetricsWriter,
    load_metrics_series,
    merge_latest_metrics,
    metrics_snapshot,
    prom_name,
    render_prometheus,
    stats_as_metrics,
)
from repro.diag.stats import StatsRegistry, Statistic


class TestNames:
    def test_prom_name_is_stable_and_sanitized(self):
        assert prom_name("refine", "num-checks") == \
            "repro_refine_num_checks_total"
        assert prom_name("poison-flow", "num-branch-refinements") == \
            "repro_poison_flow_num_branch_refinements_total"

    def test_registry_rejects_invalid_names(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("Bad-Name")
        with pytest.raises(ValueError):
            reg.gauge("9starts_with_digit")


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", help_text="things")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["counters"]["repro_things_total"] == 5

    def test_gauge_tracks_last_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_inflight")
        g.set(3)
        g.set(1)
        assert reg.snapshot()["gauges"]["repro_inflight"] == 1

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_span_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["repro_span_seconds"]
        buckets = snap["buckets"]
        assert buckets[repr(0.1)] == 1
        assert buckets[repr(1.0)] == 2  # cumulative
        assert buckets["+Inf"] == 3
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)

    def test_same_name_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")


class TestSnapshots:
    def test_stats_ride_along_under_prom_names(self):
        stats = StatsRegistry()
        Statistic("refine", "num-checks", registry=stats).inc(7)
        snap = metrics_snapshot(MetricsRegistry(), stats)
        assert snap["stats"]["repro_refine_num_checks_total"] == 7

    def test_stats_as_metrics_covers_every_counter(self):
        stats = StatsRegistry()
        Statistic("a", "num-x", registry=stats)
        Statistic("b", "num-y", registry=stats).inc()
        out = stats_as_metrics(stats)
        assert out == {"repro_a_num_x_total": 0,
                       "repro_b_num_y_total": 1}


class TestPrometheusRender:
    def test_render_has_type_lines_and_values(self):
        reg = MetricsRegistry()
        reg.counter("repro_checks_total").inc(3)
        reg.gauge("repro_inflight").set(2)
        stats = StatsRegistry()
        Statistic("refine", "num-checks", registry=stats).inc(5)
        text = render_prometheus(metrics_snapshot(reg, stats))
        assert "# TYPE repro_checks_total counter" in text
        assert "repro_checks_total 3" in text
        assert "# TYPE repro_inflight gauge" in text
        assert "repro_refine_num_checks_total 5" in text
        assert text.endswith("\n")

    def test_render_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.histogram("repro_span_seconds", buckets=(1.0,)).observe(0.5)
        text = render_prometheus(metrics_snapshot(reg, StatsRegistry()))
        assert '# TYPE repro_span_seconds histogram' in text
        assert 'repro_span_seconds_bucket{le="1.0"} 1' in text
        assert "repro_span_seconds_sum" in text
        assert "repro_span_seconds_count 1" in text

    def test_help_texts_are_emitted_when_known(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", help_text="Things done").inc()
        snap = metrics_snapshot(reg, StatsRegistry())
        text = render_prometheus(snap, help_texts=reg.help_texts())
        assert "# HELP repro_x_total Things done" in text


class TestTimeSeries:
    def _snap(self, n):
        return {"counters": {"repro_x_total": n}, "gauges": {},
                "histograms": {}, "stats": {"repro_s_total": n}}

    def test_writer_appends_sequenced_records(self, tmp_path):
        path = str(tmp_path / "metrics-shard0000.jsonl")
        w = MetricsWriter(path, interval=0.0)
        w.flush(self._snap(1), shard=0)
        w.flush(self._snap(2), shard=0, final=True)
        series = load_metrics_series(path)
        assert [r["seq"] for r in series] == [0, 1]
        assert series[-1]["final"] is True
        assert series[-1]["metrics"]["counters"]["repro_x_total"] == 2

    def test_maybe_flush_respects_the_interval(self, tmp_path):
        w = MetricsWriter(str(tmp_path / "m.jsonl"), interval=3600.0)
        assert w.maybe_flush(self._snap(1)) is True  # first always
        assert w.maybe_flush(self._snap(2)) is False
        assert w.flushes == 1

    def test_loader_tolerates_torn_final_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        w = MetricsWriter(str(path), interval=0.0)
        w.flush(self._snap(1))
        with open(path, "a") as f:
            f.write('{"ts": 1, "seq": 1, "metr')  # killed mid-write
        series = load_metrics_series(str(path))
        assert len(series) == 1

    def test_merge_sums_counters_and_stats_across_shards(self, tmp_path):
        for shard, value in ((0, 3), (1, 4)):
            w = MetricsWriter(
                str(tmp_path / f"metrics-shard{shard:04d}.jsonl"),
                interval=0.0)
            w.flush(self._snap(1))       # stale snapshot
            w.flush(self._snap(value))   # latest wins per shard
        merged = merge_latest_metrics(
            sorted(str(p) for p in tmp_path.glob("*.jsonl")))
        assert merged["counters"]["repro_x_total"] == 7
        assert merged["stats"]["repro_s_total"] == 7

    def test_merge_folds_histograms_bucketwise(self, tmp_path):
        for shard in (0, 1):
            snap = {"counters": {}, "gauges": {"repro_g": shard},
                    "stats": {},
                    "histograms": {"repro_h": {
                        "buckets": {"1.0": 2, "+Inf": 3},
                        "sum": 1.5, "count": 3}}}
            w = MetricsWriter(
                str(tmp_path / f"metrics-shard{shard:04d}.jsonl"),
                interval=0.0)
            w.flush(snap)
        merged = merge_latest_metrics(
            sorted(str(p) for p in tmp_path.glob("*.jsonl")))
        assert merged["histograms"]["repro_h"]["buckets"]["1.0"] == 4
        assert merged["histograms"]["repro_h"]["count"] == 6
        assert merged["histograms"]["repro_h"]["sum"] == pytest.approx(3.0)
        assert merged["gauges"]["repro_g"] == 1  # last value

    def test_records_are_json_per_line(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        MetricsWriter(path, interval=0.0).flush(self._snap(1))
        with open(path) as f:
            for line in f:
                json.loads(line)
