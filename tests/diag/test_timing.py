"""Hierarchical pass timing: accounting, failure safety, reporting,
and the PassManager integration."""

import pytest

from repro.diag import PassStats, PassTiming, TimeRecord
from repro.ir import parse_function, parse_module
from repro.opt import FunctionPass, OptConfig, PassManager, quick_pipeline

SIMPLE_FN = """
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 0
  %m = mul i8 %a, 2
  ret i8 %m
}
"""


class TestMeasure:
    def test_records_runs_changes_and_seconds(self):
        t = PassTiming()
        with t.measure("mypass", "f") as m:
            m.changed = True
        with t.measure("mypass", "g"):
            pass
        stats = t.passes["mypass"]
        assert stats.runs == 2
        assert stats.changes == 1
        assert stats.seconds > 0.0
        assert stats.per_function["f"].changes == 1
        assert stats.per_function["g"].changes == 0

    def test_raising_pass_still_recorded(self):
        """The try/finally contract: a pass that blows up mid-run still
        gets its wall time recorded with a matching runs increment."""
        t = PassTiming()
        with pytest.raises(RuntimeError):
            with t.measure("broken", "f"):
                raise RuntimeError("pass failed")
        stats = t.passes["broken"]
        assert stats.runs == 1
        assert stats.changes == 0
        assert stats.seconds > 0.0
        assert stats.per_function["f"].runs == 1

    def test_per_function_sums_to_pass_total(self):
        t = PassTiming()
        for fn in ("a", "b", "c"):
            with t.measure("p", fn):
                pass
        stats = t.passes["p"]
        assert abs(sum(r.seconds for r in stats.per_function.values())
                   - stats.seconds) < 1e-9

    def test_shared_collector_accumulates_across_managers(self):
        t = PassTiming()
        with t.measure("p", "f"):
            pass
        with t.measure("p", "f"):
            pass
        assert t.passes["p"].runs == 2
        assert t.passes["p"].per_function["f"].runs == 2


class TestSerialization:
    def _timed(self):
        t = PassTiming()
        with t.measure("zeta", "f") as m:
            m.changed = True
        with t.measure("alpha", "g"):
            pass
        return t

    def test_as_dict_shape_and_ordering(self):
        data = self._timed().as_dict()
        # sorted by pass name, stable keys at every level
        assert list(data) == ["alpha", "zeta"]
        zeta = data["zeta"]
        assert set(zeta) == {"runs", "changes", "seconds", "per_function"}
        assert zeta["per_function"]["f"]["runs"] == 1

    def test_report_table(self):
        t = self._timed()
        text = t.report(per_function=True)
        assert "Pass execution timing report" in text
        assert "Total execution time" in text
        assert "zeta" in text and "alpha" in text
        assert "@f" in text and "@g" in text
        # without the flag, no per-function rows
        assert "@f" not in t.report(per_function=False)

    def test_merge_folds_records(self):
        a, b = self._timed(), self._timed()
        a.merge(b)
        assert a.passes["zeta"].runs == 2
        assert a.passes["zeta"].per_function["f"].runs == 2
        assert b.passes["zeta"].runs == 1  # source unchanged

    def test_reset(self):
        t = self._timed()
        t.reset()
        assert t.passes == {} and t.total_seconds() == 0.0

    def test_time_record_as_dict(self):
        rec = TimeRecord(runs=2, changes=1, seconds=0.5)
        assert rec.as_dict() == {"runs": 2, "changes": 1, "seconds": 0.5}


class TestPassManagerIntegration:
    def test_pipeline_populates_shared_collector(self):
        timing = PassTiming()
        module = parse_module(SIMPLE_FN)
        pm = quick_pipeline(OptConfig.fixed(), timing=timing)
        pm.run(module)
        assert pm.timing is timing
        assert "instcombine" in timing.passes
        inst = timing.passes["instcombine"]
        assert inst.runs > 0
        assert inst.per_function["f"].runs == inst.runs

    def test_legacy_stats_surface_still_works(self):
        """tests/opt reads pm.stats[name].runs/.changes/.seconds; the
        hierarchical collector keeps that interface."""
        module = parse_module(SIMPLE_FN)
        pm = quick_pipeline(OptConfig.fixed())
        pm.run(module)
        stats = pm.stats["instcombine"]
        assert isinstance(stats, PassStats)
        assert stats.runs > 0 and stats.seconds >= 0.0

    def test_crashing_pass_is_accounted(self):
        class Exploding(FunctionPass):
            name = "exploding"

            def run_on_function(self, fn):
                raise RuntimeError("boom")

        fn = parse_function(SIMPLE_FN)
        pm = PassManager([Exploding(OptConfig.fixed())])
        with pytest.raises(RuntimeError):
            pm.run_on_function(fn)
        stats = pm.stats["exploding"]
        assert stats.runs == 1 and stats.seconds > 0.0

    def test_report_available_from_pass_manager(self):
        module = parse_module(SIMPLE_FN)
        pm = quick_pipeline(OptConfig.fixed())
        pm.run(module)
        assert "instcombine" in pm.report()
