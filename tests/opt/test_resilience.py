"""Resilient pass pipeline: snapshots, recovery policies, chaos,
bisect, and crash bundles."""

import pytest

from repro.ir import (
    parse_function,
    parse_module,
    print_function,
    verify_function,
    verify_module,
)
from repro.ir.verifier import VerificationError
from repro.opt import (
    ChaosEngine,
    ChaosFault,
    GuardedPassError,
    GuardedPassManager,
    OptConfig,
    guarded_pipeline,
    prototype_config,
)
from repro.opt.pass_manager import FunctionPass
from repro.opt.resilience import (
    bisect_failure,
    bundle_id,
    clone_function,
    discard_snapshot,
    list_bundles,
    load_bundle,
    make_bundle_payload,
    replay_bundle,
    restore_function,
    write_bundle,
)
from repro.opt.resilience.snapshot import print_standalone

LOOPY = """
define i8 @main(i8 %n, i1 %c) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %next, %latch ]
  %cmp = icmp ult i8 %i, %n
  br i1 %cmp, label %body, label %exit
body:
  br i1 %c, label %then, label %latch
then:
  br label %latch
latch:
  %inc = phi i8 [ 1, %body ], [ 2, %then ]
  %next = add i8 %i, %inc
  br label %head
exit:
  ret i8 %i
}
"""

CALLS = """
declare void @effect(i8)

define i8 @main(i8 %x) {
entry:
  %a = add i8 %x, 1
  call void @effect(i8 %a)
  ret i8 %a
}
"""


class CrashingPass(FunctionPass):
    """Raises after corrupting the function — the worst-case pass."""

    name = "crasher"

    def __init__(self, config=None, corrupt=True):
        super().__init__(config)
        self.corrupt = corrupt

    def run_on_function(self, fn):
        if self.corrupt:
            block = fn.blocks[0]
            term = block.instructions.pop()
            term.drop_all_operands()
            term.parent = None
        raise RuntimeError("boom")


class CorruptingPass(FunctionPass):
    """Silently breaks the IR and reports success."""

    name = "corrupter"

    def run_on_function(self, fn):
        block = fn.blocks[-1]
        term = block.instructions.pop()
        term.drop_all_operands()
        term.parent = None
        return True


class NopPass(FunctionPass):
    name = "nop"

    def run_on_function(self, fn):
        return False


class SpinnerPass(FunctionPass):
    """Always reports a change, keeping the fixpoint loop running."""

    name = "spinner"

    def run_on_function(self, fn):
        return True


# -- snapshots --------------------------------------------------------------
def test_snapshot_roundtrip_preserves_printer_output():
    fn = parse_function(LOOPY)
    original = print_function(fn)
    snap = clone_function(fn)
    # mutilate the live function
    fn.blocks[0].instructions.pop()
    restore_function(fn, snap)
    verify_function(fn)
    assert print_function(fn) == original


def test_snapshot_discard_leaves_no_stale_uses():
    fn = parse_function(LOOPY)
    arg = fn.args[0]
    uses_before = len(arg.uses)
    snap = clone_function(fn)
    discard_snapshot(snap)
    assert len(arg.uses) == uses_before


def test_snapshot_is_detached():
    fn = parse_function(LOOPY)
    snap = clone_function(fn)
    assert snap.module is None
    assert all(b.parent is snap for b in snap.blocks)
    live_insts = {id(i) for i in fn.instructions()}
    assert all(id(i) not in live_insts for i in snap.instructions())


def test_print_standalone_roundtrips_calls_and_globals():
    fn = parse_module(CALLS).get_function("main")
    text = print_standalone(fn)
    assert "declare void @effect(i8)" in text
    reparsed = parse_function(text)
    verify_function(reparsed)


# -- recovery policies ------------------------------------------------------
def test_recover_rolls_back_and_continues():
    fn = parse_function(LOOPY)
    original = print_function(fn)
    pm = GuardedPassManager([CrashingPass()], max_iterations=1,
                            policy="recover")
    pm.run_on_function(fn)
    assert print_function(fn) == original
    assert pm.num_recoveries == 1
    failure = pm.failures[0]
    assert failure.pass_name == "crasher"
    assert failure.kind == "exception"
    assert "boom" in failure.error


def test_verify_each_catches_silent_corruption():
    fn = parse_function(LOOPY)
    original = print_function(fn)
    pm = GuardedPassManager([CorruptingPass()], max_iterations=1,
                            policy="recover", verify_each=True)
    pm.run_on_function(fn)
    assert print_function(fn) == original
    assert pm.failures[0].kind == "verify"


def test_without_verify_each_corruption_slips_through():
    fn = parse_function(LOOPY)
    pm = GuardedPassManager([CorruptingPass()], max_iterations=1,
                            policy="recover", verify_each=False)
    pm.run_on_function(fn)
    assert not pm.failures
    with pytest.raises(VerificationError):
        verify_function(fn)


def test_strict_reraises_after_rollback():
    fn = parse_function(LOOPY)
    original = print_function(fn)
    pm = GuardedPassManager([CrashingPass()], max_iterations=1,
                            policy="strict")
    with pytest.raises(GuardedPassError) as exc:
        pm.run_on_function(fn)
    assert exc.value.failure.pass_name == "crasher"
    # rolled back before re-raising
    assert print_function(fn) == original


def test_quarantine_disables_repeat_offender():
    pm = GuardedPassManager([CrashingPass(corrupt=False), SpinnerPass()],
                            max_iterations=4, policy="quarantine",
                            quarantine_after=2)
    fn = parse_function(LOOPY)
    pm.run_on_function(fn)
    assert "crasher" in pm.quarantined
    # failures stop accumulating once quarantined
    assert len(pm.failures) == 2


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="policy"):
        GuardedPassManager([NopPass()], policy="yolo")


def test_guarded_o2_clean_run_verifies():
    fn = parse_module(LOOPY)
    pm = guarded_pipeline("o2", prototype_config(), verify_each=True)
    pm.run(fn)
    verify_module(fn)
    assert not pm.failures
    assert pm.pass_counter > 0


# -- opt-bisect -------------------------------------------------------------
def test_bisect_limit_skips_applications():
    pm = GuardedPassManager([NopPass(), NopPass(), NopPass()],
                            max_iterations=1, bisect_limit=2)
    fn = parse_function(LOOPY)
    pm.run_on_function(fn)
    # all three applications counted, the third skipped beyond the limit
    assert pm.pass_counter == 3
    assert [a[0] for a in pm.applications] == [1, 2, 3]
    assert pm.application(3) == (3, "nop", "main")


def test_bisect_finds_injected_fault():
    text = LOOPY

    def make_pipeline(limit):
        return guarded_pipeline(
            "o2", prototype_config(),
            chaos=ChaosEngine(seed=1, mode="corrupt", fail_at=(5,)),
            verify_each=False, policy="recover", bisect_limit=limit)

    def checker(module):
        try:
            verify_module(module)
            return True
        except VerificationError:
            return False

    result = bisect_failure(make_pipeline,
                            lambda: parse_module(text), checker)
    assert result.found
    assert result.culprit == 5
    assert result.pass_name
    assert result.probes <= 2 + result.total_applications.bit_length() + 1


def test_bisect_clean_pipeline():
    result = bisect_failure(
        lambda limit: guarded_pipeline("quick", prototype_config(),
                                       bisect_limit=limit),
        lambda: parse_module(LOOPY),
        lambda module: True)
    assert result.status == "clean"


def test_bisect_input_already_bad():
    result = bisect_failure(
        lambda limit: guarded_pipeline("quick", prototype_config(),
                                       bisect_limit=limit),
        lambda: parse_module(LOOPY),
        lambda module: False)
    assert result.status == "fails-without-passes"


# -- chaos ------------------------------------------------------------------
def test_chaos_schedule_is_deterministic():
    def run(seed):
        fn = parse_module(LOOPY)
        pm = guarded_pipeline("o2", prototype_config(),
                              chaos=ChaosEngine(seed=seed, rate=0.3),
                              verify_each=True, policy="recover")
        pm.run(fn)
        verify_module(fn)
        return [(f.pass_name, f.application, f.kind, f.injected_action)
                for f in pm.failures]

    first = run(7)
    assert first, "seed 7 at rate 0.3 should inject at least one fault"
    assert first == run(7)
    assert any(f != s for f, s in zip(first, run(8))) or \
        len(first) != len(run(8))


def test_chaos_failures_marked_injected():
    fn = parse_module(LOOPY)
    pm = guarded_pipeline("o2", prototype_config(),
                          chaos=ChaosEngine(seed=3, rate=1.0, mode="raise"),
                          policy="recover")
    pm.run(fn)
    assert pm.failures
    assert all(f.injected and f.injected_action == "raise"
               for f in pm.failures)


def test_chaos_fault_is_distinguishable():
    assert ChaosFault("x").injected


# -- crash bundles ----------------------------------------------------------
def _one_failure(tmp_path):
    fn = parse_module(LOOPY)
    pm = guarded_pipeline("o2", prototype_config(),
                          chaos=ChaosEngine(seed=1, mode="corrupt",
                                            fail_at=(5,)),
                          verify_each=True, policy="recover",
                          crash_dir=str(tmp_path))
    pm.run(fn)
    assert len(pm.failures) == 1
    return pm.failures[0]


def test_bundle_names_are_content_hashed_and_deterministic(tmp_path):
    failure = _one_failure(tmp_path / "a")
    again = _one_failure(tmp_path / "b")
    import os

    assert os.path.basename(failure.bundle_path) == \
        os.path.basename(again.bundle_path)
    name = os.path.basename(failure.bundle_path)
    # <pass>-<application %04d>-<12 hex chars>, no timestamps
    parts = name.rsplit("-", 2)
    assert parts[0] == failure.pass_name
    assert parts[1] == f"{failure.application:04d}"
    assert len(parts[2]) == 12
    assert int(parts[2], 16) >= 0


def test_bundle_id_distinguishes_failures():
    a = make_bundle_payload(pre_ir="x", pass_name="gvn", application=1,
                            kind="verify", error="e1", traceback_text="")
    b = make_bundle_payload(pre_ir="x", pass_name="gvn", application=1,
                            kind="verify", error="e2", traceback_text="")
    assert bundle_id(a) != bundle_id(b)


def test_bundle_write_load_roundtrip(tmp_path):
    payload = make_bundle_payload(
        pre_ir=LOOPY, pass_name="gvn", application=3, kind="exception",
        error="RuntimeError: boom", traceback_text="tb",
        config=OptConfig.fixed(), function="main", policy="recover")
    path = write_bundle(str(tmp_path), payload)
    assert list_bundles(str(tmp_path)) == [path]
    loaded = load_bundle(path)
    assert loaded["pass"] == "gvn"
    assert loaded["before_ir"].strip() == LOOPY.strip()
    assert loaded["opt_config"]["semantics"] == "new"
    round_tripped = OptConfig.from_dict(loaded["opt_config"])
    assert round_tripped == OptConfig.fixed()


def test_replay_reproduces_injected_fault(tmp_path):
    failure = _one_failure(tmp_path)
    result = replay_bundle(failure.bundle_path)
    assert result.reproduced, result.outcome


def test_replay_clean_bundle_reports_no_repro(tmp_path):
    payload = make_bundle_payload(
        pre_ir=LOOPY, pass_name="dce", application=1, kind="exception",
        error="RuntimeError: gone", traceback_text="",
        function="main")
    path = write_bundle(str(tmp_path), payload)
    result = replay_bundle(path)
    assert not result.reproduced
    assert "clean" in result.outcome


# -- reporting --------------------------------------------------------------
def test_resilience_report_shape():
    fn = parse_module(LOOPY)
    pm = guarded_pipeline("o2", prototype_config(),
                          chaos=ChaosEngine(seed=7, rate=0.3),
                          verify_each=True, policy="recover")
    pm.run(fn)
    report = pm.resilience_report()
    assert report["policy"] == "recover"
    assert report["failures"] == len(pm.failures)
    assert report["recoveries"] == len(pm.failures)
    assert report["applications"] == pm.pass_counter
    assert all("@" in entry for entry in report["failed_passes"])
