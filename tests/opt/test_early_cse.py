"""EarlyCSE tests: store-to-load forwarding and its aliasing guards."""

import pytest

from repro.ir import LoadInst, Opcode, parse_function, parse_module, \
    verify_function
from repro.opt import EarlyCSE, OptConfig
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW

FIXED = OptConfig.fixed()


def loads_in(fn):
    return [i for i in fn.instructions() if isinstance(i, LoadInst)]


def apply_and_validate(text: str, fn_name: str = "f"):
    before = parse_module(text).get_function(fn_name)
    after_mod = parse_module(text)
    after = after_mod.get_function(fn_name)
    changed = EarlyCSE(FIXED).run_on_function(after)
    verify_function(after)
    result = check_refinement(before, after, NEW)
    assert not result.failed, str(result)
    return after, changed


class TestStoreToLoadForwarding:
    def test_forwarding_fires(self):
        after, changed = apply_and_validate("""
@g = global i4

define i4 @f(i4 %x) {
entry:
  store i4 %x, i4* @g
  %v = load i4, i4* @g
  ret i4 %v
}""")
        assert changed
        assert not loads_in(after)

    def test_load_load_cse(self):
        after, changed = apply_and_validate("""
@g = global i4

define i4 @f() {
entry:
  %a = load i4, i4* @g
  %b = load i4, i4* @g
  %s = add i4 %a, %b
  ret i4 %s
}""")
        assert changed
        assert len(loads_in(after)) == 1

    def test_intervening_store_blocks_forwarding(self):
        after, changed = apply_and_validate("""
@g = global i4
@h = global i4

define i4 @f(i4 %x) {
entry:
  store i4 %x, i4* @g
  store i4 0, i4* @h
  %v = load i4, i4* @g
  ret i4 %v
}""")
        # the second store may alias (conservatively): load survives
        assert len(loads_in(after)) == 1

    def test_call_clobbers(self):
        after, changed = apply_and_validate("""
declare void @ext()

@g = global i4

define i4 @f(i4 %x) {
entry:
  store i4 %x, i4* @g
  call void @ext()
  %v = load i4, i4* @g
  ret i4 %v
}""")
        assert len(loads_in(after)) == 1

    def test_forwarding_is_block_local(self):
        after, changed = apply_and_validate("""
@g = global i4

define i4 @f(i4 %x, i1 %c) {
entry:
  store i4 %x, i4* @g
  br i1 %c, label %a, label %a
a:
  %v = load i4, i4* @g
  ret i4 %v
}""")
        assert len(loads_in(after)) == 1  # conservatively kept

    def test_poison_store_forwards_exactly(self):
        """Forwarding must preserve poison: storing poison and loading
        it back gives poison either way."""
        after, changed = apply_and_validate("""
@g = global i4

define i4 @f() {
entry:
  store i4 poison, i4* @g
  %v = load i4, i4* @g
  ret i4 %v
}""")
        assert changed

    def test_different_type_not_forwarded(self):
        after, changed = apply_and_validate("""
@g = global i4

define i2 @f(i4 %x) {
entry:
  store i4 %x, i4* @g
  %p = bitcast i4* @g to i2*
  %v = load i2, i2* %p
  ret i2 %v
}""")
        assert len(loads_in(after)) == 1

    def test_bitfield_sequence_cleaned(self):
        """The Section 5.3 motivation: after GVN unifies the address
        chain, EarlyCSE removes the reload after each masked store."""
        from repro.frontend import compile_c
        from repro.opt import GVN

        mod = compile_c("""
struct s { int a : 4; int b : 4; };
struct s x;
int main() {
    x.a = 3;
    x.b = 5;
    return x.a + x.b;
}
""")
        main = mod.get_function("main")
        before_loads = len(loads_in(main))
        GVN(FIXED).run_on_function(main)
        EarlyCSE(FIXED).run_on_function(main)
        verify_function(main)
        assert len(loads_in(main)) < before_loads
