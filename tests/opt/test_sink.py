"""Sink pass tests — including the Section 5.5 freeze pitfall."""

import pytest

from repro.ir import FreezeInst, Opcode, parse_function, verify_function
from repro.opt import OptConfig, Sink
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW

FIXED = OptConfig.fixed()
OPTS = CheckOptions(max_choices=48, fuel=4000)


def apply_sink(text: str, **kwargs):
    before = parse_function(text)
    after = parse_function(text)
    changed = Sink(FIXED, **kwargs).run_on_function(after)
    verify_function(after)
    return before, after, changed


class TestBasicSinking:
    COND = """
define i4 @f(i4 %a, i4 %b, i1 %c) {
entry:
  %x = mul i4 %a, %b
  br i1 %c, label %use, label %skip
use:
  %y = add i4 %x, 1
  ret i4 %y
skip:
  ret i4 0
}
"""

    def test_sinks_into_conditional_use(self):
        before, after, changed = apply_sink(self.COND)
        assert changed
        use = after.block_by_name("use")
        assert any(i.opcode is Opcode.MUL for i in use.instructions)
        result = check_refinement(before, after, NEW, options=OPTS)
        assert result.ok

    def test_no_sink_with_multiple_use_blocks(self):
        before, after, changed = apply_sink("""
define i8 @f(i8 %a, i1 %c) {
entry:
  %x = mul i8 %a, 3
  br i1 %c, label %u1, label %u2
u1:
  %y1 = add i8 %x, 1
  ret i8 %y1
u2:
  %y2 = add i8 %x, 2
  ret i8 %y2
}""")
        assert not changed

    def test_no_sink_of_side_effects(self):
        before, after, changed = apply_sink("""
define i8 @f(i8 %a, i8 %b, i1 %c) {
entry:
  %x = udiv i8 %a, %b
  br i1 %c, label %use, label %skip
use:
  ret i8 %x
skip:
  ret i8 0
}""")
        assert not changed  # division traps; cannot move past the branch


class TestFreezePitfall:
    LOOP = """
declare void @use(i4)

define void @f(i4 %v) {
entry:
  %fr = freeze i4 %v
  br label %head
head:
  %i = phi i2 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i2 %i, 2
  br i1 %c, label %body, label %exit
body:
  %s = add i4 %fr, 0
  call void @use(i4 %s)
  %i1 = add i2 %i, 1
  br label %head
exit:
  ret void
}
"""

    def test_freeze_not_sunk_into_loop(self):
        """Section 5.5, Pitfall 1: the sound pass refuses."""
        before, after, changed = apply_sink(self.LOOP)
        entry = after.entry
        assert any(isinstance(i, FreezeInst) for i in entry.instructions)

    def test_unsound_variant_caught_by_checker(self):
        """Force the sink: the checker exhibits the widened behavior
        (two iterations may observe different values of the freeze)."""
        before, after, changed = apply_sink(self.LOOP,
                                            sink_freeze_unsound=True)
        assert changed
        body = after.block_by_name("body")
        assert any(isinstance(i, FreezeInst) for i in body.instructions)
        result = check_refinement(before, after, NEW, options=OPTS)
        assert result.failed
        assert "poison" in str(result.counterexample)

    def test_freeze_may_sink_outside_loops(self):
        src = """
define i4 @f(i4 %v, i1 %c) {
entry:
  %fr = freeze i4 %v
  br i1 %c, label %use, label %skip
use:
  %y = add i4 %fr, 1
  ret i4 %y
skip:
  ret i4 0
}
"""
        before, after, changed = apply_sink(src)
        assert changed  # once-per-execution position: fine
        result = check_refinement(before, after, NEW, options=OPTS)
        assert result.ok
