"""InstCombine tests, including translation validation of its rewrites."""

import pytest

from repro.ir import Opcode, parse_function, print_function, verify_function
from repro.opt import InstCombine, OptConfig
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD, SelectSemantics


def run_ic(text: str, config: OptConfig):
    fn = parse_function(text)
    InstCombine(config).run_on_function(fn)
    verify_function(fn)
    return fn


def validated(text: str, config: OptConfig, semantics=None):
    """Run InstCombine and check the result refines the original."""
    before = parse_function(text)
    after = run_ic(text, config)
    sem = semantics or config.semantics
    result = check_refinement(before, after, sem)
    return after, result


FIXED = OptConfig.fixed()
LEGACY = OptConfig.legacy()


class TestArithmeticRewrites:
    def test_mul_two_becomes_add_under_new(self):
        fn, r = validated("""
define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 2
  ret i4 %y
}""", FIXED)
        assert fn.entry.instructions[0].opcode is Opcode.ADD
        assert r.ok

    def test_mul_two_not_duplicated_under_old_fixed(self):
        cfg = FIXED.with_(semantics=OLD)
        fn, r = validated("""
define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 2
  ret i4 %y
}""", cfg)
        # under OLD semantics the dup-use rewrite is unsound; the fixed
        # pipeline uses shl instead
        assert fn.entry.instructions[0].opcode is Opcode.SHL
        assert r.ok

    def test_legacy_mul_two_rewrite_caught_by_checker(self):
        fn, r = validated("""
define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 2
  ret i4 %y
}""", LEGACY)
        assert fn.entry.instructions[0].opcode is Opcode.ADD
        assert r.failed  # the Section 3.1 bug, caught

    def test_mul_pow2_becomes_shl(self):
        fn, r = validated("""
define i8 @f(i8 %x) {
entry:
  %y = mul i8 %x, 8
  ret i8 %y
}""", FIXED)
        assert fn.entry.instructions[0].opcode is Opcode.SHL
        assert r.ok

    def test_udiv_pow2_becomes_lshr(self):
        fn, r = validated("""
define i8 @f(i8 %x) {
entry:
  %y = udiv i8 %x, 4
  ret i8 %y
}""", FIXED)
        assert fn.entry.instructions[0].opcode is Opcode.LSHR
        assert r.ok

    def test_sub_const_becomes_add_neg(self):
        fn, r = validated("""
define i8 @f(i8 %x) {
entry:
  %y = sub i8 %x, 3
  ret i8 %y
}""", FIXED)
        assert fn.entry.instructions[0].opcode is Opcode.ADD
        assert r.ok

    def test_double_not_cancelled(self):
        fn, r = validated("""
define i4 @f(i4 %x) {
entry:
  %a = xor i4 %x, -1
  %b = xor i4 %a, -1
  %c = add i4 %b, 0
  ret i4 %c
}""", FIXED)
        assert r.ok
        # %c folds away and double-negation cancels: ret %x directly
        assert len(fn.entry.instructions) <= 2

    def test_constant_canonicalized_to_rhs(self):
        fn = run_ic("""
define i8 @f(i8 %x) {
entry:
  %y = add i8 3, %x
  ret i8 %y
}""", FIXED)
        add = fn.entry.instructions[0]
        assert add.rhs.ref() == "3"


class TestUdivToSelect:
    SRC = """
define i4 @f(i4 %a) {
entry:
  %r = udiv i4 %a, 13
  ret i4 %r
}"""

    def test_rewrite_fires_under_conditional_select(self):
        fn, r = validated(self.SRC, FIXED)
        opcodes = [i.opcode for i in fn.entry.instructions]
        assert Opcode.SELECT in opcodes and Opcode.UDIV not in opcodes
        assert r.ok

    def test_rewrite_blocked_under_ub_cond_select(self):
        cfg = FIXED.with_(
            semantics=NEW.with_(select_semantics=SelectSemantics.UB_COND)
        )
        fn = run_ic(self.SRC, cfg)
        opcodes = [i.opcode for i in fn.entry.instructions]
        assert Opcode.UDIV in opcodes  # Section 3.4: must not fire


class TestSelectArithmetic:
    SRC = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 true, i1 %x
  ret i1 %s
}"""

    def test_fixed_variant_freezes_the_arm(self):
        fn, r = validated(self.SRC, FIXED)
        text = print_function(fn)
        assert "or" in text and "freeze" in text
        assert r.ok

    def test_legacy_variant_unsound(self):
        fn, r = validated(self.SRC, LEGACY, semantics=NEW)
        text = print_function(fn)
        assert "or" in text and "freeze" not in text
        assert r.failed

    def test_legacy_variant_fine_under_arithmetic_select(self):
        # Under the LangRef (arithmetic) reading the legacy rewrite is
        # exactly what select means: validation passes.
        fn, r = validated(self.SRC, LEGACY, semantics=OLD)
        assert r.ok

    def test_select_x_false_becomes_and(self):
        fn, r = validated("""
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 %x, i1 false
  ret i1 %s
}""", FIXED)
        text = print_function(fn)
        assert "and" in text
        assert r.ok

    def test_select_undef_arm_collapse_only_legacy(self):
        src = """
define i4 @f(i1 %c, i4 %x) {
entry:
  %s = select i1 %c, i4 %x, i4 undef
  ret i4 %s
}"""
        fn = run_ic(src, LEGACY)
        assert len(fn.entry.instructions) == 1  # collapsed to ret %x
        fn2 = run_ic(src, FIXED)
        assert any(i.opcode is Opcode.SELECT for i in fn2.entry.instructions)


class TestIcmpRewrites:
    def test_ult_one_becomes_eq_zero(self):
        fn, r = validated("""
define i1 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 1
  ret i1 %c
}""", FIXED)
        cmp = fn.entry.instructions[0]
        assert cmp.pred.value == "eq"
        assert r.ok

    def test_add_const_folded_into_eq(self):
        fn, r = validated("""
define i1 @f(i4 %x) {
entry:
  %a = add i4 %x, 3
  %c = icmp eq i4 %a, 5
  ret i1 %c
}""", FIXED)
        cmp = fn.entry.instructions[-2]
        assert cmp.opcode is Opcode.ICMP
        assert cmp.rhs.ref() == "2"
        assert r.ok

    def test_constant_lhs_swapped(self):
        fn, r = validated("""
define i1 @f(i4 %x) {
entry:
  %c = icmp slt i4 3, %x
  ret i1 %c
}""", FIXED)
        cmp = [i for i in fn.entry.instructions if i.opcode is Opcode.ICMP][0]
        assert cmp.pred.value == "sgt"
        assert r.ok


class TestFixpoint:
    def test_chains_collapse(self):
        fn, r = validated("""
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 0
  %b = mul i8 %a, 1
  %c = or i8 %b, 0
  %d = xor i8 %c, 0
  ret i8 %d
}""", FIXED)
        assert len(fn.entry.instructions) == 1
        assert r.ok

    def test_constant_folding_through(self):
        fn, r = validated("""
define i8 @f() {
entry:
  %a = add i8 3, 4
  %b = mul i8 %a, 2
  %c = sub i8 %b, 4
  ret i8 %c
}""", FIXED)
        assert len(fn.entry.instructions) == 1
        ret = fn.entry.instructions[0]
        assert ret.value.ref() == "10"
        assert r.ok


class TestNestedFolds:
    def test_and_chain_merged(self):
        fn, r = validated("""
define i8 @f(i8 %x) {
entry:
  %a = and i8 %x, 60
  %b = and i8 %a, 15
  ret i8 %b
}""", FIXED)
        assert r.ok
        ands = [i for i in fn.instructions() if i.opcode is Opcode.AND]
        assert len(ands) == 1
        assert ands[0].rhs.ref() == "12"  # 60 & 15

    def test_or_chain_merged(self):
        fn, r = validated("""
define i8 @f(i8 %x) {
entry:
  %a = or i8 %x, 3
  %b = or i8 %a, 12
  ret i8 %b
}""", FIXED)
        assert r.ok
        ors = [i for i in fn.instructions() if i.opcode is Opcode.OR]
        assert len(ors) == 1
        assert ors[0].rhs.ref() == "15"

    def test_shl_lshr_pair_becomes_mask(self):
        fn, r = validated("""
define i8 @f(i8 %x) {
entry:
  %a = shl i8 %x, 3
  %b = lshr i8 %a, 3
  ret i8 %b
}""", FIXED)
        assert r.ok
        assert any(i.opcode is Opcode.AND for i in fn.instructions())
        assert not any(i.opcode is Opcode.LSHR for i in fn.instructions())

    def test_xor_eq_fold(self):
        fn, r = validated("""
define i1 @f(i4 %x) {
entry:
  %a = xor i4 %x, 5
  %c = icmp eq i4 %a, 3
  ret i1 %c
}""", FIXED)
        assert r.ok
        cmp = [i for i in fn.instructions() if i.opcode is Opcode.ICMP][0]
        assert cmp.rhs.ref() == "6"  # 5 ^ 3

    def test_zext_cmp_ne_zero_collapses(self):
        fn, r = validated("""
define i1 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  %z = zext i1 %c to i8
  %n = icmp ne i8 %z, 0
  ret i1 %n
}""", FIXED)
        assert r.ok
        # the zext/ne pair collapses back to the original comparison
        cmps = [i for i in fn.instructions() if i.opcode is Opcode.ICMP]
        assert len(cmps) == 1

    def test_zext_cmp_eq_zero_becomes_not(self):
        fn, r = validated("""
define i1 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  %z = zext i1 %c to i8
  %n = icmp eq i8 %z, 0
  ret i1 %n
}""", FIXED)
        assert r.ok
