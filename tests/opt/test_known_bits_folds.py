"""Tests for the known-bits-driven icmp folds in InstSimplify —
the Section 5.6 "up-to-poison facts are fine for rewriting" client."""

import pytest

from repro.ir import parse_function, verify_function
from repro.opt import InstSimplify, OptConfig
from repro.refine import check_refinement
from repro.semantics import NEW, OLD

FIXED = OptConfig.fixed()


def simplify_and_validate(text: str, semantics=NEW):
    before = parse_function(text)
    after = parse_function(text)
    changed = InstSimplify(FIXED).run_on_function(after)
    verify_function(after)
    result = check_refinement(before, after, semantics)
    assert not result.failed, str(result)
    return after, changed


class TestKnownBitsIcmpFolds:
    def test_masked_value_below_bound(self):
        after, changed = simplify_and_validate("""
define i1 @f(i8 %x) {
entry:
  %m = and i8 %x, 7
  %c = icmp ult i8 %m, 8
  ret i1 %c
}""")
        assert changed
        ret = after.entry.instructions[-1]
        assert ret.value.ref() == "true"

    def test_or_value_above_bound(self):
        after, changed = simplify_and_validate("""
define i1 @f(i8 %x) {
entry:
  %m = or i8 %x, 16
  %c = icmp ult i8 %m, 16
  ret i1 %c
}""")
        assert changed
        assert after.entry.instructions[-1].value.ref() == "false"

    def test_disjoint_bits_never_equal(self):
        after, changed = simplify_and_validate("""
define i1 @f(i8 %x, i8 %y) {
entry:
  %a = or i8 %x, 1
  %b = and i8 %y, 254
  %c = icmp eq i8 %a, %b
  ret i1 %c
}""")
        assert changed
        assert after.entry.instructions[-1].value.ref() == "false"

    def test_fold_sound_under_old_with_undef(self):
        """Up-to-poison AND up-to-undef: known bits bound every
        concretization, so the fold holds under OLD too."""
        after, changed = simplify_and_validate("""
define i1 @f(i8 %x) {
entry:
  %m = and i8 %x, 7
  %c = icmp ult i8 %m, 8
  ret i1 %c
}""", semantics=OLD)
        assert changed

    def test_poison_operand_covered(self):
        """The Section 5.6 point: no not-poison check needed, because a
        poison operand makes the *source* icmp poison, which covers the
        folded constant."""
        after, changed = simplify_and_validate("""
define i1 @f() {
entry:
  %m = and i8 poison, 7
  %c = icmp ult i8 %m, 8
  ret i1 %c
}""")
        # folding is allowed (and harmless); refinement verified above

    def test_undecidable_range_not_folded(self):
        after, changed = simplify_and_validate("""
define i1 @f(i8 %x) {
entry:
  %m = and i8 %x, 31
  %c = icmp ult i8 %m, 16
  ret i1 %c
}""")
        # 0..31 vs 16: both outcomes possible; must not fold
        from repro.ir import Opcode

        assert any(i.opcode is Opcode.ICMP
                   for i in after.entry.instructions)
