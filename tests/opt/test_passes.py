"""Tests for GVN, SimplifyCFG, LICM, SCCP, Reassociate, DCE, Inliner."""

import pytest

from repro.ir import (
    FreezeInst,
    Opcode,
    PhiInst,
    SelectInst,
    parse_function,
    parse_module,
    print_function,
    verify_function,
)
from repro.opt import (
    DCE,
    GVN,
    LICM,
    Inliner,
    InstSimplify,
    OptConfig,
    Reassociate,
    SCCP,
    SimplifyCFG,
)
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD, run_once

FIXED = OptConfig.fixed()
LEGACY = OptConfig.legacy()


def apply_pass(p, text):
    fn = parse_function(text)
    changed = p.run_on_function(fn)
    verify_function(fn)
    return fn, changed


def validate(p, text, semantics=NEW, **opts):
    before = parse_function(text)
    fn, changed = apply_pass(p, text)
    r = check_refinement(before, fn, semantics,
                         options=CheckOptions(**opts) if opts else None)
    return fn, changed, r


class TestGVN:
    def test_redundant_expression_eliminated(self):
        fn, changed, r = validate(GVN(FIXED), """
define i4 @f(i4 %a, i4 %b) {
entry:
  %x = add i4 %a, %b
  %y = add i4 %a, %b
  %s = mul i4 %x, %y
  ret i4 %s
}""")
        assert changed and r.ok
        adds = [i for i in fn.entry.instructions if i.opcode is Opcode.ADD]
        assert len(adds) == 1

    def test_commutative_operands_match(self):
        fn, changed, r = validate(GVN(FIXED), """
define i4 @f(i4 %a, i4 %b) {
entry:
  %x = add i4 %a, %b
  %y = add i4 %b, %a
  %s = mul i4 %x, %y
  ret i4 %s
}""")
        assert changed and r.ok

    def test_different_flags_not_merged(self):
        fn, changed, r = validate(GVN(FIXED), """
define i4 @f(i4 %a, i4 %b) {
entry:
  %x = add nsw i4 %a, %b
  %y = add i4 %a, %b
  %s = mul i4 %x, %y
  ret i4 %s
}""")
        adds = [i for i in fn.instructions() if i.opcode is Opcode.ADD]
        assert len(adds) == 2
        assert r.ok

    def test_freeze_never_value_numbered(self):
        """Section 6: two freezes of one value are distinct values."""
        fn, changed, r = validate(GVN(FIXED), """
define i4 @f(i4 %x) {
entry:
  %f1 = freeze i4 %x
  %f2 = freeze i4 %x
  %s = sub i4 %f1, %f2
  ret i4 %s
}""")
        freezes = [i for i in fn.instructions()
                   if isinstance(i, FreezeInst)]
        assert len(freezes) == 2
        assert r.ok

    def test_dominating_leader_required(self):
        fn, changed, r = validate(GVN(FIXED), """
define i4 @f(i1 %c, i4 %a) {
entry:
  br i1 %c, label %l, label %r
l:
  %x = add i4 %a, 1
  br label %join
r:
  %y = add i4 %a, 1
  br label %join
join:
  %p = phi i4 [ %x, %l ], [ %y, %r ]
  ret i4 %p
}""")
        # neither add dominates the other: both must survive
        adds = [i for i in fn.instructions() if i.opcode is Opcode.ADD]
        assert len(adds) == 2
        assert r.ok

    def test_equality_propagation_in_guarded_block(self):
        fn, changed, r = validate(GVN(FIXED), """
declare void @foo(i4)

define void @f(i4 %x, i4 %y) {
entry:
  %t = add nsw i4 %x, 1
  %cmp = icmp eq i4 %t, %y
  br i1 %cmp, label %then, label %exit
then:
  %w = add nsw i4 %x, 1
  call void @foo(i4 %w)
  br label %exit
exit:
  ret void
}""")
        assert changed and r.ok
        then = fn.block_by_name("then")
        call = [i for i in then.instructions if i.opcode is Opcode.CALL][0]
        # the argument became %y, the representative
        assert call.args[0].name == "y"


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        fn, changed, r = validate(SimplifyCFG(FIXED), """
define i4 @f() {
entry:
  br i1 true, label %a, label %b
a:
  ret i4 1
b:
  ret i4 2
}""")
        assert changed and r.ok
        assert len(fn.blocks) == 1

    def test_blocks_merged(self):
        fn, changed, r = validate(SimplifyCFG(FIXED), """
define i4 @f(i4 %x) {
entry:
  br label %next
next:
  %y = add i4 %x, 1
  br label %last
last:
  ret i4 %y
}""")
        assert changed and r.ok
        assert len(fn.blocks) == 1

    def test_diamond_phi_to_select(self):
        fn, changed, r = validate(SimplifyCFG(FIXED), """
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}""")
        assert changed and r.ok
        assert len(fn.blocks) == 1
        assert any(isinstance(i, SelectInst) for i in fn.entry.instructions)

    def test_triangle_phi_to_select(self):
        fn, changed, r = validate(SimplifyCFG(FIXED), """
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  br i1 %c, label %t, label %m
t:
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %entry ]
  ret i4 %x
}""")
        assert changed and r.ok
        assert any(isinstance(i, SelectInst) for i in fn.instructions())

    def test_phi_to_select_unsound_under_old_semantics(self):
        """The §3.4 inconsistency: SimplifyCFG's own rewrite, validated
        under the OLD/LangRef reading, is a miscompilation."""
        fn, changed, r = validate(SimplifyCFG(FIXED), """
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}""", semantics=OLD)
        assert changed and r.failed

    def test_switch_constant_folded(self):
        fn, changed, r = validate(SimplifyCFG(FIXED), """
define i4 @f() {
entry:
  switch i4 2, label %d [ i4 1, label %a i4 2, label %b ]
a:
  ret i4 10
b:
  ret i4 20
d:
  ret i4 30
}""")
        assert changed and r.ok
        b = run_once(fn, [])
        assert b.ret == (0, 0, 1, 0, 1, 0, 0, 0)[:4]  # 20 & 0xF = 4 -> 0100


class TestLICM:
    LOOP = """
declare void @use(i4)

define void @f(i4 %x, i2 %n) {
entry:
  br label %head
head:
  %i = phi i2 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i2 %i, %n
  br i1 %c, label %body, label %exit
body:
  %inv = add nsw i4 %x, 1
  call void @use(i4 %inv)
  %i1 = add i2 %i, 1
  br label %head
exit:
  ret void
}"""

    def test_invariant_arithmetic_hoisted(self):
        fn, changed, r = validate(LICM(FIXED), self.LOOP,
                                  max_choices=40, fuel=4000)
        assert changed and r.ok
        entry = fn.entry
        assert any(i.opcode is Opcode.ADD for i in entry.instructions)

    def test_division_not_hoisted_by_default(self):
        src = self.LOOP.replace("add nsw i4 %x, 1", "udiv i4 1, %x")
        fn, changed, r = validate(LICM(FIXED), src,
                                  max_choices=40, fuel=4000)
        body = fn.block_by_name("body")
        assert any(i.opcode is Opcode.UDIV for i in body.instructions)

    GUARDED = """
declare void @use(i4)

define void @f(i4 %k, i1 %c) {
entry:
  %guard = icmp ne i4 %k, 0
  br i1 %guard, label %pre, label %exit
pre:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  %q = udiv i4 1, %k
  call void @use(i4 %q)
  br label %head
exit:
  ret void
}"""

    def test_legacy_hoists_guarded_division(self):
        fn, changed = apply_pass(LICM(LEGACY), self.GUARDED)
        pre = fn.block_by_name("pre")
        assert any(i.opcode is Opcode.UDIV for i in pre.instructions)

    def test_legacy_guarded_division_hoist_is_the_bug(self):
        before = parse_function(self.GUARDED)
        fn, changed = apply_pass(LICM(LEGACY), self.GUARDED)
        r = check_refinement(before, fn, OLD,
                             options=CheckOptions(max_choices=40, fuel=2000))
        assert r.failed  # PR21412 reproduced

    def test_guarded_division_hoist_sound_under_new(self):
        """The E8 ablation point: with undef gone and branch-on-poison
        UB, the guard actually protects the hoisted division."""
        before = parse_function(self.GUARDED)
        cfg = FIXED.with_(licm_hoist_speculative_div=True)
        fn, changed = apply_pass(LICM(cfg), self.GUARDED)
        assert changed
        r = check_refinement(before, fn, NEW,
                             options=CheckOptions(max_choices=40, fuel=2000))
        assert r.ok

    def test_freeze_hoisting_is_sound(self):
        src = """
declare void @use(i4)

define void @f(i4 %x) {
entry:
  br label %head
head:
  %i = phi i2 [ 0, %entry ], [ %i1, %head ]
  %fr = freeze i4 %x
  call void @use(i4 %fr)
  %i1 = add i2 %i, 1
  %c = icmp ult i2 %i1, 2
  br i1 %c, label %head, label %exit
exit:
  ret void
}"""
        before = parse_function(src)
        fn, changed = apply_pass(LICM(FIXED), src)
        assert changed  # freeze hoisted into entry
        assert any(isinstance(i, FreezeInst) for i in fn.entry.instructions)
        r = check_refinement(before, fn, NEW,
                             options=CheckOptions(max_choices=48, fuel=2000))
        assert r.ok


class TestSCCP:
    def test_constants_propagate_through_phi(self):
        fn, changed, r = validate(SCCP(FIXED), """
define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i8 [ 4, %a ], [ 4, %b ]
  %q = add i8 %p, 1
  ret i8 %q
}""")
        assert changed and r.ok
        join = fn.block_by_name("join")
        ret = join.instructions[-1]
        assert ret.value.ref() == "5"

    def test_unreachable_edges_ignored(self):
        fn, changed, r = validate(SCCP(FIXED), """
define i8 @f() {
entry:
  br i1 false, label %dead, label %live
dead:
  br label %join
live:
  br label %join
join:
  %p = phi i8 [ 9, %dead ], [ 3, %live ]
  ret i8 %p
}""")
        assert changed and r.ok
        join = fn.block_by_name("join")
        assert join.instructions[-1].value.ref() == "3"

    def test_conditional_constants(self):
        fn, changed, r = validate(SCCP(FIXED), """
define i8 @f(i1 %c) {
entry:
  %x = select i1 true, i8 7, i8 9
  %y = mul i8 %x, 2
  ret i8 %y
}""")
        assert changed and r.ok

    def test_overdefined_stays(self):
        fn, changed, r = validate(SCCP(FIXED), """
define i8 @f(i8 %x) {
entry:
  %y = add i8 %x, 1
  ret i8 %y
}""")
        assert not changed
        assert r.ok


class TestReassociate:
    def test_constants_combined(self):
        fn, changed, r = validate(Reassociate(FIXED), """
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 3
  %b = add i8 %a, 5
  ret i8 %b
}""")
        assert changed and r.ok
        text = print_function(fn)
        assert "8" in text

    def test_buried_constant_surfaced(self):
        fn, changed, r = validate(Reassociate(FIXED), """
define i4 @f(i4 %x, i4 %y) {
entry:
  %a = add i4 %x, 7
  %b = add i4 %a, %y
  %c = add i4 %b, 2
  ret i4 %c
}""")
        assert changed and r.ok
        text = print_function(fn)
        assert "-7" in text  # 7 + 2 folded (i4 wraps to -7)

    def test_fixed_variant_drops_nsw(self):
        fn, changed, r = validate(Reassociate(FIXED), """
define i8 @f(i8 %x) {
entry:
  %a = add nsw i8 %x, 100
  %b = add nsw i8 %a, 100
  ret i8 %b
}""")
        assert changed and r.ok
        # the rebuilt nodes carry no flags (dead originals may linger
        # until DCE)
        for inst in fn.instructions():
            if inst.opcode is Opcode.ADD and ".ra" in inst.name:
                assert not inst.nsw

    def test_legacy_variant_keeps_nsw_and_is_unsound(self):
        """Section 10.2: reordering the leaves of an nsw chain changes
        *where* intermediate sums overflow; keeping nsw on the rebuilt
        nodes manufactures poison the original never had (the historical
        LLVM/MSVC bug)."""
        src = """
define i4 @f(i4 %c, i4 %b, i4 %a) {
entry:
  %t1 = add nsw i4 %c, %b
  %t2 = add nsw i4 %t1, %a
  ret i4 %t2
}"""
        before = parse_function(src)
        fn, changed = apply_pass(Reassociate(LEGACY), src)
        assert changed
        r = check_refinement(before, fn, NEW)
        assert r.failed

    def test_fixed_variant_reorder_is_sound(self):
        src = """
define i4 @f(i4 %c, i4 %b, i4 %a) {
entry:
  %t1 = add nsw i4 %c, %b
  %t2 = add nsw i4 %t1, %a
  ret i4 %t2
}"""
        before = parse_function(src)
        fn, changed = apply_pass(Reassociate(FIXED), src)
        assert changed
        r = check_refinement(before, fn, NEW)
        assert r.ok

    def test_mul_chain(self):
        fn, changed, r = validate(Reassociate(FIXED), """
define i8 @f(i8 %x) {
entry:
  %a = mul i8 %x, 3
  %b = mul i8 %a, 5
  ret i8 %b
}""")
        assert changed and r.ok


class TestDCEAndInstSimplify:
    def test_dead_chain_removed(self):
        fn, changed, r = validate(DCE(FIXED), """
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 1
  %b = mul i8 %a, 2
  ret i8 %x
}""")
        assert changed and r.ok
        assert len(fn.entry.instructions) == 1

    def test_side_effects_kept(self):
        fn, changed, r = validate(DCE(FIXED), """
define void @f(i8 %x, i8 %y) {
entry:
  %q = udiv i8 %x, %y
  ret void
}""")
        assert not changed  # division-by-zero UB must be preserved

    def test_simplify_add_zero(self):
        fn, changed, r = validate(InstSimplify(FIXED), """
define i8 @f(i8 %x) {
entry:
  %a = add i8 %x, 0
  ret i8 %a
}""")
        assert changed and r.ok

    def test_sub_self_requires_nonpoison(self):
        # x - x with possibly-poison x must NOT fold to 0.
        fn, changed, r = validate(InstSimplify(FIXED), """
define i8 @f(i8 %x) {
entry:
  %a = sub i8 %x, %x
  ret i8 %a
}""")
        assert not changed
        # but after freezing it may:
        fn2, changed2, r2 = validate(InstSimplify(FIXED), """
define i8 @f(i8 %x) {
entry:
  %fr = freeze i8 %x
  %a = sub i8 %fr, %fr
  ret i8 %a
}""")
        assert changed2 and r2.ok


class TestInliner:
    MOD = """
define i8 @callee(i8 %x) {
entry:
  %y = mul i8 %x, 3
  ret i8 %y
}

define i8 @caller(i8 %a) {
entry:
  %r = call i8 @callee(i8 %a)
  %s = add i8 %r, 1
  ret i8 %s
}"""

    def test_inlines_small_function(self):
        mod = parse_module(self.MOD)
        caller = mod.get_function("caller")
        changed = Inliner(FIXED).run_on_function(caller)
        assert changed
        verify_function(caller)
        assert not any(i.opcode is Opcode.CALL for i in caller.instructions())
        b = run_once(caller, [5])
        assert b.ret == tuple(int(b_) for b_ in reversed(f"{16:08b}"))

    def test_inlined_behavior_preserved(self):
        mod = parse_module(self.MOD)
        mod2 = parse_module(self.MOD)
        caller = mod.get_function("caller")
        Inliner(FIXED).run_on_function(caller)
        r = check_refinement(mod2.get_function("caller"), caller, NEW)
        assert r.ok

    def test_multi_return_callee(self):
        src = """
define i8 @callee(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i8 1
b:
  ret i8 2
}

define i8 @caller(i1 %c) {
entry:
  %r = call i8 @callee(i1 %c)
  ret i8 %r
}"""
        mod = parse_module(src)
        mod2 = parse_module(src)
        caller = mod.get_function("caller")
        assert Inliner(FIXED).run_on_function(caller)
        verify_function(caller)
        r = check_refinement(mod2.get_function("caller"), caller, NEW)
        assert r.ok

    def test_threshold_respected(self):
        mod = parse_module(self.MOD)
        caller = mod.get_function("caller")
        assert not Inliner(FIXED, threshold=0).run_on_function(caller)

    def test_freeze_free_costing(self):
        src = """
define i8 @callee(i8 %x) {
entry:
  %f1 = freeze i8 %x
  %f2 = freeze i8 %f1
  %y = add i8 %f2, 1
  ret i8 %y
}

define i8 @caller(i8 %a) {
entry:
  %r = call i8 @callee(i8 %a)
  ret i8 %r
}"""
        # threshold 1: only the add is counted when freeze is free
        mod = parse_module(src)
        caller = mod.get_function("caller")
        assert Inliner(FIXED, threshold=1).run_on_function(caller)

        mod2 = parse_module(src)
        caller2 = mod2.get_function("caller")
        assert not Inliner(LEGACY, threshold=1).run_on_function(caller2)
