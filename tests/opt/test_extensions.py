"""Tests for the Section 5.4 / Section 6 extension passes:
load widening and GVN freeze folding."""

import pytest

from repro.ir import (
    ExtractElementInst,
    FreezeInst,
    LoadInst,
    Opcode,
    parse_function,
    parse_module,
    print_function,
    verify_function,
)
from repro.opt import GVN, LoadWidening, OptConfig
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD

FIXED = OptConfig.fixed()


def module_pair(text: str, fn_name: str = "f"):
    return (parse_module(text).get_function(fn_name),
            parse_module(text).get_function(fn_name))


class TestLoadWidening:
    SRC = """
@g = global i4

define i2 @f() {
entry:
  %p = bitcast i4* @g to i2*
  %v = load i2, i2* %p
  ret i2 %v
}
"""

    def test_vector_widening_fires(self):
        before, after = module_pair(self.SRC)
        changed = LoadWidening(FIXED).run_on_function(after)
        assert changed
        verify_function(after)
        text = print_function(after)
        assert "<2 x i2>" in text
        assert "extractelement" in text

    def test_vector_widening_sound_under_new(self):
        """Section 5.4: the vector form keeps unrelated poison in its
        own lane, so it refines — even when @g's other half is poison."""
        before, after = module_pair(self.SRC)
        LoadWidening(FIXED).run_on_function(after)
        result = check_refinement(before, after, NEW)
        assert result.ok, str(result)

    def test_scalar_widening_unsound_under_new(self):
        """The naive widen-to-i4-and-truncate: one poison bit in the
        upper half poisons the half the program wanted."""
        before, after = module_pair(self.SRC)
        LoadWidening(FIXED, scalar_widening=True).run_on_function(after)
        verify_function(after)
        text = print_function(after)
        assert "trunc" in text
        result = check_refinement(before, after, NEW)
        assert result.failed, str(result)

    def test_scalar_widening_was_fine_under_old_undef_memory(self):
        """...but under OLD with undef-only memory (the historical
        mental model) the same transformation passes — which is exactly
        why LLVM had it and why migrating to poison required the fix."""
        before, after = module_pair(self.SRC)
        LoadWidening(FIXED, scalar_widening=True).run_on_function(after)
        result = check_refinement(
            before, after, OLD,
            options=CheckOptions(poison_in_memory=False),
        )
        assert result.ok, str(result)

    def test_scalar_widening_already_broken_by_poison_in_memory(self):
        """A bonus finding consistent with the paper's diagnosis: once a
        store can put *poison* bits into memory, the scalar widening is
        unsound even under the OLD semantics."""
        before, after = module_pair(self.SRC)
        LoadWidening(FIXED, scalar_widening=True).run_on_function(after)
        result = check_refinement(before, after, OLD)
        assert result.failed

    def test_no_widening_without_known_object(self):
        src = """
define i2 @f(i2* %p) {
entry:
  %v = load i2, i2* %p
  ret i2 %v
}
"""
        fn = parse_function(src)
        assert not LoadWidening(FIXED).run_on_function(fn)

    def test_no_widening_when_object_too_small(self):
        src = """
@g = global i2

define i2 @f() {
entry:
  %v = load i2, i2* @g
  ret i2 %v
}
"""
        mod = parse_module(src)
        fn = mod.get_function("f")
        assert not LoadWidening(FIXED).run_on_function(fn)


class TestGvnFreezeFolding:
    SRC = """
define i4 @f(i4 %x) {
entry:
  %f1 = freeze i4 %x
  %f2 = freeze i4 %x
  %s = sub i4 %f1, %f2
  ret i4 %s
}
"""

    def test_disabled_by_default(self):
        fn = parse_function(self.SRC)
        GVN(FIXED).run_on_function(fn)
        freezes = [i for i in fn.instructions()
                   if isinstance(i, FreezeInst)]
        assert len(freezes) == 2  # the prototype's conservative behavior

    def test_folding_merges_freezes(self):
        config = FIXED.with_(gvn_fold_freeze=True)
        fn = parse_function(self.SRC)
        changed = GVN(config).run_on_function(fn)
        assert changed
        verify_function(fn)
        freezes = [i for i in fn.instructions()
                   if isinstance(i, FreezeInst)]
        assert len(freezes) == 1

    def test_folding_is_a_refinement(self):
        """Folding two freezes collapses two independent choices into
        one — a strict refinement (all uses replaced, per Section 6's
        GVN-expert caveat)."""
        config = FIXED.with_(gvn_fold_freeze=True)
        before = parse_function(self.SRC)
        after = parse_function(self.SRC)
        GVN(config).run_on_function(after)
        result = check_refinement(before, after, NEW)
        assert result.ok, str(result)

    def test_reverse_direction_would_be_unsound(self):
        """Splitting one freeze into two is NOT a refinement — the
        Section 5.5 duplication pitfall, machine-checked."""
        merged = parse_function("""
define i4 @f(i4 %x) {
entry:
  %f1 = freeze i4 %x
  %s = sub i4 %f1, %f1
  ret i4 %s
}
""")
        split = parse_function(self.SRC)
        result = check_refinement(merged, split, NEW)
        assert result.failed

    def test_freezes_of_different_values_not_merged(self):
        config = FIXED.with_(gvn_fold_freeze=True)
        fn = parse_function("""
define i4 @f(i4 %x, i4 %y) {
entry:
  %f1 = freeze i4 %x
  %f2 = freeze i4 %y
  %s = sub i4 %f1, %f2
  ret i4 %s
}
""")
        GVN(config).run_on_function(fn)
        freezes = [i for i in fn.instructions()
                   if isinstance(i, FreezeInst)]
        assert len(freezes) == 2

    def test_folding_respects_dominance(self):
        config = FIXED.with_(gvn_fold_freeze=True)
        fn = parse_function("""
define i4 @f(i1 %c, i4 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %f1 = freeze i4 %x
  br label %join
b:
  %f2 = freeze i4 %x
  br label %join
join:
  %p = phi i4 [ %f1, %a ], [ %f2, %b ]
  ret i4 %p
}
""")
        GVN(config).run_on_function(fn)
        verify_function(fn)
        freezes = [i for i in fn.instructions()
                   if isinstance(i, FreezeInst)]
        assert len(freezes) == 2  # neither dominates the other
