"""Pipeline-level integration tests: -O2 end to end, pass statistics,
and the baseline/prototype configurations."""

import pytest

from repro.backend import compile_module, run_program
from repro.frontend import compile_c
from repro.ir import FreezeInst, UndefValue, parse_function, verify_module
from repro.opt import (
    OptConfig,
    baseline_config,
    codegen_pipeline,
    o2_pipeline,
    prototype_config,
    quick_pipeline,
    single_pass_pipeline,
)
from repro.refine import check_refinement
from repro.semantics import NEW


C_PROGRAM = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main() {
    int acc = 0;
    for (int i = 0; i < 12; i++) acc += fib(i);
    return acc;
}
"""


def fib_sum(n):
    def fib(k):
        return k if k < 2 else fib(k - 1) + fib(k - 2)

    return sum(fib(i) for i in range(n))


class TestO2EndToEnd:
    @pytest.mark.parametrize("config_factory",
                             [baseline_config, prototype_config])
    def test_c_program_correct_after_o2(self, config_factory):
        config = config_factory()
        module = compile_c(C_PROGRAM)
        o2_pipeline(config).run(module)
        codegen_pipeline(config).run(module)
        verify_module(module)
        program = compile_module(module)
        result, _, _ = run_program(program, "main", [])
        assert result == fib_sum(12)

    def test_o2_shrinks_frontend_output(self):
        module = compile_c(C_PROGRAM)
        before = module.num_instructions()
        o2_pipeline(prototype_config()).run(module)
        assert module.num_instructions() < before

    def test_o2_promotes_all_scalar_allocas(self):
        from repro.ir import Opcode

        module = compile_c(C_PROGRAM)
        o2_pipeline(prototype_config()).run(module)
        for fn in module.definitions():
            for inst in fn.instructions():
                assert inst.opcode is not Opcode.ALLOCA

    def test_pass_statistics_collected(self):
        module = compile_c(C_PROGRAM)
        pm = o2_pipeline(prototype_config())
        pm.run(module)
        assert "instcombine" in pm.stats
        assert pm.stats["instcombine"].runs > 0
        assert pm.stats["mem2reg"].changes > 0
        assert all(s.seconds >= 0 for s in pm.stats.values())

    def test_quick_pipeline_also_correct(self):
        module = compile_c(C_PROGRAM)
        quick_pipeline(prototype_config()).run(module)
        verify_module(module)
        program = compile_module(module)
        result, _, _ = run_program(program, "main", [])
        assert result == fib_sum(12)


class TestConfigurations:
    def test_fixed_config_defaults(self):
        config = OptConfig.fixed()
        assert config.semantics.is_new
        assert config.unswitch_freeze
        assert not config.instcombine_select_arith
        assert config.reassociate_drop_flags

    def test_legacy_config_defaults(self):
        config = baseline_config()
        assert not config.semantics.is_new
        assert not config.unswitch_freeze
        assert config.instcombine_select_arith
        assert config.licm_hoist_speculative_div
        assert not config.reassociate_drop_flags

    def test_with_overrides(self):
        config = OptConfig.fixed().with_(gvn_fold_freeze=True)
        assert config.gvn_fold_freeze
        assert OptConfig.fixed().gvn_fold_freeze is False

    def test_unknown_single_pass_rejected(self):
        with pytest.raises(ValueError):
            single_pass_pipeline("nonexistent-pass")


class TestNewSemanticsMigration:
    def test_prototype_pipeline_output_is_undef_free(self):
        """The migration story: NEW-pipeline output contains no undef
        (the frontend never emits it and mem2reg materializes poison)."""
        module = compile_c("""
int f(int x) {
    int y;
    if (x > 0) y = x;
    return x > 1 ? y : 0;
}
int main() { return f(5); }
""")
        o2_pipeline(prototype_config()).run(module)
        for fn in module.definitions():
            for inst in fn.instructions():
                for op in inst.operands:
                    assert not isinstance(op, UndefValue)
        from repro.ir import verify_module as vm

        vm(module, forbid_undef=True)

    def test_figure2_uninitialized_variable(self):
        """Figure 2: `int x; if (cond) x = f(); if (cond2) g(x);` — no
        initialization materialized on the skip path, just poison."""
        module = compile_c("""
extern int f();
extern void g(int v);

int main(int cond, int cond2) {
    int x;
    if (cond) x = f();
    if (cond2) g(x);
    return 0;
}
""")
        o2_pipeline(prototype_config()).run(module)
        verify_module(module)
        from repro.ir import print_function

        main = module.get_function("main")
        # poison (not a materialized 0) flows on the uninitialized path
        assert "poison" in print_function(main)
