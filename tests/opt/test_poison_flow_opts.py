"""Flow-powered InstSimplify/FreezeOpts: the fixpoint proves strictly
more than the shallow walk, with byte-identical refinement verdicts."""

from repro.ir import parse_function, print_function
from repro.opt import OptConfig
from repro.opt.freeze_opts import FreezeOpts
from repro.opt.instsimplify import InstSimplify
from repro.refine import check_refinement
from repro.semantics import NEW

FIXED = OptConfig.fixed

GUARDED_FREEZE = """
define i8 @f(i8 %x) {
entry:
  %c = icmp eq i8 %x, 7
  br i1 %c, label %t, label %e
t:
  %f = freeze i8 %x
  %r = add i8 %f, 1
  ret i8 %r
e:
  ret i8 0
}"""


def _run(pass_cls, src, use_flow):
    fn = parse_function(src)
    p = pass_cls(FIXED())
    p.use_flow = use_flow
    changed = p.run_on_function(fn)
    return fn, changed


def test_freeze_opts_flow_removes_guarded_freeze():
    shallow, changed_shallow = _run(FreezeOpts, GUARDED_FREEZE, False)
    flow, changed_flow = _run(FreezeOpts, GUARDED_FREEZE, True)
    # The shallow walk cannot prove the argument non-poison; the
    # dominating branch (branch-on-poison is UB) can.
    assert not changed_shallow
    assert "freeze" in print_function(shallow)
    assert changed_flow
    assert "freeze" not in print_function(flow)
    # the strictly-stronger transform is still a refinement
    r = check_refinement(parse_function(GUARDED_FREEZE), flow, NEW)
    assert r.ok


def test_freeze_opts_keeps_unguarded_freeze():
    src = """
define i8 @f(i8 %x) {
entry:
  %f = freeze i8 %x
  ret i8 %f
}"""
    fn, changed = _run(FreezeOpts, src, True)
    assert not changed
    assert "freeze" in print_function(fn)


def test_instsimplify_flow_folds_guarded_sub_self():
    # sub %x, %x -> 0 needs %x not-poison; only the fixpoint proves it
    # in the guarded block.
    src = """
define i8 @f(i8 %x) {
entry:
  %c = icmp eq i8 %x, 7
  br i1 %c, label %t, label %e
t:
  %d = sub i8 %x, %x
  ret i8 %d
e:
  ret i8 1
}"""
    shallow, changed_shallow = _run(InstSimplify, src, False)
    flow, changed_flow = _run(InstSimplify, src, True)
    assert not changed_shallow
    assert changed_flow
    assert "sub" not in print_function(flow)
    r = check_refinement(parse_function(src), flow, NEW)
    assert r.ok


def test_flow_and_shallow_verdicts_agree_where_both_fire():
    # When the shallow walk already proves the fact, the flow-powered
    # pass makes the same transform (the fixpoint is a superset).
    src = """
define i8 @f(i8 %x) {
entry:
  %fr = freeze i8 %x
  %d = sub i8 %fr, %fr
  ret i8 %d
}"""
    shallow, changed_shallow = _run(InstSimplify, src, False)
    flow, changed_flow = _run(InstSimplify, src, True)
    assert changed_shallow and changed_flow
    assert print_function(shallow) == print_function(flow)
