"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.ir import parse_function, verify_function
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD


@pytest.fixture
def fn_of():
    """Parse a single function and verify it."""

    def build(text: str):
        fn = parse_function(text)
        verify_function(fn)
        return fn

    return build


def assert_refines(src_text: str, tgt_text: str, config=NEW, **kwargs):
    src = parse_function(src_text)
    tgt = parse_function(tgt_text)
    result = check_refinement(src, tgt, config,
                              options=CheckOptions(**kwargs) if kwargs else None)
    assert result.ok, f"expected refinement, got: {result}"
    return result


def assert_not_refines(src_text: str, tgt_text: str, config=NEW, **kwargs):
    src = parse_function(src_text)
    tgt = parse_function(tgt_text)
    result = check_refinement(src, tgt, config,
                              options=CheckOptions(**kwargs) if kwargs else None)
    assert result.failed, f"expected refinement failure, got: {result}"
    return result
