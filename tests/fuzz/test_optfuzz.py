"""Tests for the opt-fuzz generators and the validation workflow."""

import itertools

import pytest

from repro.fuzz import (
    SMALL_OPCODES,
    count_functions,
    enumerate_functions,
    random_functions,
)
from repro.ir import Opcode, parse_function, print_module, verify_function
from repro.opt import OptConfig, single_pass_pipeline
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD


class TestEnumeration:
    def test_count_matches_enumeration(self):
        expected = count_functions(1)
        actual = sum(1 for _ in enumerate_functions(1))
        assert actual == expected == 448

    def test_all_generated_functions_verify(self):
        for fn in enumerate_functions(1):
            verify_function(fn)

    def test_limit_respected(self):
        assert sum(1 for _ in enumerate_functions(2, limit=50)) == 50

    def test_deterministic(self):
        a = [print_module(f.module) for f in enumerate_functions(1, limit=20)]
        b = [print_module(f.module) for f in enumerate_functions(1, limit=20)]
        assert a == b

    def test_distinct_functions(self):
        texts = {print_module(f.module) for f in enumerate_functions(1)}
        assert len(texts) == 448

    def test_operand_variety(self):
        # undef, poison, constants, both args all appear in the corpus
        corpus = "".join(
            print_module(f.module) for f in enumerate_functions(1)
        )
        for token in ("undef", "poison", "%a", "%b", "-2"):
            assert token in corpus

    def test_custom_opcode_set(self):
        fns = list(enumerate_functions(
            1, opcodes=(Opcode.ADD,), include_deferred=False))
        # 1 opcode x pool^2 where pool = 2 args + 4 constants
        assert len(fns) == 36
        for fn in fns:
            assert fn.entry.instructions[0].opcode is Opcode.ADD


class TestRandomGeneration:
    def test_seeded_reproducible(self):
        a = [print_module(f.module)
             for f in random_functions(10, seed=42)]
        b = [print_module(f.module)
             for f in random_functions(10, seed=42)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [print_module(f.module) for f in random_functions(10, seed=1)]
        b = [print_module(f.module) for f in random_functions(10, seed=2)]
        assert a != b

    def test_all_valid(self):
        for fn in random_functions(50, seed=5):
            verify_function(fn)

    def test_icmp_and_select_appear(self):
        corpus = "".join(
            print_module(f.module)
            for f in random_functions(80, seed=11)
        )
        assert "icmp" in corpus
        assert "select" in corpus


class TestValidationWorkflow:
    """The E5 loop in miniature, locked into the test suite."""

    def test_legacy_instcombine_caught(self):
        opts = CheckOptions(max_choices=20, fuel=600)
        failures = 0
        for fn in enumerate_functions(
            1, opcodes=(Opcode.MUL, Opcode.SHL), include_deferred=True
        ):
            src_text = print_module(fn.module)
            before = parse_function(src_text)
            single_pass_pipeline(
                "instcombine", OptConfig.legacy()).run_on_function(fn)
            verify_function(fn)
            if check_refinement(before, fn, OLD, options=opts).failed:
                failures += 1
        assert failures > 0

    def test_fixed_instcombine_clean(self):
        opts = CheckOptions(max_choices=20, fuel=600)
        for fn in enumerate_functions(
            1, opcodes=(Opcode.MUL, Opcode.SHL), include_deferred=True
        ):
            src_text = print_module(fn.module)
            before = parse_function(src_text)
            single_pass_pipeline(
                "instcombine", OptConfig.fixed()).run_on_function(fn)
            verify_function(fn)
            result = check_refinement(before, fn, NEW, options=opts)
            assert not result.failed, (
                f"fixed InstCombine miscompiled:\n{src_text}\n{result}"
            )
