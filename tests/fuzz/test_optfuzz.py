"""Tests for the opt-fuzz generators and the validation workflow."""

import itertools

import pytest

import random

from repro.fuzz import (
    SMALL_OPCODES,
    count_functions,
    enumerate_functions,
    enumeration_size,
    function_at_index,
    random_functions,
)
from repro.ir import Opcode, parse_function, print_module, verify_function
from repro.opt import OptConfig, single_pass_pipeline
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD


class TestEnumeration:
    def test_count_matches_enumeration(self):
        expected = count_functions(1)
        actual = sum(1 for _ in enumerate_functions(1))
        assert actual == expected == 448

    def test_all_generated_functions_verify(self):
        for fn in enumerate_functions(1):
            verify_function(fn)

    def test_limit_respected(self):
        assert sum(1 for _ in enumerate_functions(2, limit=50)) == 50

    def test_deterministic(self):
        a = [print_module(f.module) for f in enumerate_functions(1, limit=20)]
        b = [print_module(f.module) for f in enumerate_functions(1, limit=20)]
        assert a == b

    def test_distinct_functions(self):
        texts = {print_module(f.module) for f in enumerate_functions(1)}
        assert len(texts) == 448

    def test_operand_variety(self):
        # undef, poison, constants, both args all appear in the corpus
        corpus = "".join(
            print_module(f.module) for f in enumerate_functions(1)
        )
        for token in ("undef", "poison", "%a", "%b", "-2"):
            assert token in corpus

    def test_custom_opcode_set(self):
        fns = list(enumerate_functions(
            1, opcodes=(Opcode.ADD,), include_deferred=False))
        # 1 opcode x pool^2 where pool = 2 args + 4 constants
        assert len(fns) == 36
        for fn in fns:
            assert fn.entry.instructions[0].opcode is Opcode.ADD


class TestIndexedAccess:
    """start/stop slicing and random access into the enumeration space
    (what campaign shards use to partition work)."""

    def test_slice_matches_full_enumeration(self):
        full = [print_module(f.module) for f in enumerate_functions(1)]
        sliced = [print_module(f.module)
                  for f in enumerate_functions(1, start=100, stop=130)]
        assert sliced == full[100:130]

    def test_slices_tile_the_space(self):
        full = [print_module(f.module) for f in enumerate_functions(1)]
        tiled = []
        for start in range(0, 448, 100):
            tiled.extend(
                print_module(f.module)
                for f in enumerate_functions(1, start=start,
                                             stop=start + 100)
            )
        assert tiled == full

    def test_function_at_index(self):
        full = [print_module(f.module) for f in enumerate_functions(1)]
        for index in (0, 17, 250, 447):
            assert print_module(
                function_at_index(index, 1).module) == full[index]

    def test_function_at_index_bounds(self):
        with pytest.raises(IndexError):
            function_at_index(448, 1)
        with pytest.raises(IndexError):
            function_at_index(-1, 1)

    def test_limit_composes_with_start(self):
        fns = list(enumerate_functions(1, start=440, limit=100))
        assert len(fns) == 8  # clipped at the end of the space

    def test_enumeration_size_counts_flags(self):
        plain = enumeration_size(1)
        flagged = enumeration_size(1, include_flags=True)
        assert plain == count_functions(1) == 448
        assert flagged > plain


class TestRandomGeneration:
    def test_seeded_reproducible(self):
        a = [print_module(f.module)
             for f in random_functions(10, seed=42)]
        b = [print_module(f.module)
             for f in random_functions(10, seed=42)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [print_module(f.module) for f in random_functions(10, seed=1)]
        b = [print_module(f.module) for f in random_functions(10, seed=2)]
        assert a != b

    def test_all_valid(self):
        for fn in random_functions(50, seed=5):
            verify_function(fn)

    def test_explicit_rng_overrides_seed(self):
        via_seed = [print_module(f.module)
                    for f in random_functions(10, seed=42)]
        via_rng = [print_module(f.module)
                   for f in random_functions(10, seed=999,
                                             rng=random.Random(42))]
        assert via_seed == via_rng

    def test_rng_state_is_consumed_sequentially(self):
        """One rng threaded through two calls continues the stream —
        how a shard worker resumes a derived stream mid-way."""
        whole = [print_module(f.module)
                 for f in random_functions(10, seed=3)]
        rng = random.Random(3)
        first = [print_module(f.module)
                 for f in random_functions(4, rng=rng)]
        second = [print_module(f.module)
                  for f in random_functions(6, rng=rng)]
        assert first + second == whole

    def test_icmp_and_select_appear(self):
        corpus = "".join(
            print_module(f.module)
            for f in random_functions(80, seed=11)
        )
        assert "icmp" in corpus
        assert "select" in corpus


class TestValidationWorkflow:
    """The E5 loop in miniature, locked into the test suite."""

    def test_legacy_instcombine_caught(self):
        opts = CheckOptions(max_choices=20, fuel=600)
        failures = 0
        for fn in enumerate_functions(
            1, opcodes=(Opcode.MUL, Opcode.SHL), include_deferred=True
        ):
            src_text = print_module(fn.module)
            before = parse_function(src_text)
            single_pass_pipeline(
                "instcombine", OptConfig.legacy()).run_on_function(fn)
            verify_function(fn)
            if check_refinement(before, fn, OLD, options=opts).failed:
                failures += 1
        assert failures > 0

    def test_fixed_instcombine_clean(self):
        opts = CheckOptions(max_choices=20, fuel=600)
        for fn in enumerate_functions(
            1, opcodes=(Opcode.MUL, Opcode.SHL), include_deferred=True
        ):
            src_text = print_module(fn.module)
            before = parse_function(src_text)
            single_pass_pipeline(
                "instcombine", OptConfig.fixed()).run_on_function(fn)
            verify_function(fn)
            result = check_refinement(before, fn, NEW, options=opts)
            assert not result.failed, (
                f"fixed InstCombine miscompiled:\n{src_text}\n{result}"
            )
