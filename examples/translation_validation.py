#!/usr/bin/env python3
"""Alive-style translation validation of the full -O2 pipeline.

Optimizes a batch of small functions with the fixed (poison + freeze)
pipeline and the legacy pipeline and validates every result against its
source with the exhaustive refinement checker — the paper's Section 6
methodology, live.

Run:  python examples/translation_validation.py
"""

from repro.fuzz import enumerate_functions, random_functions
from repro.ir import parse_function, print_function, print_module, \
    verify_function
from repro.opt import OptConfig, o2_pipeline
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD

OPTS = CheckOptions(max_choices=20, fuel=600)


def validate(corpus_factory, config, semantics, label: str) -> None:
    verified = failed = undecided = 0
    first = None
    for fn in corpus_factory():
        src_text = print_module(fn.module)
        before = parse_function(src_text)
        o2_pipeline(config).run_on_function(fn)
        verify_function(fn)
        result = check_refinement(before, fn, semantics, options=OPTS)
        if result.ok:
            verified += 1
        elif result.failed:
            failed += 1
            if first is None:
                first = (before, fn, result)
        else:
            undecided += 1
    print(f"{label:<28} verified={verified:<5} miscompiled={failed:<4} "
          f"undecided={undecided}")
    if first is not None:
        before, after, result = first
        print("\n  first miscompilation found:")
        print("  --- source ---")
        print("  " + print_function(before).replace("\n", "\n  "))
        print("  --- optimized ---")
        print("  " + print_function(after).replace("\n", "\n  "))
        print(f"  --- counterexample ---\n{result.counterexample}\n")


def main() -> None:
    print("validating -O2 over the exhaustive 1-instruction i2 corpus")
    print("(448 functions; every input including undef/poison; every")
    print("nondeterministic execution enumerated)\n")

    validate(lambda: enumerate_functions(1), OptConfig.legacy(), OLD,
             "legacy pipeline (OLD)")
    validate(lambda: enumerate_functions(1), OptConfig.fixed(), NEW,
             "fixed pipeline (NEW)")

    print("\nand a random 3-instruction sample with flags/icmp/select:\n")
    validate(lambda: random_functions(40, seed=3), OptConfig.legacy(),
             OLD, "legacy pipeline (OLD)")
    validate(lambda: random_functions(40, seed=3), OptConfig.fixed(),
             NEW, "fixed pipeline (NEW)")


if __name__ == "__main__":
    main()
