#!/usr/bin/env python3
"""The whole stack on a real program: C source -> IR -> -O2 -> machine
code -> execution, under both the baseline and prototype pipelines.

Run:  python examples/compile_c_program.py
"""

from repro.backend import (
    compile_module,
    print_assembly,
    program_size,
    run_program,
)
from repro.bench.harness import baseline_variant, prototype_variant
from repro.frontend import compile_c
from repro.ir import FreezeInst, print_module
from repro.opt import codegen_pipeline, o2_pipeline

C_SOURCE = """
struct header { int version : 4; int kind : 4; int length : 8; };
struct header h;

int checksum(int seed) {
    int acc = seed;
    for (int i = 0; i < 16; i++) {
        acc = (acc * 31 + i) & 65535;
    }
    return acc;
}

int main() {
    h.version = 2;
    h.kind = 5;
    h.length = 99;
    int meta = h.version * 1000 + h.kind * 100 + h.length;
    return checksum(meta) & 4095;
}
"""


def main() -> None:
    print("C source:")
    print(C_SOURCE)
    for variant in (baseline_variant(), prototype_variant()):
        module = compile_c(C_SOURCE, variant.codegen_options)
        o2_pipeline(variant.opt_config).run(module)
        codegen_pipeline(variant.opt_config).run(module)

        freezes = sum(
            1 for fn in module.definitions()
            for inst in fn.instructions() if isinstance(inst, FreezeInst)
        )
        program = compile_module(module)
        result, cycles, instrs = run_program(program, "main", [])

        print("=" * 72)
        print(f"pipeline: {variant.name}")
        print("=" * 72)
        print(f"IR instructions: {module.num_instructions()} "
              f"({freezes} freeze)")
        print(f"object size:     {program_size(program)} model bytes")
        print(f"result:          {result}  "
              f"({instrs} instructions, {cycles} cycles)")
        if variant.name == "prototype":
            print("\noptimized IR:")
            print(print_module(module))
            print("machine code (main):")
            print(print_assembly(program.functions["main"]))


if __name__ == "__main__":
    main()
