#!/usr/bin/env python3
"""The Section 3.3 story, end to end: GVN and loop unswitching cannot
both be correct under the old semantics, and the freeze fix repairs
unswitching under the new one.

Run:  python examples/miscompile_gvn_unswitch.py
"""

from repro.bench.catalog import CATALOG, CONFIGS, check_entry
from repro.ir import parse_function, print_function, verify_function
from repro.opt import baseline_config, prototype_config, \
    single_pass_pipeline
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD, OLD_GVN_VIEW

LOOP = """
declare void @foo(i4)

define void @f(i1 %c, i1 %c2) {
entry:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  call void @foo(i4 1)
  br label %exit
e:
  call void @foo(i4 2)
  br label %exit
exit:
  ret void
}
"""


def banner(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    options = CheckOptions(max_choices=48, fuel=4000)

    banner("1. Run the ACTUAL loop-unswitching pass, legacy variant "
           "(no freeze)")
    fn = parse_function(LOOP)
    single_pass_pipeline("loop-unswitch",
                         baseline_config()).run_on_function(fn)
    verify_function(fn)
    print(print_function(fn))

    banner("2. Validate it under each semantics reading")
    before = parse_function(LOOP)
    for name, config in (("OLD / unswitch view (branch-on-poison "
                          "nondet)", OLD),
                         ("OLD / GVN view (branch-on-poison UB)",
                          OLD_GVN_VIEW),
                         ("NEW (poison + freeze)", NEW)):
        result = check_refinement(before, fn, config, options=options)
        print(f"\n  {name}:\n    {result}")

    banner("3. The fixed pass freezes the hoisted condition")
    fixed = parse_function(LOOP)
    single_pass_pipeline("loop-unswitch",
                         prototype_config()).run_on_function(fixed)
    verify_function(fixed)
    print(print_function(fixed))
    result = check_refinement(parse_function(LOOP), fixed, NEW,
                              options=options)
    print(f"\n  under NEW: {result}")

    banner("4. The full Section 3 soundness matrix")
    from repro.bench import render_matrix

    print(render_matrix())


if __name__ == "__main__":
    main()
