#!/usr/bin/env python3
"""The from-scratch SMT stack, standalone.

The refinement checker needed symbolic bitvector reasoning and the
environment has no Z3, so the repository ships its own: hash-consed
terms, Tseitin CNF, bit-blasting (ripple-carry adders, shift-and-add
multipliers, restoring dividers, barrel shifters), and a CDCL SAT solver
with two-watched literals, VSIDS, first-UIP learning and Luby restarts.

Run:  python examples/smt_solver.py
"""

import time

from repro.smt import SAT, UNSAT, Solver, check_valid
from repro.smt import terms as T


def main() -> None:
    print("=== solve: find x with 3*x == 1 (mod 2^32) ===")
    x = T.bv_var("x", 32)
    solver = Solver()
    solver.add(T.eq(T.bvmul(T.bv_const(3, 32), x), T.bv_const(1, 32)))
    t0 = time.time()
    result = solver.check()
    value = solver.model_bv(x)
    print(f"{result}: x = {value:#010x}  (3 * x mod 2^32 = "
          f"{(3 * value) % 2**32})  [{time.time()-t0:.2f}s]")

    print("\n=== prove: de Morgan at i32 ===")
    a = T.bv_var("a", 32)
    b = T.bv_var("b", 32)
    lhs = T.bvnot(T.bvand(a, b))
    rhs = T.bvor(T.bvnot(a), T.bvnot(b))
    t0 = time.time()
    print(f"~(a & b) == ~a | ~b : {check_valid(T.eq(lhs, rhs))}  "
          f"[{time.time()-t0:.2f}s]")

    print("\n=== prove: x*9 == (x<<3) + x at i24 ===")
    x24 = T.bv_var("x24", 24)
    lhs = T.bvmul(x24, T.bv_const(9, 24))
    rhs = T.bvadd(T.bvshl(x24, T.bv_const(3, 24)), x24)
    t0 = time.time()
    print(f"{check_valid(T.eq(lhs, rhs))}  [{time.time()-t0:.2f}s]")

    print("\n=== refute: addition is not monotone in unsigned order ===")
    p = T.bv_var("p", 16)
    q = T.bv_var("q", 16)
    claim = T.implies(T.ult(p, q),
                      T.ult(T.bvadd(p, T.bv_const(1, 16)),
                            T.bvadd(q, T.bv_const(1, 16))))
    solver = Solver()
    solver.add(T.not_(claim))
    result = solver.check()
    if result == SAT:
        pv, qv = solver.model_bv(p), solver.model_bv(q)
        print(f"counterexample: p={pv:#06x}, q={qv:#06x} "
              f"(q+1 wraps to {(qv + 1) % 65536:#06x})")

    print("\n=== the solver inside the checker: nsw reasoning ===")
    # (a +nsw b) > a  <=>  b > 0, encoded the way the refinement
    # encoder does it: value + poison pair.
    a8 = T.bv_var("a8", 8)
    b8 = T.bv_var("b8", 8)
    total = T.bvadd(a8, b8)
    wide = T.bvadd(T.sext(a8, 9), T.sext(b8, 9))
    overflowed = T.ne(wide, T.sext(total, 9))  # the nsw poison condition
    src_poison = overflowed
    src_val = T.slt(a8, total)                 # total > a
    tgt_val = T.slt(T.bv_const(0, 8), b8)      # b > 0
    vc = T.and_(T.not_(src_poison), T.ne(src_val, tgt_val))
    solver = Solver()
    solver.add(vc)
    print(f"counterexample to 'a+b>a ==> b>0 (when nsw defined)': "
          f"{solver.check()} (none exists — the rewrite is sound)")


if __name__ == "__main__":
    main()
