#!/usr/bin/env python3
"""Quickstart: parse IR, run it under both UB semantics, validate a
transformation, and compile to machine code.

Run:  python examples/quickstart.py
"""

from repro.ir import parse_function, parse_module, print_function
from repro.refine import check_refinement, check_refinement_symbolic
from repro.semantics import NEW, OLD, POISON, enumerate_behaviors, run_once
from repro.backend import compile_module, run_program


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Parse a function and execute it.
    # ------------------------------------------------------------------
    fn = parse_function("""
define i8 @triple(i8 %x) {
entry:
  %a = mul i8 %x, 3
  ret i8 %a
}
""")
    print("=== the function ===")
    print(print_function(fn))
    behavior = run_once(fn, [14], NEW)
    print(f"\ntriple(14) = {behavior}")

    # ------------------------------------------------------------------
    # 2. Deferred UB: the same program under undef vs poison semantics.
    # ------------------------------------------------------------------
    dbl = parse_function("""
define i4 @f(i4 %x) {
entry:
  %y = add i4 %x, %x
  ret i4 %y
}
""")
    print("\n=== add %x, %x with a deferred-UB input ===")
    from repro.semantics import full_undef

    old_outcomes = {str(b) for b in enumerate_behaviors(dbl,
                                                        [full_undef(4)],
                                                        OLD)}
    new_outcomes = {str(b) for b in enumerate_behaviors(dbl, [POISON], NEW)}
    print(f"OLD semantics, x = undef : {len(old_outcomes)} outcomes "
          f"(each use picks its own value!)")
    print(f"NEW semantics, x = poison: {sorted(new_outcomes)}")

    # ------------------------------------------------------------------
    # 3. Translation validation (the paper's Section 3.1 bug).
    # ------------------------------------------------------------------
    print("\n=== validate: mul x, 2  -->  add x, x ===")
    src = parse_function(
        "define i4 @f(i4 %x) {\nentry:\n  %y = mul i4 %x, 2\n"
        "  ret i4 %y\n}")
    tgt = parse_function(
        "define i4 @f(i4 %x) {\nentry:\n  %y = add i4 %x, %x\n"
        "  ret i4 %y\n}")
    for name, config in (("OLD (undef exists)", OLD),
                         ("NEW (poison only)", NEW)):
        result = check_refinement(src, tgt, config)
        print(f"under {name:<18}: {result}")

    # ------------------------------------------------------------------
    # 4. The same check symbolically at full 32-bit width (no Z3 — the
    #    library ships its own CDCL SAT solver and bit-blaster).
    # ------------------------------------------------------------------
    print("\n=== symbolic proof at i32 ===")
    src32 = parse_function("""
define i1 @f(i32 %a, i32 %b) {
entry:
  %add = add nsw i32 %a, %b
  %cmp = icmp sgt i32 %add, %a
  ret i1 %cmp
}
""")
    tgt32 = parse_function("""
define i1 @f(i32 %a, i32 %b) {
entry:
  %cmp = icmp sgt i32 %b, 0
  ret i1 %cmp
}
""")
    print("a+b > a  ==>  b > 0 (with nsw):",
          check_refinement_symbolic(src32, tgt32))

    # ------------------------------------------------------------------
    # 5. Compile a module down to machine code and run it.
    # ------------------------------------------------------------------
    print("\n=== backend: compile and execute ===")
    module = parse_module("""
define i32 @fib(i32 %n) {
entry:
  %c = icmp ult i32 %n, 2
  br i1 %c, label %base, label %rec
base:
  ret i32 %n
rec:
  %a = sub i32 %n, 1
  %b = sub i32 %n, 2
  %fa = call i32 @fib(i32 %a)
  %fb = call i32 @fib(i32 %b)
  %s = add i32 %fa, %fb
  ret i32 %s
}
""")
    program = compile_module(module)
    result, cycles, instrs = run_program(program, "fib", [12])
    print(f"fib(12) = {result}  ({instrs} instructions, {cycles} cycles)")


if __name__ == "__main__":
    main()
