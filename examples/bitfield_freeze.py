#!/usr/bin/env python3
"""Section 5.3: why Clang's bit-field lowering needs exactly one freeze.

Compiles a C struct-with-bit-fields through the MiniC frontend twice —
with and without the paper's one-line Clang change — and shows that the
unfrozen version returns poison under the new semantics while the frozen
one works.

Run:  python examples/bitfield_freeze.py
"""

from repro.frontend import CodegenOptions, compile_c
from repro.ir import print_function
from repro.semantics import NEW, run_once

C_SOURCE = """
struct flags { int a : 3; int b : 5; int c : 8; };
struct flags f;

int main() {
    f.a = 2;      /* first store: the storage word is uninitialized! */
    f.b = 9;
    f.c = 77;
    return f.a * 10000 + f.b * 100 + f.c;
}
"""


def bits_to_str(bits) -> str:
    from repro.semantics import PBIT, UBIT

    def one(b):
        if b is PBIT:
            return "p"
        if b is UBIT:
            return "u"
        return str(b)

    return "".join(one(b) for b in reversed(bits))


def main() -> None:
    print("C source:")
    print(C_SOURCE)

    for label, options in (
        ("WITHOUT the freeze (pre-paper Clang)",
         CodegenOptions(freeze_bitfield_stores=False)),
        ("WITH the freeze (the paper's one-line change)",
         CodegenOptions(freeze_bitfield_stores=True)),
    ):
        module = compile_c(C_SOURCE, options)
        print("=" * 72)
        print(label)
        print("=" * 72)
        main_fn = module.get_function("main")
        print(print_function(main_fn))
        behavior = run_once(main_fn, [], NEW)
        if behavior.ret is not None:
            print(f"\nexecuting under the NEW semantics returns: "
                  f"{bits_to_str(behavior.ret)}")
            expected = 2 * 10000 + 9 * 100 + 77
            concrete = all(isinstance(b, int) for b in behavior.ret)
            if concrete:
                value = sum(b << i for i, b in enumerate(behavior.ret))
                ok = "correct!" if value == expected else "WRONG"
                print(f"= {value} ({ok}; expected {expected})")
            else:
                print("= POISON: the masked store could not launder the "
                      "uninitialized word's poison (Section 5.3)")
        print()


if __name__ == "__main__":
    main()
