; Demo input for the resilience layer — a phi- and call-heavy function
; that gives chaos corruption plenty of surface (terminators to drop,
; phis to duplicate, instructions to misplace):
;
;   python -m repro examples/chaos_recovery.ll \
;       --chaos --chaos-seed 7 --chaos-rate 0.3 --verify-each \
;       --crash-dir crashes --stats
;
; Every injected fault shows up as a resilience/num-recoveries tick, a
; "rolled back ..." remark, and a replayable bundle under crashes/.

declare void @effect(i8)

define i8 @main(i8 %n, i1 %flip) {
entry:
  %doubled = mul i8 %n, 2
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %next, %latch ]
  %acc = phi i8 [ %doubled, %entry ], [ %sum, %latch ]
  %cmp = icmp ult i8 %i, 8
  br i1 %cmp, label %body, label %exit
body:
  br i1 %flip, label %odd, label %even
odd:
  %t1 = add i8 %acc, %i
  call void @effect(i8 %t1)
  br label %latch
even:
  %t2 = sub i8 %acc, %i
  br label %latch
latch:
  %sum = phi i8 [ %t1, %odd ], [ %t2, %even ]
  %next = add i8 %i, 1
  br label %head
exit:
  ret i8 %acc
}
