; Demo input for the opt-bisect driver — a pipeline over this function
; makes several dozen pass applications, enough for the binary search
; to be visibly logarithmic:
;
;   python -m repro bisect examples/bisect_hunt.ll \
;       --chaos-fail-at 5 --chaos-mode corrupt --verbose
;
; prints each probe and pinpoints application #5 as the culprit.  With
; --checker interp the checker compares the interpreted behavior of
; @main against the unoptimized module instead of just verifying.

define i8 @main(i8 %a, i8 %b) {
entry:
  %p = mul i8 %a, 2
  %q = add i8 %p, %b
  %c = icmp ult i8 %q, 32
  br i1 %c, label %small, label %big
small:
  %s = shl i8 %q, 1
  br label %join
big:
  %g = sub i8 %q, %a
  br label %join
join:
  %r = phi i8 [ %s, %small ], [ %g, %big ]
  %folded = add i8 %r, 0
  ret i8 %folded
}
