; Demo input for `python -m repro lint` — each function fires exactly one
; rule, so CI can assert the complete rule-ID set:
;
; * @branchy   -> branch-on-maybe-poison  (nsw overflow feeds a branch)
; * @sinky     -> ub-sink-reaches-poison  (nuw overflow feeds a divisor)
; * @frosty    -> redundant-freeze        (dominating branch already
;                 proved %x non-poison: branch-on-poison is UB)
; * @hoisted   -> missing-freeze-on-hoist (unswitched dispatch on an
;                 unfrozen condition)
; * @deadflag  -> dead-on-poison-flag     (nsw on an unused result)

define i8 @branchy(i8 %x) {
entry:
  %cmp.of = add nsw i8 %x, 1
  %c = icmp eq i8 %cmp.of, 0
  br i1 %c, label %t, label %e
t:
  ret i8 1
e:
  ret i8 0
}

define i8 @sinky(i8 %x, i8 %y) {
entry:
  %p = mul nuw i8 %x, 2
  %q = udiv i8 %y, %p
  ret i8 %q
}

define i8 @frosty(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  br i1 %c, label %use, label %out
use:
  %f = freeze i8 %x
  ret i8 %f
out:
  ret i8 0
}

define i8 @hoisted(i8 %n, i1 %inv) {
entry:
  br i1 %inv, label %head, label %head.us
head:
  %i = phi i8 [ 0, %entry ], [ %next, %head ]
  %next = add i8 %i, 1
  %cmp = icmp ult i8 %next, 4
  br i1 %cmp, label %head, label %exit
head.us:
  %j = phi i8 [ 0, %entry ], [ %jnext, %head.us ]
  %jnext = add i8 %j, 2
  %jcmp = icmp ult i8 %jnext, 4
  br i1 %jcmp, label %head.us, label %exit
exit:
  %r = phi i8 [ %next, %head ], [ %jnext, %head.us ]
  ret i8 %r
}

define i8 @deadflag(i8 %x, i8 %y) {
entry:
  %dead = add nsw i8 %x, %y
  %sum = add i8 %x, %y
  ret i8 %sum
}
