; Demo input for `python -m repro` — exercises the observability layer.
;
; * `%m = mul i8 %x, 2` fires InstCombine's strength reduction
;   (num-mul-to-add / num-mul-to-shl counters).
; * The loop-invariant branch on %c2 inside the loop fires LoopUnswitch;
;   under the fixed config the hoisted condition is frozen (Section 5.1),
;   emitting the "froze hoisted condition" remark and bumping
;   loop-unswitch/num-conditions-frozen.

declare void @effect(i8)

define i8 @main(i8 %x, i1 %c2) {
entry:
  %m = mul i8 %x, 2
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %next, %latch ]
  %cmp = icmp ult i8 %i, 4
  br i1 %cmp, label %body, label %exit
body:
  br i1 %c2, label %then, label %else
then:
  call void @effect(i8 %i)
  br label %latch
else:
  call void @effect(i8 %m)
  br label %latch
latch:
  %next = add i8 %i, 1
  br label %head
exit:
  ret i8 %m
}
