"""E1 — Figure 6: run time of generated code, prototype vs baseline.

The paper's Figure 6 plots the per-benchmark change in performance of
SPEC CPU 2006 under the freeze prototype, all within about ±1.6%.  Our
analog compiles the SPEC-analog suite under both pipelines and compares
deterministic machine-cycle counts.  The expected shape: most deltas are
0 or very small; bit-field-heavy workloads (the ``gcc`` analog) pay a
small cost for their freezes.
"""

import pytest

from repro.backend import compile_module, run_program
from repro.bench import SUITE, compile_workload, prototype_variant


def test_figure6_runtime_deltas(suite_comparisons):
    """Every workload computes the right checksum under both pipelines,
    and the run-time deltas stay within a SPEC-like band."""
    for c in suite_comparisons:
        assert c.baseline.checksum_ok, f"{c.workload}: baseline checksum"
        assert c.prototype.checksum_ok, f"{c.workload}: prototype checksum"
        # the paper saw about +-1.6% with one ~8% outlier; give our toy
        # cost model more slack but catch real regressions
        assert abs(c.runtime_delta_pct) < 15.0, (
            f"{c.workload}: runtime delta {c.runtime_delta_pct:+.2f}% "
            f"out of band"
        )


def test_most_workloads_unchanged(suite_comparisons):
    """Like the paper's LNT observation (only 26% of benchmarks had
    different IR at all), most workloads are byte-identical."""
    unchanged = sum(
        1 for c in suite_comparisons
        if c.prototype.cycles == c.baseline.cycles
    )
    assert unchanged >= len(suite_comparisons) // 2


@pytest.mark.benchmark(group="e1-runtime")
def bench_queens_prototype_execution(benchmark):
    """Time the machine-level execution of the Stanford Queens analog
    (the paper's run-time outlier) under the prototype pipeline."""
    module, _, _ = compile_workload(SUITE["queens"], prototype_variant(),
                                    measure_memory=False)
    program = compile_module(module)

    def run():
        result, cycles, _ = run_program(program, "main", [])
        assert result == SUITE["queens"].expected
        return cycles

    benchmark(run)
