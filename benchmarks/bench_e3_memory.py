"""E3 — Section 7.2 "Memory consumption".

The paper measured the compiler's peak RSS with ps and saw it unchanged
for most benchmarks (max +2%).  We measure the Python compiler's peak
traced allocation with tracemalloc over the same compilations.
"""

import tracemalloc

import pytest

from repro.bench import SUITE, compile_workload, prototype_variant


def test_memory_deltas_bounded(suite_comparisons):
    big = [
        (c.workload, c.memory_delta_pct) for c in suite_comparisons
        if abs(c.memory_delta_pct) > 25.0
    ]
    assert len(big) <= 3, f"peak-memory outliers: {big}"


def test_memory_measured_nonzero(suite_comparisons):
    for c in suite_comparisons:
        assert c.baseline.peak_memory_bytes > 0
        assert c.prototype.peak_memory_bytes > 0


@pytest.mark.benchmark(group="e3-memory")
def bench_traced_compile(benchmark):
    def compile_with_tracing():
        module, _, peak = compile_workload(SUITE["mcf"],
                                           prototype_variant(),
                                           measure_memory=True)
        assert peak > 0
        return peak

    benchmark(compile_with_tracing)
