"""Shared benchmark fixtures: the full-suite measurement pass runs once
per session and its paper-style reports are printed and saved under
``benchmarks/out/``."""

from __future__ import annotations

import os

import pytest

from repro.bench import (
    render_code_size,
    render_compile_time,
    render_figure6,
    render_memory,
    run_suite,
)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def suite_comparisons():
    """Measure every workload under both pipelines (once per session)."""
    comparisons = run_suite()
    os.makedirs(OUT_DIR, exist_ok=True)
    reports = {
        "figure6_runtime.txt": render_figure6(comparisons),
        "compile_time.txt": render_compile_time(comparisons),
        "memory.txt": render_memory(comparisons),
        "code_size.txt": render_code_size(comparisons),
    }
    for name, text in reports.items():
        with open(os.path.join(OUT_DIR, name), "w") as f:
            f.write(text + "\n")
        print("\n" + text)
    return comparisons
