"""E4 — Section 7.2 "Object code size".

The paper: object size changed within ±0.5%; freeze instructions were
0.04–0.06% of IR instructions, except gcc (0.29%) because of its
bit-field traffic.  We report the same two quantities; the freeze
*fraction* depends on suite composition (our workloads are small
kernels, not million-line programs), so the assertion checks the shape:
freezes exist only in the bit-field-heavy workloads and the suite-level
fraction stays below 1%.
"""

import pytest

from repro.backend import compile_module, program_size
from repro.bench import SUITE, compile_workload, prototype_variant


def test_code_size_deltas_small(suite_comparisons):
    for c in suite_comparisons:
        assert abs(c.code_size_delta_pct) < 10.0, (
            f"{c.workload}: code size delta "
            f"{c.code_size_delta_pct:+.1f}%"
        )


def test_freeze_concentrated_in_bitfield_code(suite_comparisons):
    """The gcc analog is the paper's 0.29% outlier: it is the workload
    with bit-fields, so it should hold (nearly) all the freezes."""
    by_name = {c.workload: c for c in suite_comparisons}
    gcc = by_name["gcc"]
    assert gcc.prototype.freeze_instructions > 0
    others = sum(
        c.prototype.freeze_instructions for c in suite_comparisons
        if c.workload != "gcc"
    )
    assert gcc.prototype.freeze_instructions >= others


def test_suite_level_freeze_fraction(suite_comparisons):
    total_ir = sum(c.prototype.ir_instructions for c in suite_comparisons)
    total_freeze = sum(
        c.prototype.freeze_instructions for c in suite_comparisons
    )
    fraction = total_freeze / total_ir
    # paper: 0.04%-0.29% per benchmark; our kernels are denser in
    # bit-fields relative to their size, so allow up to 1%
    assert 0 < fraction < 0.01, f"suite freeze fraction {fraction:.4%}"


def test_baseline_has_no_freezes(suite_comparisons):
    for c in suite_comparisons:
        assert c.baseline.freeze_instructions == 0


@pytest.mark.benchmark(group="e4-code-size")
def bench_measure_program_size(benchmark):
    module, _, _ = compile_workload(SUITE["gcc"], prototype_variant(),
                                    measure_memory=False)

    def measure():
        program = compile_module(module)
        return program_size(program)

    size = benchmark(measure)
