"""E14 — self-healing under a seeded fault storm.

Boots the same in-process :class:`ValidationServer` stack as E13, then
attacks it with :class:`~repro.opt.resilience.ServiceChaos` while
retrying clients drive real work, writing a ``BENCH_e14.json``
trajectory:

* **baseline** — a fault-free server answers a campaign and a refine
  corpus; its verdict lines are the ground truth;
* **storm** — a fresh server runs the identical workload while chaos
  SIGKILLs shard workers mid-run and drops/stalls client connections
  mid-frame; every request goes through :class:`RetryingClient`;
* **recovery** — chaos flips one byte inside the on-disk verdict
  store; ``fsck`` must find exactly that corruption, and a new server
  over the damaged store must quarantine the bad record while serving
  the rest of the corpus warm.

Gates (exit nonzero): any failed request during the storm, verdict
lines differing anywhere from the fault-free baseline, zero supervisor
restarts (the kills never landed or were never healed), fsck missing
the injected corruption, or a recovery server with no warm hits left.

Usage::

    PYTHONPATH=src python benchmarks/bench_e14_chaos.py [--quick] \
        [--out BENCH_e14.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import threading
import time

from repro.fuzz import random_functions
from repro.ir import print_module
from repro.opt.resilience import ServiceChaos
from repro.perf import fsck
from repro.serve import (
    RetryingClient,
    RetryPolicy,
    ServiceConfig,
    ValidationServer,
    reset_breakers,
)

CAMPAIGN_SPEC = dict(mode="random", count=48, num_instructions=1,
                     pipeline="quick", shard_size=8, fuel=300,
                     max_inputs=4000)

REFINE_BUDGETS = dict(pipeline="quick", fuel=300, max_inputs=4000)

RETRY = RetryPolicy(max_attempts=5, backoff_base=0.05, seed=1402)


class ServerThread:
    """The server's asyncio loop on a daemon thread, real sockets.

    Unlike E13's harness this keeps the :class:`ValidationServer`
    reachable (``self.server``): chaos needs the live shard executor to
    aim SIGKILL at.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.host = self.port = None
        self.server = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self):
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start")
        return self.host, self.port

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = ValidationServer(config=self.config)
        self.host, self.port = await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown(drain_timeout=60)

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=90)

    @property
    def executor(self):
        return self.server.service.pool.executor


def _corpus(count: int):
    return [print_module(fn.module)
            for fn in random_functions(count, seed=1402)]


def _run_workload(host, port, spec_dict, sources, failures):
    """The full workload through a retrying client; returns
    (campaign done, refine done)."""
    campaign = refine = None
    try:
        with RetryingClient(host=host, port=port, timeout=600,
                            policy=RETRY) as client:
            campaign = client.campaign(spec_dict)
            _, refine = client.collect(
                "refine", {"functions": sources, **REFINE_BUDGETS})
    except Exception as e:  # noqa: BLE001 — any failed request gates E14
        failures.append(f"{type(e).__name__}: {e}")
    return campaign, refine


def bench_baseline(spec_dict, sources) -> dict:
    """Fault-free ground truth on a throwaway store."""
    failures: list = []
    with tempfile.TemporaryDirectory(prefix="e14-baseline-") as memo_dir:
        server = ServerThread(ServiceConfig(
            workers=2, check_threads=2, high_water=64,
            request_timeout=600.0, memo_dir=memo_dir))
        host, port = server.start()
        try:
            campaign, refine = _run_workload(host, port, spec_dict,
                                             sources, failures)
        finally:
            server.stop()
    if failures or campaign is None or refine is None:
        raise RuntimeError(f"fault-free baseline failed: {failures}")
    return {
        "campaign_verdict_lines": campaign["verdict_lines"],
        "refine_verdict_lines": refine["verdict_lines"],
        "checked": campaign["checked"] + refine["checked"],
    }


def bench_storm(spec_dict, sources, memo_dir, kills: int) -> dict:
    """The identical workload under SIGKILL + connection chaos."""
    chaos = ServiceChaos(seed=1402)
    failures: list = []
    results: dict = {}
    server = ServerThread(ServiceConfig(
        workers=2, check_threads=2, high_water=64,
        request_timeout=600.0, memo_dir=memo_dir))
    host, port = server.start()

    def attack():
        for i in range(kills):
            # the first kill waits for the campaign to get busy; later
            # ones only fire if it is still running.
            if chaos.kill_worker_when_busy(
                    server.executor, timeout=60 if i == 0 else 5) is None:
                break
            # let the supervisor respawn and make progress before the
            # next kill; more than max_restarts kills of one job would
            # (correctly) quarantine it and break parity on purpose.
            time.sleep(0.4)
            chaos.drop_connection(host, port)
            chaos.stall_connection(host, port, hold=0.1)

    try:
        attacker = threading.Thread(target=attack)
        attacker.start()
        campaign, refine = _run_workload(host, port, spec_dict,
                                         sources, failures)
        attacker.join(timeout=120)
        with RetryingClient(host=host, port=port, timeout=60,
                            policy=RETRY) as client:
            results["ping"] = client.ping()
    finally:
        server.stop()

    supervisor = results.get("ping", {}).get("supervisor", {})
    return {
        "chaos": chaos.report(),
        "failed_requests": failures,
        "campaign_verdict_lines":
            campaign["verdict_lines"] if campaign else None,
        "refine_verdict_lines":
            refine["verdict_lines"] if refine else None,
        "worker_restarts": (campaign or {}).get("worker_restarts", 0),
        "supervisor": supervisor,
        "shards_errored": (campaign or {}).get("shards_errored"),
    }


def bench_recovery(sources, memo_dir) -> dict:
    """Corrupt one stored record; fsck must see it, a fresh server must
    quarantine it and still serve the rest warm."""
    chaos = ServiceChaos(seed=2027)
    corruption = chaos.corrupt_memo_record(memo_dir)
    report = fsck(memo_dir)

    failures: list = []
    refine = None
    server = ServerThread(ServiceConfig(
        workers=2, check_threads=2, high_water=64,
        request_timeout=600.0, memo_dir=memo_dir))
    host, port = server.start()
    try:
        with RetryingClient(host=host, port=port, timeout=600,
                            policy=RETRY) as client:
            _, refine = client.collect(
                "refine", {"functions": sources, **REFINE_BUDGETS})
    except Exception as e:  # noqa: BLE001
        failures.append(f"{type(e).__name__}: {e}")
    finally:
        server.stop()

    return {
        "corruption": corruption,
        "fsck": {k: report[k] for k in
                 ("valid", "legacy", "corrupt", "torn_tails", "ok")},
        "failed_requests": failures,
        "refine_verdict_lines":
            refine["verdict_lines"] if refine else None,
        "served_warm": (refine or {}).get("cached", 0),
        "checked": (refine or {}).get("checked", 0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (smaller corpus, one kill)")
    parser.add_argument("--out", default="BENCH_e14.json",
                        help="output JSON path (default: BENCH_e14.json)")
    args = parser.parse_args(argv)

    spec_dict = dict(CAMPAIGN_SPEC,
                     count=24 if args.quick else 48,
                     shard_size=4 if args.quick else 8)
    sources = _corpus(8 if args.quick else 16)
    kills = 1 if args.quick else 2

    reset_breakers()
    baseline = bench_baseline(spec_dict, sources)
    with tempfile.TemporaryDirectory(prefix="e14-storm-") as memo_dir:
        storm = bench_storm(spec_dict, sources, memo_dir, kills)
        recovery = bench_recovery(sources, memo_dir)

    report = {
        "experiment": "E14",
        "quick": args.quick,
        "server": {"workers": 2, "check_threads": 2, "high_water": 64},
        "workload": {"campaign": spec_dict,
                     "refine_corpus": len(sources),
                     "kills_requested": kills},
        "baseline": {"checked": baseline["checked"]},
        "storm": storm,
        "recovery": recovery,
        "campaign_identical":
            storm["campaign_verdict_lines"]
            == baseline["campaign_verdict_lines"],
        "refine_identical":
            storm["refine_verdict_lines"]
            == baseline["refine_verdict_lines"],
        "recovery_identical":
            recovery["refine_verdict_lines"]
            == baseline["refine_verdict_lines"],
    }

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"E14 chaos storm ({'quick' if args.quick else 'full'}):")
    print(f"  storm: {storm['chaos']['events']} faults "
          f"({storm['chaos']['by_kind']}), "
          f"{storm['worker_restarts']} worker restart(s), "
          f"{len(storm['failed_requests'])} failed request(s)")
    print(f"  parity: campaign={report['campaign_identical']}, "
          f"refine={report['refine_identical']}, "
          f"recovery={report['recovery_identical']}")
    print(f"  recovery: fsck found {recovery['fsck']['corrupt']} "
          f"corrupt record(s); {recovery['served_warm']}/"
          f"{recovery['checked']} served warm afterwards")
    print(f"  wrote {args.out}")

    failures = []
    if storm["failed_requests"]:
        failures.append(f"storm phase failed requests: "
                        f"{storm['failed_requests']}")
    if recovery["failed_requests"]:
        failures.append(f"recovery phase failed requests: "
                        f"{recovery['failed_requests']}")
    if not report["campaign_identical"]:
        failures.append("campaign verdicts drifted under worker kills")
    if not report["refine_identical"]:
        failures.append("refine verdicts drifted under chaos")
    if not report["recovery_identical"]:
        failures.append("verdicts drifted after memo corruption")
    if storm["supervisor"].get("restarts", 0) < 1:
        failures.append("no supervisor restarts recorded — the kills "
                        "never landed or were never healed")
    if storm["shards_errored"]:
        failures.append(f"shards errored under chaos: "
                        f"{storm['shards_errored']}")
    if recovery["fsck"]["corrupt"] < 1:
        failures.append("fsck did not find the injected corruption")
    if recovery["served_warm"] < 1:
        failures.append("no warm hits survived quarantine — the whole "
                        "store was lost to one bad record")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
