"""E7 — Section 2's motivating optimizations, verified at scale.

The paper's motivation: deferred UB (poison) is what makes nsw-based
reasoning and speculation sound.  We verify the three flagship examples

* Figure 1 (hoisting ``x + 1`` nsw out of a loop),
* the ``a+b > a  ==>  b > 0`` rewrite (Section 2.4),
* induction-variable widening / sext elimination (Figure 3),

with both checkers — exhaustively at i4, *symbolically at i32* through
the from-scratch SMT stack — and confirm the negative halves (without
nsw, or with undef-on-overflow, the rewrites are wrong).
"""

import pytest

from repro.ir import parse_function
from repro.refine import (
    CheckOptions,
    check_refinement,
    check_refinement_symbolic,
)
from repro.semantics import NEW

NSW_SRC_I32 = """
define i1 @f(i32 %a, i32 %b) {
entry:
  %add = add nsw i32 %a, %b
  %cmp = icmp sgt i32 %add, %a
  ret i1 %cmp
}
"""
NSW_TGT_I32 = """
define i1 @f(i32 %a, i32 %b) {
entry:
  %cmp = icmp sgt i32 %b, 0
  ret i1 %cmp
}
"""


@pytest.fixture(scope="module")
def e7_report():
    rows = []
    # symbolic, full 32-bit width
    r = check_refinement_symbolic(parse_function(NSW_SRC_I32),
                                  parse_function(NSW_TGT_I32))
    rows.append(("a+b>a ==> b>0 (nsw), i32, symbolic", r.verdict))
    r = check_refinement_symbolic(
        parse_function(NSW_SRC_I32.replace(" nsw", "")),
        parse_function(NSW_TGT_I32),
    )
    rows.append(("a+b>a ==> b>0 (wrapping), i32, symbolic", r.verdict))
    print("\nE7 — motivating optimizations")
    for title, verdict in rows:
        print(f"  {title:<45} {verdict}")
    return dict(rows)


def test_nsw_rewrite_verifies_at_i32(e7_report):
    assert e7_report["a+b>a ==> b>0 (nsw), i32, symbolic"] == "verified"


def test_wrapping_rewrite_refuted_at_i32(e7_report):
    assert e7_report[
        "a+b>a ==> b>0 (wrapping), i32, symbolic"
    ] == "failed"


def test_figure1_hoisting_verifies_exhaustively():
    src = parse_function("""
define void @f(i4 %x, i4 %n) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i4 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i4 %x, 1
  %i1 = add nsw i4 %i, 1
  br label %head
exit:
  ret void
}
""")
    tgt = parse_function("""
define void @f(i4 %x, i4 %n) {
entry:
  %x1 = add nsw i4 %x, 1
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i4 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i1 = add nsw i4 %i, 1
  br label %head
exit:
  ret void
}
""")
    assert check_refinement(src, tgt, NEW).ok


def test_widening_verifies_with_nsw():
    src = parse_function("""
declare void @use(i4)

define void @f(i2 %n) {
entry:
  br label %head
head:
  %i = phi i2 [ 0, %entry ], [ %i1, %body ]
  %c = icmp sle i2 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i2 %i to i4
  call void @use(i4 %iext)
  %i1 = add nsw i2 %i, 1
  br label %head
exit:
  ret void
}
""")
    tgt = parse_function("""
declare void @use(i4)

define void @f(i2 %n) {
entry:
  %next = sext i2 %n to i4
  br label %head
head:
  %iw = phi i4 [ 0, %entry ], [ %iw1, %body ]
  %c = icmp sle i4 %iw, %next
  br i1 %c, label %body, label %exit
body:
  call void @use(i4 %iw)
  %iw1 = add nsw i4 %iw, 1
  br label %head
exit:
  ret void
}
""")
    r = check_refinement(src, tgt, NEW,
                         options=CheckOptions(max_choices=40, fuel=2000))
    assert r.ok


@pytest.mark.benchmark(group="e7-motivating")
def bench_symbolic_nsw_proof_i32(benchmark):
    """Time the full 32-bit SMT proof of the Section 2.4 rewrite."""
    src = parse_function(NSW_SRC_I32)
    tgt = parse_function(NSW_TGT_I32)

    def prove():
        r = check_refinement_symbolic(src, tgt)
        assert r.ok
        return r

    benchmark(prove)
