"""E5 — Section 6 "Testing the prototype": opt-fuzz + Alive-style
validation of individual passes and the -O2 pipeline.

The paper exhaustively generated all 3-instruction functions over 2-bit
integers and validated InstCombine, GVN, Reassociation, SCCP and -O2
with Alive.  We validate the same pass list over:

* the *complete* 1-instruction i2 corpus (448 functions), and
* a seeded random sample of the 3-instruction space (with flags,
  icmp and select),

under both the legacy configuration (expected: refinement failures — the
Section 3 bugs) and the fixed configuration (expected: zero failures).
"""

import pytest

from repro.bench.harness import baseline_variant, prototype_variant
from repro.fuzz import enumerate_functions, random_functions
from repro.ir import parse_function, print_module, verify_function
from repro.opt import OptConfig, o2_pipeline, single_pass_pipeline
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, OLD

PASSES = ("instcombine", "gvn", "reassociate", "sccp")
OPTS = CheckOptions(max_choices=20, fuel=600)


def validate_corpus(corpus, pipeline_factory, config, semantics):
    """Returns (verified, failed, undecided, first_failure)."""
    verified = failed = undecided = 0
    first_failure = None
    for fn in corpus:
        src_text = print_module(fn.module)
        before = parse_function(src_text)
        pipeline_factory(config).run_on_function(fn)
        verify_function(fn)
        result = check_refinement(before, fn, semantics, options=OPTS)
        if result.ok:
            verified += 1
        elif result.failed:
            failed += 1
            if first_failure is None:
                first_failure = (src_text, result)
        else:
            undecided += 1
    return verified, failed, undecided, first_failure


@pytest.fixture(scope="module")
def validation_table():
    rows = []
    variants = [
        ("legacy", OptConfig.legacy(), OLD),
        ("fixed", OptConfig.fixed(), NEW),
    ]
    for pass_name in PASSES:
        for vname, config, semantics in variants:
            corpus = enumerate_functions(1)
            v, f, u, _ = validate_corpus(
                corpus,
                lambda cfg, p=pass_name: single_pass_pipeline(p, cfg),
                config, semantics,
            )
            rows.append((pass_name, "i2 x1 exhaustive", vname, v, f, u))
    # -O2 over a random 3-instruction sample
    for vname, config, semantics in variants:
        corpus = random_functions(60, num_instructions=3, seed=7)
        v, f, u, _ = validate_corpus(
            corpus, lambda cfg: o2_pipeline(cfg), config, semantics,
        )
        rows.append(("-O2", "i2 x3 random(60)", vname, v, f, u))

    print("\nE5 — opt-fuzz translation validation "
          "(paper: Section 6's methodology)")
    print(f"  {'pass':<12} {'corpus':<18} {'config':<8} "
          f"{'ok':>5} {'bugs':>5} {'undecided':>10}")
    for row in rows:
        print(f"  {row[0]:<12} {row[1]:<18} {row[2]:<8} "
              f"{row[3]:>5} {row[4]:>5} {row[5]:>10}")
    return rows


def test_fixed_pipeline_validates_cleanly(validation_table):
    for pass_name, corpus, vname, ok, bugs, undecided in validation_table:
        if vname == "fixed":
            assert bugs == 0, (
                f"{pass_name} over {corpus}: {bugs} refinement failures "
                f"in the FIXED configuration"
            )


def test_legacy_pipeline_has_the_section3_bugs(validation_table):
    legacy_bugs = sum(
        bugs for _, _, vname, _, bugs, _ in validation_table
        if vname == "legacy"
    )
    assert legacy_bugs > 0, (
        "the legacy configuration should exhibit the historical "
        "miscompilations"
    )


def test_legacy_instcombine_specifically_buggy(validation_table):
    row = next(r for r in validation_table
               if r[0] == "instcombine" and r[2] == "legacy")
    assert row[4] > 0


@pytest.mark.benchmark(group="e5-optfuzz")
def bench_validate_one_function(benchmark):
    """Time one generate -> optimize -> exhaustively-validate cycle."""
    from itertools import islice

    def cycle():
        fn = next(iter(islice(random_functions(1, seed=99), 1)))
        src_text = print_module(fn.module)
        before = parse_function(src_text)
        single_pass_pipeline("instcombine", OptConfig.fixed()) \
            .run_on_function(fn)
        return check_refinement(before, fn, NEW, options=OPTS).verdict

    benchmark(cycle)
