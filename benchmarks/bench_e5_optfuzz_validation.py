"""E5 — Section 6 "Testing the prototype": opt-fuzz + Alive-style
validation of individual passes and the -O2 pipeline.

The paper exhaustively generated all 3-instruction functions over 2-bit
integers and validated InstCombine, GVN, Reassociation, SCCP and -O2
with Alive.  We validate the same pass list through the campaign engine
(``repro.campaign``) over:

* the *complete* 1-instruction i2 corpus (448 functions), and
* a seeded random sample of the 3-instruction space (with icmp and
  select),

under both the legacy configuration (expected: refinement failures — the
Section 3 bugs) and the fixed configuration (expected: zero failures).

Worker count is configurable via ``E5_WORKERS`` (default 1); the verdict
sets are worker-count-independent by construction, so the table is the
same at any setting — only wall time changes.  Each benchmark records
the worker count and the dedup-cache hit rate in ``extra_info``.
"""

import os

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.fuzz import random_functions
from repro.ir import parse_function, print_module
from repro.opt import OptConfig, single_pass_pipeline
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW

PASSES = ("instcombine", "gvn", "reassociate", "sccp")
OPTS = CheckOptions(max_choices=20, fuel=600)

#: Shard-parallelism for the campaign runs below (1 = in-process).
WORKERS = int(os.environ.get("E5_WORKERS", "1"))


def _campaign(pipeline, opt_config, **overrides):
    spec = CampaignSpec(
        mode="enumerate", num_instructions=1, shard_size=64,
        pipeline=pipeline, opt_config=opt_config,
        max_choices=OPTS.max_choices, fuel=OPTS.fuel, **overrides,
    )
    return run_campaign(spec, workers=WORKERS)


@pytest.fixture(scope="module")
def validation_table():
    rows = []
    for pass_name in PASSES:
        for vname in ("legacy", "fixed"):
            s = _campaign(pass_name, vname)
            assert not s.shards_errored
            rows.append((pass_name, "i2 x1 exhaustive", vname,
                         s.verified, s.failed, s.inconclusive,
                         s.dedup_hit_rate))
    # -O2 over a random 3-instruction sample
    for vname in ("legacy", "fixed"):
        s = run_campaign(
            CampaignSpec(mode="random", num_instructions=3, count=60,
                         seed=7, shard_size=30, pipeline="o2",
                         opt_config=vname, max_choices=OPTS.max_choices,
                         fuel=OPTS.fuel),
            workers=WORKERS,
        )
        assert not s.shards_errored
        rows.append(("-O2", "i2 x3 random(60)", vname,
                     s.verified, s.failed, s.inconclusive,
                     s.dedup_hit_rate))

    print("\nE5 — opt-fuzz translation validation "
          f"(paper: Section 6's methodology; workers={WORKERS})")
    print(f"  {'pass':<12} {'corpus':<18} {'config':<8} "
          f"{'ok':>5} {'bugs':>5} {'undecided':>10} {'dedup':>7}")
    for row in rows:
        print(f"  {row[0]:<12} {row[1]:<18} {row[2]:<8} "
              f"{row[3]:>5} {row[4]:>5} {row[5]:>10} {row[6]:>6.1%}")
    return rows


def test_fixed_pipeline_validates_cleanly(validation_table):
    for pass_name, corpus, vname, ok, bugs, undecided, _ in validation_table:
        if vname == "fixed":
            assert bugs == 0, (
                f"{pass_name} over {corpus}: {bugs} refinement failures "
                f"in the FIXED configuration"
            )


def test_legacy_pipeline_has_the_section3_bugs(validation_table):
    legacy_bugs = sum(
        bugs for _, _, vname, _, bugs, _, _ in validation_table
        if vname == "legacy"
    )
    assert legacy_bugs > 0, (
        "the legacy configuration should exhibit the historical "
        "miscompilations"
    )


def test_legacy_instcombine_specifically_buggy(validation_table):
    row = next(r for r in validation_table
               if r[0] == "instcombine" and r[2] == "legacy")
    assert row[4] > 0


@pytest.mark.benchmark(group="e5-optfuzz")
def bench_validate_one_function(benchmark):
    """Time one generate -> optimize -> exhaustively-validate cycle."""
    from itertools import islice

    def cycle():
        fn = next(iter(islice(random_functions(1, seed=99), 1)))
        src_text = print_module(fn.module)
        before = parse_function(src_text)
        single_pass_pipeline("instcombine", OptConfig.fixed()) \
            .run_on_function(fn)
        return check_refinement(before, fn, NEW, options=OPTS).verdict

    benchmark(cycle)


@pytest.mark.benchmark(group="e5-optfuzz")
def bench_campaign_exhaustive_instcombine(benchmark):
    """Time a full sharded campaign over the 1-instruction i2 corpus
    (the E5 inner loop the engine parallelizes)."""
    summary = benchmark(lambda: _campaign("instcombine", "fixed"))
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["checked"] = summary.checked
    benchmark.extra_info["dedup_hit_rate"] = round(
        summary.dedup_hit_rate, 4)


@pytest.mark.benchmark(group="e5-optfuzz")
def bench_campaign_random_dedup(benchmark):
    """Time a random-mode campaign where the dedup cache absorbs
    structural duplicates (worker count + hit rate in extra_info)."""
    spec = CampaignSpec(mode="random", num_instructions=1,
                        opcodes=("add", "mul"), count=200, seed=13,
                        shard_size=50, pipeline="instcombine",
                        opt_config="fixed")
    summary = benchmark(lambda: run_campaign(spec, workers=WORKERS))
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["checked"] = summary.checked
    benchmark.extra_info["dedup_hit_rate"] = round(
        summary.dedup_hit_rate, 4)
