"""E11 — poison dataflow analyzer and lint baseline.

Measures the static-analysis layer and writes a ``BENCH_e11.json``
trajectory later PRs are held to:

* **analyzer throughput**: functions/sec and fixpoint iterations per
  function for ``analyze_poison_flow`` over a strided opt-fuzz corpus
  sample and over every example .ll in the repo;
* **flow vs shallow freeze elimination**: freezes removed by FreezeOpts
  with the fixpoint on vs off over a workload of guarded-freeze
  functions — the fixpoint must remove *strictly more*, and every
  flow-powered transform must keep a byte-identical refinement verdict;
* **lint throughput** over the corpus, with findings per rule;
* **lint-audit soundness**: a strided differential audit of the
  analyzer's MustNotPoison/MustPoison claims against the executable
  semantics — the contradiction count must be zero.

The script is the CI gate for the analysis layer: it exits nonzero if
the audit finds any contradiction, if flow-powered FreezeOpts fails to
beat the shallow walk, or if any flow-powered transform is not a
refinement.

Usage::

    PYTHONPATH=src python benchmarks/bench_e11_lint.py [--quick] \
        [--out BENCH_e11.json]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time

from repro.analysis.poison_flow import analyze_poison_flow
from repro.campaign.lint_audit import AuditOptions, run_lint_audit
from repro.diag import default_registry, reset_stats
from repro.fuzz.optfuzz import enumeration_size, function_at_index
from repro.ir import Opcode, parse_function, parse_module, print_function
from repro.lint import lint_function
from repro.opt import OptConfig
from repro.opt.freeze_opts import FreezeOpts
from repro.refine import check_refinement
from repro.semantics import NEW

_OPS = tuple(Opcode(o) for o in ("add", "mul", "udiv", "shl"))

#: guarded-freeze workload: the shallow walk keeps every freeze (the
#: guarded value is an argument), the fixpoint's dominating-branch
#: refinement removes them all.
GUARDED_FREEZE = """
define i8 @g{n}(i8 %x) {{
entry:
  %c = icmp eq i8 %x, {n}
  br i1 %c, label %t, label %e
t:
  %f = freeze i8 %x
  %r = add i8 %f, {n}
  ret i8 %r
e:
  ret i8 0
}}"""


def _corpus(count: int):
    total = enumeration_size(2, width=2, opcodes=_OPS, include_flags=True)
    stride = max(1, total // count)
    for idx in range(0, total, stride):
        yield function_at_index(idx, 2, width=2, opcodes=_OPS,
                                include_flags=True)


def bench_analyzer(quick: bool) -> dict:
    count = 200 if quick else 2000
    fns = list(_corpus(count))
    for path in glob.glob(os.path.join(os.path.dirname(__file__),
                                       os.pardir, "examples", "*.ll")):
        with open(path) as f:
            fns.extend(parse_module(f.read()).definitions())
    reset_stats()
    start = time.perf_counter()
    for fn in fns:
        analyze_poison_flow(fn, NEW)
    wall = time.perf_counter() - start
    stats = default_registry().snapshot(nonzero_only=True)
    iters = stats.get("poison-flow", {}).get("num-fixpoint-iterations", 0)
    return {
        "functions": len(fns),
        "wall_sec": round(wall, 4),
        "functions_per_sec": round(len(fns) / wall) if wall else 0,
        "fixpoint_iterations": iters,
        "iterations_per_function": round(iters / len(fns), 3),
    }


def bench_freeze_elimination(quick: bool) -> dict:
    n_fns = 8 if quick else 32
    sources = [GUARDED_FREEZE.format(n=n) for n in range(1, n_fns + 1)]

    def removed_with(use_flow: bool) -> int:
        total = 0
        for src in sources:
            fn = parse_function(src)
            fp = FreezeOpts(OptConfig.fixed())
            fp.use_flow = use_flow
            fp.run_on_function(fn)
            total += int("freeze" not in print_function(fn))
        return total

    reset_stats()
    shallow = removed_with(False)
    stats_shallow = default_registry().snapshot(nonzero_only=True)
    shallow_stat = stats_shallow.get("freeze-opts", {}).get(
        "num-freezes-simplified", 0)
    reset_stats()
    flow = removed_with(True)
    stats_flow = default_registry().snapshot(nonzero_only=True)
    flow_stat = stats_flow.get("freeze-opts", {}).get(
        "num-freezes-simplified", 0)

    # every flow-powered transform must remain a refinement
    verdicts_ok = True
    for src in sources:
        before = parse_function(src)
        after = parse_function(src)
        fp = FreezeOpts(OptConfig.fixed())
        fp.run_on_function(after)
        if not check_refinement(before, after, NEW).ok:
            verdicts_ok = False
    return {
        "workload_functions": n_fns,
        "freezes_removed_shallow": shallow,
        "freezes_removed_flow": flow,
        "stat_shallow": shallow_stat,
        "stat_flow": flow_stat,
        "flow_strictly_more": flow > shallow,
        "refinement_verdicts_ok": verdicts_ok,
    }


def bench_lint(quick: bool) -> dict:
    count = 200 if quick else 1000
    fns = list(_corpus(count))
    findings: dict = {}
    start = time.perf_counter()
    for fn in fns:
        for d in lint_function(fn):
            findings[d.rule_id] = findings.get(d.rule_id, 0) + 1
    wall = time.perf_counter() - start
    return {
        "functions": len(fns),
        "wall_sec": round(wall, 4),
        "functions_per_sec": round(len(fns) / wall) if wall else 0,
        "findings_by_rule": dict(sorted(findings.items())),
    }


def bench_lint_audit(quick: bool) -> dict:
    limit = 120 if quick else 600
    start = time.perf_counter()
    report = run_lint_audit(width=2, instructions=2,
                            opcodes=("add", "mul", "udiv", "shl"),
                            include_flags=True, limit=limit,
                            stride=max(1, enumeration_size(
                                2, width=2, opcodes=_OPS,
                                include_flags=True) // limit),
                            opts=AuditOptions())
    wall = time.perf_counter() - start
    totals = report["totals"]
    return {
        "functions": totals["functions"],
        "claims": totals["claims"],
        "observations": totals["observations"],
        "silent_verdicts": totals["silent_verdicts"],
        "contradictions": len(report["contradictions"]),
        "wall_sec": round(wall, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (smaller corpus slices)")
    parser.add_argument("--out", default="BENCH_e11.json",
                        help="output JSON path (default: BENCH_e11.json)")
    args = parser.parse_args(argv)

    report = {
        "experiment": "E11",
        "quick": args.quick,
        "analyzer": bench_analyzer(args.quick),
        "freeze_elimination": bench_freeze_elimination(args.quick),
        "lint": bench_lint(args.quick),
        "lint_audit": bench_lint_audit(args.quick),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    an, fr = report["analyzer"], report["freeze_elimination"]
    li, au = report["lint"], report["lint_audit"]
    print(f"E11 analysis baseline ({'quick' if args.quick else 'full'}):")
    print(f"  analyzer: {an['functions_per_sec']:,} functions/sec "
          f"({an['iterations_per_function']} fixpoint sweeps/function)")
    print(f"  freeze elimination: flow {fr['freezes_removed_flow']} vs "
          f"shallow {fr['freezes_removed_shallow']} "
          f"(counter: {fr['stat_flow']} vs {fr['stat_shallow']})")
    print(f"  lint: {li['functions_per_sec']:,} functions/sec, "
          f"findings {li['findings_by_rule']}")
    print(f"  lint-audit: {au['claims']} claims, "
          f"{au['observations']} observations, "
          f"{au['contradictions']} contradiction(s) in {au['wall_sec']}s")
    print(f"  wrote {args.out}")

    failures = []
    if au["contradictions"]:
        failures.append(
            f"lint-audit found {au['contradictions']} analyzer "
            f"soundness contradiction(s)")
    if not fr["flow_strictly_more"]:
        failures.append("flow-powered FreezeOpts did not beat the "
                        "shallow walk")
    if fr["stat_flow"] <= fr["stat_shallow"]:
        failures.append("num-freezes-simplified counter did not "
                        "increase with the fixpoint on")
    if not fr["refinement_verdicts_ok"]:
        failures.append("a flow-powered freeze removal broke refinement")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
