"""E8 — freeze-related optimizations and ablations.

Covers the Section 6 recovery optimizations and the DESIGN.md ablations:

* ``freeze(freeze x)``, ``freeze(const)``, freeze-of-nonpoison cleanups;
* CodeGenPrepare's ``freeze(icmp x, C) -> icmp (freeze x), C`` and
  freeze-distribution over and/or (branch splitting unblocked);
* ablation: the prototype *without* freeze-aware codegen (the early
  prototype of Section 6) generates slower/larger code for
  freeze-carrying functions;
* extension: re-enabling guarded division hoisting under NEW — the
  optimization LLVM disabled (Section 3.2) is provably sound again.
"""

import pytest

from repro.backend import compile_module, run_program, program_size
from repro.bench import SUITE
from repro.bench.harness import Variant, compile_workload, freeze_density
from repro.diag import default_registry, reset_stats
from repro.frontend import CodegenOptions
from repro.ir import FreezeInst, Opcode, parse_function, verify_function
from repro.opt import (
    LICM,
    CodeGenPrepare,
    FreezeOpts,
    OptConfig,
    baseline_config,
    prototype_config,
)
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW


def count_freezes(fn):
    return sum(1 for i in fn.instructions() if isinstance(i, FreezeInst))


class TestFreezeCleanups:
    def test_freeze_chain_collapses(self):
        fn = parse_function("""
define i8 @f(i8 %x) {
entry:
  %a = freeze i8 %x
  %b = freeze i8 %a
  %c = freeze i8 %b
  ret i8 %c
}
""")
        FreezeOpts(prototype_config()).run_on_function(fn)
        verify_function(fn)
        assert count_freezes(fn) == 1

    def test_freeze_const_folds(self):
        fn = parse_function("""
define i8 @f() {
entry:
  %a = freeze i8 42
  ret i8 %a
}
""")
        FreezeOpts(prototype_config()).run_on_function(fn)
        assert count_freezes(fn) == 0


class TestCodeGenPrepare:
    def test_freeze_sinks_through_icmp(self):
        fn = parse_function("""
define i1 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  %fr = freeze i1 %c
  ret i1 %fr
}
""")
        before = parse_function("""
define i1 @f(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  %fr = freeze i1 %c
  ret i1 %fr
}
""")
        CodeGenPrepare(prototype_config()).run_on_function(fn)
        verify_function(fn)
        # now freezes the operand, not the comparison
        freeze = next(i for i in fn.instructions()
                      if isinstance(i, FreezeInst))
        assert freeze.value.type.bitwidth() == 8
        r = check_refinement(before, fn, NEW)
        assert r.ok

    def test_branch_splitting_blocked_by_unknown_freeze(self):
        src = """
define i8 @f(i1 %a, i1 %b) {
entry:
  %and = and i1 %a, %b
  %fr = freeze i1 %and
  br i1 %fr, label %t, label %e
t:
  ret i8 1
e:
  ret i8 2
}
"""
        aware = parse_function(src)
        CodeGenPrepare(prototype_config()).run_on_function(aware)
        verify_function(aware)
        unaware = parse_function(src)
        CodeGenPrepare(
            prototype_config().with_(freeze_aware_codegen=False)
        ).run_on_function(unaware)
        verify_function(unaware)
        # freeze-aware: the and is distributed + the branch is split
        assert len(aware.blocks) > len(unaware.blocks)
        r = check_refinement(parse_function(src), aware, NEW)
        assert r.ok


class TestGuardedDivisionExtension:
    def test_sound_under_new(self):
        """The Section 3.2 optimization, re-enabled: with undef gone and
        branch-on-poison UB, the guard really protects the hoist."""
        src = parse_function("""
declare void @use(i4)

define void @f(i4 %k, i1 %c) {
entry:
  %guard = icmp ne i4 %k, 0
  br i1 %guard, label %pre, label %exit
pre:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  %q = udiv i4 1, %k
  call void @use(i4 %q)
  br label %head
exit:
  ret void
}
""")
        import copy

        from repro.ir import print_function

        text = print_function(src)
        fn = parse_function("declare void @use(i4)\n" + text)
        config = prototype_config().with_(licm_hoist_speculative_div=True)
        changed = LICM(config).run_on_function(fn)
        assert changed
        verify_function(fn)
        pre = fn.block_by_name("pre")
        assert any(i.opcode is Opcode.UDIV for i in pre.instructions)
        r = check_refinement(
            src, fn, NEW, options=CheckOptions(max_choices=40, fuel=2000)
        )
        assert r.ok


@pytest.fixture(scope="module")
def ablation_rows():
    """The gcc analog under: baseline, early prototype (freeze-unaware
    codegen), and full prototype."""
    rows = []
    variants = [
        ("baseline", Variant("baseline",
                             CodegenOptions(freeze_bitfield_stores=False),
                             baseline_config())),
        ("early-prototype", Variant(
            "early",
            CodegenOptions(freeze_bitfield_stores=True),
            prototype_config().with_(freeze_aware_codegen=False,
                                     inliner_freeze_free=False),
        )),
        ("full-prototype", Variant("full",
                                   CodegenOptions(
                                       freeze_bitfield_stores=True),
                                   prototype_config())),
    ]
    for name, variant in variants:
        module, _, _ = compile_workload(SUITE["gcc"], variant,
                                        measure_memory=False)
        program = compile_module(module)
        checksum, cycles, _ = run_program(program, "main", [])
        rows.append((name, cycles, program_size(program), checksum))
    print("\nE8 — freeze-recovery ablation on the gcc analog")
    print(f"  {'variant':<16} {'cycles':>9} {'size':>6} {'checksum':>9}")
    for name, cycles, size, checksum in rows:
        print(f"  {name:<16} {cycles:>9} {size:>6} {checksum:>9}")
    return rows


def test_all_ablation_variants_correct(ablation_rows):
    expected = SUITE["gcc"].expected
    for name, _, _, checksum in ablation_rows:
        assert checksum == expected, f"{name} checksum mismatch"


def test_freeze_density_below_one_percent():
    """E4/E8: even with frozen bit-field stores and the Section 5 pass
    fixes, freeze instructions stay a sub-1% fraction of the optimized
    IR across the suite (the paper reports 0.04–0.29% per benchmark;
    our model workloads are tiny, so only the aggregate is meaningful).
    The density flows through the stats layer, so ``--stats`` and the
    registry report the same numerator/denominator."""
    reset_stats()
    variant = Variant("full",
                      CodegenOptions(freeze_bitfield_stores=True),
                      prototype_config())
    per_workload = {}
    for name, workload in SUITE.items():
        module, _, _ = compile_workload(workload, variant,
                                        measure_memory=False)
        per_workload[name] = freeze_density(module)

    reg = default_registry()
    freezes = reg.get("pipeline", "num-freeze-instructions")
    total = reg.get("pipeline", "num-ir-instructions")
    density = freezes / total
    print(f"\nE8 — suite freeze density: {freezes}/{total} = {density:.4%}")
    for name, d in sorted(per_workload.items(), key=lambda kv: -kv[1]):
        if d:
            print(f"  {name:<14} {d:.4%}")
    assert total > 0 and freezes <= total
    assert 0.0 <= density < 0.01, f"suite freeze density {density:.4%}"


def test_recovery_opts_do_not_regress(ablation_rows):
    by_name = {r[0]: r for r in ablation_rows}
    # the full prototype must not be slower than the early prototype
    assert by_name["full-prototype"][1] <= by_name["early-prototype"][1]


@pytest.mark.benchmark(group="e8-freeze")
def bench_freeze_opts_pass(benchmark):
    text = "define i8 @f(i8 %x) {\nentry:\n" + "\n".join(
        f"  %f{i} = freeze i8 {'%x' if i == 0 else f'%f{i-1}'}"
        for i in range(30)
    ) + "\n  ret i8 %f29\n}"

    def run():
        fn = parse_function(text)
        FreezeOpts(prototype_config()).run_on_function(fn)
        return count_freezes(fn)

    assert benchmark(run) == 1
