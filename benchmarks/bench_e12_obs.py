"""E12 — observability overhead and trace-validity gates.

Measures the span/metrics/flight-recorder layer against the E5 smoke
campaign (complete 1-instruction i2 corpus through fixed-config
InstCombine) and writes a ``BENCH_e12.json`` trajectory that later PRs
are held to:

* **tracing-off cost**: ns/call of ``span()`` / ``phase()`` on a
  disabled collector — the fast path every hot loop pays when no one
  is watching (must stay the shared ``NULL_SPAN`` no-op);
* **tracing-on overhead**: best-of-N process CPU time of the smoke
  campaign with ``trace_dir`` streaming spans + metrics vs the
  identical untraced run, as a ratio.  The A/B runs in-process
  (workers=1) and gates on ``time.process_time`` rather than wall
  clock: tracing overhead is pure CPU, and CPU time is immune to the
  scheduler/pool-startup noise that dwarfs a sub-second campaign on a
  busy box (wall times are reported alongside, informationally);
* **verdict invariance**: the traced and untraced runs must produce
  byte-identical verdict sets (observability must never perturb the
  checker);
* **trace validity**: a separate 2-worker-process traced run must
  stream per-shard span files that merge into a Chrome trace spanning
  at least two OS processes with all instrumented layers present, the
  profile report must render, and the per-shard metrics series must
  sum to the campaign's true totals.

The script is also the CI gate: it exits nonzero if verdicts differ,
if the disabled fast path stops being the ``NULL_SPAN`` singleton, if
the merged trace is missing workers or layers, or — in full mode — if
the tracing-on CPU overhead exceeds 10%.

Usage::

    PYTHONPATH=src python benchmarks/bench_e12_obs.py [--quick] \
        [--out BENCH_e12.json]
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys
import tempfile
import time

from repro.campaign import CampaignSpec, CampaignRunner
from repro.diag.metrics import merge_latest_metrics, render_prometheus
from repro.diag.spans import NULL_SPAN, SpanCollector
from repro.diag.trace_export import (
    build_profile,
    load_span_file,
    merge_trace,
    render_top,
)

#: tracing-on / tracing-off CPU-time ratio the full run must stay
#: under (acceptance criterion: <10% overhead).
OVERHEAD_GATE = 1.10

#: span names every merged smoke trace must contain — one per
#: instrumented layer (executor, worker, checker, pass manager).
REQUIRED_LAYERS = {"shard", "check-function", "refine-check",
                   "instcombine"}


def _smoke_spec(trace_dir=None, limit=None) -> CampaignSpec:
    """The E5 smoke campaign with the memo cache off, so traced and
    untraced runs do identical work and verdicts must match
    byte-for-byte."""
    return CampaignSpec(
        mode="enumerate", num_instructions=1, shard_size=64,
        pipeline="instcombine", opt_config="fixed",
        max_choices=20, fuel=600, limit=limit,
        use_cache=False, trace_dir=trace_dir,
    )


def _run_campaign(spec: CampaignSpec, workers: int = 1):
    """Run one campaign, returning (wall seconds, CPU seconds,
    summary).  CPU covers this process only — meaningful for the
    in-process workers=1 A/B the overhead gate uses."""
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    summary = CampaignRunner(spec, out_dir=None, workers=workers,
                             use_processes=workers > 1).run()
    cpu = time.process_time() - cpu0
    wall = time.perf_counter() - wall0
    assert not summary.shards_errored, summary.shards_errored
    return wall, cpu, summary


def bench_disabled_fast_path(quick: bool) -> dict:
    """ns/call of span()/phase() when tracing is off, vs an empty
    context manager — the price every instrumented hot loop pays."""
    iters = 100_000 if quick else 400_000
    sc = SpanCollector()  # disabled: no sink, no keep

    start = time.perf_counter()
    for _ in range(iters):
        with sc.span("check-function", cat="campaign"):
            pass
    span_wall = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iters):
        with sc.phase("enumerate-src"):
            pass
    phase_wall = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iters):
        with memoryview(b""):  # a trivial stdlib context manager
            pass
    baseline_wall = time.perf_counter() - start

    return {
        "iterations": iters,
        "span_ns_per_call": round(span_wall / iters * 1e9, 1),
        "phase_ns_per_call": round(phase_wall / iters * 1e9, 1),
        "baseline_ctx_ns_per_call": round(baseline_wall / iters * 1e9, 1),
        "returns_null_span_singleton": (
            sc.span("x").__enter__() is NULL_SPAN
            and sc.phase("y") is NULL_SPAN),
    }


def bench_tracing_overhead(quick: bool) -> dict:
    """Interleaved best-of-N in-process campaigns traced vs untraced,
    gated on process CPU time."""
    limit = 192 if quick else None
    repeats = 1 if quick else 5

    off_cpu, off_wall, on_cpu, on_wall = [], [], [], []
    off_summary = on_summary = None
    try:
        spans_dir = None
        for _ in range(repeats):
            wall, cpu, off_summary = _run_campaign(
                _smoke_spec(limit=limit))
            off_wall.append(wall)
            off_cpu.append(cpu)

            if spans_dir:
                shutil.rmtree(spans_dir, ignore_errors=True)
            spans_dir = tempfile.mkdtemp(prefix="bench-e12-spans-")
            wall, cpu, on_summary = _run_campaign(
                _smoke_spec(trace_dir=spans_dir, limit=limit))
            on_wall.append(wall)
            on_cpu.append(cpu)
    finally:
        if spans_dir:
            shutil.rmtree(spans_dir, ignore_errors=True)

    checked = on_summary.checked + on_summary.dedup_hits
    best_off, best_on = min(off_cpu), min(on_cpu)
    return {
        "corpus_functions": checked,
        "repeats": repeats,
        "verdicts_identical": (off_summary.verdict_lines()
                               == on_summary.verdict_lines()),
        "verdicts": {
            "verified": on_summary.verified,
            "failed": on_summary.failed,
            "inconclusive": on_summary.inconclusive,
            "timeout": on_summary.timeout,
        },
        "runs": {
            "tracing_off": {"cpu_seconds": round(best_off, 4),
                            "wall_seconds": round(min(off_wall), 4)},
            "tracing_on": {"cpu_seconds": round(best_on, 4),
                           "wall_seconds": round(min(on_wall), 4)},
        },
        "overhead_ratio": (round(best_on / best_off, 4)
                           if best_off else 0.0),
    }


def bench_parallel_trace(quick: bool) -> dict:
    """One traced 2-worker-process campaign: the merged trace must
    span multiple OS processes and every instrumented layer, and the
    per-shard metrics series must sum to the campaign totals."""
    limit = 192 if quick else None
    spans_dir = tempfile.mkdtemp(prefix="bench-e12-par-")
    try:
        _, _, summary = _run_campaign(
            _smoke_spec(trace_dir=spans_dir, limit=limit), workers=2)
        checked = summary.checked + summary.dedup_hits

        span_files = sorted(glob.glob(
            os.path.join(spans_dir, "spans-*.jsonl")))
        os_pids = set()
        for path in span_files:
            os_pids.update(r["os_pid"] for r in load_span_file(path)
                           if r.get("kind") == "meta")

        trace = merge_trace(spans_dir,
                            os.path.join(spans_dir, "trace.json"))
        xs = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in xs}
        profile = build_profile(trace)
        top_renders = bool(render_top(profile, sort="self"))

        metrics_files = sorted(glob.glob(
            os.path.join(spans_dir, "metrics-*.jsonl")))
        merged = merge_latest_metrics(metrics_files)
        prom = render_prometheus(merged)
        metrics_checks = merged["stats"].get(
            "repro_refine_num_checks_total", 0)
    finally:
        shutil.rmtree(spans_dir, ignore_errors=True)

    return {
        "corpus_functions": checked,
        "span_files": len(span_files),
        "span_events": len(xs),
        "worker_os_pids": len(os_pids),
        "shard_pids": sorted({e["pid"] for e in xs}),
        "layers_present": sorted(REQUIRED_LAYERS & names),
        "layers_missing": sorted(REQUIRED_LAYERS - names),
        "check_function_spans": sum(
            1 for e in xs if e["name"] == "check-function"),
        "top_renders": top_renders,
        "metrics": {
            "shard_files": len(metrics_files),
            "merged_num_checks": metrics_checks,
            "prometheus_renders": "repro_refine_num_checks_total" in prom,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (smaller corpus, single "
                             "repeat; the overhead gate is "
                             "informational only)")
    parser.add_argument("--out", default="BENCH_e12.json",
                        help="output JSON path (default: BENCH_e12.json)")
    args = parser.parse_args(argv)

    report = {
        "experiment": "E12",
        "quick": args.quick,
        "disabled_fast_path": bench_disabled_fast_path(args.quick),
        "tracing": bench_tracing_overhead(args.quick),
        "parallel_trace": bench_parallel_trace(args.quick),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    fast = report["disabled_fast_path"]
    tracing = report["tracing"]
    par = report["parallel_trace"]
    print(f"E12 observability ({'quick' if args.quick else 'full'}):")
    print(f"  disabled span(): {fast['span_ns_per_call']} ns/call, "
          f"phase(): {fast['phase_ns_per_call']} ns/call "
          f"(empty ctx manager: {fast['baseline_ctx_ns_per_call']} ns)")
    print(f"  smoke campaign cpu: "
          f"off {tracing['runs']['tracing_off']['cpu_seconds']}s, "
          f"on {tracing['runs']['tracing_on']['cpu_seconds']}s "
          f"-> {tracing['overhead_ratio']}x "
          f"(best of {tracing['repeats']}, wall "
          f"{tracing['runs']['tracing_off']['wall_seconds']}s / "
          f"{tracing['runs']['tracing_on']['wall_seconds']}s)")
    print(f"  parallel trace: {par['span_events']} spans from "
          f"{par['worker_os_pids']} worker processes / "
          f"{par['span_files']} shards, "
          f"{par['metrics']['shard_files']} metric series "
          f"summing to {par['metrics']['merged_num_checks']} checks")
    print(f"  wrote {args.out}")

    failures = []
    if not tracing["verdicts_identical"]:
        failures.append("tracing changed the verdict set")
    if not fast["returns_null_span_singleton"]:
        failures.append("disabled collector no longer returns the "
                        "NULL_SPAN no-op singleton")
    if par["worker_os_pids"] < 2:
        failures.append("merged trace covers fewer than 2 worker "
                        "processes")
    if par["layers_missing"]:
        failures.append("trace missing instrumented layers: "
                        f"{par['layers_missing']}")
    if par["check_function_spans"] != par["corpus_functions"]:
        failures.append(f"trace has {par['check_function_spans']} "
                        "check-function spans for "
                        f"{par['corpus_functions']} functions")
    if not par["top_renders"]:
        failures.append("diag top rendered nothing from the trace")
    if par["metrics"]["merged_num_checks"] != par["corpus_functions"]:
        failures.append("merged metrics count "
                        f"{par['metrics']['merged_num_checks']} checks, "
                        f"expected {par['corpus_functions']}")
    if not args.quick and tracing["overhead_ratio"] > OVERHEAD_GATE:
        failures.append(
            f"tracing CPU overhead {tracing['overhead_ratio']}x over "
            f"the {OVERHEAD_GATE}x gate")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
