"""E6 — the Section 3 soundness matrix.

For every transformation the paper discusses, the refinement checker
decides its soundness under each semantics reading; the resulting matrix
is the executable form of Section 3's core argument: **no single OLD
semantics makes all of LLVM's optimizations correct, while the NEW
semantics (poison + freeze, branch-on-poison UB) makes the fixed
versions of all of them correct.**
"""

import pytest

from repro.bench import CATALOG, CONFIGS, check_entry, render_matrix


@pytest.fixture(scope="module")
def matrix():
    text = render_matrix()
    print("\n" + text)
    return text


def test_every_cell_matches_the_paper(matrix):
    for entry in CATALOG:
        for name in CONFIGS:
            result = check_entry(entry, name)
            expected = entry.expected(name)
            if expected is True:
                assert result.ok, (
                    f"{entry.key} under {name}: expected sound, got "
                    f"{result}"
                )
            elif expected is False:
                assert result.failed, (
                    f"{entry.key} under {name}: expected a "
                    f"counterexample, got {result}"
                )


def test_new_semantics_fixes_everything_fixable():
    """Under NEW, every catalog entry that is a *fixed-variant or
    naturally-sound* transformation verifies; the only NEW failures are
    the transformations the paper says must be removed/changed."""
    new_failures = {
        entry.key for entry in CATALOG
        if entry.expected("new") is False
    }
    assert new_failures == {"loop-unswitch-plain", "select-to-or",
                            "select-to-branch"}


def test_no_old_reading_supports_both_gvn_and_unswitching():
    """Section 3.3's punchline, over the catalog."""
    unswitch = next(e for e in CATALOG if e.key == "loop-unswitch-plain")
    gvn = next(e for e in CATALOG if e.key == "gvn-equality-no-undef")
    for name in ("old", "old-gvn-view"):
        both_ok = (check_entry(unswitch, name).ok
                   and check_entry(gvn, name).ok)
        assert not both_ok, f"{name} cannot make both sound"
    # ...whereas NEW + the freeze fix supports both:
    unswitch_freeze = next(
        e for e in CATALOG if e.key == "loop-unswitch-freeze"
    )
    assert check_entry(unswitch_freeze, "new").ok
    assert check_entry(gvn, "new").ok


@pytest.mark.benchmark(group="e6-matrix")
def bench_one_matrix_cell(benchmark):
    entry = next(e for e in CATALOG if e.key == "phi-to-select")
    benchmark(lambda: check_entry(entry, "new").verdict)
