"""E15 — vector (numpy lane-parallel) refinement engine throughput.

The paper's validation method is exhaustive checking over tiny
bitwidths; raw checks/sec is the scaling axis.  This benchmark measures
the ``repro.refine.vector`` engine against the scalar interpreter on
the corpus shape it exists for — loop-free small-bitwidth functions
whose whole input space fits in one set of numpy lanes — and writes a
``BENCH_e15.json`` trajectory.

Sections:

* **engine throughput** — the same (source, InstCombine'd) pairs
  checked by both engines with the memo cache off; reports wall time,
  checks/sec, the speedup, and the per-pair verdict byte-identity the
  speedup is gated on (a fast wrong engine is worthless);
* **campaign drift** — the E5 smoke campaign (complete 1-instruction
  i2 corpus through fixed InstCombine, memo off) run under
  ``engine="scalar"`` and ``engine="vector"``, gated on byte-identical
  verdict sets;
* **cross-check campaign** — the same campaign under
  ``engine="vector", cross_check=True``: every eligible check runs both
  engines and any drift becomes a per-function crash, gated on zero.

CI gates (exit nonzero): verdict byte-identity in every section, zero
cross-check mismatches, and — full mode only — vector >= 10x scalar
checks/sec on the vectorizable corpus.

Usage::

    PYTHONPATH=src python benchmarks/bench_e15_vector.py [--quick] \
        [--out BENCH_e15.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.campaign import CampaignRunner, CampaignSpec
from repro.diag import stats_snapshot
from repro.fuzz import random_functions
from repro.ir import parse_function, print_module
from repro.refine import CheckOptions, check_refinement
from repro.semantics import NEW, numpy_available
from repro.opt import OptConfig, single_pass_pipeline

#: vector-vs-scalar speedup the full run must clear (ISSUE 9
#: acceptance criterion; ROADMAP item 1's order-of-magnitude ask).
SPEEDUP_GATE = 10.0


def _corpus(quick: bool):
    """(source text, optimized function) pairs over the vectorizable
    small-bitwidth shape: straight-line i4 functions, two arguments,
    so each check enumerates 17 x 17 = 289 input lanes."""
    count = 60 if quick else 200
    config = OptConfig.fixed(NEW)
    pairs = []
    for fn in random_functions(count, num_instructions=3, width=4,
                               num_args=2, seed=1509):
        src_text = print_module(fn.module)
        single_pass_pipeline("instcombine", config).run_on_function(fn)
        pairs.append((src_text, fn))
    return pairs


def _check_all(pairs, engine: str):
    options = CheckOptions(engine=engine)
    results = []
    start = time.perf_counter()
    for src_text, fn in pairs:
        before = parse_function(src_text)
        result = check_refinement(before, fn, NEW, options=options)
        results.append(
            f"{result.verdict}|{result.inputs_checked}|{result}")
    wall = time.perf_counter() - start
    return wall, results


def bench_engine_throughput(quick: bool) -> dict:
    pairs = _corpus(quick)
    scalar_wall, scalar_results = _check_all(pairs, "scalar")
    before = stats_snapshot().get("refine", {})
    vector_wall, vector_results = _check_all(pairs, "vector")
    after = stats_snapshot().get("refine", {})

    def rate(wall):
        return round(len(pairs) / wall, 1) if wall else 0.0

    return {
        "corpus_pairs": len(pairs),
        "lanes_per_check": 17 * 17,
        "verdicts_identical": scalar_results == vector_results,
        "vector_decided": (after.get("num-vector-checks", 0)
                           - before.get("num-vector-checks", 0)),
        "vector_fallbacks": (after.get("num-vector-fallbacks", 0)
                             - before.get("num-vector-fallbacks", 0)),
        "runs": {
            "scalar": {"wall_seconds": round(scalar_wall, 4),
                       "checks_per_sec": rate(scalar_wall)},
            "vector": {"wall_seconds": round(vector_wall, 4),
                       "checks_per_sec": rate(vector_wall)},
        },
        "speedup_vector_vs_scalar": (round(scalar_wall / vector_wall, 2)
                                     if vector_wall else 0.0),
    }


def _smoke_spec(engine: str, cross_check: bool = False,
                limit=None) -> CampaignSpec:
    """The E5 smoke campaign, memo off so both engines do real work."""
    return CampaignSpec(
        mode="enumerate", num_instructions=1, shard_size=64,
        pipeline="instcombine", opt_config="fixed",
        max_choices=20, fuel=600, limit=limit,
        use_cache=False, engine=engine, cross_check=cross_check,
    )


def _run_campaign(spec: CampaignSpec):
    start = time.perf_counter()
    summary = CampaignRunner(spec, out_dir=None, workers=1).run()
    wall = time.perf_counter() - start
    return wall, summary


def bench_campaign_drift(quick: bool) -> dict:
    limit = 192 if quick else None
    scalar_wall, scalar = _run_campaign(_smoke_spec("scalar", limit=limit))
    vector_wall, vector = _run_campaign(_smoke_spec("vector", limit=limit))
    cross_wall, cross = _run_campaign(
        _smoke_spec("vector", cross_check=True, limit=limit))
    return {
        "corpus_functions": scalar.checked + scalar.dedup_hits,
        "verdicts_identical": (scalar.verdict_lines()
                               == vector.verdict_lines()),
        "verdicts": {
            "verified": scalar.verified, "failed": scalar.failed,
            "inconclusive": scalar.inconclusive,
            "timeout": scalar.timeout,
        },
        "runs": {
            "scalar": {"wall_seconds": round(scalar_wall, 4)},
            "vector": {"wall_seconds": round(vector_wall, 4)},
            "cross_check": {"wall_seconds": round(cross_wall, 4)},
        },
        "cross_check_verdicts_identical": (cross.verdict_lines()
                                           == scalar.verdict_lines()),
        "cross_check_mismatches": len([
            c for c in cross.crashes
            if c.get("kind") == "cross-check-mismatch"]),
        "cross_check_crashes": len(cross.crashes),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus (the 10x speedup gate is "
                             "informational only)")
    parser.add_argument("--out", default="BENCH_e15.json",
                        help="output JSON path (default: BENCH_e15.json)")
    args = parser.parse_args(argv)

    if not numpy_available():
        # The scalar fallback keeps every workflow green without numpy,
        # but this benchmark *measures the vector engine*; report the
        # absence instead of gating a fallback-vs-itself comparison.
        print("E15: numpy unavailable — vector engine cannot be "
              "benchmarked (install the [vector] extra)")
        report = {"experiment": "E15", "quick": args.quick,
                  "numpy_available": False}
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        return 0

    report = {
        "experiment": "E15",
        "quick": args.quick,
        "numpy_available": True,
        "throughput": bench_engine_throughput(args.quick),
        "campaign": bench_campaign_drift(args.quick),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    thr = report["throughput"]
    camp = report["campaign"]
    print(f"E15 vector engine ({'quick' if args.quick else 'full'}):")
    print(f"  corpus: {thr['corpus_pairs']} pairs, "
          f"{thr['lanes_per_check']} lanes/check, "
          f"{thr['vector_decided']} vector-decided, "
          f"{thr['vector_fallbacks']} fallbacks")
    print(f"  scalar: {thr['runs']['scalar']['checks_per_sec']} "
          f"checks/sec   vector: "
          f"{thr['runs']['vector']['checks_per_sec']} checks/sec   "
          f"speedup: {thr['speedup_vector_vs_scalar']}x")
    print(f"  verdicts identical (pairs): {thr['verdicts_identical']}")
    print(f"  E5 smoke drift: scalar==vector "
          f"{camp['verdicts_identical']}, cross-check mismatches "
          f"{camp['cross_check_mismatches']}")
    print(f"  wrote {args.out}")

    failures = []
    if not thr["verdicts_identical"]:
        failures.append("vector verdicts differ from scalar oracle "
                        "on the throughput corpus")
    if not camp["verdicts_identical"]:
        failures.append("E5 smoke campaign verdicts drifted between "
                        "engines")
    if not camp["cross_check_verdicts_identical"]:
        failures.append("cross-check campaign verdicts drifted")
    if camp["cross_check_mismatches"]:
        failures.append(f"{camp['cross_check_mismatches']} cross-check "
                        f"mismatch(es)")
    if thr["vector_decided"] == 0:
        failures.append("vector engine decided 0 checks (wired but dead)")
    if not args.quick \
            and thr["speedup_vector_vs_scalar"] < SPEEDUP_GATE:
        failures.append(
            f"vector speedup {thr['speedup_vector_vs_scalar']}x under "
            f"the {SPEEDUP_GATE}x gate")
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
