"""E10 — validation hot-path performance baseline.

Measures the perf layer introduced for the campaign engine and writes a
``BENCH_e10.json`` trajectory that later PRs are held to:

* **checks/sec** for the E5 smoke campaign (complete 1-instruction i2
  corpus through InstCombine, workers=1) with the behavior-set memo
  cache off, cold (populating the on-disk layer), and warm (replaying
  it) — plus the warm-vs-off wall-clock speedup;
* **cache hit rate** of the warm run, from the ``perf`` stats registry;
* **interpreter steps/sec** of the plan-compiled interpreter over a
  seeded corpus sample;
* **SMT session reuse**: the same symbolic checks one-shot vs through a
  shared :class:`SolverSession` (circuits + learned clauses reused).

The script is also the CI gate: it exits nonzero if the warm hit rate
is 0 (cache wired but dead), if verdict sets are not byte-identical
across cache modes, or — in full mode — if the warm speedup falls under
3x.

Usage::

    PYTHONPATH=src python benchmarks/bench_e10_perf.py [--quick] \
        [--out BENCH_e10.json]
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import shutil
import sys
import tempfile
import time

from repro.campaign import CampaignSpec, CampaignRunner
from repro.diag import stats_snapshot
from repro.fuzz import random_functions
from repro.ir import parse_function, print_module
from repro.opt import OptConfig, single_pass_pipeline
from repro.refine.symbolic import check_refinement_symbolic
from repro.semantics import NEW
from repro.semantics.interp import run_once
from repro.smt.solver import SolverSession

#: warm-vs-off speedup the full run must clear (acceptance criterion).
SPEEDUP_GATE = 3.0


def _smoke_spec(use_cache: bool, cache_dir=None, limit=None) -> CampaignSpec:
    """The E5 smoke campaign: complete 1-instruction i2 corpus through
    fixed-config InstCombine."""
    return CampaignSpec(
        mode="enumerate", num_instructions=1, shard_size=64,
        pipeline="instcombine", opt_config="fixed",
        max_choices=20, fuel=600, limit=limit,
        use_cache=use_cache, cache_dir=cache_dir,
    )


def _run_campaign(spec: CampaignSpec):
    start = time.perf_counter()
    summary = CampaignRunner(spec, out_dir=None, workers=1).run()
    wall = time.perf_counter() - start
    assert not summary.shards_errored, summary.shards_errored
    return wall, summary


def bench_memo_campaign(quick: bool) -> dict:
    limit = 192 if quick else None
    cache_dir = tempfile.mkdtemp(prefix="bench-e10-memo-")
    try:
        off_wall, off = _run_campaign(_smoke_spec(False, limit=limit))
        cold_wall, cold = _run_campaign(
            _smoke_spec(True, cache_dir=cache_dir, limit=limit))

        before = stats_snapshot().get("perf", {})
        warm_wall, warm = _run_campaign(
            _smoke_spec(True, cache_dir=cache_dir, limit=limit))
        after = stats_snapshot().get("perf", {})
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    hits = after.get("num-memo-hits", 0) - before.get("num-memo-hits", 0)
    misses = (after.get("num-memo-misses", 0)
              - before.get("num-memo-misses", 0))
    lookups = hits + misses
    identical = (off.verdict_lines() == cold.verdict_lines()
                 == warm.verdict_lines())
    checked = off.checked + off.dedup_hits

    def rate(wall):
        return round(checked / wall, 1) if wall else 0.0

    return {
        "corpus_functions": checked,
        "verdicts_identical_across_cache_modes": identical,
        "verdicts": {
            "verified": off.verified, "failed": off.failed,
            "inconclusive": off.inconclusive, "timeout": off.timeout,
        },
        "runs": {
            "cache_off": {"wall_seconds": round(off_wall, 4),
                          "checks_per_sec": rate(off_wall)},
            "cache_cold": {"wall_seconds": round(cold_wall, 4),
                           "checks_per_sec": rate(cold_wall)},
            "cache_warm": {"wall_seconds": round(warm_wall, 4),
                           "checks_per_sec": rate(warm_wall)},
        },
        "warm_memo_hits": hits,
        "warm_memo_lookups": lookups,
        "cache_hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "speedup_warm_vs_off": (round(off_wall / warm_wall, 2)
                                if warm_wall else 0.0),
    }


def bench_interpreter(quick: bool) -> dict:
    """Steps/sec of the plan-compiled interpreter: every concrete input
    of a seeded corpus sample, executed on the all-zeros oracle path."""
    count = 40 if quick else 160
    fns = list(random_functions(count, seed=3))
    steps = 0
    executions = 0
    start = time.perf_counter()
    for fn in fns:
        spaces = [range(1 << a.type.bits) for a in fn.args]
        for args in itertools.product(*spaces):
            behavior = run_once(fn, list(args), NEW, fuel=600)
            if behavior.trace is not None:
                steps += behavior.trace.steps
            executions += 1
    wall = time.perf_counter() - start
    return {
        "functions": len(fns),
        "executions": executions,
        "steps": steps,
        "wall_seconds": round(wall, 4),
        "steps_per_sec": round(steps / wall, 1) if wall else 0.0,
    }


def bench_smt_session(quick: bool) -> dict:
    """The same symbolic refinement checks one-shot vs through a shared
    session."""
    count = 30 if quick else 120
    pairs = []
    for fn in random_functions(count, seed=17):
        src = parse_function(print_module(fn.module))
        single_pass_pipeline("instcombine",
                             OptConfig.fixed()).run_on_function(fn)
        pairs.append((src, fn))

    start = time.perf_counter()
    solo = [check_refinement_symbolic(s, t).verdict for s, t in pairs]
    solo_wall = time.perf_counter() - start

    session = SolverSession()
    hits_before = session.blaster.cache_hits
    start = time.perf_counter()
    shared = [
        check_refinement_symbolic(s, t, session=session).verdict
        for s, t in pairs
    ]
    shared_wall = time.perf_counter() - start

    return {
        "checks": len(pairs),
        "verdicts_identical": solo == shared,
        "one_shot_wall_seconds": round(solo_wall, 4),
        "session_wall_seconds": round(shared_wall, 4),
        "session_speedup": (round(solo_wall / shared_wall, 2)
                            if shared_wall else 0.0),
        "circuits_reused": session.blaster.cache_hits - hits_before,
        "session_queries": session.queries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (smaller corpus; the "
                             "speedup gate is informational only)")
    parser.add_argument("--out", default="BENCH_e10.json",
                        help="output JSON path (default: BENCH_e10.json)")
    args = parser.parse_args(argv)

    report = {
        "experiment": "E10",
        "quick": args.quick,
        "workers": 1,
        "memo_campaign": bench_memo_campaign(args.quick),
        "interpreter": bench_interpreter(args.quick),
        "smt_session": bench_smt_session(args.quick),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    memo = report["memo_campaign"]
    print(f"E10 perf baseline ({'quick' if args.quick else 'full'}):")
    print(f"  campaign checks/sec: "
          f"off {memo['runs']['cache_off']['checks_per_sec']}, "
          f"cold {memo['runs']['cache_cold']['checks_per_sec']}, "
          f"warm {memo['runs']['cache_warm']['checks_per_sec']}")
    print(f"  warm speedup vs cache-off: {memo['speedup_warm_vs_off']}x "
          f"(hit rate {memo['cache_hit_rate']:.1%})")
    print(f"  interpreter: {report['interpreter']['steps_per_sec']:,.0f} "
          f"steps/sec over {report['interpreter']['executions']} "
          f"executions")
    print(f"  smt session: {report['smt_session']['session_speedup']}x, "
          f"{report['smt_session']['circuits_reused']} circuits reused")
    print(f"  wrote {args.out}")

    failures = []
    if not memo["verdicts_identical_across_cache_modes"]:
        failures.append("verdict sets differ across cache modes")
    if memo["cache_hit_rate"] == 0:
        failures.append("memo cache hit rate is 0 (cache wired but dead)")
    if not report["smt_session"]["verdicts_identical"]:
        failures.append("session and one-shot SMT verdicts differ")
    if not args.quick and memo["speedup_warm_vs_off"] < SPEEDUP_GATE:
        failures.append(
            f"warm speedup {memo['speedup_warm_vs_off']}x under the "
            f"{SPEEDUP_GATE}x gate")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
