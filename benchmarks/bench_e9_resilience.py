"""E9 — resilience: guarded pipelines survive injected faults.

Not a paper experiment but an infrastructure one: the guarded pass
manager snapshots every function before every pass application, so a
buggy pass (here: chaos-injected crashes and IR corruptions) rolls back
instead of corrupting the module or killing the run.  We measure the
two claims that make the machinery usable:

* **correctness under fire** — compiling a real benchmark workload with
  faults injected into the o2 pipeline still produces a module that
  verifies *and computes the same checksum* as the clean compile;
* **bounded overhead** — the snapshot/verify tax on a clean compile is
  a constant factor, not an asymptotic blowup.
"""

import time

import pytest

from repro.backend import compile_module, run_program
from repro.bench import SUITE, prototype_variant
from repro.frontend import compile_c
from repro.ir import verify_module
from repro.opt import ChaosEngine, guarded_pipeline, o2_pipeline
from repro.opt.resilience import POLICY_RECOVER

WORKLOAD = SUITE["bzip2"]
FUEL = 50_000_000


def _fresh_module():
    variant = prototype_variant()
    module = compile_c(WORKLOAD.source, variant.codegen_options,
                       module_name=WORKLOAD.name)
    return module, variant.opt_config


def _checksum(module) -> int:
    checksum, _, _ = run_program(compile_module(module), "main", [],
                                 fuel=FUEL)
    return checksum


def test_chaos_compile_preserves_checksum():
    """Faults injected into every pass of a real compile are recovered,
    and the surviving module still computes the workload's checksum."""
    module, config = _fresh_module()
    pm = guarded_pipeline("o2", config, policy=POLICY_RECOVER,
                          verify_each=True,
                          chaos=ChaosEngine(seed=9, rate=0.05))
    pm.run(module)
    verify_module(module)
    assert pm.failures, "rate 0.05 over a full compile should inject"
    assert len(pm.failures) == pm.num_recoveries
    assert _checksum(module) == WORKLOAD.expected


def test_chaos_raise_storm_still_compiles():
    """Even with every pass application raising (rate 1.0), recovery
    degrades o2 to the identity pipeline instead of dying — and the
    unoptimized module still runs correctly."""
    module, config = _fresh_module()
    pm = guarded_pipeline("o2", config, policy=POLICY_RECOVER,
                          chaos=ChaosEngine(seed=1, rate=1.0,
                                            mode="raise"))
    pm.run(module)
    verify_module(module)
    assert pm.pass_counter == len(pm.failures)
    assert _checksum(module) == WORKLOAD.expected


def test_guard_overhead_is_a_constant_factor():
    """Snapshot-per-application costs a multiple of the plain pipeline,
    not an asymptotic blowup.  The bound is deliberately loose: this
    guards against O(n^2) regressions, not wall-clock noise."""
    module, config = _fresh_module()
    start = time.perf_counter()
    o2_pipeline(config).run(module)
    plain_seconds = time.perf_counter() - start

    module, config = _fresh_module()
    pm = guarded_pipeline("o2", config, policy=POLICY_RECOVER,
                          verify_each=True)
    start = time.perf_counter()
    pm.run(module)
    guarded_seconds = time.perf_counter() - start

    assert not pm.failures, "clean compile must not trip the guard"
    overhead = guarded_seconds / max(plain_seconds, 1e-9)
    print(f"\nE9: guarded o2 overhead: {overhead:.1f}x "
          f"({plain_seconds * 1000:.1f}ms -> "
          f"{guarded_seconds * 1000:.1f}ms, "
          f"{pm.pass_counter} applications)")
    assert overhead < 60, (
        f"guard overhead {overhead:.1f}x looks asymptotic, not constant")


def test_quarantine_caps_failure_accounting():
    """A pass that fails on every function stops being scheduled after
    quarantine_after failures — total failures stay bounded by the
    quarantine threshold, not the corpus size."""
    module, config = _fresh_module()
    pm = guarded_pipeline("o2", config, policy="quarantine",
                          quarantine_after=2,
                          chaos=ChaosEngine(seed=2, rate=1.0,
                                            mode="raise"))
    pm.run(module)
    assert pm.quarantined
    per_pass = {}
    for f in pm.failures:
        per_pass[f.pass_name] = per_pass.get(f.pass_name, 0) + 1
    assert all(count <= 2 for count in per_pass.values())
