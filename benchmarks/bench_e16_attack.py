"""E16 — adversarial lint-attack campaign baseline.

Measures the checker-validation layer and writes a ``BENCH_e16.json``
trajectory later PRs are held to:

* **mutator throughput**: mutants generated/sec over a strided corpus
  sample, and how many mutants each seed yields on average;
* **attack throughput**: mutants classified against exact ground truth
  per second (the number that bounds campaign sizing);
* **taxonomy completeness**: the per-rule FN/FP/TP/TN table over the
  sampled campaign — every registered rule must receive at least one
  classified observation, and nothing may land in ``unclassified``;
* **checker health**: the disagreement count (false negatives plus
  false positives).  A healthy checker stack scores zero; any
  disagreement is a lint/poison-flow bug with a reduced crash bundle.

The script is the CI gate for the adversarial-validation layer: it
exits nonzero if any rule received no classified observation, if any
observation is unclassified, or if the healthy checker stack produced
a disagreement.

Usage::

    PYTHONPATH=src python benchmarks/bench_e16_attack.py [--quick] \
        [--out BENCH_e16.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.campaign.lint_attack import AttackRunner, AttackSpec
from repro.lint import RULES
from repro.mutate import VERDICTS, mutate_function


def _spec(quick: bool) -> AttackSpec:
    spec = AttackSpec(limit=4 if quick else 16, shard_size=2,
                      max_inputs=512 if quick else 4096,
                      max_paths=256 if quick else 512)
    total = spec.enumeration_size()
    return spec.with_(stride=max(1, total // max(1, spec.limit)))


def bench_mutators(spec: AttackSpec) -> dict:
    seeds = mutants = 0
    t0 = time.perf_counter()
    for position in range(spec.total_functions()):
        fn = spec.seed_at(position)
        seeds += 1
        mutants += len(mutate_function(fn))
    wall = time.perf_counter() - t0
    return {
        "seeds": seeds,
        "mutants": mutants,
        "mutants_per_seed": round(mutants / seeds, 2) if seeds else 0.0,
        "mutants_per_sec": round(mutants / wall) if wall else 0,
        "wall_sec": round(wall, 3),
    }


def bench_attack(spec: AttackSpec) -> dict:
    t0 = time.perf_counter()
    summary = AttackRunner(spec, out_dir=None, workers=1).run()
    wall = time.perf_counter() - t0
    return {
        "seeds": summary.seeds,
        "mutants": summary.mutants,
        "observations": summary.observations,
        "oracle_events": summary.oracle_events,
        "classified": summary.classified,
        "unclassified": summary.unclassified,
        "disagreements": len(summary.disagreements),
        "taxonomy": summary.taxonomy,
        "mutants_per_sec": round(summary.mutants / wall, 1) if wall else 0,
        "wall_sec": round(wall, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (smaller corpus slices)")
    parser.add_argument("--out", default="BENCH_e16.json",
                        help="output JSON path (default: BENCH_e16.json)")
    args = parser.parse_args(argv)

    spec = _spec(args.quick)
    report = {
        "experiment": "E16",
        "quick": args.quick,
        "spec": spec.as_dict(),
        "mutators": bench_mutators(spec),
        "attack": bench_attack(spec),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    mu, at = report["mutators"], report["attack"]
    print(f"E16 adversarial validation baseline "
          f"({'quick' if args.quick else 'full'}):")
    print(f"  mutators: {mu['mutants']} mutants from {mu['seeds']} "
          f"seeds ({mu['mutants_per_seed']}/seed, "
          f"{mu['mutants_per_sec']:,}/sec)")
    print(f"  attack: {at['mutants']} mutants classified at "
          f"{at['mutants_per_sec']}/sec "
          f"({at['oracle_events']} oracle events)")
    print(f"  taxonomy: {at['classified']} classified, "
          f"{at['unclassified']} unclassified, "
          f"{at['disagreements']} disagreement(s)")
    for rule in sorted(at["taxonomy"]):
        bucket = at["taxonomy"][rule]
        row = " ".join(f"{v}={bucket.get(v, 0)}" for v in VERDICTS)
        print(f"    {rule}: {row}")
    print(f"  wrote {args.out}")

    failures = []
    missing = sorted(set(RULES) - set(at["taxonomy"]))
    if missing:
        failures.append(
            f"rules received no classified observation: {missing}")
    for rule, bucket in at["taxonomy"].items():
        classified = sum(bucket.get(v, 0) for v in VERDICTS
                         if v != "unclassified")
        if classified < 1:
            failures.append(f"rule {rule} has zero classified mutants")
    if at["unclassified"]:
        failures.append(f"{at['unclassified']} observation(s) escaped "
                        f"the taxonomy (oracle budget too small)")
    if at["disagreements"]:
        failures.append(
            f"healthy checker stack produced {at['disagreements']} "
            f"disagreement(s) — lint/poison-flow soundness bug")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
