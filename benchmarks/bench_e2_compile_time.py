"""E2 — Section 7.2 "Compile time".

The paper: compile time was within ±1% for most benchmarks, with a
small-file outlier (+19%) where jump threading stopped firing because it
did not know freeze, changing what later passes did.

We reproduce both halves: the suite-level deltas (small), and the
jump-threading anecdote — a function whose freeze-guarded branch only
threads when CodeGenPrepare/SimplifyCFG are freeze-aware.
"""

import pytest

from repro.bench import SUITE, baseline_variant, compile_workload, \
    prototype_variant
from repro.diag import PassTiming
from repro.ir import parse_function, verify_function
from repro.opt import OptConfig, SimplifyCFG


def test_per_pass_timing_attributes_compile_time():
    """The hierarchical -time-passes report: the harness attributes
    compile time to individual (pass, function) pairs, so E2's deltas
    can be broken down past the wall-clock total."""
    timing = PassTiming()
    compile_workload(SUITE["perlbench"], prototype_variant(),
                     measure_memory=False, timing=timing)

    data = timing.as_dict()
    assert "instcombine" in data
    inst = data["instcombine"]
    assert inst["runs"] > 0
    assert inst["seconds"] >= 0.0
    # per-function breakdown is populated and sums to the pass total
    assert inst["per_function"]
    assert abs(sum(f["seconds"] for f in inst["per_function"].values())
               - inst["seconds"]) < 1e-9
    # the aggregate total covers every pass in both pipelines
    assert timing.total_seconds() >= inst["seconds"]

    report = timing.report(per_function=True)
    assert "instcombine" in report
    assert "Total" in report


def test_suite_measurements_carry_pass_timing(suite_comparisons):
    """measure() threads a PassTiming through both pipelines, so every
    Measurement can explain where its compile_seconds went."""
    for c in suite_comparisons:
        for m in (c.baseline, c.prototype):
            assert m.pass_timing is not None, m.workload
            assert m.pass_timing.total_seconds() <= m.compile_seconds
            assert "instcombine" in m.pass_timing.passes


def test_compile_time_deltas_small(suite_comparisons):
    deltas = [abs(c.compile_time_delta_pct) for c in suite_comparisons]
    # wall-clock noise in Python is larger than the paper's C++ timers;
    # require the median to be small rather than every point
    deltas.sort()
    median = deltas[len(deltas) // 2]
    assert median < 30.0, f"median compile-time delta {median:.1f}%"


JUMP_THREAD_SRC = """
declare void @effect(i8)

define i8 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  call void @effect(i8 1)
  br label %dispatch
b:
  call void @effect(i8 2)
  br label %dispatch
dispatch:
  %flag = phi i1 [ true, %a ], [ false, %b ]
  %fr = freeze i1 %flag
  br i1 %fr, label %hot, label %cold
hot:
  ret i8 1
cold:
  ret i8 2
}
"""


def test_jump_threading_blocked_without_freeze_awareness():
    """The compile-time anecdote: identical input, different pipeline
    behavior purely because one config refuses to look through freeze."""
    aware = parse_function(JUMP_THREAD_SRC)
    SimplifyCFG(OptConfig.fixed()).run_on_function(aware)
    verify_function(aware)

    unaware = parse_function(JUMP_THREAD_SRC)
    SimplifyCFG(
        OptConfig.fixed().with_(freeze_aware_codegen=False)
    ).run_on_function(unaware)
    verify_function(unaware)

    # freeze-aware threading removes the dispatch block entirely
    assert aware.block_by_name("dispatch") is None
    assert unaware.block_by_name("dispatch") is not None
    # ...and the results stay correct
    from repro.refine import check_refinement
    from repro.semantics import NEW

    r = check_refinement(parse_function(JUMP_THREAD_SRC), aware, NEW)
    assert r.ok


@pytest.mark.benchmark(group="e2-compile-time")
def bench_compile_baseline(benchmark):
    benchmark(lambda: compile_workload(SUITE["perlbench"],
                                       baseline_variant(),
                                       measure_memory=False))


@pytest.mark.benchmark(group="e2-compile-time")
def bench_compile_prototype(benchmark):
    benchmark(lambda: compile_workload(SUITE["perlbench"],
                                       prototype_variant(),
                                       measure_memory=False))
