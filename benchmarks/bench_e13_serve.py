"""E13 — validation-as-a-service load test.

Boots one in-process :class:`ValidationServer` (the same asyncio stack
``python -m repro serve`` runs) and drives it with concurrent blocking
clients over real sockets, writing a ``BENCH_e13.json`` trajectory:

* **verdict parity** — the service's campaign and refine answers must
  be byte-identical to the batch path (:func:`run_campaign` /
  :func:`check_source`) on the same corpus; any drift fails the run;
* **warm-cache hit rate** — a second wave of clients on *distinct
  connections* re-submits the corpus; the shared
  :class:`RefinementMemo` must serve a nonzero fraction of it;
* **throughput/latency** — ≥4 concurrent clients issue mixed
  lint + refine + ping requests; the report records requests/sec and
  p50/p99 request latency.

Gates (exit nonzero): verdict drift service-vs-batch, a zero warm-cache
hit rate across connections, or any failed/rejected request during the
mixed-load phase.

Usage::

    PYTHONPATH=src python benchmarks/bench_e13_serve.py [--quick] \
        [--out BENCH_e13.json]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import tempfile
import threading
import time

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.worker import check_source
from repro.fuzz import random_functions
from repro.ir import print_module
from repro.serve import ServeClient, ServiceConfig, ValidationServer

CAMPAIGN_SPEC = dict(mode="random", count=48, num_instructions=1,
                     pipeline="quick", shard_size=16, fuel=300,
                     max_inputs=4000)

REFINE_BUDGETS = dict(pipeline="quick", fuel=300, max_inputs=4000)


class ServerThread:
    """The server's asyncio loop on a daemon thread, real sockets."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.host = self.port = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self):
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server failed to start")
        return self.host, self.port

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = ValidationServer(config=self.config)
        self.host, self.port = await server.start()
        self._ready.set()
        await self._stop.wait()
        await server.shutdown(drain_timeout=60)

    def stop(self):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=90)


def _corpus(count: int):
    """Printed sources of a seeded random corpus (the refine inputs)."""
    return [print_module(fn.module)
            for fn in random_functions(count, seed=1303)]


def _percentile(values, q):
    if not values:
        return 0.0
    return round(statistics.quantiles(values, n=100)[q - 1], 4) \
        if len(values) > 1 else round(values[0], 4)


def bench_parity(host, port, quick: bool) -> dict:
    """Service answers vs the batch path, same corpus, same budgets."""
    spec_dict = dict(CAMPAIGN_SPEC, count=24 if quick else 48)
    batch = run_campaign(CampaignSpec(**spec_dict), workers=1)

    with ServeClient(host=host, port=port, timeout=600) as client:
        service = client.campaign(spec_dict)

    sources = _corpus(8 if quick else 16)
    spec = CampaignSpec(**REFINE_BUDGETS)
    batch_refine = []
    for src in sources:
        outcome = check_source(spec, src, options=spec.check_options(),
                               semantics=spec.semantics())
        batch_refine.append(f"{outcome['hash']} {outcome['verdict']}")
    with ServeClient(host=host, port=port, timeout=600) as client:
        _, done = client.collect(
            "refine", {"functions": sources, **REFINE_BUDGETS})
    service_refine = done["verdict_lines"]

    return {
        "campaign_corpus": spec_dict["count"],
        "campaign_identical":
            batch.verdict_lines() == service["verdict_lines"],
        "campaign_verdicts": {
            "verified": batch.verified, "failed": batch.failed,
            "inconclusive": batch.inconclusive,
            "timeout": batch.timeout,
        },
        "refine_corpus": len(sources),
        "refine_identical":
            sorted(set(batch_refine)) == service_refine,
    }


def bench_warm_cache(host, port, quick: bool, clients: int) -> dict:
    """Distinct connections re-submit one corpus; the warm verdict
    store must answer part of the second wave."""
    sources = _corpus(12 if quick else 24)

    def refine_all(results):
        with ServeClient(host=host, port=port, timeout=600) as client:
            _, done = client.collect(
                "refine", {"functions": sources, **REFINE_BUDGETS})
            results.append(done)

    cold: list = []
    refine_all(cold)  # connection 1 pays the checks

    warm: list = []
    threads = [threading.Thread(target=refine_all, args=(warm,))
               for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    warm_wall = time.perf_counter() - start

    assert len(warm) == clients
    total = sum(d["checked"] for d in warm)
    served = sum(d["cached"] for d in warm)
    lines = {tuple(d["verdict_lines"]) for d in warm + cold}
    return {
        "corpus_functions": len(sources),
        "warm_connections": clients,
        "warm_requests": len(warm),
        "warm_checked": total,
        "warm_served_from_cache": served,
        "warm_hit_rate": round(served / total, 4) if total else 0.0,
        "verdicts_stable_across_connections": len(lines) == 1,
        "warm_wall_seconds": round(warm_wall, 4),
    }


def bench_load(host, port, quick: bool, clients: int,
               requests_per_client: int) -> dict:
    """Mixed lint + refine + ping load from concurrent clients."""
    sources = _corpus(12 if quick else 24)
    errors: list = []
    latencies: list = []
    lock = threading.Lock()

    def one_client(idx: int):
        try:
            with ServeClient(host=host, port=port, timeout=600) as client:
                for i in range(requests_per_client):
                    kind = (idx + i) % 3
                    begin = time.perf_counter()
                    if kind == 0:
                        src = sources[(idx + i) % len(sources)]
                        client.collect("lint", {"source": src,
                                                "sarif": True})
                    elif kind == 1:
                        src = sources[(idx * 7 + i) % len(sources)]
                        client.collect(
                            "refine",
                            {"functions": [src], **REFINE_BUDGETS})
                    else:
                        client.ping()
                    wall = time.perf_counter() - begin
                    with lock:
                        latencies.append(wall)
        except Exception as e:  # noqa: BLE001 — a failed request fails E13
            with lock:
                errors.append(f"client {idx}: {type(e).__name__}: {e}")

    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start

    done = len(latencies)
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "requests_completed": done,
        "request_errors": errors,
        "wall_seconds": round(wall, 4),
        "requests_per_sec": round(done / wall, 1) if wall else 0.0,
        "latency_p50_seconds": _percentile(sorted(latencies), 50),
        "latency_p99_seconds": _percentile(sorted(latencies), 99),
        "latency_max_seconds": (round(max(latencies), 4)
                                if latencies else 0.0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke sizing (smaller corpus and load)")
    parser.add_argument("--out", default="BENCH_e13.json",
                        help="output JSON path (default: BENCH_e13.json)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent clients in the load phase")
    args = parser.parse_args(argv)
    requests_per_client = 6 if args.quick else 18

    with tempfile.TemporaryDirectory(prefix="bench-e13-memo-") as memo_dir:
        server = ServerThread(ServiceConfig(
            workers=2, check_threads=2, high_water=256,
            request_timeout=600.0, memo_dir=memo_dir))
        host, port = server.start()
        try:
            report = {
                "experiment": "E13",
                "quick": args.quick,
                "server": {"workers": 2, "check_threads": 2,
                           "high_water": 256},
                "parity": bench_parity(host, port, args.quick),
                "warm_cache": bench_warm_cache(host, port, args.quick,
                                               max(2, args.clients // 2)),
                "load": bench_load(host, port, args.quick, args.clients,
                                   requests_per_client),
            }
        finally:
            server.stop()

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    parity, warm, load = (report["parity"], report["warm_cache"],
                          report["load"])
    print(f"E13 serve load test ({'quick' if args.quick else 'full'}):")
    print(f"  parity: campaign identical={parity['campaign_identical']}, "
          f"refine identical={parity['refine_identical']}")
    print(f"  warm cache: {warm['warm_served_from_cache']}/"
          f"{warm['warm_checked']} served warm "
          f"(hit rate {warm['warm_hit_rate']:.1%}) across "
          f"{warm['warm_connections']} connections")
    print(f"  load: {load['requests_completed']} requests from "
          f"{load['clients']} clients at {load['requests_per_sec']}/s, "
          f"p50 {load['latency_p50_seconds']}s, "
          f"p99 {load['latency_p99_seconds']}s")
    print(f"  wrote {args.out}")

    failures = []
    if not parity["campaign_identical"]:
        failures.append("service campaign verdicts differ from the "
                        "batch CLI on the same corpus")
    if not parity["refine_identical"]:
        failures.append("service refine verdicts differ from the batch "
                        "per-function path")
    if warm["warm_hit_rate"] == 0:
        failures.append("warm-cache hit rate is 0 across distinct "
                        "connections (shared store wired but dead)")
    if not warm["verdicts_stable_across_connections"]:
        failures.append("verdicts changed between connections")
    if load["request_errors"]:
        failures.append(f"{len(load['request_errors'])} request(s) "
                        f"failed under load: "
                        f"{load['request_errors'][:3]}")
    if load["requests_completed"] != (load["clients"]
                                      * load["requests_per_client"]):
        failures.append("load phase lost requests")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
