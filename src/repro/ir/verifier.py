"""IR verifier: structural, SSA-dominance, and semantics-mode checks.

Raises :class:`VerificationError` listing every violation.  Passes run it
after transforming (in tests) to catch IR corruption early — the same
role ``opt -verify`` plays in LLVM.

Each violation is recorded both as the historical message string (the
``errors`` list, which existing tooling matches on) and as a
:class:`VerifierDiagnostic` carrying a structured
:class:`~repro.ir.location.IRLocation` (function, block label,
instruction index) — the same location type the lint engine emits, so
all diagnostics render uniformly clickable positions.

The ``forbid_undef`` flag implements the paper's NEW semantics rule that
``undef`` no longer exists (Section 4): modules migrated to poison+freeze
must not contain ``UndefValue``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .function import Function
from .instructions import Instruction, PhiInst
from .location import IRLocation
from .module import Module
from .values import Argument, Constant, UndefValue


@dataclass(frozen=True)
class VerifierDiagnostic:
    """One verifier violation with a structured location."""

    message: str
    loc: IRLocation

    def __str__(self) -> str:
        return f"{self.loc}: {self.message}"

    def as_dict(self) -> dict:
        return {"message": self.message, "loc": self.loc.as_dict()}


class VerificationError(Exception):
    def __init__(self, errors: List[str],
                 diagnostics: Optional[List[VerifierDiagnostic]] = None):
        super().__init__("\n".join(errors))
        self.errors = errors
        self.diagnostics = diagnostics or []


class _Reporter:
    """Accumulates (legacy string, structured diagnostic) pairs."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.errors: List[str] = []
        self.diagnostics: List[VerifierDiagnostic] = []

    def __bool__(self) -> bool:
        return bool(self.errors)

    def add(self, message: str, *, block=None, inst=None) -> None:
        """Record ``message`` (without the ``@fn:`` prefix, which is
        added here to keep the historical string format)."""
        self.errors.append(f"@{self.fn.name}: {message}")
        if inst is not None and getattr(inst, "parent", None) is not None:
            loc = IRLocation.of(inst, function=self.fn.name)
        else:
            loc = IRLocation(
                function=self.fn.name,
                block=block.name if block is not None else "",
            )
        self.diagnostics.append(VerifierDiagnostic(message, loc))

    def raise_if_any(self) -> None:
        if self.errors:
            raise VerificationError(self.errors, self.diagnostics)


def verify_function(fn: Function, forbid_undef: bool = False) -> None:
    # Imported here to avoid a package-level import cycle
    # (repro.ir <-> repro.analysis).
    from ..analysis.cfg import predecessor_map, reachable_blocks
    from ..analysis.dominators import DominatorTree

    report = _Reporter(fn)

    if fn.is_declaration:
        return

    block_set = set(fn.blocks)

    # Block structure.
    for block in fn.blocks:
        if block.terminator is None:
            report.add(f"block %{block.name} has no terminator", block=block)
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator and i != len(block.instructions) - 1:
                report.add(f"terminator in the middle of %{block.name}",
                           inst=inst)
            if isinstance(inst, PhiInst) and i > len(block.phis()) - 1:
                report.add(
                    f"phi {inst.ref()} not at the start of %{block.name}",
                    inst=inst)
            if inst.parent is not block:
                report.add(f"{inst.ref()} has wrong parent link", block=block)
        for succ in block.successors():
            if succ not in block_set:
                report.add(
                    f"%{block.name} branches to foreign block %{succ.name}",
                    block=block)

    preds = predecessor_map(fn)
    if preds[fn.entry]:
        report.add(f"entry block %{fn.entry.name} has predecessors",
                   block=fn.entry)

    # Phi incoming edges must exactly match predecessors.
    reachable = reachable_blocks(fn)
    for block in fn.blocks:
        if block not in reachable:
            continue
        expected = set(preds[block])
        for phi in block.phis():
            got = set(phi.incoming_blocks)
            missing = expected - got
            extra = got - expected
            for b in missing:
                report.add(
                    f"phi {phi.ref()} missing incoming for pred %{b.name}",
                    inst=phi)
            for b in extra:
                report.add(
                    f"phi {phi.ref()} has incoming for non-pred %{b.name}",
                    inst=phi)
            if len(phi.incoming_blocks) != len(set(map(id, phi.incoming_blocks))):
                report.add(f"phi {phi.ref()} has duplicate incoming blocks",
                           inst=phi)

    report.raise_if_any()

    # SSA dominance (only meaningful once structure is sane).
    dt = DominatorTree(fn)
    for block in fn.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming:
                    if isinstance(value, (Constant, Argument)):
                        continue
                    if not isinstance(value, Instruction):
                        report.add(
                            f"phi {inst.ref()} has non-SSA operand {value!r}",
                            inst=inst)
                        continue
                    if pred in reachable and not dt.dominates_edge(value, pred):
                        report.add(
                            f"def {value.ref()} does not dominate phi edge "
                            f"from %{pred.name}", inst=inst)
                continue
            for op in inst.operands:
                if isinstance(op, (Constant, Argument)):
                    continue
                if not isinstance(op, Instruction):
                    report.add(f"{inst.ref()} has non-SSA operand {op!r}",
                               inst=inst)
                    continue
                if op.parent is None or op.parent.parent is not fn:
                    report.add(
                        f"{inst.ref()} uses detached value {op.ref()}",
                        inst=inst)
                    continue
                if op.parent in reachable and not dt.dominates(op, inst):
                    report.add(
                        f"def {op.ref()} does not dominate use in "
                        f"{inst.ref() if not inst.type.is_void else inst.opcode.value}",
                        inst=inst)

    if forbid_undef:
        for inst in fn.instructions():
            for op in inst.operands:
                if isinstance(op, UndefValue):
                    report.add(
                        f"undef operand in {inst.opcode.value} "
                        f"(forbidden under the poison/freeze semantics)",
                        inst=inst)

    report.raise_if_any()


def verify_module(module: Module, forbid_undef: bool = False) -> None:
    errors: List[str] = []
    diagnostics: List[VerifierDiagnostic] = []
    for fn in module.definitions():
        try:
            verify_function(fn, forbid_undef=forbid_undef)
        except VerificationError as e:
            errors.extend(e.errors)
            diagnostics.extend(e.diagnostics)
    if errors:
        raise VerificationError(errors, diagnostics)
