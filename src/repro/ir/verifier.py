"""IR verifier: structural, SSA-dominance, and semantics-mode checks.

Raises :class:`VerificationError` listing every violation.  Passes run it
after transforming (in tests) to catch IR corruption early — the same
role ``opt -verify`` plays in LLVM.

The ``forbid_undef`` flag implements the paper's NEW semantics rule that
``undef`` no longer exists (Section 4): modules migrated to poison+freeze
must not contain ``UndefValue``.
"""

from __future__ import annotations

from typing import List

from .function import Function
from .instructions import Instruction, PhiInst
from .module import Module
from .values import Argument, Constant, UndefValue


class VerificationError(Exception):
    def __init__(self, errors: List[str]):
        super().__init__("\n".join(errors))
        self.errors = errors


def verify_function(fn: Function, forbid_undef: bool = False) -> None:
    # Imported here to avoid a package-level import cycle
    # (repro.ir <-> repro.analysis).
    from ..analysis.cfg import predecessor_map, reachable_blocks
    from ..analysis.dominators import DominatorTree

    errors: List[str] = []
    where = f"@{fn.name}"

    if fn.is_declaration:
        return

    block_set = set(fn.blocks)

    # Block structure.
    for block in fn.blocks:
        if block.terminator is None:
            errors.append(f"{where}: block %{block.name} has no terminator")
        for i, inst in enumerate(block.instructions):
            if inst.is_terminator and i != len(block.instructions) - 1:
                errors.append(
                    f"{where}: terminator in the middle of %{block.name}"
                )
            if isinstance(inst, PhiInst) and i > len(block.phis()) - 1:
                errors.append(
                    f"{where}: phi {inst.ref()} not at the start of "
                    f"%{block.name}"
                )
            if inst.parent is not block:
                errors.append(
                    f"{where}: {inst.ref()} has wrong parent link"
                )
        for succ in block.successors():
            if succ not in block_set:
                errors.append(
                    f"{where}: %{block.name} branches to foreign block "
                    f"%{succ.name}"
                )

    preds = predecessor_map(fn)
    if preds[fn.entry]:
        errors.append(f"{where}: entry block %{fn.entry.name} has predecessors")

    # Phi incoming edges must exactly match predecessors.
    reachable = reachable_blocks(fn)
    for block in fn.blocks:
        if block not in reachable:
            continue
        expected = set(preds[block])
        for phi in block.phis():
            got = set(phi.incoming_blocks)
            missing = expected - got
            extra = got - expected
            for b in missing:
                errors.append(
                    f"{where}: phi {phi.ref()} missing incoming for "
                    f"pred %{b.name}"
                )
            for b in extra:
                errors.append(
                    f"{where}: phi {phi.ref()} has incoming for non-pred "
                    f"%{b.name}"
                )
            if len(phi.incoming_blocks) != len(set(map(id, phi.incoming_blocks))):
                errors.append(
                    f"{where}: phi {phi.ref()} has duplicate incoming blocks"
                )

    if errors:
        raise VerificationError(errors)

    # SSA dominance (only meaningful once structure is sane).
    dt = DominatorTree(fn)
    for block in fn.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                for value, pred in inst.incoming:
                    if isinstance(value, (Constant, Argument)):
                        continue
                    if not isinstance(value, Instruction):
                        errors.append(
                            f"{where}: phi {inst.ref()} has non-SSA operand "
                            f"{value!r}"
                        )
                        continue
                    if pred in reachable and not dt.dominates_edge(value, pred):
                        errors.append(
                            f"{where}: def {value.ref()} does not dominate "
                            f"phi edge from %{pred.name}"
                        )
                continue
            for op in inst.operands:
                if isinstance(op, (Constant, Argument)):
                    continue
                if not isinstance(op, Instruction):
                    errors.append(
                        f"{where}: {inst.ref()} has non-SSA operand {op!r}"
                    )
                    continue
                if op.parent is None or op.parent.parent is not fn:
                    errors.append(
                        f"{where}: {inst.ref()} uses detached value {op.ref()}"
                    )
                    continue
                if op.parent in reachable and not dt.dominates(op, inst):
                    errors.append(
                        f"{where}: def {op.ref()} does not dominate use in "
                        f"{inst.ref() if not inst.type.is_void else inst.opcode.value}"
                    )

    if forbid_undef:
        for inst in fn.instructions():
            for op in inst.operands:
                if isinstance(op, UndefValue):
                    errors.append(
                        f"{where}: undef operand in {inst.opcode.value} "
                        f"(forbidden under the poison/freeze semantics)"
                    )

    if errors:
        raise VerificationError(errors)


def verify_module(module: Module, forbid_undef: bool = False) -> None:
    errors: List[str] = []
    for fn in module.definitions():
        try:
            verify_function(fn, forbid_undef=forbid_undef)
        except VerificationError as e:
            errors.extend(e.errors)
    if errors:
        raise VerificationError(errors)
