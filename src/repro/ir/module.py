"""Modules: named collections of functions and globals."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .function import Function
from .types import FunctionType, Type
from .values import Constant, GlobalVariable


class Module:
    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise ValueError(f"duplicate function @{fn.name}")
        self.functions[fn.name] = fn
        fn.module = self
        return fn

    def get_function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def declare(self, name: str, ftype: FunctionType) -> Function:
        """Get-or-create a function declaration."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.function_type is not ftype:
                raise ValueError(f"@{name} redeclared with different type")
            return existing
        return Function(ftype, name, module=self)

    def add_global(self, name: str, value_type: Type,
                   initializer: Optional[Constant] = None) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global @{name}")
        g = GlobalVariable(value_type, name, initializer)
        self.globals[name] = g
        return g

    def get_global(self, name: str) -> Optional[GlobalVariable]:
        return self.globals.get(name)

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def definitions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def num_instructions(self) -> int:
        return sum(f.num_instructions() for f in self.definitions())

    def __repr__(self) -> str:
        return f"<Module {self.name!r} ({len(self.functions)} functions)>"
