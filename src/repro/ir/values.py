"""Value hierarchy: SSA values, constants, undef and poison.

Mirrors LLVM's design: every operand of an instruction is a ``Value``;
instructions are themselves values (their result).  Use lists are
maintained so passes can run ``replace_all_uses_with`` and query users,
which GVN/DCE/InstCombine all rely on.

``UndefValue`` and ``PoisonValue`` are the deferred-UB constants at the
center of the paper.  ``UndefValue`` only exists under the OLD semantics
mode; the verifier can be asked to reject it for NEW-mode modules.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from .types import IntType, PointerType, Type, VectorType


class Value:
    """Base class for everything that can appear as an operand."""

    __slots__ = ("type", "name", "_uses")

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        self._uses: List["Use"] = []

    # -- use-list management ---------------------------------------------
    @property
    def uses(self) -> Tuple["Use", ...]:
        return tuple(self._uses)

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def users(self) -> Iterator["User"]:
        seen = set()
        for use in self._uses:
            if id(use.user) not in seen:
                seen.add(id(use.user))
                yield use.user

    def has_one_use(self) -> bool:
        return len(self._uses) == 1

    def replace_all_uses_with(self, new: "Value") -> None:
        if new is self:
            return
        for use in list(self._uses):
            use.set(new)

    # -- classification ----------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_undef(self) -> bool:
        return isinstance(self, UndefValue)

    @property
    def is_poison(self) -> bool:
        return isinstance(self, PoisonValue)

    def ref(self) -> str:
        """Short printable reference (how the value appears as an operand)."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __str__(self) -> str:
        return self.ref()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Use:
    """One operand slot of a user; knows how to rewrite itself."""

    __slots__ = ("user", "index", "_value")

    def __init__(self, user: "User", index: int, value: Value):
        self.user = user
        self.index = index
        self._value = value
        value._uses.append(self)

    @property
    def value(self) -> Value:
        return self._value

    def set(self, new: Value) -> None:
        self._value._uses.remove(self)
        self._value = new
        new._uses.append(self)

    def drop(self) -> None:
        self._value._uses.remove(self)


class User(Value):
    """A value that holds operands (instructions, constant expressions)."""

    __slots__ = ("_operand_uses",)

    def __init__(self, type: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self._operand_uses: List[Use] = [
            Use(self, i, op) for i, op in enumerate(operands)
        ]

    @property
    def operands(self) -> Tuple[Value, ...]:
        return tuple(use.value for use in self._operand_uses)

    @property
    def num_operands(self) -> int:
        return len(self._operand_uses)

    def operand(self, i: int) -> Value:
        return self._operand_uses[i].value

    def set_operand(self, i: int, value: Value) -> None:
        self._operand_uses[i].set(value)

    def append_operand(self, value: Value) -> None:
        self._operand_uses.append(Use(self, len(self._operand_uses), value))

    def remove_operand(self, i: int) -> None:
        self._operand_uses[i].drop()
        del self._operand_uses[i]
        for j in range(i, len(self._operand_uses)):
            self._operand_uses[j].index = j

    def drop_all_operands(self) -> None:
        for use in self._operand_uses:
            use.drop()
        self._operand_uses.clear()


class Constant(Value):
    """Base class for compile-time constants."""

    __slots__ = ()

    def ref(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


class ConstantInt(Constant):
    """An integer constant, stored as an unsigned value in ``[0, 2^N)``."""

    __slots__ = ("value",)

    def __init__(self, type: IntType, value: int):
        if not isinstance(type, IntType):
            raise TypeError(f"ConstantInt requires an integer type, got {type}")
        super().__init__(type)
        self.value = value & type.unsigned_max

    @property
    def signed_value(self) -> int:
        ty: IntType = self.type  # type: ignore[assignment]
        if self.value > ty.signed_max:
            return self.value - ty.num_values
        return self.value

    @property
    def is_zero(self) -> bool:
        return self.value == 0

    @property
    def is_one(self) -> bool:
        return self.value == 1

    @property
    def is_all_ones(self) -> bool:
        return self.value == self.type.unsigned_max  # type: ignore[union-attr]

    def ref(self) -> str:
        if self.type.is_bool:
            return "true" if self.value else "false"
        return str(self.signed_value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((ConstantInt, self.type, self.value))


class ConstantVector(Constant):
    """A vector constant; elements are ConstantInt / undef / poison."""

    __slots__ = ("elements",)

    def __init__(self, type: VectorType, elements: Sequence[Constant]):
        if len(elements) != type.count:
            raise ValueError(
                f"vector constant needs {type.count} elements, got {len(elements)}"
            )
        super().__init__(type)
        self.elements = tuple(elements)

    def ref(self) -> str:
        elems = ", ".join(f"{e.type} {e.ref()}" for e in self.elements)
        return f"<{elems}>"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ConstantVector)
            and other.type is self.type
            and other.elements == self.elements
        )

    def __hash__(self) -> int:
        return hash((ConstantVector, self.type, self.elements))


class UndefValue(Constant):
    """LLVM's ``undef``: an indeterminate value; each *use* may observe a
    different concrete value (Section 3.1).  Exists only in OLD-mode IR."""

    __slots__ = ()

    def ref(self) -> str:
        return "undef"

    def __eq__(self, other) -> bool:
        return isinstance(other, UndefValue) and other.type is self.type

    def __hash__(self) -> int:
        return hash((UndefValue, self.type))


class PoisonValue(Constant):
    """The ``poison`` value: deferred UB that taints dependent computation
    and triggers immediate UB at side-effecting / branching uses."""

    __slots__ = ()

    def ref(self) -> str:
        return "poison"

    def __eq__(self, other) -> bool:
        return isinstance(other, PoisonValue) and other.type is self.type

    def __hash__(self) -> int:
        return hash((PoisonValue, self.type))


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("parent", "index")

    def __init__(self, type: Type, name: str, parent=None, index: int = 0):
        super().__init__(type, name)
        self.parent = parent
        self.index = index


class GlobalVariable(Constant):
    """A named global holding ``size`` bytes; its value is its address.

    The interpreter allocates a concrete address for each global at
    function-entry setup.  Globals let tests and benchmarks exercise the
    memory semantics (loads/stores, poison bits in memory).
    """

    __slots__ = ("value_type", "initializer")

    def __init__(self, value_type: Type, name: str,
                 initializer: Optional[Constant] = None):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer

    def ref(self) -> str:
        return f"@{self.name}"


def const_int(bits: int, value: int) -> ConstantInt:
    """Shorthand for ``ConstantInt(IntType(bits), value)``."""
    return ConstantInt(IntType(bits), value)


def const_bool(value: bool) -> ConstantInt:
    return ConstantInt(IntType(1), int(value))
