"""The LLVM-like intermediate representation.

Public surface: types, values (including ``undef`` and ``poison``),
instructions (including ``freeze``), module structure, the IRBuilder,
the textual parser/printer, and the verifier.
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    IcmpPred,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
    BINARY_OPCODES,
    DIVISION_OPCODES,
    OVERFLOW_OPCODES,
)
from .module import Module
from .parser import ParseError, parse_function, parse_module
from .printer import print_function, print_instruction, print_module
from .types import (
    I1,
    I8,
    I16,
    I32,
    I64,
    FunctionType,
    IntType,
    LabelType,
    PointerType,
    Type,
    VectorType,
    VoidType,
    int_type,
)
from .values import (
    Argument,
    Constant,
    ConstantInt,
    ConstantVector,
    GlobalVariable,
    PoisonValue,
    UndefValue,
    Use,
    User,
    Value,
    const_bool,
    const_int,
)
from .location import IRLocation
from .verifier import (
    VerificationError,
    VerifierDiagnostic,
    verify_function,
    verify_module,
)

__all__ = [
    "BasicBlock", "IRBuilder", "Function", "Module",
    "AllocaInst", "BinaryInst", "BranchInst", "CallInst", "CastInst",
    "ExtractElementInst", "FreezeInst", "GepInst", "IcmpInst", "IcmpPred",
    "InsertElementInst", "Instruction", "LoadInst", "Opcode", "PhiInst",
    "ReturnInst", "SelectInst", "StoreInst", "SwitchInst", "UnreachableInst",
    "BINARY_OPCODES", "DIVISION_OPCODES", "OVERFLOW_OPCODES",
    "ParseError", "parse_function", "parse_module",
    "print_function", "print_instruction", "print_module",
    "I1", "I8", "I16", "I32", "I64", "FunctionType", "IntType", "LabelType",
    "PointerType", "Type", "VectorType", "VoidType", "int_type",
    "Argument", "Constant", "ConstantInt", "ConstantVector", "GlobalVariable",
    "PoisonValue", "UndefValue", "Use", "User", "Value", "const_bool",
    "const_int",
    "IRLocation", "VerificationError", "VerifierDiagnostic",
    "verify_function", "verify_module",
]
