"""Parser for the textual IR syntax produced by :mod:`repro.ir.printer`.

A hand-written lexer + recursive-descent parser.  Forward references are
legal only where SSA allows them (phi incoming values and block labels);
they are resolved with placeholder values patched at end-of-function.

Entry points: :func:`parse_module` and :func:`parse_function` (which wraps
a single ``define`` in a fresh module and returns the function).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    IcmpPred,
    InsertElementInst,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .module import Module
from .types import (
    LABEL,
    VOID,
    FunctionType,
    IntType,
    PointerType,
    Type,
    VectorType,
)
from .values import (
    ConstantInt,
    ConstantVector,
    PoisonValue,
    UndefValue,
    Value,
)


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>;[^\n]*)
  | (?P<newline>\n)
  | (?P<localid>%[A-Za-z0-9._$-]+)
  | (?P<globalid>@[A-Za-z0-9._$-]+)
  | (?P<number>-?\d+)
  | (?P<word>[A-Za-z_][A-Za-z0-9._]*)
  | (?P<punct>[(){}\[\]<>,=:*])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    line = 1
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, m.group(), line))
    tokens.append(("eof", "", line))
    return tokens


class _Placeholder(Value):
    """Stand-in for a forward-referenced local value."""

    __slots__ = ("ph_name",)

    def __init__(self, type: Type, name: str):
        super().__init__(type, name)
        self.ph_name = name


class Parser:
    def __init__(self, text: str, module: Optional[Module] = None):
        self.tokens = tokenize(text)
        self.pos = 0
        self.module = module or Module()

    # -- token stream helpers ----------------------------------------------
    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str, int]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek()[1] == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> None:
        kind, value, line = self.peek()
        if value != text:
            raise ParseError(f"expected {text!r}, found {value!r}", line)
        self.pos += 1

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.peek()[2])

    # -- types ------------------------------------------------------------------
    def parse_type(self) -> Type:
        kind, value, line = self.peek()
        if value == "void":
            self.next()
            ty: Type = VOID
        elif value == "label":
            self.next()
            ty = LABEL
        elif value == "<":
            self.next()
            kind2, count_str, line2 = self.next()
            if kind2 != "number":
                raise ParseError("expected vector length", line2)
            self.expect("x")
            elem = self.parse_type()
            self.expect(">")
            ty = VectorType(int(count_str), elem)
        elif kind == "word" and re.fullmatch(r"i\d+", value):
            self.next()
            ty = IntType(int(value[1:]))
        else:
            raise ParseError(f"expected a type, found {value!r}", line)
        while self.accept("*"):
            ty = PointerType(ty)
        return ty

    # -- operands ----------------------------------------------------------------
    def parse_operand(self, ty: Type, locals_: Dict[str, Value],
                      patches: List[_Placeholder]) -> Value:
        kind, value, line = self.peek()
        if kind == "localid":
            self.next()
            name = value[1:]
            existing = locals_.get(name)
            if existing is not None:
                return existing
            ph = _Placeholder(ty, name)
            patches.append(ph)
            return ph
        if kind == "globalid":
            self.next()
            name = value[1:]
            g = self.module.get_global(name)
            if g is not None:
                return g
            f = self.module.get_function(name)
            if f is not None:
                return f
            raise ParseError(f"unknown global @{name}", line)
        if kind == "number":
            self.next()
            if not ty.is_int:
                raise ParseError(f"integer literal for non-integer type {ty}", line)
            return ConstantInt(ty, int(value))
        if value == "true":
            self.next()
            return ConstantInt(IntType(1), 1)
        if value == "false":
            self.next()
            return ConstantInt(IntType(1), 0)
        if value == "undef":
            self.next()
            return UndefValue(ty)
        if value == "poison":
            self.next()
            return PoisonValue(ty)
        if value == "<":
            return self.parse_vector_constant(ty)
        raise ParseError(f"expected an operand, found {value!r}", line)

    def parse_vector_constant(self, ty: Type) -> ConstantVector:
        if not ty.is_vector:
            raise self.error(f"vector constant for non-vector type {ty}")
        self.expect("<")
        elems = []
        while True:
            ety = self.parse_type()
            elem = self.parse_operand(ety, {}, [])
            elems.append(elem)
            if not self.accept(","):
                break
        self.expect(">")
        return ConstantVector(ty, elems)

    def parse_typed_operand(self, locals_, patches) -> Value:
        ty = self.parse_type()
        return self.parse_operand(ty, locals_, patches)

    def parse_label(self, blocks: Dict[str, BasicBlock], fn: Function) -> BasicBlock:
        self.expect("label")
        kind, value, line = self.next()
        if kind != "localid":
            raise ParseError(f"expected block label, found {value!r}", line)
        return self._get_block(value[1:], blocks, fn)

    def _get_block(self, name: str, blocks: Dict[str, BasicBlock],
                   fn: Function) -> BasicBlock:
        block = blocks.get(name)
        if block is None:
            block = BasicBlock(name, parent=fn)
            # The block was created on demand; pull it back out of the
            # function's ordered list — it is re-appended when its label
            # is actually reached, preserving textual order.
            fn.blocks.remove(block)
            blocks[name] = block
        return block

    # -- top level ----------------------------------------------------------------
    def parse_module(self) -> Module:
        while not self.at(""):
            kind, value, line = self.peek()
            if value == "define":
                self.parse_define()
            elif value == "declare":
                self.parse_declare()
            elif kind == "globalid":
                self.parse_global()
            elif kind == "eof":
                break
            else:
                raise ParseError(f"expected define/declare/global, found {value!r}",
                                 line)
        return self.module

    def parse_global(self) -> None:
        kind, value, line = self.next()
        name = value[1:]
        self.expect("=")
        self.expect("global")
        ty = self.parse_type()
        init = None
        nk, nv, _ = self.peek()
        if nk == "number" or nv in ("true", "false", "undef", "poison", "<"):
            init = self.parse_operand(ty, {}, [])
        self.module.add_global(name, ty, init)

    def _parse_signature(self):
        ret = self.parse_type()
        kind, value, line = self.next()
        if kind != "globalid":
            raise ParseError(f"expected function name, found {value!r}", line)
        name = value[1:]
        self.expect("(")
        param_types: List[Type] = []
        param_names: List[str] = []
        if not self.at(")"):
            while True:
                pty = self.parse_type()
                param_types.append(pty)
                kind, value, _ = self.peek()
                if kind == "localid":
                    self.next()
                    param_names.append(value[1:])
                else:
                    param_names.append(f"arg{len(param_names)}")
                if not self.accept(","):
                    break
        self.expect(")")
        return name, FunctionType(ret, tuple(param_types)), param_names

    def parse_declare(self) -> Function:
        self.expect("declare")
        name, ftype, param_names = self._parse_signature()
        return Function(ftype, name, module=self.module, arg_names=param_names)

    def parse_define(self) -> Function:
        self.expect("define")
        name, ftype, param_names = self._parse_signature()
        fn = Function(ftype, name, module=self.module, arg_names=param_names)
        self.expect("{")

        locals_: Dict[str, Value] = {a.name: a for a in fn.args}
        blocks: Dict[str, BasicBlock] = {}
        patches: List[_Placeholder] = []

        current: Optional[BasicBlock] = None
        while not self.at("}"):
            kind, value, line = self.peek()
            if kind == "word" and self.tokens[self.pos + 1][1] == ":":
                self.next()
                self.next()
                current = self._get_block(value, blocks, fn)
                fn.blocks.append(current)
                continue
            if kind == "localid" and self.tokens[self.pos + 1][1] == ":":
                # labels may be printed as plain words; accept %-prefixed too
                self.next()
                self.next()
                current = self._get_block(value[1:], blocks, fn)
                fn.blocks.append(current)
                continue
            if current is None:
                current = self._get_block("entry", blocks, fn)
                fn.blocks.append(current)
            inst = self.parse_instruction(locals_, blocks, fn, patches)
            current.append(inst)
            if inst.name:
                locals_[inst.name] = inst
        self.expect("}")

        # Resolve forward references.
        for ph in patches:
            target = locals_.get(ph.ph_name)
            if target is None:
                raise self.error(f"undefined value %{ph.ph_name} in @{name}")
            ph.replace_all_uses_with(target)
        # Any block that was referenced but never defined is an error.
        for bname, block in blocks.items():
            if block not in fn.blocks:
                raise self.error(f"undefined label %{bname} in @{name}")
        return fn

    # -- instructions ---------------------------------------------------------------
    _BINOPS = {op.value: op for op in Opcode if op.value in (
        "add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
        "shl", "lshr", "ashr", "and", "or", "xor")}
    _CASTS = {op.value: op for op in (
        Opcode.ZEXT, Opcode.SEXT, Opcode.TRUNC, Opcode.BITCAST,
        Opcode.PTRTOINT, Opcode.INTTOPTR)}

    def parse_instruction(self, locals_, blocks, fn, patches):
        kind, value, line = self.peek()
        dest = ""
        if kind == "localid":
            self.next()
            dest = value[1:]
            self.expect("=")
        kind, op, line = self.next()

        if op in self._BINOPS:
            opcode = self._BINOPS[op]
            nsw = nuw = exact = False
            while self.peek()[1] in ("nsw", "nuw", "exact"):
                flag = self.next()[1]
                nsw |= flag == "nsw"
                nuw |= flag == "nuw"
                exact |= flag == "exact"
            ty = self.parse_type()
            lhs = self.parse_operand(ty, locals_, patches)
            self.expect(",")
            rhs = self.parse_operand(ty, locals_, patches)
            return BinaryInst(opcode, lhs, rhs, dest, nsw=nsw, nuw=nuw,
                              exact=exact)

        if op == "icmp":
            pred = IcmpPred(self.next()[1])
            ty = self.parse_type()
            lhs = self.parse_operand(ty, locals_, patches)
            self.expect(",")
            rhs = self.parse_operand(ty, locals_, patches)
            return IcmpInst(pred, lhs, rhs, dest)

        if op == "select":
            cond = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            tv = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            fv = self.parse_typed_operand(locals_, patches)
            return SelectInst(cond, tv, fv, dest)

        if op == "freeze":
            val = self.parse_typed_operand(locals_, patches)
            return FreezeInst(val, dest)

        if op in self._CASTS:
            val = self.parse_typed_operand(locals_, patches)
            self.expect("to")
            dest_ty = self.parse_type()
            return CastInst(self._CASTS[op], val, dest_ty, dest)

        if op == "getelementptr":
            inbounds = self.accept("inbounds")
            self.parse_type()  # pointee type (redundant, like LLVM's)
            self.expect(",")
            ptr = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            idx = self.parse_typed_operand(locals_, patches)
            return GepInst(ptr, idx, dest, inbounds=inbounds)

        if op == "alloca":
            ty = self.parse_type()
            return AllocaInst(ty, dest)

        if op == "load":
            self.parse_type()  # result type (redundant)
            self.expect(",")
            ptr = self.parse_typed_operand(locals_, patches)
            return LoadInst(ptr, dest)

        if op == "store":
            val = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            ptr = self.parse_typed_operand(locals_, patches)
            return StoreInst(val, ptr)

        if op == "extractelement":
            vec = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            idx = self.parse_typed_operand(locals_, patches)
            return ExtractElementInst(vec, idx, dest)

        if op == "insertelement":
            vec = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            elem = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            idx = self.parse_typed_operand(locals_, patches)
            return InsertElementInst(vec, elem, idx, dest)

        if op == "phi":
            ty = self.parse_type()
            phi = PhiInst(ty, dest)
            while True:
                self.expect("[")
                val = self.parse_operand(ty, locals_, patches)
                self.expect(",")
                kind, bname, bline = self.next()
                if kind != "localid":
                    raise ParseError(f"expected block label, found {bname!r}",
                                     bline)
                block = self._get_block(bname[1:], blocks, fn)
                self.expect("]")
                phi.add_incoming(val, block)
                if not self.accept(","):
                    break
            return phi

        if op == "call":
            self.parse_type()  # return type (redundant with callee)
            kind, cname, cline = self.next()
            if kind != "globalid":
                raise ParseError(f"expected callee, found {cname!r}", cline)
            callee = self.module.get_function(cname[1:])
            if callee is None:
                raise ParseError(f"unknown function @{cname[1:]}", cline)
            self.expect("(")
            args = []
            if not self.at(")"):
                while True:
                    args.append(self.parse_typed_operand(locals_, patches))
                    if not self.accept(","):
                        break
            self.expect(")")
            return CallInst(callee, args, dest)

        if op == "br":
            if self.at("label"):
                target = self.parse_label(blocks, fn)
                return BranchInst(target=target)
            cond = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            tb = self.parse_label(blocks, fn)
            self.expect(",")
            fb = self.parse_label(blocks, fn)
            return BranchInst(cond=cond, true_block=tb, false_block=fb)

        if op == "switch":
            val = self.parse_typed_operand(locals_, patches)
            self.expect(",")
            default = self.parse_label(blocks, fn)
            self.expect("[")
            sw = SwitchInst(val, default)
            while not self.at("]"):
                cty = self.parse_type()
                c = self.parse_operand(cty, locals_, patches)
                self.expect(",")
                block = self.parse_label(blocks, fn)
                if not isinstance(c, ConstantInt):
                    raise self.error("switch case must be an integer constant")
                sw.add_case(c, block)
            self.expect("]")
            return sw

        if op == "ret":
            if self.accept("void"):
                return ReturnInst()
            val = self.parse_typed_operand(locals_, patches)
            return ReturnInst(val)

        if op == "unreachable":
            return UnreachableInst()

        raise ParseError(f"unknown instruction {op!r}", line)


def parse_module(text: str) -> Module:
    return Parser(text).parse_module()


def parse_function(text: str, module: Optional[Module] = None) -> Function:
    """Parse a single function definition (plus any preceding declarations)
    and return the *last defined* function."""
    parser = Parser(text, module)
    mod = parser.parse_module()
    defs = mod.definitions()
    if not defs:
        raise ValueError("no function definition found")
    return defs[-1]
