"""Type system for the LLVM-like IR.

The paper (Figure 4) uses arbitrary-bitwidth integers ``isz``, pointers
``ty*``, and fixed-length vectors ``<sz x ty>``.  We add ``void`` and
``label`` as structural types for terminators and blocks, and a function
type used by declarations.

Types are immutable and interned: constructing ``IntType(32)`` twice
returns the same object, so identity comparison is safe and cheap.
"""

from __future__ import annotations

from typing import Dict, Tuple


class Type:
    """Base class for all IR types."""

    _interned: Dict[Tuple, "Type"] = {}

    def __repr__(self) -> str:
        return str(self)

    # -- classification helpers ------------------------------------------
    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_bool(self) -> bool:
        return isinstance(self, IntType) and self.bits == 1

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_vector(self) -> bool:
        return isinstance(self, VectorType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_label(self) -> bool:
        return isinstance(self, LabelType)

    @property
    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    @property
    def is_first_class(self) -> bool:
        """First-class types can be produced by instructions and held in
        registers."""
        return self.is_int or self.is_pointer or self.is_vector

    def bitwidth(self) -> int:
        """Total width of the low-level bit representation (Figure 5's
        ``bitwidth(ty)``)."""
        raise NotImplementedError(f"{self} has no bit representation")

    # -- element access for scalar-or-vector polymorphism ----------------
    @property
    def scalar(self) -> "Type":
        """The element type for vectors, the type itself for scalars."""
        return self


def _intern(cls, key: Tuple, build):
    cached = Type._interned.get((cls, *key))
    if cached is None:
        cached = build()
        Type._interned[(cls, *key)] = cached
    return cached


class IntType(Type):
    """An arbitrary-bitwidth integer type ``iN`` with ``N >= 1``."""

    __slots__ = ("bits",)

    def __new__(cls, bits: int) -> "IntType":
        if bits < 1:
            raise ValueError(f"integer bitwidth must be >= 1, got {bits}")

        def build():
            obj = object.__new__(cls)
            obj.bits = bits
            return obj

        return _intern(cls, (bits,), build)

    def __str__(self) -> str:
        return f"i{self.bits}"

    def bitwidth(self) -> int:
        return self.bits

    @property
    def num_values(self) -> int:
        return 1 << self.bits

    @property
    def signed_min(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def signed_max(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def unsigned_max(self) -> int:
        return (1 << self.bits) - 1


class PointerType(Type):
    """A typed pointer ``ty*``.  Addresses are 32 bits wide, per the
    simplification adopted in Figure 5 of the paper."""

    ADDRESS_BITS = 32

    __slots__ = ("pointee",)

    def __new__(cls, pointee: Type) -> "PointerType":
        def build():
            obj = object.__new__(cls)
            obj.pointee = pointee
            return obj

        return _intern(cls, (id(pointee),), build)

    def __str__(self) -> str:
        return f"{self.pointee}*"

    def bitwidth(self) -> int:
        return self.ADDRESS_BITS


class VectorType(Type):
    """A fixed-length vector ``<count x elem>`` of scalar elements."""

    __slots__ = ("count", "elem")

    def __new__(cls, count: int, elem: Type) -> "VectorType":
        if count < 1:
            raise ValueError(f"vector length must be >= 1, got {count}")
        if not (elem.is_int or elem.is_pointer):
            raise ValueError(f"invalid vector element type: {elem}")

        def build():
            obj = object.__new__(cls)
            obj.count = count
            obj.elem = elem
            return obj

        return _intern(cls, (count, id(elem)), build)

    def __str__(self) -> str:
        return f"<{self.count} x {self.elem}>"

    def bitwidth(self) -> int:
        return self.count * self.elem.bitwidth()

    @property
    def scalar(self) -> Type:
        return self.elem


class VoidType(Type):
    __slots__ = ()

    def __new__(cls) -> "VoidType":
        return _intern(cls, (), lambda: object.__new__(cls))

    def __str__(self) -> str:
        return "void"


class LabelType(Type):
    __slots__ = ()

    def __new__(cls) -> "LabelType":
        return _intern(cls, (), lambda: object.__new__(cls))

    def __str__(self) -> str:
        return "label"


class FunctionType(Type):
    """A function signature: return type plus parameter types."""

    __slots__ = ("ret", "params")

    def __new__(cls, ret: Type, params: Tuple[Type, ...]) -> "FunctionType":
        params = tuple(params)

        def build():
            obj = object.__new__(cls)
            obj.ret = ret
            obj.params = params
            return obj

        return _intern(cls, (id(ret), tuple(id(p) for p in params)), build)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.ret} ({params})"


# Commonly used singletons.
VOID = VoidType()
LABEL = LabelType()
I1 = IntType(1)
I2 = IntType(2)
I4 = IntType(4)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)


def int_type(bits: int) -> IntType:
    """Convenience constructor mirroring ``IntType`` for API symmetry."""
    return IntType(bits)


def same_shape(a: Type, b: Type) -> bool:
    """True when two types are both scalars or vectors of equal length
    (used for element-wise instruction type checks like icmp/select)."""
    if a.is_vector != b.is_vector:
        return False
    if a.is_vector:
        return a.count == b.count
    return True
