"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import BranchInst, Instruction, PhiInst, SwitchInst
from .types import LABEL
from .values import Value


class BasicBlock(Value):
    """A labeled sequence of instructions.

    Blocks are values of ``label`` type so that they can be printed
    uniformly, but they never appear as instruction operands (phi nodes
    and terminators track blocks out-of-band).
    """

    __slots__ = ("instructions", "parent")

    def __init__(self, name: str = "", parent=None):
        super().__init__(LABEL, name)
        self.instructions: List[Instruction] = []
        self.parent = parent
        if parent is not None:
            parent.blocks.append(self)

    # -- queries -----------------------------------------------------------
    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def phis(self) -> List[PhiInst]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiInst):
                result.append(inst)
            else:
                break
        return result

    def first_non_phi(self) -> Optional[Instruction]:
        for inst in self.instructions:
            if not isinstance(inst, PhiInst):
                return inst
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        if isinstance(term, (BranchInst, SwitchInst)):
            return term.successors()
        return []

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    # -- mutation ------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(
                f"block %{self.name} already has a terminator; "
                f"cannot append {inst.opcode.value}"
            )
        self.instructions.append(inst)
        inst.parent = self
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> None:
        idx = self.instructions.index(anchor)
        self.instructions.insert(idx, inst)
        inst.parent = self

    def insert_front(self, inst: Instruction) -> None:
        """Insert after any leading phi nodes."""
        idx = len(self.phis())
        self.instructions.insert(idx, inst)
        inst.parent = self

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    def erase(self, inst: Instruction) -> None:
        """Remove and drop all operand uses (full deletion)."""
        self.remove(inst)
        inst.drop_all_operands()

    def ref(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"
