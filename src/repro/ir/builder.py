"""IRBuilder: convenience API for constructing IR programmatically.

Mirrors LLVM's ``IRBuilder``: it tracks an insertion point (a block) and
offers one method per instruction.  All examples, the MiniC frontend, and
most tests construct IR through this class.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    IcmpPred,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .types import IntType, Type
from .values import ConstantInt, PoisonValue, UndefValue, Value


class IRBuilder:
    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        self._anchor: Optional[Instruction] = None

    # -- position control -----------------------------------------------------
    def set_insert_point(self, block: BasicBlock,
                         before: Optional[Instruction] = None) -> None:
        self.block = block
        self._anchor = before

    def insert(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise ValueError("no insertion point set")
        if self._anchor is not None:
            self.block.insert_before(self._anchor, inst)
        else:
            self.block.append(inst)
        return inst

    # -- constants --------------------------------------------------------------
    def const(self, bits: int, value: int) -> ConstantInt:
        return ConstantInt(IntType(bits), value)

    def true(self) -> ConstantInt:
        return self.const(1, 1)

    def false(self) -> ConstantInt:
        return self.const(1, 0)

    def undef(self, ty: Type) -> UndefValue:
        return UndefValue(ty)

    def poison(self, ty: Type) -> PoisonValue:
        return PoisonValue(ty)

    # -- binary arithmetic --------------------------------------------------------
    def _binop(self, opcode: Opcode, lhs: Value, rhs: Value, name: str,
               nsw: bool = False, nuw: bool = False,
               exact: bool = False) -> BinaryInst:
        inst = BinaryInst(opcode, lhs, rhs, name, nsw=nsw, nuw=nuw, exact=exact)
        self.insert(inst)
        return inst

    def add(self, lhs, rhs, name="", nsw=False, nuw=False):
        return self._binop(Opcode.ADD, lhs, rhs, name, nsw=nsw, nuw=nuw)

    def sub(self, lhs, rhs, name="", nsw=False, nuw=False):
        return self._binop(Opcode.SUB, lhs, rhs, name, nsw=nsw, nuw=nuw)

    def mul(self, lhs, rhs, name="", nsw=False, nuw=False):
        return self._binop(Opcode.MUL, lhs, rhs, name, nsw=nsw, nuw=nuw)

    def udiv(self, lhs, rhs, name="", exact=False):
        return self._binop(Opcode.UDIV, lhs, rhs, name, exact=exact)

    def sdiv(self, lhs, rhs, name="", exact=False):
        return self._binop(Opcode.SDIV, lhs, rhs, name, exact=exact)

    def urem(self, lhs, rhs, name=""):
        return self._binop(Opcode.UREM, lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self._binop(Opcode.SREM, lhs, rhs, name)

    def shl(self, lhs, rhs, name="", nsw=False, nuw=False):
        return self._binop(Opcode.SHL, lhs, rhs, name, nsw=nsw, nuw=nuw)

    def lshr(self, lhs, rhs, name="", exact=False):
        return self._binop(Opcode.LSHR, lhs, rhs, name, exact=exact)

    def ashr(self, lhs, rhs, name="", exact=False):
        return self._binop(Opcode.ASHR, lhs, rhs, name, exact=exact)

    def and_(self, lhs, rhs, name=""):
        return self._binop(Opcode.AND, lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self._binop(Opcode.OR, lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self._binop(Opcode.XOR, lhs, rhs, name)

    def neg(self, value, name=""):
        return self.sub(self.const(value.type.bits, 0), value, name)

    def not_(self, value, name=""):
        all_ones = self.const(value.type.bits, value.type.unsigned_max)
        return self.xor(value, all_ones, name)

    # -- comparisons / selection ---------------------------------------------------
    def icmp(self, pred: IcmpPred, lhs, rhs, name="") -> IcmpInst:
        inst = IcmpInst(pred, lhs, rhs, name)
        self.insert(inst)
        return inst

    def icmp_eq(self, lhs, rhs, name=""):
        return self.icmp(IcmpPred.EQ, lhs, rhs, name)

    def icmp_ne(self, lhs, rhs, name=""):
        return self.icmp(IcmpPred.NE, lhs, rhs, name)

    def icmp_slt(self, lhs, rhs, name=""):
        return self.icmp(IcmpPred.SLT, lhs, rhs, name)

    def icmp_sle(self, lhs, rhs, name=""):
        return self.icmp(IcmpPred.SLE, lhs, rhs, name)

    def icmp_sgt(self, lhs, rhs, name=""):
        return self.icmp(IcmpPred.SGT, lhs, rhs, name)

    def icmp_ult(self, lhs, rhs, name=""):
        return self.icmp(IcmpPred.ULT, lhs, rhs, name)

    def select(self, cond, true_val, false_val, name="") -> SelectInst:
        inst = SelectInst(cond, true_val, false_val, name)
        self.insert(inst)
        return inst

    def freeze(self, value, name="") -> FreezeInst:
        inst = FreezeInst(value, name)
        self.insert(inst)
        return inst

    # -- casts -------------------------------------------------------------------
    def zext(self, value, dest: Type, name="") -> CastInst:
        return self.insert(CastInst(Opcode.ZEXT, value, dest, name))

    def sext(self, value, dest: Type, name="") -> CastInst:
        return self.insert(CastInst(Opcode.SEXT, value, dest, name))

    def trunc(self, value, dest: Type, name="") -> CastInst:
        return self.insert(CastInst(Opcode.TRUNC, value, dest, name))

    def bitcast(self, value, dest: Type, name="") -> CastInst:
        return self.insert(CastInst(Opcode.BITCAST, value, dest, name))

    def ptrtoint(self, value, dest: Type, name="") -> CastInst:
        return self.insert(CastInst(Opcode.PTRTOINT, value, dest, name))

    def inttoptr(self, value, dest: Type, name="") -> CastInst:
        return self.insert(CastInst(Opcode.INTTOPTR, value, dest, name))

    # -- memory -------------------------------------------------------------------
    def alloca(self, ty: Type, name="") -> AllocaInst:
        return self.insert(AllocaInst(ty, name))

    def load(self, pointer, name="") -> LoadInst:
        return self.insert(LoadInst(pointer, name))

    def store(self, value, pointer) -> StoreInst:
        return self.insert(StoreInst(value, pointer))

    def gep(self, pointer, index, name="", inbounds=False) -> GepInst:
        return self.insert(GepInst(pointer, index, name, inbounds=inbounds))

    # -- vectors ---------------------------------------------------------------------
    def extractelement(self, vector, index, name="") -> ExtractElementInst:
        return self.insert(ExtractElementInst(vector, index, name))

    def insertelement(self, vector, element, index, name="") -> InsertElementInst:
        return self.insert(InsertElementInst(vector, element, index, name))

    # -- phi / control flow --------------------------------------------------------
    def phi(self, ty: Type, name="") -> PhiInst:
        return self.insert(PhiInst(ty, name))

    def call(self, callee: Function, args: Sequence[Value], name="") -> CallInst:
        return self.insert(CallInst(callee, args, name))

    def br(self, target: BasicBlock) -> BranchInst:
        return self.insert(BranchInst(target=target))

    def cond_br(self, cond, true_block, false_block) -> BranchInst:
        return self.insert(
            BranchInst(cond=cond, true_block=true_block, false_block=false_block)
        )

    def switch(self, value, default) -> SwitchInst:
        return self.insert(SwitchInst(value, default))

    def ret(self, value: Optional[Value] = None) -> ReturnInst:
        return self.insert(ReturnInst(value))

    def unreachable(self) -> UnreachableInst:
        return self.insert(UnreachableInst())
