"""Structured IR locations shared by the verifier and the lint engine.

An :class:`IRLocation` pins a diagnostic to (function, block label,
instruction index) instead of a free-form string, so every consumer —
verifier errors, lint diagnostics, SARIF output — renders the same
uniformly clickable ``@fn:%block:#index`` form and tools can navigate
back to the instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class IRLocation:
    """A position inside a function: block label and instruction index.

    ``index`` is the 0-based position of the instruction within its
    block; ``ref`` is the SSA name (``%v``) when the instruction
    produces a value, for human-facing rendering.
    """

    function: str
    block: str = ""
    index: Optional[int] = None
    ref: str = ""

    @staticmethod
    def of(inst, function: Optional[str] = None) -> "IRLocation":
        """Location of an instruction that is attached to a block."""
        block = getattr(inst, "parent", None)
        fn = getattr(block, "parent", None) if block is not None else None
        index: Optional[int] = None
        if block is not None:
            for i, other in enumerate(block.instructions):
                if other is inst:
                    index = i
                    break
        ref = ""
        if getattr(inst, "type", None) is not None and not inst.type.is_void:
            ref = inst.ref()
        return IRLocation(
            function=function or (fn.name if fn is not None else ""),
            block=block.name if block is not None else "",
            index=index,
            ref=ref,
        )

    def __str__(self) -> str:
        out = f"@{self.function}"
        if self.block:
            out += f":%{self.block}"
        if self.index is not None:
            out += f":#{self.index}"
        return out

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "ref": self.ref,
        }
