"""Textual printer for the IR, in an LLVM-flavored syntax.

The format round-trips through :mod:`repro.ir.parser`.  Example::

    define i32 @add(i32 %a, i32 %b) {
    entry:
      %sum = add nsw i32 %a, %b
      ret i32 %sum
    }
"""

from __future__ import annotations

from typing import List

from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from .module import Module
from .values import Value


def _op(value: Value) -> str:
    """Operand as ``type ref``."""
    return f"{value.type} {value.ref()}"


def print_instruction(inst: Instruction) -> str:
    dest = f"{inst.ref()} = " if not inst.type.is_void else ""

    if isinstance(inst, BinaryInst):
        return (
            f"{dest}{inst.opcode.value}{inst.flags_str()} {inst.type} "
            f"{inst.lhs.ref()}, {inst.rhs.ref()}"
        )
    if isinstance(inst, IcmpInst):
        return (
            f"{dest}icmp {inst.pred.value} {inst.lhs.type} "
            f"{inst.lhs.ref()}, {inst.rhs.ref()}"
        )
    if isinstance(inst, SelectInst):
        return (
            f"{dest}select {_op(inst.cond)}, {_op(inst.true_value)}, "
            f"{_op(inst.false_value)}"
        )
    if isinstance(inst, FreezeInst):
        return f"{dest}freeze {_op(inst.value)}"
    if isinstance(inst, CastInst):
        return f"{dest}{inst.opcode.value} {_op(inst.value)} to {inst.type}"
    if isinstance(inst, GepInst):
        flags = " inbounds" if inst.inbounds else ""
        return (
            f"{dest}getelementptr{flags} {inst.pointer.type.pointee}, "
            f"{_op(inst.pointer)}, {_op(inst.index)}"
        )
    if isinstance(inst, AllocaInst):
        return f"{dest}alloca {inst.allocated_type}"
    if isinstance(inst, LoadInst):
        return f"{dest}load {inst.type}, {_op(inst.pointer)}"
    if isinstance(inst, StoreInst):
        return f"store {_op(inst.value)}, {_op(inst.pointer)}"
    if isinstance(inst, ExtractElementInst):
        return f"{dest}extractelement {_op(inst.vector)}, {_op(inst.index)}"
    if isinstance(inst, InsertElementInst):
        return (
            f"{dest}insertelement {_op(inst.vector)}, {_op(inst.element)}, "
            f"{_op(inst.index)}"
        )
    if isinstance(inst, PhiInst):
        incoming = ", ".join(
            f"[ {v.ref()}, %{b.name} ]" for v, b in inst.incoming
        )
        return f"{dest}phi {inst.type} {incoming}"
    if isinstance(inst, CallInst):
        args = ", ".join(_op(a) for a in inst.args)
        return f"{dest}call {inst.type} @{inst.callee.name}({args})"
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return (
                f"br i1 {inst.cond.ref()}, label %{inst.true_block.name}, "
                f"label %{inst.false_block.name}"
            )
        return f"br label %{inst.targets[0].name}"
    if isinstance(inst, SwitchInst):
        cases = " ".join(
            f"{c.type} {c.ref()}, label %{b.name}" for c, b in inst.cases
        )
        return (
            f"switch {_op(inst.value)}, label %{inst.default.name} [ {cases} ]"
        )
    if isinstance(inst, ReturnInst):
        if inst.value is None:
            return "ret void"
        return f"ret {_op(inst.value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    raise NotImplementedError(f"cannot print {inst.opcode}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    header = f"{fn.return_type} @{fn.name}({params})"
    if fn.is_declaration:
        return f"declare {header}"
    body = "\n".join(print_block(b) for b in fn.blocks)
    return f"define {header} {{\n{body}\n}}"


def print_module(module: Module) -> str:
    parts: List[str] = []
    for g in module.globals.values():
        init = f" {g.initializer.ref()}" if g.initializer is not None else ""
        parts.append(f"@{g.name} = global {g.value_type}{init}")
    for fn in module.functions.values():
        parts.append(print_function(fn))
    return "\n\n".join(parts) + "\n"
