"""Functions: argument lists plus a CFG of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .basicblock import BasicBlock
from .instructions import Instruction
from .types import FunctionType, Type
from .values import Argument, Value


class Function(Value):
    """A function definition (with blocks) or declaration (without).

    Functions are values (their address), which lets ``call`` reference
    them uniformly.
    """

    __slots__ = ("function_type", "args", "blocks", "module")

    def __init__(self, function_type: FunctionType, name: str, module=None,
                 arg_names: Optional[List[str]] = None):
        super().__init__(function_type, name)
        self.function_type = function_type
        names = arg_names or [f"arg{i}" for i in range(len(function_type.params))]
        if len(names) != len(function_type.params):
            raise ValueError("argument name count mismatch")
        self.args: List[Argument] = [
            Argument(ty, nm, parent=self, index=i)
            for i, (ty, nm) in enumerate(zip(function_type.params, names))
        ]
        self.blocks: List[BasicBlock] = []
        self.module = module
        if module is not None:
            module.add_function(self)

    # -- queries -------------------------------------------------------------
    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def return_type(self) -> Type:
        return self.function_type.ret

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"@{self.name} is a declaration; no entry block")
        return self.blocks[0]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(b) for b in self.blocks)

    def block_by_name(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    def arg_by_name(self, name: str) -> Optional[Argument]:
        for arg in self.args:
            if arg.name == name:
                return arg
        return None

    # -- mutation --------------------------------------------------------------
    def add_block(self, name: str = "") -> BasicBlock:
        return BasicBlock(name or f"bb{len(self.blocks)}", parent=self)

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def rename_values(self) -> None:
        """Give every unnamed instruction/block a unique sequential name,
        keeping existing names unique by suffixing duplicates."""
        taken: Dict[str, int] = {}

        def fresh(base: str) -> str:
            if base and base not in taken:
                taken[base] = 0
                return base
            root = base or "t"
            n = taken.get(root, 0)
            while True:
                n += 1
                candidate = f"{root}{n}" if base else f"t{n}"
                if candidate not in taken:
                    taken[root] = n
                    taken[candidate] = 0
                    return candidate

        for arg in self.args:
            arg.name = fresh(arg.name)
        for block in self.blocks:
            block.name = fresh(block.name)
        for inst in self.instructions():
            if not inst.type.is_void:
                inst.name = fresh(inst.name)

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name}>"
