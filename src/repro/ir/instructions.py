"""Instruction classes for the LLVM-like IR.

Covers the Figure 4 core of the paper — binary arithmetic with
``nsw``/``nuw``/``exact`` attributes, conversions, ``icmp``, ``select``,
``phi``, ``freeze``, ``getelementptr``, ``load``/``store``,
``extractelement``/``insertelement``, branches — plus the small set of
extras a real pipeline needs (``alloca``, ``call``, ``switch``,
``unreachable``, ``ret``).

Instructions are :class:`~repro.ir.values.User` values.  Each lives in a
:class:`~repro.ir.basicblock.BasicBlock`; list management (insertion,
removal) is owned by the block.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from .types import (
    LABEL,
    VOID,
    IntType,
    PointerType,
    Type,
    VectorType,
    same_shape,
)
from .values import Constant, ConstantInt, User, Value


class Opcode(enum.Enum):
    # binary integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    SDIV = "sdiv"
    UREM = "urem"
    SREM = "srem"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    # comparisons / selection
    ICMP = "icmp"
    SELECT = "select"
    # the paper's new instruction
    FREEZE = "freeze"
    # conversions
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    BITCAST = "bitcast"
    PTRTOINT = "ptrtoint"
    INTTOPTR = "inttoptr"
    # memory
    ALLOCA = "alloca"
    LOAD = "load"
    STORE = "store"
    GEP = "getelementptr"
    # vectors
    EXTRACTELEMENT = "extractelement"
    INSERTELEMENT = "insertelement"
    # ssa / control flow
    PHI = "phi"
    CALL = "call"
    BR = "br"
    SWITCH = "switch"
    RET = "ret"
    UNREACHABLE = "unreachable"


BINARY_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.UDIV,
        Opcode.SDIV,
        Opcode.UREM,
        Opcode.SREM,
        Opcode.SHL,
        Opcode.LSHR,
        Opcode.ASHR,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
    }
)

#: Opcodes where the nsw / nuw overflow attributes are meaningful.
OVERFLOW_OPCODES = frozenset({Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.SHL})
#: Opcodes where the ``exact`` attribute is meaningful.
EXACT_OPCODES = frozenset(
    {Opcode.UDIV, Opcode.SDIV, Opcode.LSHR, Opcode.ASHR}
)
#: Division-like opcodes with immediate UB on a zero divisor.
DIVISION_OPCODES = frozenset(
    {Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM}
)
CAST_OPCODES = frozenset(
    {
        Opcode.ZEXT,
        Opcode.SEXT,
        Opcode.TRUNC,
        Opcode.BITCAST,
        Opcode.PTRTOINT,
        Opcode.INTTOPTR,
    }
)
COMMUTATIVE_OPCODES = frozenset(
    {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR}
)


class IcmpPred(enum.Enum):
    EQ = "eq"
    NE = "ne"
    UGT = "ugt"
    UGE = "uge"
    ULT = "ult"
    ULE = "ule"
    SGT = "sgt"
    SGE = "sge"
    SLT = "slt"
    SLE = "sle"

    @property
    def is_signed(self) -> bool:
        return self in (IcmpPred.SGT, IcmpPred.SGE, IcmpPred.SLT, IcmpPred.SLE)

    @property
    def is_equality(self) -> bool:
        return self in (IcmpPred.EQ, IcmpPred.NE)

    def inverse(self) -> "IcmpPred":
        """The negated predicate: ``icmp p a b == !icmp p.inverse() a b``."""
        return _ICMP_INVERSE[self]

    def swapped(self) -> "IcmpPred":
        """The predicate with operands swapped: ``a p b == b p.swapped() a``."""
        return _ICMP_SWAPPED[self]


_ICMP_INVERSE = {
    IcmpPred.EQ: IcmpPred.NE,
    IcmpPred.NE: IcmpPred.EQ,
    IcmpPred.UGT: IcmpPred.ULE,
    IcmpPred.UGE: IcmpPred.ULT,
    IcmpPred.ULT: IcmpPred.UGE,
    IcmpPred.ULE: IcmpPred.UGT,
    IcmpPred.SGT: IcmpPred.SLE,
    IcmpPred.SGE: IcmpPred.SLT,
    IcmpPred.SLT: IcmpPred.SGE,
    IcmpPred.SLE: IcmpPred.SGT,
}

_ICMP_SWAPPED = {
    IcmpPred.EQ: IcmpPred.EQ,
    IcmpPred.NE: IcmpPred.NE,
    IcmpPred.UGT: IcmpPred.ULT,
    IcmpPred.UGE: IcmpPred.ULE,
    IcmpPred.ULT: IcmpPred.UGT,
    IcmpPred.ULE: IcmpPred.UGE,
    IcmpPred.SGT: IcmpPred.SLT,
    IcmpPred.SGE: IcmpPred.SLE,
    IcmpPred.SLT: IcmpPred.SGT,
    IcmpPred.SLE: IcmpPred.SGE,
}


class Instruction(User):
    """Base class for all instructions."""

    __slots__ = ("opcode", "parent")

    def __init__(self, opcode: Opcode, type: Type,
                 operands: Sequence[Value], name: str = ""):
        super().__init__(type, operands, name)
        self.opcode = opcode
        self.parent = None  # set by BasicBlock

    # -- structural queries -----------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in (
            Opcode.BR,
            Opcode.SWITCH,
            Opcode.RET,
            Opcode.UNREACHABLE,
        )

    @property
    def is_binary(self) -> bool:
        return self.opcode in BINARY_OPCODES

    @property
    def is_cast(self) -> bool:
        return self.opcode in CAST_OPCODES

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPCODES

    @property
    def may_write_memory(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.CALL)

    @property
    def may_read_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.CALL)

    @property
    def may_have_side_effects(self) -> bool:
        """Conservative: may this instruction observably affect execution
        other than through its result (incl. immediate UB)?"""
        if self.opcode in (Opcode.STORE, Opcode.CALL, Opcode.LOAD):
            return True
        if self.opcode in DIVISION_OPCODES:
            return True  # divide-by-zero is immediate UB
        if self.opcode is Opcode.ALLOCA:
            return True
        return self.is_terminator

    @property
    def is_speculatable(self) -> bool:
        """Can this instruction be executed speculatively (hoisted past
        control flow) without introducing immediate UB?

        Deferred UB (poison/undef results) is precisely what makes most
        arithmetic speculatable — Section 2.2 of the paper.
        """
        if self.opcode in DIVISION_OPCODES:
            return False
        if self.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.CALL,
                           Opcode.ALLOCA, Opcode.PHI):
            return False
        return not self.is_terminator

    # -- block list management ---------------------------------------------
    def erase_from_parent(self) -> None:
        if self.parent is None:
            raise ValueError("instruction has no parent block")
        self.parent.remove(self)

    def move_before(self, other: "Instruction") -> None:
        self.parent.remove(self)
        other.parent.insert_before(other, self)

    def move_to_end(self, block) -> None:
        self.parent.remove(self)
        block.append(self)

    # -- printing helpers ---------------------------------------------------
    def operand_ref(self, i: int) -> str:
        return self.operand(i).ref()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.opcode.value} {self.ref()}>"


class BinaryInst(Instruction):
    """Integer binary operation with optional poison-generating flags."""

    __slots__ = ("nsw", "nuw", "exact")

    def __init__(self, opcode: Opcode, lhs: Value, rhs: Value,
                 name: str = "", nsw: bool = False, nuw: bool = False,
                 exact: bool = False):
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"not a binary opcode: {opcode}")
        if nsw or nuw:
            if opcode not in OVERFLOW_OPCODES:
                raise ValueError(f"nsw/nuw invalid on {opcode.value}")
        if exact and opcode not in EXACT_OPCODES:
            raise ValueError(f"exact invalid on {opcode.value}")
        super().__init__(opcode, lhs.type, [lhs, rhs], name)
        self.nsw = nsw
        self.nuw = nuw
        self.exact = exact

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def flags_str(self) -> str:
        parts = []
        if self.nuw:
            parts.append("nuw")
        if self.nsw:
            parts.append("nsw")
        if self.exact:
            parts.append("exact")
        return (" " + " ".join(parts)) if parts else ""

    def drop_poison_flags(self) -> None:
        """Remove nsw/nuw/exact — what Reassociation must do (Section 10.2)."""
        self.nsw = self.nuw = self.exact = False


class IcmpInst(Instruction):
    __slots__ = ("pred",)

    def __init__(self, pred: IcmpPred, lhs: Value, rhs: Value, name: str = ""):
        if not same_shape(lhs.type, rhs.type):
            raise ValueError(f"icmp operand shape mismatch: {lhs.type} vs {rhs.type}")
        if lhs.type.is_vector:
            result = VectorType(lhs.type.count, IntType(1))
        else:
            result = IntType(1)
        super().__init__(Opcode.ICMP, result, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


class SelectInst(Instruction):
    def __init__(self, cond: Value, true_val: Value, false_val: Value,
                 name: str = ""):
        if true_val.type is not false_val.type:
            raise ValueError(
                f"select arm type mismatch: {true_val.type} vs {false_val.type}"
            )
        if not cond.type.is_bool:
            raise ValueError(f"select condition must be i1, got {cond.type}")
        super().__init__(Opcode.SELECT, true_val.type,
                         [cond, true_val, false_val], name)

    @property
    def cond(self) -> Value:
        return self.operand(0)

    @property
    def true_value(self) -> Value:
        return self.operand(1)

    @property
    def false_value(self) -> Value:
        return self.operand(2)


class FreezeInst(Instruction):
    """The paper's new instruction (Section 4): a nop on non-poison input;
    on poison, a nondeterministic — but *single, shared across all uses* —
    arbitrary value of the type."""

    def __init__(self, value: Value, name: str = ""):
        super().__init__(Opcode.FREEZE, value.type, [value], name)

    @property
    def value(self) -> Value:
        return self.operand(0)


class CastInst(Instruction):
    __slots__ = ("src_type",)

    def __init__(self, opcode: Opcode, value: Value, dest: Type, name: str = ""):
        if opcode not in CAST_OPCODES:
            raise ValueError(f"not a cast opcode: {opcode}")
        _check_cast(opcode, value.type, dest)
        super().__init__(opcode, dest, [value], name)
        self.src_type = value.type

    @property
    def value(self) -> Value:
        return self.operand(0)


def _check_cast(opcode: Opcode, src: Type, dest: Type) -> None:
    def scalar_widths():
        s, d = src.scalar, dest.scalar
        if not (s.is_int and d.is_int):
            raise ValueError(f"{opcode.value} requires integer types")
        if src.is_vector != dest.is_vector:
            raise ValueError(f"{opcode.value} scalar/vector mismatch")
        if src.is_vector and src.count != dest.count:
            raise ValueError(f"{opcode.value} vector length mismatch")
        return s.bits, d.bits

    if opcode in (Opcode.ZEXT, Opcode.SEXT):
        s, d = scalar_widths()
        if d <= s:
            raise ValueError(f"{opcode.value} must widen: i{s} -> i{d}")
    elif opcode is Opcode.TRUNC:
        s, d = scalar_widths()
        if d >= s:
            raise ValueError(f"trunc must narrow: i{s} -> i{d}")
    elif opcode is Opcode.BITCAST:
        if src.bitwidth() != dest.bitwidth():
            raise ValueError(
                f"bitcast width mismatch: {src} ({src.bitwidth()}b) vs "
                f"{dest} ({dest.bitwidth()}b)"
            )
    elif opcode is Opcode.PTRTOINT:
        if not (src.is_pointer and dest.is_int):
            raise ValueError("ptrtoint requires pointer -> integer")
    elif opcode is Opcode.INTTOPTR:
        if not (src.is_int and dest.is_pointer):
            raise ValueError("inttoptr requires integer -> pointer")


class GepInst(Instruction):
    """``getelementptr``: pointer arithmetic.  We implement the flat form
    the paper uses in Figure 3 — base pointer plus one index scaled by the
    element size — with the ``inbounds`` attribute, under which
    out-of-bounds/overflowing arithmetic yields poison."""

    __slots__ = ("inbounds",)

    def __init__(self, pointer: Value, index: Value, name: str = "",
                 inbounds: bool = False):
        if not pointer.type.is_pointer:
            raise ValueError(f"gep base must be a pointer, got {pointer.type}")
        if not index.type.is_int:
            raise ValueError(f"gep index must be an integer, got {index.type}")
        super().__init__(Opcode.GEP, pointer.type, [pointer, index], name)
        self.inbounds = inbounds

    @property
    def pointer(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)

    @property
    def elem_size_bytes(self) -> int:
        pointee = self.pointer.type.pointee  # type: ignore[union-attr]
        return max(1, (pointee.bitwidth() + 7) // 8)


class AllocaInst(Instruction):
    """Stack allocation of one value of ``allocated_type``; yields its
    address.  The fresh memory is uninitialized: loads observe undef bits
    (OLD mode) or poison bits (NEW mode) — the bit-field scenario of
    Section 5.3."""

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: Type, name: str = ""):
        super().__init__(Opcode.ALLOCA, PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type


class LoadInst(Instruction):
    def __init__(self, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer:
            raise ValueError(f"load requires pointer operand, got {pointer.type}")
        super().__init__(Opcode.LOAD, pointer.type.pointee, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operand(0)


class StoreInst(Instruction):
    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer:
            raise ValueError(f"store requires pointer operand, got {pointer.type}")
        if pointer.type.pointee is not value.type:
            raise ValueError(
                f"store type mismatch: {value.type} into {pointer.type}"
            )
        super().__init__(Opcode.STORE, VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def pointer(self) -> Value:
        return self.operand(1)


class ExtractElementInst(Instruction):
    def __init__(self, vector: Value, index: Value, name: str = ""):
        if not vector.type.is_vector:
            raise ValueError(f"extractelement requires a vector, got {vector.type}")
        super().__init__(Opcode.EXTRACTELEMENT, vector.type.elem,
                         [vector, index], name)

    @property
    def vector(self) -> Value:
        return self.operand(0)

    @property
    def index(self) -> Value:
        return self.operand(1)


class InsertElementInst(Instruction):
    def __init__(self, vector: Value, element: Value, index: Value,
                 name: str = ""):
        if not vector.type.is_vector:
            raise ValueError(f"insertelement requires a vector, got {vector.type}")
        if vector.type.elem is not element.type:
            raise ValueError(
                f"insertelement element type mismatch: {element.type} into "
                f"{vector.type}"
            )
        super().__init__(Opcode.INSERTELEMENT, vector.type,
                         [vector, element, index], name)

    @property
    def vector(self) -> Value:
        return self.operand(0)

    @property
    def element(self) -> Value:
        return self.operand(1)

    @property
    def index(self) -> Value:
        return self.operand(2)


class PhiInst(Instruction):
    """SSA phi node.  Incoming blocks are stored separately from the value
    operands (blocks are not SSA values here)."""

    __slots__ = ("incoming_blocks",)

    def __init__(self, type: Type, name: str = ""):
        super().__init__(Opcode.PHI, type, [], name)
        self.incoming_blocks: List = []

    def add_incoming(self, value: Value, block) -> None:
        if value.type is not self.type:
            raise ValueError(
                f"phi incoming type mismatch: {value.type} vs {self.type}"
            )
        self.append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, object]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for_block(self, block) -> Optional[Value]:
        for value, pred in self.incoming:
            if pred is block:
                return value
        return None

    def remove_incoming(self, block) -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.remove_operand(i)
                del self.incoming_blocks[i]
                return
        raise ValueError(f"phi has no incoming edge from {block}")

    def replace_incoming_block(self, old, new) -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is old:
                self.incoming_blocks[i] = new


class CallInst(Instruction):
    """Direct call.  ``callee`` is a Function (possibly a declaration).
    Declared-only callees are treated as opaque, observable side effects
    by the semantics — which is what makes the GVN example of Section 3.3
    (passing poison to ``foo``) distinguishable."""

    __slots__ = ("callee",)

    def __init__(self, callee, args: Sequence[Value], name: str = ""):
        ftype = callee.function_type
        if len(args) != len(ftype.params):
            raise ValueError(
                f"call to @{callee.name}: expected {len(ftype.params)} args, "
                f"got {len(args)}"
            )
        for arg, pty in zip(args, ftype.params):
            if arg.type is not pty:
                raise ValueError(
                    f"call to @{callee.name}: arg type {arg.type} != param {pty}"
                )
        super().__init__(Opcode.CALL, ftype.ret, list(args), name)
        self.callee = callee

    @property
    def args(self) -> Tuple[Value, ...]:
        return self.operands


class BranchInst(Instruction):
    """Conditional or unconditional branch.  Branching on poison is the
    crux of Section 3.3: immediate UB under the NEW semantics, a
    nondeterministic choice under (one reading of) the OLD semantics."""

    __slots__ = ("targets",)

    def __init__(self, *, cond: Optional[Value] = None, true_block=None,
                 false_block=None, target=None):
        if cond is None:
            if target is None:
                raise ValueError("unconditional br needs a target")
            super().__init__(Opcode.BR, VOID, [])
            self.targets = [target]
        else:
            if not cond.type.is_bool:
                raise ValueError(f"br condition must be i1, got {cond.type}")
            if true_block is None or false_block is None:
                raise ValueError("conditional br needs two targets")
            super().__init__(Opcode.BR, VOID, [cond])
            self.targets = [true_block, false_block]

    @property
    def is_conditional(self) -> bool:
        return self.num_operands == 1

    @property
    def cond(self) -> Value:
        if not self.is_conditional:
            raise ValueError("unconditional branch has no condition")
        return self.operand(0)

    @property
    def true_block(self):
        return self.targets[0]

    @property
    def false_block(self):
        return self.targets[1]

    def successors(self) -> List:
        return list(self.targets)

    def replace_successor(self, old, new) -> None:
        for i, t in enumerate(self.targets):
            if t is old:
                self.targets[i] = new


class SwitchInst(Instruction):
    __slots__ = ("default", "cases")

    def __init__(self, value: Value, default):
        if not value.type.is_int:
            raise ValueError(f"switch requires integer operand, got {value.type}")
        super().__init__(Opcode.SWITCH, VOID, [value])
        self.default = default
        self.cases: List[Tuple[ConstantInt, object]] = []

    @property
    def value(self) -> Value:
        return self.operand(0)

    def add_case(self, const: ConstantInt, block) -> None:
        self.cases.append((const, block))

    def successors(self) -> List:
        return [self.default] + [b for _, b in self.cases]

    def replace_successor(self, old, new) -> None:
        if self.default is old:
            self.default = new
        self.cases = [(c, new if b is old else b) for c, b in self.cases]


class ReturnInst(Instruction):
    def __init__(self, value: Optional[Value] = None):
        super().__init__(Opcode.RET, VOID, [] if value is None else [value])

    @property
    def value(self) -> Optional[Value]:
        return self.operand(0) if self.num_operands else None

    def successors(self) -> List:
        return []


class UnreachableInst(Instruction):
    """Executing ``unreachable`` is immediate UB."""

    def __init__(self):
        super().__init__(Opcode.UNREACHABLE, VOID, [])

    def successors(self) -> List:
        return []
