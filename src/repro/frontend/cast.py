"""AST for MiniC.

(Module named ``cast`` — *C AST* — to avoid clashing with the stdlib
``ast``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- types -------------------------------------------------------------------

@dataclass(frozen=True)
class CType:
    """Scalar C type: width in bits plus signedness."""

    width: int
    signed: bool

    @property
    def name(self) -> str:
        base = {8: "char", 16: "short", 32: "int"}[self.width]
        return base if self.signed else f"unsigned {base}"


INT = CType(32, True)
UINT = CType(32, False)
SHORT = CType(16, True)
CHAR = CType(8, True)
BOOL_T = INT  # C comparisons produce int


@dataclass(frozen=True)
class StructType:
    name: str
    #: (field name, declared type, bit width or None for plain fields)
    fields: Tuple[Tuple[str, CType, Optional[int]], ...]


@dataclass(frozen=True)
class ArrayType:
    elem: CType
    count: int


@dataclass(frozen=True)
class PointerType:
    pointee: Union[CType, StructType]


# -- expressions ------------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class NumberExpr(Expr):
    value: int = 0


@dataclass
class NameExpr(Expr):
    name: str = ""


@dataclass
class UnaryExpr(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class AssignExpr(Expr):
    target: Optional[Expr] = None      # NameExpr / IndexExpr / FieldExpr
    value: Optional[Expr] = None
    op: str = "="                      # "=", "+=", ...
    postfix: bool = False              # i++ / i--: yields the old value


@dataclass
class IndexExpr(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class FieldExpr(Expr):
    base: Optional[Expr] = None
    field: str = ""


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class TernaryExpr(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


# -- statements ----------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    type: Union[CType, StructType, ArrayType, None] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then: Optional["BlockStmt"] = None
    otherwise: Optional["BlockStmt"] = None


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: Optional["BlockStmt"] = None
    is_do_while: bool = False


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional["BlockStmt"] = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class BlockStmt(Stmt):
    statements: List[Stmt] = field(default_factory=list)


# -- top level -----------------------------------------------------------------------

@dataclass
class Param:
    type: CType = INT
    name: str = ""


@dataclass
class FunctionDecl:
    name: str = ""
    return_type: Optional[CType] = None   # None = void
    params: List[Param] = field(default_factory=list)
    body: Optional[BlockStmt] = None      # None = extern declaration
    line: int = 0


@dataclass
class GlobalDecl:
    type: Union[CType, StructType, ArrayType, None] = None
    name: str = ""
    init: Optional[int] = None
    line: int = 0


@dataclass
class Program:
    structs: List[StructType] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
