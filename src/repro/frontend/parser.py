"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .cast import (
    ArrayType,
    AssignExpr,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    CHAR,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FieldExpr,
    ForStmt,
    FunctionDecl,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    INT,
    NameExpr,
    NumberExpr,
    Param,
    Program,
    ReturnStmt,
    SHORT,
    StructType,
    TernaryExpr,
    UINT,
    UnaryExpr,
    WhileStmt,
)
from .lexer import CompileError, Token, tokenize

#: binary operator precedence (C-like)
_PRECEDENCE = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.structs: Dict[str, StructType] = {}

    # -- token helpers -----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if tok.text != text:
            raise CompileError(f"expected {text!r}, found {tok.text!r}",
                               tok.line)
        return self.next()

    def error(self, message: str) -> CompileError:
        return CompileError(message, self.peek().line)

    # -- types ------------------------------------------------------------------
    def at_type(self) -> bool:
        t = self.peek().text
        return t in ("int", "char", "short", "unsigned", "void", "struct")

    def parse_scalar_type(self) -> Optional[CType]:
        """Returns None for void."""
        tok = self.next()
        if tok.text == "void":
            return None
        if tok.text == "unsigned":
            if self.peek().text in ("int", "char", "short"):
                base = self.next().text
            else:
                base = "int"
            width = {"int": 32, "char": 8, "short": 16}[base]
            return CType(width, signed=False)
        if tok.text in ("int", "char", "short"):
            width = {"int": 32, "char": 8, "short": 16}[tok.text]
            return CType(width, signed=True)
        raise CompileError(f"expected a type, found {tok.text!r}", tok.line)

    # -- top level ------------------------------------------------------------------
    def parse_program(self) -> Program:
        program = Program()
        while self.peek().kind != "eof":
            if self.at("struct") and self.tokens[self.pos + 2].text == "{":
                program.structs.append(self.parse_struct())
                continue
            if self.accept("extern"):
                program.functions.append(self.parse_function(extern=True))
                continue
            # lookahead: type name ( -> function, else global
            save = self.pos
            is_struct_var = self.at("struct")
            if is_struct_var:
                self.next()
                sname = self.next().text
                struct = self.structs.get(sname)
                if struct is None:
                    raise self.error(f"unknown struct {sname!r}")
                name = self.next().text
                self.expect(";")
                program.globals.append(
                    GlobalDecl(type=struct, name=name,
                               line=self.peek().line)
                )
                continue
            ty = self.parse_scalar_type()
            name_tok = self.next()
            if name_tok.kind != "ident":
                raise CompileError("expected a name", name_tok.line)
            if self.at("("):
                self.pos = save
                program.functions.append(self.parse_function())
            else:
                decl = GlobalDecl(type=ty, name=name_tok.text,
                                  line=name_tok.line)
                if self.accept("["):
                    count = int(self.next().text, 0)
                    self.expect("]")
                    decl.type = ArrayType(ty, count)
                if self.accept("="):
                    sign = -1 if self.accept("-") else 1
                    decl.init = sign * int(self.next().text, 0)
                self.expect(";")
                program.globals.append(decl)
        return program

    def parse_struct(self) -> StructType:
        self.expect("struct")
        name = self.next().text
        self.expect("{")
        fields: List[Tuple[str, CType, Optional[int]]] = []
        while not self.accept("}"):
            fty = self.parse_scalar_type()
            if fty is None:
                raise self.error("void struct field")
            fname = self.next().text
            bits: Optional[int] = None
            if self.accept(":"):
                bits = int(self.next().text, 0)
                if not 0 < bits <= fty.width:
                    raise self.error(f"bad bit-field width {bits}")
            fields.append((fname, fty, bits))
            self.expect(";")
        self.expect(";")
        struct = StructType(name, tuple(fields))
        self.structs[name] = struct
        return struct

    def parse_function(self, extern: bool = False) -> FunctionDecl:
        line = self.peek().line
        ret = self.parse_scalar_type()
        name = self.next().text
        self.expect("(")
        params: List[Param] = []
        if not self.at(")"):
            if self.at("void"):
                self.next()
            else:
                while True:
                    pty = self.parse_scalar_type()
                    if pty is None:
                        raise self.error("void parameter")
                    pname = self.next().text
                    params.append(Param(pty, pname))
                    if not self.accept(","):
                        break
        self.expect(")")
        fn = FunctionDecl(name=name, return_type=ret, params=params,
                          line=line)
        if extern or self.at(";"):
            self.expect(";")
            return fn
        fn.body = self.parse_block()
        return fn

    # -- statements ----------------------------------------------------------------
    def parse_block(self) -> BlockStmt:
        line = self.expect("{").line
        block = BlockStmt(line=line)
        while not self.accept("}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self) -> "Stmt":
        from .cast import Stmt  # noqa: F401 (typing only)

        tok = self.peek()
        if tok.text == "{":
            return self.parse_block()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "do":
            return self.parse_do_while()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "return":
            self.next()
            value = None if self.at(";") else self.parse_expression()
            self.expect(";")
            return ReturnStmt(line=tok.line, value=value)
        if tok.text == "break":
            self.next()
            self.expect(";")
            return BreakStmt(line=tok.line)
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return ContinueStmt(line=tok.line)
        if self.at_type() or tok.text == "struct":
            return self.parse_declaration()
        expr = self.parse_expression()
        self.expect(";")
        return ExprStmt(line=tok.line, expr=expr)

    def parse_declaration(self) -> DeclStmt:
        line = self.peek().line
        if self.accept("struct"):
            sname = self.next().text
            struct = self.structs.get(sname)
            if struct is None:
                raise self.error(f"unknown struct {sname!r}")
            name = self.next().text
            self.expect(";")
            return DeclStmt(line=line, type=struct, name=name)
        ty = self.parse_scalar_type()
        if ty is None:
            raise self.error("cannot declare a void variable")
        name = self.next().text
        decl = DeclStmt(line=line, type=ty, name=name)
        if self.accept("["):
            count = int(self.next().text, 0)
            self.expect("]")
            decl.type = ArrayType(ty, count)
        elif self.accept("="):
            decl.init = self.parse_expression()
        self.expect(";")
        return decl

    def parse_if(self) -> IfStmt:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self._statement_as_block()
        otherwise = None
        if self.accept("else"):
            otherwise = self._statement_as_block()
        return IfStmt(line=line, cond=cond, then=then, otherwise=otherwise)

    def _statement_as_block(self) -> BlockStmt:
        stmt = self.parse_statement()
        if isinstance(stmt, BlockStmt):
            return stmt
        return BlockStmt(line=stmt.line, statements=[stmt])

    def parse_while(self) -> WhileStmt:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self._statement_as_block()
        return WhileStmt(line=line, cond=cond, body=body)

    def parse_do_while(self) -> WhileStmt:
        line = self.expect("do").line
        body = self._statement_as_block()
        self.expect("while")
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return WhileStmt(line=line, cond=cond, body=body, is_do_while=True)

    def parse_for(self) -> ForStmt:
        line = self.expect("for").line
        self.expect("(")
        init: Optional["Stmt"] = None
        if not self.at(";"):
            if self.at_type():
                init = self.parse_declaration()
            else:
                expr = self.parse_expression()
                self.expect(";")
                init = ExprStmt(line=line, expr=expr)
        else:
            self.expect(";")
        cond = None if self.at(";") else self.parse_expression()
        self.expect(";")
        step = None if self.at(")") else self.parse_expression()
        self.expect(")")
        body = self._statement_as_block()
        return ForStmt(line=line, init=init, cond=cond, step=step, body=body)

    # -- expressions ---------------------------------------------------------------
    def parse_expression(self) -> Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> Expr:
        lhs = self.parse_ternary()
        tok = self.peek()
        if tok.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return AssignExpr(line=tok.line, target=lhs, value=value,
                              op=tok.text)
        return lhs

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(0)
        if self.at("?"):
            line = self.next().line
            then = self.parse_expression()
            self.expect(":")
            otherwise = self.parse_ternary()
            return TernaryExpr(line=line, cond=cond, then=then,
                               otherwise=otherwise)
        return cond

    def parse_binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        expr = self.parse_binary(level + 1)
        while self.peek().text in _PRECEDENCE[level]:
            tok = self.next()
            rhs = self.parse_binary(level + 1)
            expr = BinaryExpr(line=tok.line, op=tok.text, lhs=expr, rhs=rhs)
        return expr

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.text in ("-", "~", "!", "+"):
            self.next()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return UnaryExpr(line=tok.line, op=tok.text, operand=operand)
        if tok.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return AssignExpr(
                line=tok.line, target=target,
                value=NumberExpr(line=tok.line, value=1),
                op="+=" if tok.text == "++" else "-=",
            )
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.at("["):
                line = self.next().line
                index = self.parse_expression()
                self.expect("]")
                expr = IndexExpr(line=line, base=expr, index=index)
            elif self.at("."):
                line = self.next().line
                fname = self.next().text
                expr = FieldExpr(line=line, base=expr, field=fname)
            elif self.peek().text in ("++", "--"):
                tok = self.next()
                expr = AssignExpr(
                    line=tok.line, target=expr,
                    value=NumberExpr(line=tok.line, value=1),
                    op="+=" if tok.text == "++" else "-=",
                    postfix=True,
                )
            else:
                return expr

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "number":
            return NumberExpr(line=tok.line, value=int(tok.text, 0))
        if tok.kind == "ident":
            if self.at("("):
                self.next()
                args: List[Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                return CallExpr(line=tok.line, callee=tok.text, args=args)
            return NameExpr(line=tok.line, name=tok.text)
        if tok.text == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise CompileError(f"unexpected token {tok.text!r}", tok.line)


def parse_c(source: str) -> Program:
    return Parser(source).parse_program()
