"""Lexer for MiniC, the small C subset used by the benchmark suite."""

from __future__ import annotations

import re
from typing import List, NamedTuple


class CompileError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class Token(NamedTuple):
    kind: str
    text: str
    line: int


KEYWORDS = {
    "int", "char", "short", "unsigned", "void", "struct",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "extern",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<newline>\n)
  | (?P<number>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\+\+|--|[-+*/%<>=!&|^~?:;,.(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise CompileError(f"unexpected character {source[pos]!r}", line)
        pos = m.end()
        kind = m.lastgroup
        text = m.group()
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws",):
            continue
        if kind == "comment":
            line += text.count("\n")
            continue
        if kind == "ident" and text in KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, line))
    tokens.append(Token("eof", "", line))
    return tokens
