"""MiniC code generation to the LLVM-like IR.

Clang-style lowering: every local lives in an ``alloca`` and mem2reg
promotes the scalars later.  Signed arithmetic gets ``nsw`` (C's signed
overflow is UB); unsigned arithmetic wraps.

Bit-field stores are the paper's Section 5.3: a store must
read-modify-write the storage unit, and under the NEW semantics the
*initial* load of an uninitialized unit is poison, so the loaded word is
frozen before masking.  ``CodegenOptions.freeze_bitfield_stores`` is the
paper's one-line Clang change; turning it off reproduces the unsound
pre-paper lowering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..ir import (
    Function,
    FunctionType,
    IRBuilder,
    IcmpPred,
    IntType,
    Module,
    PointerType,
    VectorType,
)
from ..ir.values import ConstantInt, Value
from .cast import (
    ArrayType,
    AssignExpr,
    BinaryExpr,
    BlockStmt,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    FieldExpr,
    ForStmt,
    FunctionDecl,
    IfStmt,
    IndexExpr,
    NameExpr,
    NumberExpr,
    Program,
    ReturnStmt,
    StructType,
    TernaryExpr,
    UnaryExpr,
    WhileStmt,
)
from .lexer import CompileError
from .parser import parse_c

I32 = IntType(32)
I1 = IntType(1)


@dataclass
class CodegenOptions:
    #: Section 5.3: freeze the loaded storage unit when storing a
    #: bit-field (the paper's one-line Clang change).
    freeze_bitfield_stores: bool = True
    #: emit nsw on signed arithmetic (C UB on signed overflow)
    nsw_signed_arith: bool = True


@dataclass(frozen=True)
class FieldLayout:
    byte_offset: int
    bit_offset: int      # within the storage unit (0 for plain fields)
    bits: int            # field width in bits
    storage_bits: int    # width of the storage unit
    ctype: CType

    @property
    def is_bitfield(self) -> bool:
        return self.bits != self.storage_bits or self.bit_offset != 0


def layout_struct(struct: StructType) -> Tuple[Dict[str, FieldLayout], int]:
    """Pack fields; consecutive bit-fields share a storage unit of the
    declared type's width (a simplified but realistic ABI)."""
    fields: Dict[str, FieldLayout] = {}
    byte = 0
    bit_cursor: Optional[Tuple[int, int, int]] = None  # (byte, used, width)
    for name, ctype, bits in struct.fields:
        if bits is None:
            bit_cursor = None
            size = ctype.width // 8
            byte = (byte + size - 1) // size * size  # align
            fields[name] = FieldLayout(byte, 0, ctype.width, ctype.width,
                                       ctype)
            byte += size
            continue
        unit = ctype.width
        if bit_cursor is not None:
            unit_byte, used, unit_width = bit_cursor
            if unit_width == unit and used + bits <= unit:
                fields[name] = FieldLayout(unit_byte, used, bits, unit,
                                           ctype)
                bit_cursor = (unit_byte, used + bits, unit)
                continue
        size = unit // 8
        byte = (byte + size - 1) // size * size
        fields[name] = FieldLayout(byte, 0, bits, unit, ctype)
        bit_cursor = (byte, bits, unit)
        byte += size
    return fields, max(1, byte)


@dataclass
class TypedValue:
    value: Value
    ctype: CType


class LValue:
    """An addressable location: pointer + (optional) bit-field info."""

    def __init__(self, pointer: Value, ctype: CType,
                 layout: Optional[FieldLayout] = None):
        self.pointer = pointer
        self.ctype = ctype
        self.layout = layout


class FunctionCodegen:
    def __init__(self, unit: "Codegen", decl: FunctionDecl):
        self.unit = unit
        self.decl = decl
        self.options = unit.options
        self.module = unit.module
        self.locals: Dict[str, LValue] = {}
        self.local_types: Dict[str, Union[CType, StructType, ArrayType]] = {}
        self.loop_stack: List[Tuple] = []  # (break block, continue block)

        ret = I32 if decl.return_type else self.module_void()
        params = tuple(IntType(p.type.width) for p in decl.params)
        ret_ty = IntType(decl.return_type.width) if decl.return_type \
            else self.module_void()
        self.fn = Function(
            FunctionType(ret_ty, params), decl.name, module=self.module,
            arg_names=[p.name for p in decl.params],
        )

    @staticmethod
    def module_void():
        from ..ir.types import VOID

        return VOID

    # -- entry ------------------------------------------------------------------
    def run(self) -> Function:
        entry = self.fn.add_block("entry")
        self.b = IRBuilder(entry)
        # clang-style: parameters spill into allocas
        for arg, param in zip(self.fn.args, self.decl.params):
            slot = self.b.alloca(arg.type, name=param.name + ".addr")
            self.b.store(arg, slot)
            self.locals[param.name] = LValue(slot, param.type)
        self.gen_block(self.decl.body)
        current = self.b.block
        if current.terminator is None:
            if self.decl.return_type is None:
                self.b.ret()
            else:
                self.b.ret(ConstantInt(
                    IntType(self.decl.return_type.width), 0))
        self._remove_empty_unterminated_blocks()
        self.fn.rename_values()
        return self.fn

    def _remove_empty_unterminated_blocks(self) -> None:
        # blocks created for dead paths (e.g. after return) stay empty
        for block in list(self.fn.blocks):
            if block.terminator is None:
                if block.instructions or block.predecessors():
                    self.b.set_insert_point(block)
                    self.b.unreachable()
                else:
                    self.fn.remove_block(block)

    # -- statements ----------------------------------------------------------------
    def gen_block(self, block: BlockStmt) -> None:
        for stmt in block.statements:
            self.gen_statement(stmt)

    def gen_statement(self, stmt) -> None:
        if self.b.block.terminator is not None:
            return  # unreachable code after return/break
        if isinstance(stmt, BlockStmt):
            self.gen_block(stmt)
        elif isinstance(stmt, DeclStmt):
            self.gen_decl(stmt)
        elif isinstance(stmt, ExprStmt):
            self.gen_expression(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self.gen_if(stmt)
        elif isinstance(stmt, WhileStmt):
            self.gen_while(stmt)
        elif isinstance(stmt, ForStmt):
            self.gen_for(stmt)
        elif isinstance(stmt, ReturnStmt):
            self.gen_return(stmt)
        elif isinstance(stmt, BreakStmt):
            if not self.loop_stack:
                raise CompileError("break outside a loop", stmt.line)
            self.b.br(self.loop_stack[-1][0])
        elif isinstance(stmt, ContinueStmt):
            if not self.loop_stack:
                raise CompileError("continue outside a loop", stmt.line)
            self.b.br(self.loop_stack[-1][1])
        else:
            raise CompileError(f"cannot generate {type(stmt).__name__}",
                               stmt.line)

    def gen_decl(self, stmt: DeclStmt) -> None:
        name = stmt.name
        if isinstance(stmt.type, CType):
            slot = self.b.alloca(IntType(stmt.type.width), name=name)
            self.locals[name] = LValue(slot, stmt.type)
            self.local_types[name] = stmt.type
            if stmt.init is not None:
                value = self.gen_expression(stmt.init)
                self._store_scalar(self.locals[name], value)
        elif isinstance(stmt.type, ArrayType):
            elem = IntType(stmt.type.elem.width)
            slot = self.b.alloca(VectorType(stmt.type.count, elem),
                                 name=name)
            self.locals[name] = LValue(slot, stmt.type.elem)
            self.local_types[name] = stmt.type
        elif isinstance(stmt.type, StructType):
            _, size = layout_struct(stmt.type)
            slot = self.b.alloca(IntType(size * 8), name=name)
            self.locals[name] = LValue(slot, CType(size * 8, False))
            self.local_types[name] = stmt.type
        else:
            raise CompileError("bad declaration type", stmt.line)

    def gen_if(self, stmt: IfStmt) -> None:
        cond = self.gen_condition(stmt.cond)
        then_block = self.fn.add_block("if.then")
        end_block = self.fn.add_block("if.end")
        else_block = self.fn.add_block("if.else") if stmt.otherwise \
            else end_block
        self.b.cond_br(cond, then_block, else_block)
        self.b.set_insert_point(then_block)
        self.gen_block(stmt.then)
        if self.b.block.terminator is None:
            self.b.br(end_block)
        if stmt.otherwise is not None:
            self.b.set_insert_point(else_block)
            self.gen_block(stmt.otherwise)
            if self.b.block.terminator is None:
                self.b.br(end_block)
        self.b.set_insert_point(end_block)

    def gen_while(self, stmt: WhileStmt) -> None:
        head = self.fn.add_block("while.head")
        body = self.fn.add_block("while.body")
        end = self.fn.add_block("while.end")
        self.b.br(body if stmt.is_do_while else head)
        self.b.set_insert_point(head)
        cond = self.gen_condition(stmt.cond)
        self.b.cond_br(cond, body, end)
        self.b.set_insert_point(body)
        self.loop_stack.append((end, head))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        if self.b.block.terminator is None:
            self.b.br(head)
        self.b.set_insert_point(end)

    def gen_for(self, stmt: ForStmt) -> None:
        if stmt.init is not None:
            self.gen_statement(stmt.init)
        head = self.fn.add_block("for.head")
        body = self.fn.add_block("for.body")
        step = self.fn.add_block("for.step")
        end = self.fn.add_block("for.end")
        self.b.br(head)
        self.b.set_insert_point(head)
        if stmt.cond is not None:
            cond = self.gen_condition(stmt.cond)
            self.b.cond_br(cond, body, end)
        else:
            self.b.br(body)
        self.b.set_insert_point(body)
        self.loop_stack.append((end, step))
        self.gen_block(stmt.body)
        self.loop_stack.pop()
        if self.b.block.terminator is None:
            self.b.br(step)
        self.b.set_insert_point(step)
        if stmt.step is not None:
            self.gen_expression(stmt.step)
        self.b.br(head)
        self.b.set_insert_point(end)

    def gen_return(self, stmt: ReturnStmt) -> None:
        if self.decl.return_type is None:
            self.b.ret()
            return
        value = self.gen_expression(stmt.value) if stmt.value is not None \
            else TypedValue(ConstantInt(I32, 0), CType(32, True))
        converted = self._convert(value, self.decl.return_type)
        self.b.ret(converted)

    # -- expressions ---------------------------------------------------------------
    def gen_condition(self, expr: Expr) -> Value:
        tv = self.gen_expression(expr)
        zero = ConstantInt(IntType(tv.ctype.width), 0)
        return self.b.icmp_ne(tv.value, zero)

    def gen_expression(self, expr: Expr) -> TypedValue:
        if isinstance(expr, NumberExpr):
            # C rule (simplified): a constant that does not fit in int is
            # unsigned — keeps arithmetic on large magic constants free
            # of signed-overflow UB.
            signed = expr.value <= 0x7FFFFFFF
            return TypedValue(ConstantInt(I32, expr.value),
                              CType(32, signed))
        if isinstance(expr, NameExpr):
            lvalue = self._lookup(expr)
            return self._load_scalar(lvalue)
        if isinstance(expr, (IndexExpr, FieldExpr)):
            return self._load_scalar(self.gen_lvalue(expr))
        if isinstance(expr, UnaryExpr):
            return self.gen_unary(expr)
        if isinstance(expr, BinaryExpr):
            return self.gen_binary(expr)
        if isinstance(expr, AssignExpr):
            return self.gen_assign(expr)
        if isinstance(expr, CallExpr):
            return self.gen_call(expr)
        if isinstance(expr, TernaryExpr):
            return self.gen_ternary(expr)
        raise CompileError(f"cannot generate {type(expr).__name__}",
                           expr.line)

    def gen_unary(self, expr: UnaryExpr) -> TypedValue:
        if expr.op == "!":
            cond = self.gen_condition(expr.operand)
            inverted = self.b.xor(cond, ConstantInt(I1, 1))
            return TypedValue(self.b.zext(inverted, I32), CType(32, True))
        operand = self._promote(self.gen_expression(expr.operand))
        if expr.op == "-":
            zero = ConstantInt(I32, 0)
            nsw = self.options.nsw_signed_arith and operand.ctype.signed
            return TypedValue(self.b.sub(zero, operand.value, nsw=nsw),
                              operand.ctype)
        if expr.op == "~":
            return TypedValue(self.b.not_(operand.value), operand.ctype)
        raise CompileError(f"unary {expr.op!r}", expr.line)

    def gen_binary(self, expr: BinaryExpr) -> TypedValue:
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_short_circuit(expr)
        lhs = self._promote(self.gen_expression(expr.lhs))
        rhs = self._promote(self.gen_expression(expr.rhs))
        signed = lhs.ctype.signed and rhs.ctype.signed
        result_type = CType(32, signed)
        nsw = signed and self.options.nsw_signed_arith
        b = self.b
        a, c = lhs.value, rhs.value
        if op == "+":
            return TypedValue(b.add(a, c, nsw=nsw), result_type)
        if op == "-":
            return TypedValue(b.sub(a, c, nsw=nsw), result_type)
        if op == "*":
            return TypedValue(b.mul(a, c, nsw=nsw), result_type)
        if op == "/":
            return TypedValue(b.sdiv(a, c) if signed else b.udiv(a, c),
                              result_type)
        if op == "%":
            return TypedValue(b.srem(a, c) if signed else b.urem(a, c),
                              result_type)
        if op == "&":
            return TypedValue(b.and_(a, c), result_type)
        if op == "|":
            return TypedValue(b.or_(a, c), result_type)
        if op == "^":
            return TypedValue(b.xor(a, c), result_type)
        if op == "<<":
            return TypedValue(b.shl(a, c, nsw=nsw), result_type)
        if op == ">>":
            shifted = b.ashr(a, c) if lhs.ctype.signed else b.lshr(a, c)
            return TypedValue(shifted, CType(32, lhs.ctype.signed))
        preds = {
            "==": IcmpPred.EQ, "!=": IcmpPred.NE,
            "<": IcmpPred.SLT if signed else IcmpPred.ULT,
            "<=": IcmpPred.SLE if signed else IcmpPred.ULE,
            ">": IcmpPred.SGT if signed else IcmpPred.UGT,
            ">=": IcmpPred.SGE if signed else IcmpPred.UGE,
        }
        if op in preds:
            cmp = b.icmp(preds[op], a, c)
            return TypedValue(b.zext(cmp, I32), CType(32, True))
        raise CompileError(f"binary {op!r}", expr.line)

    def gen_short_circuit(self, expr: BinaryExpr) -> TypedValue:
        is_and = expr.op == "&&"
        rhs_block = self.fn.add_block("sc.rhs")
        end_block = self.fn.add_block("sc.end")
        lhs_cond = self.gen_condition(expr.lhs)
        lhs_exit = self.b.block
        if is_and:
            self.b.cond_br(lhs_cond, rhs_block, end_block)
        else:
            self.b.cond_br(lhs_cond, end_block, rhs_block)
        self.b.set_insert_point(rhs_block)
        rhs_cond = self.gen_condition(expr.rhs)
        rhs_exit = self.b.block
        self.b.br(end_block)
        self.b.set_insert_point(end_block)
        phi = self.b.phi(I1)
        phi.add_incoming(ConstantInt(I1, 0 if is_and else 1), lhs_exit)
        phi.add_incoming(rhs_cond, rhs_exit)
        return TypedValue(self.b.zext(phi, I32), CType(32, True))

    def gen_ternary(self, expr: TernaryExpr) -> TypedValue:
        cond = self.gen_condition(expr.cond)
        then_block = self.fn.add_block("sel.then")
        else_block = self.fn.add_block("sel.else")
        end_block = self.fn.add_block("sel.end")
        self.b.cond_br(cond, then_block, else_block)
        self.b.set_insert_point(then_block)
        then_value = self._promote(self.gen_expression(expr.then))
        then_exit = self.b.block
        self.b.br(end_block)
        self.b.set_insert_point(else_block)
        else_value = self._promote(self.gen_expression(expr.otherwise))
        else_exit = self.b.block
        self.b.br(end_block)
        self.b.set_insert_point(end_block)
        phi = self.b.phi(I32)
        phi.add_incoming(then_value.value, then_exit)
        phi.add_incoming(else_value.value, else_exit)
        signed = then_value.ctype.signed and else_value.ctype.signed
        return TypedValue(phi, CType(32, signed))

    def gen_call(self, expr: CallExpr) -> TypedValue:
        callee = self.module.get_function(expr.callee)
        if callee is None:
            raise CompileError(f"unknown function {expr.callee!r}",
                               expr.line)
        decl = self.unit.function_decls.get(expr.callee)
        args: List[Value] = []
        for i, arg_expr in enumerate(expr.args):
            tv = self.gen_expression(arg_expr)
            if decl is not None and i < len(decl.params):
                args.append(self._convert(tv, decl.params[i].type))
            else:
                args.append(self._promote(tv).value)
        result = self.b.call(callee, args)
        if decl is not None and decl.return_type is not None:
            return TypedValue(result, decl.return_type)
        if callee.return_type.is_void:
            return TypedValue(ConstantInt(I32, 0), CType(32, True))
        return TypedValue(result, CType(callee.return_type.bits, True))

    def gen_assign(self, expr: AssignExpr) -> TypedValue:
        lvalue = self.gen_lvalue(expr.target)
        old: Optional[TypedValue] = None
        if expr.op == "=":
            value = self.gen_expression(expr.value)
        else:
            old = self._load_scalar(lvalue)
            current = self._promote(old)
            rhs = self._promote(self.gen_expression(expr.value))
            value = self._apply_binop(expr.op[:-1], current, rhs, expr.line)
        self._store_scalar(lvalue, value)
        if expr.postfix and old is not None:
            return old  # i++ evaluates to the pre-increment value
        return self._load_scalar(lvalue)

    def _apply_binop(self, op: str, lhs: TypedValue, rhs: TypedValue,
                     line: int) -> TypedValue:
        signed = lhs.ctype.signed and rhs.ctype.signed
        nsw = signed and self.options.nsw_signed_arith
        b = self.b
        a, c = lhs.value, rhs.value
        table = {
            "+": lambda: b.add(a, c, nsw=nsw),
            "-": lambda: b.sub(a, c, nsw=nsw),
            "*": lambda: b.mul(a, c, nsw=nsw),
            "/": lambda: b.sdiv(a, c) if signed else b.udiv(a, c),
            "%": lambda: b.srem(a, c) if signed else b.urem(a, c),
            "&": lambda: b.and_(a, c),
            "|": lambda: b.or_(a, c),
            "^": lambda: b.xor(a, c),
            "<<": lambda: b.shl(a, c, nsw=nsw),
            ">>": lambda: (b.ashr(a, c) if lhs.ctype.signed
                           else b.lshr(a, c)),
        }
        if op not in table:
            raise CompileError(f"compound assignment {op!r}=", line)
        return TypedValue(table[op](), CType(32, signed))

    # -- lvalues -------------------------------------------------------------------
    def _lookup(self, expr: NameExpr) -> LValue:
        lv = self.locals.get(expr.name)
        if lv is not None:
            return lv
        g = self.unit.global_lvalues.get(expr.name)
        if g is not None:
            return g
        raise CompileError(f"unknown variable {expr.name!r}", expr.line)

    def gen_lvalue(self, expr: Expr) -> LValue:
        if isinstance(expr, NameExpr):
            return self._lookup(expr)
        if isinstance(expr, IndexExpr):
            return self.gen_index_lvalue(expr)
        if isinstance(expr, FieldExpr):
            return self.gen_field_lvalue(expr)
        raise CompileError("expression is not assignable", expr.line)

    def gen_index_lvalue(self, expr: IndexExpr) -> LValue:
        if not isinstance(expr.base, NameExpr):
            raise CompileError("only direct array indexing is supported",
                               expr.line)
        name = expr.base.name
        decl_type = self.local_types.get(name) \
            or self.unit.global_types.get(name)
        if not isinstance(decl_type, ArrayType):
            raise CompileError(f"{name!r} is not an array", expr.line)
        base_lv = self._lookup(expr.base)
        elem_ty = IntType(decl_type.elem.width)
        elem_ptr_ty = PointerType(elem_ty)
        base = self.b.bitcast(base_lv.pointer, elem_ptr_ty)
        index = self.gen_expression(expr.index)
        ptr = self.b.gep(base, index.value, inbounds=True)
        return LValue(ptr, decl_type.elem)

    def gen_field_lvalue(self, expr: FieldExpr) -> LValue:
        if not isinstance(expr.base, NameExpr):
            raise CompileError("only direct struct field access supported",
                               expr.line)
        name = expr.base.name
        decl_type = self.local_types.get(name) \
            or self.unit.global_types.get(name)
        if not isinstance(decl_type, StructType):
            raise CompileError(f"{name!r} is not a struct", expr.line)
        layouts, _ = layout_struct(decl_type)
        layout = layouts.get(expr.field)
        if layout is None:
            raise CompileError(
                f"struct {decl_type.name!r} has no field {expr.field!r}",
                expr.line,
            )
        base_lv = self._lookup(expr.base)
        storage_ty = IntType(layout.storage_bits)
        byte_ptr = self.b.bitcast(base_lv.pointer, PointerType(IntType(8)))
        at_byte = self.b.gep(byte_ptr, ConstantInt(I32, layout.byte_offset),
                             inbounds=True)
        unit_ptr = self.b.bitcast(at_byte, PointerType(storage_ty))
        return LValue(unit_ptr, layout.ctype, layout)

    # -- loads / stores -----------------------------------------------------------
    def _load_scalar(self, lvalue: LValue) -> TypedValue:
        layout = lvalue.layout
        if layout is None or not layout.is_bitfield:
            loaded = self.b.load(lvalue.pointer)
            return TypedValue(loaded, lvalue.ctype)
        word = self.b.load(lvalue.pointer)
        shifted = word
        if layout.bit_offset:
            shifted = self.b.lshr(
                word, ConstantInt(IntType(layout.storage_bits),
                                  layout.bit_offset))
        if layout.bits == layout.storage_bits:
            narrow: Value = shifted
        else:
            narrow = self.b.trunc(shifted, IntType(layout.bits))
        return TypedValue(narrow, CType(layout.bits, layout.ctype.signed))

    def _store_scalar(self, lvalue: LValue, value: TypedValue) -> None:
        layout = lvalue.layout
        if layout is None or not layout.is_bitfield:
            converted = self._convert(value, lvalue.ctype)
            self.b.store(converted, lvalue.pointer)
            return
        # Section 5.3: bit-field store = load, (freeze), mask, combine,
        # store.
        storage = IntType(layout.storage_bits)
        word = self.b.load(lvalue.pointer)
        if self.options.freeze_bitfield_stores:
            word = self.b.freeze(word)
        mask = ((1 << layout.bits) - 1) << layout.bit_offset
        cleared = self.b.and_(
            word, ConstantInt(storage, ~mask & ((1 << layout.storage_bits) - 1))
        )
        field_value = self._convert(
            value, CType(layout.storage_bits, False))
        field_masked = self.b.and_(
            field_value, ConstantInt(storage, (1 << layout.bits) - 1))
        if layout.bit_offset:
            field_masked = self.b.shl(
                field_masked, ConstantInt(storage, layout.bit_offset))
        combined = self.b.or_(cleared, field_masked)
        self.b.store(combined, lvalue.pointer)

    # -- conversions ---------------------------------------------------------------
    def _promote(self, tv: TypedValue) -> TypedValue:
        """The usual arithmetic promotion to (u)int."""
        if tv.ctype.width == 32:
            return tv
        if tv.ctype.signed:
            widened = self.b.sext(tv.value, I32)
        else:
            widened = self.b.zext(tv.value, I32)
        return TypedValue(widened, CType(32, tv.ctype.signed))

    def _convert(self, tv: TypedValue, target: CType) -> Value:
        src_w = tv.ctype.width
        dst_w = target.width
        if src_w == dst_w:
            return tv.value
        if src_w > dst_w:
            return self.b.trunc(tv.value, IntType(dst_w))
        if tv.ctype.signed:
            return self.b.sext(tv.value, IntType(dst_w))
        return self.b.zext(tv.value, IntType(dst_w))


class Codegen:
    def __init__(self, program: Program,
                 options: Optional[CodegenOptions] = None,
                 module_name: str = "minic"):
        self.program = program
        self.options = options or CodegenOptions()
        self.module = Module(module_name)
        self.global_lvalues: Dict[str, LValue] = {}
        self.global_types: Dict[str, Union[CType, StructType, ArrayType]] = {}
        self.function_decls: Dict[str, FunctionDecl] = {}

    def run(self) -> Module:
        for g in self.program.globals:
            self._declare_global(g)
        for fn_decl in self.program.functions:
            self.function_decls[fn_decl.name] = fn_decl
            ret = IntType(fn_decl.return_type.width) \
                if fn_decl.return_type else FunctionCodegen.module_void()
            params = tuple(IntType(p.type.width) for p in fn_decl.params)
            if fn_decl.body is None:
                self.module.declare(fn_decl.name, FunctionType(ret, params))
        for fn_decl in self.program.functions:
            if fn_decl.body is not None:
                FunctionCodegen(self, fn_decl).run()
        return self.module

    def _declare_global(self, g) -> None:
        if isinstance(g.type, CType):
            ty = IntType(g.type.width)
            init = ConstantInt(ty, g.init) if g.init is not None else None
            gv = self.module.add_global(g.name, ty, init)
            self.global_lvalues[g.name] = LValue(gv, g.type)
            self.global_types[g.name] = g.type
        elif isinstance(g.type, ArrayType):
            elem = IntType(g.type.elem.width)
            gv = self.module.add_global(
                g.name, VectorType(g.type.count, elem))
            self.global_lvalues[g.name] = LValue(gv, g.type.elem)
            self.global_types[g.name] = g.type
        elif isinstance(g.type, StructType):
            _, size = layout_struct(g.type)
            gv = self.module.add_global(g.name, IntType(size * 8))
            self.global_lvalues[g.name] = LValue(gv, CType(size * 8, False))
            self.global_types[g.name] = g.type
        else:
            raise CompileError(f"bad global {g.name!r}", g.line)


def compile_c(source: str, options: Optional[CodegenOptions] = None,
              module_name: str = "minic") -> Module:
    """Compile MiniC source text to an IR module."""
    program = parse_c(source)
    module = Codegen(program, options, module_name).run()
    from ..ir import verify_module

    verify_module(module)
    return module
