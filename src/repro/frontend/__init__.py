"""MiniC: the small C frontend (bit-fields included)."""

from .cast import CType, Program, StructType
from .codegen import CodegenOptions, compile_c, layout_struct
from .lexer import CompileError, tokenize
from .parser import parse_c

__all__ = [
    "CType", "Program", "StructType",
    "CodegenOptions", "compile_c", "layout_struct",
    "CompileError", "tokenize", "parse_c",
]
