"""Render lint findings: human text, JSON, and SARIF 2.1.0.

SARIF is the interchange format GitHub code scanning and most editors
understand; the CI job uploads the SARIF file as an artifact.  The
logical location carries the IR coordinates (``@fn:%block:#index``)
since .ll files are linted per function, not per byte offset.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .diagnostics import LintDiagnostic
from .rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-lint"


def render_text(diags: List[LintDiagnostic]) -> str:
    if not diags:
        return "no findings"
    return "\n".join(str(d) for d in diags)


def render_json(diags: List[LintDiagnostic], indent: int = 2) -> str:
    return json.dumps({
        "tool": TOOL_NAME,
        "findings": [d.as_dict() for d in diags],
    }, indent=indent, sort_keys=True)


def _sarif_rules() -> List[Dict]:
    return [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": rule.severity},
        }
        for rule in RULES.values()
    ]


def _sarif_result(diag: LintDiagnostic) -> Dict:
    location: Dict = {
        "logicalLocations": [{
            "fullyQualifiedName": str(diag.loc),
            "kind": "function",
        }],
    }
    if diag.file:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": diag.file},
        }
    return {
        "ruleId": diag.rule_id,
        "level": diag.severity,
        "message": {"text": diag.message},
        "locations": [location],
    }


def render_sarif(diags: List[LintDiagnostic], indent: int = 2) -> str:
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": _sarif_rules(),
                },
            },
            "results": [_sarif_result(d) for d in diags],
        }],
    }
    return json.dumps(doc, indent=indent, sort_keys=True)
