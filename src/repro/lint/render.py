"""Render lint findings: human text, JSON, and SARIF 2.1.0.

SARIF is the interchange format GitHub code scanning and most editors
understand; the CI job uploads the SARIF file as an artifact.  The
logical location carries the IR coordinates (``@fn:%block:#index``)
since .ll files are linted per function, not per byte offset.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .diagnostics import LintDiagnostic
from .rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "repro-lint"


def render_text(diags: List[LintDiagnostic]) -> str:
    if not diags:
        return "no findings"
    return "\n".join(str(d) for d in diags)


def render_json(diags: List[LintDiagnostic], indent: int = 2) -> str:
    return json.dumps({
        "tool": TOOL_NAME,
        "findings": [d.as_dict() for d in diags],
    }, indent=indent, sort_keys=True)


def _sarif_rules(rule_ids: List[str]) -> List[Dict]:
    return [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": rule.severity},
        }
        for rule in RULES.values()
        if rule.rule_id in rule_ids
    ]


def _sarif_result(diag: LintDiagnostic, rule_index: Dict[str, int]) -> Dict:
    location: Dict = {
        "logicalLocations": [{
            "fullyQualifiedName": str(diag.loc),
            "kind": "function",
        }],
    }
    if diag.file:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": diag.file},
        }
    result = {
        "ruleId": diag.rule_id,
        "level": diag.severity,
        "message": {"text": diag.message},
        "locations": [location],
    }
    if diag.rule_id in rule_index:
        result["ruleIndex"] = rule_index[diag.rule_id]
    return result


def render_sarif(diags: List[LintDiagnostic], indent: int = 2,
                 rules: List[str] = None) -> str:
    """Render a SARIF 2.1.0 document.

    ``rules`` restricts the driver's ``rules`` array (e.g. when the CLI
    ran with ``--rule``); each result's ``ruleIndex`` always points at
    its rule's position in the emitted array, whatever the filter.
    """
    rule_ids = [r for r in RULES if rules is None or r in rules]
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri":
                        "https://example.invalid/repro-lint",
                    "rules": _sarif_rules(rule_ids),
                },
            },
            "results": [_sarif_result(d, rule_index) for d in diags],
        }],
    }
    return json.dumps(doc, indent=indent, sort_keys=True)
