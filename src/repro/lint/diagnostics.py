"""Lint diagnostics: severities and the finding record.

Findings reuse :class:`repro.ir.location.IRLocation` — the same
structured location type the IR verifier attaches to its errors — so a
lint result and a verifier error point at code the same way and render
the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir.location import IRLocation

#: Severity levels, ordered from least to most severe.  They map 1:1
#: onto SARIF result levels.
SEV_NOTE = "note"
SEV_WARNING = "warning"
SEV_ERROR = "error"

SEVERITIES = (SEV_NOTE, SEV_WARNING, SEV_ERROR)

_SEV_RANK = {SEV_NOTE: 0, SEV_WARNING: 1, SEV_ERROR: 2}


def severity_rank(severity: str) -> int:
    return _SEV_RANK[severity]


@dataclass(frozen=True)
class LintDiagnostic:
    """One lint finding, anchored to a structured IR location."""

    rule_id: str
    severity: str
    message: str
    loc: IRLocation
    file: str = ""

    def __post_init__(self):
        assert self.severity in SEVERITIES, self.severity

    def __str__(self) -> str:
        prefix = f"{self.file}:" if self.file else ""
        return (f"{prefix}{self.loc}: {self.severity}: "
                f"{self.message} [{self.rule_id}]")

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "location": self.loc.as_dict(),
            "file": self.file,
        }

    def with_file(self, file: str) -> "LintDiagnostic":
        return LintDiagnostic(self.rule_id, self.severity, self.message,
                              self.loc, file)
