"""The lint rules: UBSan-style checks over the poison dataflow fixpoint.

Every rule has a stable ID (referenced by ``--rule``, CI assertions and
SARIF), a default severity, and a one-line description.  Rules consult
the :class:`~repro.analysis.poison_flow.PoisonFlowResult` computed once
per function by the engine; none of them re-walk the IR for poison
facts.

Origin gating keeps the checker quiet on ordinary code: facts whose
*only* origin is external (a plain argument, a call result, loaded
memory) do not fire the poison rules — every function taking an ``i8``
argument may formally receive poison, and flagging that would drown real
findings.  A rule fires when the analysis can point at a poison
*producer inside the function* (an nsw/nuw/exact op, an out-of-range
shift, an inbounds gep, a ``poison``/``undef`` literal) feeding the
sink.  ``missing-freeze-on-hoist`` is the deliberate exception: loop
unswitching hoists *argument* conditions, so it fires on any
maybe-poison origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..analysis.poison_flow import PoisonFact
from ..ir.basicblock import BasicBlock
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    ExtractElementInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    InsertElementInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
)
from ..ir.location import IRLocation
from ..semantics.config import BranchOnPoison
from .diagnostics import SEV_ERROR, SEV_NOTE, SEV_WARNING, LintDiagnostic

_DIVISIONS = (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM)


#: A rule whose *silence* is the contract: it promises to fire whenever
#: the hazard is realizable, so a missed hazard is a false negative.
POLARITY_SOUNDNESS = "soundness"
#: A rule whose *firing* is the contract: it promises its claim is right
#: whenever it fires, but staying silent is always permitted.
POLARITY_PRECISION = "precision"


@dataclass(frozen=True)
class LintRule:
    """A registered rule: stable ID, default severity, check function.

    The adversarial-validation metadata (``polarity``, ``attacked_by``,
    ``origin_gated``) is consumed by ``repro campaign lint-attack``: each
    rule declares which mutators from :mod:`repro.mutate` attack it and
    how its fire/silent verdicts map onto the FN/FP/TP/TN taxonomy.
    """

    rule_id: str
    severity: str
    description: str
    check: Callable[["LintContext"], Iterator[LintDiagnostic]]
    #: "soundness" (silence on a real hazard is a false negative) or
    #: "precision" (a fire with a wrong claim is a false positive;
    #: silence is always acceptable).
    polarity: str = POLARITY_SOUNDNESS
    #: Names of mutators (see ``repro.mutate.MUTATORS``) that target
    #: this rule's blind spots; the attack campaign only scores a rule
    #: against mutants produced by its declared attackers.
    attacked_by: Tuple[str, ...] = field(default=())
    #: Does origin gating excuse silence when the hazard needs a poison
    #: *argument* to manifest?  True for every rule except
    #: missing-freeze-on-hoist (which deliberately fires on external
    #: origins, see module docstring).
    origin_gated: bool = True


#: rule_id -> LintRule, in registration order (drives --list-rules and
#: the SARIF rules array).
RULES: Dict[str, LintRule] = {}


def _register(rule_id: str, severity: str, description: str, *,
              polarity: str = POLARITY_SOUNDNESS,
              attacked_by: Tuple[str, ...] = (),
              origin_gated: bool = True):
    def deco(fn):
        RULES[rule_id] = LintRule(rule_id, severity, description, fn,
                                  polarity=polarity,
                                  attacked_by=attacked_by,
                                  origin_gated=origin_gated)
        return fn
    return deco


class LintContext:
    """Everything a rule may consult, computed once per function."""

    def __init__(self, fn, flow, dt, loops, semantics):
        self.fn = fn
        self.flow = flow          # PoisonFlowResult
        self.dt = dt              # DominatorTree
        self.loops = loops        # LoopInfo
        self.semantics = semantics

    def fact(self, value, block: Optional[BasicBlock]) -> PoisonFact:
        return self.flow.fact_at(value, block)

    def diag(self, rule_id: str, message: str,
             inst: Optional[Instruction] = None,
             block: Optional[BasicBlock] = None,
             severity: Optional[str] = None) -> LintDiagnostic:
        rule = RULES[rule_id]
        if inst is not None:
            loc = IRLocation.of(inst, function=self.fn.name)
        else:
            loc = IRLocation(self.fn.name,
                             block.name if block is not None else "")
        return LintDiagnostic(rule_id, severity or rule.severity,
                              message, loc)


def _flagged(fact: PoisonFact) -> bool:
    """Poison traceable to a producer in this function (or a literal)?"""
    from ..analysis.poison_flow import ORIGIN_GENERATED, ORIGIN_LITERAL

    return any(kind in (ORIGIN_GENERATED, ORIGIN_LITERAL)
               for kind, _ in fact.origins)


def _blame(fact: PoisonFact) -> str:
    desc = fact.describe_origins()
    return f" (from {desc})" if desc else ""


# ---------------------------------------------------------------------------
# branch-on-maybe-poison


@_register(
    "branch-on-maybe-poison", SEV_WARNING,
    "A conditional branch or switch condition may be poison; branching "
    "on poison is immediate UB under the revised semantics.",
    attacked_by=("route-branch", "guard-branch", "narrow-shift",
                 "hoist-dispatch", "freeze-dispatch"))
def _check_branch_on_poison(ctx: LintContext):
    if ctx.semantics.branch_on_poison is not BranchOnPoison.UB:
        return
    for block in ctx.fn.blocks:
        term = block.terminator
        if isinstance(term, BranchInst) and term.is_conditional:
            cond = term.cond
        elif isinstance(term, SwitchInst):
            cond = term.value
        else:
            continue
        fact = ctx.fact(cond, block)
        if fact.is_must_poison:
            yield ctx.diag(
                "branch-on-maybe-poison",
                f"branch condition {cond.ref()} is always poison"
                f"{_blame(fact)}; executing this terminator is UB",
                inst=term, severity=SEV_ERROR)
        elif fact.may_be_poison and _flagged(fact):
            yield ctx.diag(
                "branch-on-maybe-poison",
                f"branch condition {cond.ref()} may be poison"
                f"{_blame(fact)}; branching on poison is UB",
                inst=term)


# ---------------------------------------------------------------------------
# ub-sink-reaches-poison


def iter_sinks(inst: Instruction):
    """Yield (operand, role) pairs where poison triggers immediate UB.

    Shared with the attack campaign's ground-truth instrumenter so the
    rule and the oracle agree on what a sink is.
    """
    if isinstance(inst, BinaryInst) and inst.opcode in _DIVISIONS:
        yield inst.rhs, f"{inst.opcode.value} divisor"
    elif isinstance(inst, StoreInst):
        yield inst.pointer, "store address"
    elif isinstance(inst, LoadInst):
        yield inst.pointer, "load address"
    elif isinstance(inst, CallInst):
        for i, arg in enumerate(inst.args):
            callee = getattr(inst.callee, "name", "?")
            yield arg, f"argument {i} of call @{callee}"


_sinks = iter_sinks


@_register(
    "ub-sink-reaches-poison", SEV_WARNING,
    "A value that may be poison reaches a UB-or-escape sink: a division "
    "divisor or load/store address (immediate UB), or a call argument "
    "(poison handed to unknown code).",
    attacked_by=("route-divisor", "route-call", "poison-operand",
                 "undef-operand", "insert-freeze", "drop-flags"))
def _check_ub_sink(ctx: LintContext):
    for block in ctx.fn.blocks:
        for inst in block.instructions:
            for operand, role in _sinks(inst):
                fact = ctx.fact(operand, block)
                if fact.is_must_poison:
                    yield ctx.diag(
                        "ub-sink-reaches-poison",
                        f"{role} {operand.ref()} is always poison"
                        f"{_blame(fact)}",
                        inst=inst, severity=SEV_ERROR)
                elif fact.may_be_poison and _flagged(fact):
                    yield ctx.diag(
                        "ub-sink-reaches-poison",
                        f"{role} {operand.ref()} may be poison"
                        f"{_blame(fact)}",
                        inst=inst)


# ---------------------------------------------------------------------------
# redundant-freeze


@_register(
    "redundant-freeze", SEV_NOTE,
    "A freeze whose operand the dataflow proves never poison at that "
    "point; the freeze is a no-op and freeze-opts would remove it.",
    polarity=POLARITY_PRECISION,
    attacked_by=("insert-freeze",))
def _check_redundant_freeze(ctx: LintContext):
    for block in ctx.fn.blocks:
        for inst in block.instructions:
            if not isinstance(inst, FreezeInst):
                continue
            fact = ctx.fact(inst.value, block)
            if fact.is_must_not_poison:
                yield ctx.diag(
                    "redundant-freeze",
                    f"freeze of {inst.value.ref()} is redundant: the "
                    f"operand is provably not poison here",
                    inst=inst)


# ---------------------------------------------------------------------------
# missing-freeze-on-hoist


def hoist_dispatch_sites(fn, loops) -> List[BranchInst]:
    """Terminators in the unswitched-dispatch shape: a conditional
    branch outside every loop selecting between two distinct loop
    headers.  Shared with the attack campaign's ground truth so the
    rule and the oracle agree on what a dispatch site is."""
    headers = {}
    for loop in loops.loops:
        headers[loop.header] = loop
    sites: List[BranchInst] = []
    for block in fn.blocks:
        term = block.terminator
        if not (isinstance(term, BranchInst) and term.is_conditional):
            continue
        succs = term.targets
        if len(succs) != 2 or succs[0] is succs[1]:
            continue
        la = headers.get(succs[0])
        lb = headers.get(succs[1])
        # The unswitched dispatch shape: a block outside every loop
        # selecting between two distinct loop copies.
        if la is None or lb is None or la is lb:
            continue
        if la.contains(block) or lb.contains(block):
            continue
        sites.append(term)
    return sites


@_register(
    "missing-freeze-on-hoist", SEV_WARNING,
    "An unswitched-loop dispatch branches on a maybe-poison condition "
    "hoisted out of the loops; the condition must be frozen (paper "
    "Section 4, loop unswitching).",
    attacked_by=("hoist-dispatch", "freeze-dispatch"),
    origin_gated=False)
def _check_missing_freeze_on_hoist(ctx: LintContext):
    for term in hoist_dispatch_sites(ctx.fn, ctx.loops):
        cond = term.cond
        if isinstance(cond, FreezeInst):
            continue
        block = term.parent
        fact = ctx.fact(cond, block)
        if not fact.may_be_poison:
            continue
        succs = term.targets
        yield ctx.diag(
            "missing-freeze-on-hoist",
            f"loop-dispatch condition {cond.ref()} selects between "
            f"unswitched copies %{succs[0].name} and %{succs[1].name} "
            f"but may be poison{_blame(fact)}; hoisting a branch on it "
            f"out of the loop needs a freeze",
            inst=term)


# ---------------------------------------------------------------------------
# dead-on-poison-flag


def _observes(inst: Instruction, value) -> bool:
    """Does this use observe ``value``'s poison with UB or an externally
    visible effect?"""
    if isinstance(inst, ReturnInst):
        return inst.value is value
    if isinstance(inst, BranchInst):
        return inst.is_conditional and inst.cond is value
    if isinstance(inst, SwitchInst):
        return inst.value is value
    if isinstance(inst, StoreInst):
        return True  # stored value or address both escape
    if isinstance(inst, LoadInst):
        return inst.pointer is value
    if isinstance(inst, CallInst):
        return any(a is value for a in inst.args)
    if isinstance(inst, BinaryInst) and inst.opcode in _DIVISIONS:
        if inst.rhs is value:
            return True  # poison divisor is immediate UB
    return False


def _propagates(inst: Instruction) -> bool:
    return isinstance(inst, (BinaryInst, IcmpInst, CastInst, SelectInst,
                             PhiInst, GepInst, ExtractElementInst,
                             InsertElementInst))


@_register(
    "dead-on-poison-flag", SEV_NOTE,
    "A poison-generating flag (nsw/nuw/exact) on an instruction whose "
    "result never reaches an observation point; the flag constrains "
    "nothing and can be dropped.",
    polarity=POLARITY_PRECISION,
    attacked_by=("add-nsw", "add-nuw", "add-exact", "discard-result"))
def _check_dead_flag(ctx: LintContext):
    for block in ctx.fn.blocks:
        for inst in block.instructions:
            if not isinstance(inst, BinaryInst):
                continue
            if not (inst.nsw or inst.nuw or inst.exact):
                continue
            if _poison_observed(inst):
                continue
            yield ctx.diag(
                "dead-on-poison-flag",
                f"flags '{inst.flags_str().strip()}' on {inst.ref()} are dead: "
                f"the result never reaches a branch, return, memory or "
                f"call; the poison they may generate is unobservable",
                inst=inst)


def _poison_observed(root: Instruction, limit: int = 256) -> bool:
    """Forward closure over users: does poison from ``root`` ever reach
    an observation?  Freeze launders poison, so it blocks the walk."""
    seen = {id(root)}
    work: List[Instruction] = [root]
    steps = 0
    while work:
        steps += 1
        if steps > limit:
            return True  # give up conservatively: assume observed
        value = work.pop()
        for user in value.users():
            if not isinstance(user, Instruction):
                continue
            if _observes(user, value):
                return True
            if isinstance(user, FreezeInst):
                continue  # blocker: frozen result is never poison
            if _propagates(user) and id(user) not in seen:
                seen.add(id(user))
                work.append(user)
    return False


def all_rule_ids() -> List[str]:
    return list(RULES)
