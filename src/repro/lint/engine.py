"""The lint engine: run rules over functions, with stats and remarks.

Lint always analyzes under the *revised* semantics (``NEW``) by default,
whatever optimization config produced the IR: the paper's point is that
IR emitted or transformed under the permissive legacy reading contains
latent UB once the semantics are tightened, and that is exactly what the
checker should surface.  Pass ``semantics=`` to lint under a different
reading.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..analysis.dominators import DominatorTree
from ..analysis.loops import LoopInfo
from ..analysis.poison_flow import analyze_poison_flow
from ..diag import Statistic, span
from ..diag.remarks import REMARK_ANALYSIS, emit_remark
from ..ir.function import Function
from ..ir.module import Module
from .diagnostics import LintDiagnostic, severity_rank
from .rules import RULES, LintContext

#: one counter per rule, under the "lint" pass namespace
_RULE_STATS: Dict[str, Statistic] = {
    rule_id: Statistic("lint", f"num-{rule_id}",
                       f"Findings from the {rule_id} rule")
    for rule_id in RULES
}

NUM_FUNCTIONS_LINTED = Statistic(
    "lint", "num-functions-linted", "Function bodies linted")


def lint_function(fn: Function, semantics=None,
                  rules: Optional[Iterable[str]] = None
                  ) -> List[LintDiagnostic]:
    """Run the (selected) rules over one function definition."""
    from ..semantics.config import NEW

    if fn.is_declaration:
        return []
    semantics = semantics if semantics is not None else NEW
    selected = list(rules) if rules is not None else list(RULES)
    unknown = [r for r in selected if r not in RULES]
    if unknown:
        raise ValueError(f"unknown lint rule(s): {', '.join(unknown)}")

    NUM_FUNCTIONS_LINTED.inc()
    with span("lint-function", cat="lint", function=fn.name) as sp:
        flow = analyze_poison_flow(fn, semantics)
        dt = DominatorTree(fn)
        loops = LoopInfo(fn, dt)
        ctx = LintContext(fn, flow, dt, loops, semantics)

        found: List[LintDiagnostic] = []
        for rule_id in selected:
            for diag in RULES[rule_id].check(ctx):
                _RULE_STATS[rule_id].inc()
                emit_remark("lint", diag.message, kind=REMARK_ANALYSIS,
                            function=diag.loc.function,
                            block=diag.loc.block,
                            instruction=diag.loc.ref)
                found.append(diag)
        sp.set(findings=len(found))
    # Stable presentation: program order (block, index), then severity
    # (most severe first) for co-located findings.
    order = {b.name: i for i, b in enumerate(fn.blocks)}
    found.sort(key=lambda d: (
        order.get(d.loc.block, len(order)),
        d.loc.index if d.loc.index is not None else -1,
        -severity_rank(d.severity),
        d.rule_id,
    ))
    return found


def lint_module(module: Module, semantics=None,
                rules: Optional[Iterable[str]] = None,
                file: str = "") -> List[LintDiagnostic]:
    """Lint every function definition in the module."""
    found: List[LintDiagnostic] = []
    for fn in module.definitions():
        for diag in lint_function(fn, semantics=semantics, rules=rules):
            found.append(diag.with_file(file) if file else diag)
    return found


def worst_severity(diags: List[LintDiagnostic]) -> Optional[str]:
    if not diags:
        return None
    return max(diags, key=lambda d: severity_rank(d.severity)).severity
