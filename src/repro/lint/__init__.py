"""repro lint: a UBSan-style static checker for the IR.

Rules are powered by the poison dataflow fixpoint
(:mod:`repro.analysis.poison_flow`) and differentially validated against
the executable semantics by ``repro campaign lint-audit``.
"""

from .diagnostics import (
    SEV_ERROR,
    SEV_NOTE,
    SEV_WARNING,
    SEVERITIES,
    LintDiagnostic,
    severity_rank,
)
from .engine import lint_function, lint_module, worst_severity
from .render import render_json, render_sarif, render_text
from .rules import (
    POLARITY_PRECISION,
    POLARITY_SOUNDNESS,
    RULES,
    LintContext,
    LintRule,
    all_rule_ids,
    hoist_dispatch_sites,
    iter_sinks,
)

__all__ = [
    "SEV_ERROR", "SEV_NOTE", "SEV_WARNING", "SEVERITIES",
    "LintDiagnostic", "severity_rank",
    "lint_function", "lint_module", "worst_severity",
    "render_json", "render_sarif", "render_text",
    "RULES", "LintContext", "LintRule", "all_rule_ids",
    "POLARITY_PRECISION", "POLARITY_SOUNDNESS",
    "hoist_dispatch_sites", "iter_sinks",
]
