"""The Section 3 transformation catalog — input to the E6 soundness
matrix.

Each entry is a (source, target) IR pair plus, for every semantics
configuration, the verdict the paper's analysis predicts.  The E6
benchmark runs the refinement checker over the whole catalog and prints
the matrix; ``tests/bench/test_catalog.py`` asserts every cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..semantics.config import (
    NEW,
    OLD,
    OLD_GVN_VIEW,
    OLD_UNSWITCH_VIEW,
    SelectSemantics,
    SemanticsConfig,
)

#: verdicts: True = refinement must hold, False = must fail,
#: None = undecidable here (e.g. divergence) — only "not verified" is
#: required.
Expectation = Optional[bool]


@dataclass(frozen=True)
class CatalogEntry:
    key: str
    paper_section: str
    title: str
    src: str
    tgt: str
    expectations: Tuple[Tuple[str, Expectation], ...]
    #: checker knob overrides
    max_choices: int = 32
    fuel: int = 4000
    undef_inputs: bool = True

    def expected(self, config_name: str) -> Expectation:
        for name, value in self.expectations:
            if name == config_name:
                return value
        return None


CONFIGS: Dict[str, SemanticsConfig] = {
    "old": OLD,
    "old-gvn-view": OLD_GVN_VIEW,
    "new": NEW,
}

_MUL2_SRC = """
define i4 @f(i4 %x) {
entry:
  %y = mul i4 %x, 2
  ret i4 %y
}
"""
_MUL2_TGT = """
define i4 @f(i4 %x) {
entry:
  %y = add i4 %x, %x
  ret i4 %y
}
"""

_DIV_HOIST_SRC = """
declare void @use(i4)

define void @f(i4 %k, i1 %c) {
entry:
  %guard = icmp ne i4 %k, 0
  br i1 %guard, label %pre, label %exit
pre:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  %q = udiv i4 1, %k
  call void @use(i4 %q)
  br label %head
exit:
  ret void
}
"""
_DIV_HOIST_TGT = _DIV_HOIST_SRC.replace(
    "pre:\n  br label %head",
    "pre:\n  %q = udiv i4 1, %k\n  br label %head",
).replace("body:\n  %q = udiv i4 1, %k\n  call", "body:\n  call")

_UNSWITCH_SRC = """
declare void @foo(i4)

define void @f(i1 %c, i1 %c2) {
entry:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  call void @foo(i4 1)
  br label %exit
e:
  call void @foo(i4 2)
  br label %exit
exit:
  ret void
}
"""
_UNSWITCH_TGT = """
declare void @foo(i4)

define void @f(i1 %c, i1 %c2) {
entry:
  br i1 %c2, label %head.t, label %head.e
head.t:
  br i1 %c, label %body.t, label %exit
body.t:
  call void @foo(i4 1)
  br label %exit
head.e:
  br i1 %c, label %body.e, label %exit
body.e:
  call void @foo(i4 2)
  br label %exit
exit:
  ret void
}
"""
_UNSWITCH_TGT_FREEZE = _UNSWITCH_TGT.replace(
    "entry:\n  br i1 %c2",
    "entry:\n  %c2f = freeze i1 %c2\n  br i1 %c2f",
)

_GVN_SRC = """
declare void @foo(i4)

define void @f(i4 %x, i4 %y) {
entry:
  %t = add nsw i4 %x, 1
  %cmp = icmp eq i4 %t, %y
  br i1 %cmp, label %then, label %exit
then:
  %w = add nsw i4 %x, 1
  call void @foo(i4 %w)
  br label %exit
exit:
  ret void
}
"""
_GVN_TGT = _GVN_SRC.replace(
    "then:\n  %w = add nsw i4 %x, 1\n  call void @foo(i4 %w)",
    "then:\n  call void @foo(i4 %y)",
)

_SELECT_OR_SRC = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = select i1 %c, i1 true, i1 %x
  ret i1 %s
}
"""
_SELECT_OR_TGT = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %s = or i1 %c, %x
  ret i1 %s
}
"""
_SELECT_OR_TGT_FREEZE = """
define i1 @f(i1 %c, i1 %x) {
entry:
  %xf = freeze i1 %x
  %s = or i1 %c, %xf
  ret i1 %s
}
"""

_PHI_SELECT_SRC = """
define i4 @f(i1 %cond, i4 %a, i4 %b) {
entry:
  br i1 %cond, label %t, label %e
t:
  br label %merge
e:
  br label %merge
merge:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}
"""
_PHI_SELECT_TGT = """
define i4 @f(i1 %cond, i4 %a, i4 %b) {
entry:
  %x = select i1 %cond, i4 %a, i4 %b
  ret i4 %x
}
"""

_SELECT_UNDEF_SRC = """
define i4 @f(i1 %c, i4 %x) {
entry:
  %v = select i1 %c, i4 %x, i4 undef
  ret i4 %v
}
"""
_SELECT_UNDEF_TGT = """
define i4 @f(i1 %c, i4 %x) {
entry:
  ret i4 %x
}
"""

_UDIV_SELECT_SRC = """
define i4 @f(i4 %a) {
entry:
  %r = udiv i4 %a, 12
  ret i4 %r
}
"""
_UDIV_SELECT_TGT = """
define i4 @f(i4 %a) {
entry:
  %c = icmp ult i4 %a, 12
  %r = select i1 %c, i4 0, i4 1
  ret i4 %r
}
"""

CATALOG: Tuple[CatalogEntry, ...] = (
    CatalogEntry(
        key="mul2-to-addadd",
        paper_section="3.1",
        title="mul x, 2  ->  add x, x (duplicated SSA use)",
        src=_MUL2_SRC, tgt=_MUL2_TGT,
        expectations=(("old", False), ("old-gvn-view", False),
                      ("new", True)),
    ),
    CatalogEntry(
        key="div-hoist-guarded",
        paper_section="3.2",
        title="hoist 1/k above a k != 0-guarded loop",
        src=_DIV_HOIST_SRC, tgt=_DIV_HOIST_TGT,
        expectations=(("old", False), ("old-gvn-view", False),
                      ("new", True)),
        max_choices=40, fuel=2000,
    ),
    CatalogEntry(
        key="loop-unswitch-plain",
        paper_section="3.3",
        title="loop unswitching without freeze",
        src=_UNSWITCH_SRC, tgt=_UNSWITCH_TGT,
        expectations=(("old", True), ("old-gvn-view", False),
                      ("new", False)),
        max_choices=48,
    ),
    CatalogEntry(
        key="loop-unswitch-freeze",
        paper_section="5.1",
        title="loop unswitching with the freeze fix",
        src=_UNSWITCH_SRC, tgt=_UNSWITCH_TGT_FREEZE,
        expectations=(("old", True), ("old-gvn-view", True),
                      ("new", True)),
        max_choices=48,
    ),
    CatalogEntry(
        key="gvn-equality",
        paper_section="3.3",
        title="GVN equality propagation into a guarded block",
        src=_GVN_SRC, tgt=_GVN_TGT,
        # OLD nondet-branch: unsound (poison flows to foo); branch-UB
        # view: sound for poison but still broken by undef, so only NEW
        # (no undef) verifies outright.
        expectations=(("old", False), ("old-gvn-view", False),
                      ("new", True)),
    ),
    CatalogEntry(
        key="gvn-equality-no-undef",
        paper_section="3.3",
        title="GVN equality propagation (undef inputs excluded)",
        src=_GVN_SRC, tgt=_GVN_TGT,
        expectations=(("old", False), ("old-gvn-view", True),
                      ("new", True)),
        undef_inputs=False,
    ),
    CatalogEntry(
        key="select-to-or",
        paper_section="3.4",
        title="select c, true, x  ->  or c, x",
        src=_SELECT_OR_SRC, tgt=_SELECT_OR_TGT,
        # sound only under the arithmetic (LangRef) select reading
        expectations=(("old", True), ("old-gvn-view", False),
                      ("new", False)),
    ),
    CatalogEntry(
        key="select-to-or-freeze",
        paper_section="6",
        title="select c, true, x  ->  or c, freeze(x)",
        src=_SELECT_OR_SRC, tgt=_SELECT_OR_TGT_FREEZE,
        # sound under every reading: a poison condition is either UB in
        # the source (covers everything) or poisons both sides, and the
        # frozen arm cannot leak poison through the or
        expectations=(("old", True), ("old-gvn-view", True),
                      ("new", True)),
    ),
    CatalogEntry(
        key="phi-to-select",
        paper_section="3.4",
        title="phi of a diamond  ->  select (SimplifyCFG)",
        src=_PHI_SELECT_SRC, tgt=_PHI_SELECT_TGT,
        # breaks only under the LangRef/arithmetic reading (the
        # not-taken arm's poison leaks); under branch-on-poison-UB the
        # source is UB on the dangerous inputs, so both UB_COND and the
        # Figure-5 conditional reading are fine
        expectations=(("old", False), ("old-gvn-view", True),
                      ("new", True)),
    ),
    CatalogEntry(
        key="select-to-branch",
        paper_section="3.4",
        title="select  ->  branch (reverse predication)",
        src=_PHI_SELECT_TGT, tgt=_PHI_SELECT_SRC,
        # branching is more-UB than Figure-5 select on poison conditions
        expectations=(("old", True), ("old-gvn-view", True),
                      ("new", False)),
    ),
    CatalogEntry(
        key="select-undef-arm",
        paper_section="3.4",
        title="select c, x, undef  ->  x (PR31633)",
        src=_SELECT_UNDEF_SRC, tgt=_SELECT_UNDEF_TGT,
        # the arithmetic reading hides the bug; the conditional (UB_COND
        # approximates branch-equivalent) readings expose poison-vs-undef
        expectations=(("old", True), ("old-gvn-view", False),
                      ("new", True)),
    ),
    CatalogEntry(
        key="udiv-to-select",
        paper_section="3.4",
        title="udiv a, C  ->  select (icmp ult a, C), 0, 1",
        src=_UDIV_SELECT_SRC, tgt=_UDIV_SELECT_TGT,
        # invalid only when select-on-poison-cond is UB
        expectations=(("old", True), ("old-gvn-view", False),
                      ("new", True)),
    ),
)


def check_entry(entry: CatalogEntry, config_name: str):
    """Run the checker on one catalog cell; returns (verdict, result)."""
    from ..ir import parse_function
    from ..refine import CheckOptions, check_refinement

    config = CONFIGS[config_name]
    src = parse_function(entry.src)
    tgt = parse_function(entry.tgt)
    options = CheckOptions(
        max_choices=entry.max_choices, fuel=entry.fuel,
        undef_inputs=entry.undef_inputs,
    )
    result = check_refinement(src, tgt, config, options=options)
    return result


def render_matrix() -> str:
    """The E6 soundness-matrix table."""
    lines = [
        "E6 — Section 3 soundness matrix "
        "(OK = refinement verified, BUG = counterexample found)",
        "",
        f"  {'transformation':<44} {'§':>4} "
        + "".join(f"{name:>14}" for name in CONFIGS),
    ]
    for entry in CATALOG:
        cells = []
        for name in CONFIGS:
            result = check_entry(entry, name)
            if result.ok:
                cell = "OK"
            elif result.failed:
                cell = "BUG"
            else:
                cell = "undecided"
            expected = entry.expected(name)
            mark = ""
            if expected is True and not result.ok:
                mark = "?!"
            if expected is False and not result.failed:
                mark = "?!"
            cells.append(f"{cell + mark:>14}")
        lines.append(
            f"  {entry.title:<44} {entry.paper_section:>4} "
            + "".join(cells)
        )
    return "\n".join(lines)
