"""The measurement harness for the Section 7 experiments.

Compiles every workload under two full pipelines and measures what the
paper measured:

* **baseline** — the pre-paper compiler: no bit-field freezes in the
  frontend, OLD semantics, historical pass variants, no freeze-aware
  codegen;
* **prototype** — the paper's compiler: frozen bit-field stores, NEW
  semantics, fixed passes, freeze-aware CodeGenPrepare/inliner.

Per (workload, variant) we record:

* compile time (wall clock over frontend + middle-end + backend),
* peak compiler memory (tracemalloc, the ps-RSS analog),
* IR instruction count and freeze-instruction count (E4's 0.04–0.29%),
* object code size in model bytes (E4),
* run time in model cycles and retired instructions (E1/Figure 6),
* the checksum (verified against the locked-in reference).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..backend import compile_module, program_size, run_program
from ..diag import PassTiming, Statistic
from ..frontend import CodegenOptions, compile_c
from ..ir import FreezeInst, Module, verify_module
from ..opt import (
    OptConfig,
    PassManager,
    baseline_config,
    codegen_pipeline,
    o2_pipeline,
    prototype_config,
)
from .workloads import SUITE, Workload

NUM_FREEZE_INSTRUCTIONS = Statistic(
    "pipeline", "num-freeze-instructions",
    "Freeze instructions in optimized IR (E4 freeze density)")
NUM_IR_INSTRUCTIONS = Statistic(
    "pipeline", "num-ir-instructions",
    "Total instructions in optimized IR (E4 freeze density)")


@dataclass(frozen=True)
class Variant:
    name: str
    codegen_options: CodegenOptions
    opt_config: OptConfig


def baseline_variant() -> Variant:
    return Variant(
        "baseline",
        CodegenOptions(freeze_bitfield_stores=False),
        baseline_config(),
    )


def prototype_variant() -> Variant:
    return Variant(
        "prototype",
        CodegenOptions(freeze_bitfield_stores=True),
        prototype_config(),
    )


@dataclass
class Measurement:
    workload: str
    suite: str
    variant: str
    compile_seconds: float
    peak_memory_bytes: int
    ir_instructions: int
    freeze_instructions: int
    code_size_bytes: int
    cycles: int
    instructions_retired: int
    checksum: int
    checksum_ok: bool
    #: per-pass × per-function timing of the compile, when the caller
    #: passed a ``PassTiming`` (or left the default) — ``None`` only when
    #: measured through an older call site that opted out.
    pass_timing: Optional[PassTiming] = field(default=None, repr=False)

    @property
    def freeze_fraction(self) -> float:
        if not self.ir_instructions:
            return 0.0
        return self.freeze_instructions / self.ir_instructions


def freeze_density(module: Module) -> float:
    """Fraction of IR instructions that are ``freeze`` (E4/E8's
    0.04–0.29%), also recorded in the stats registry under
    ``pipeline/num-freeze-instructions`` and ``num-ir-instructions``."""
    total = module.num_instructions()
    freezes = sum(
        1 for fn in module.definitions()
        for inst in fn.instructions() if isinstance(inst, FreezeInst)
    )
    NUM_IR_INSTRUCTIONS.inc(total)
    NUM_FREEZE_INSTRUCTIONS.inc(freezes)
    return freezes / total if total else 0.0


def compile_workload(workload: Workload, variant: Variant,
                     measure_memory: bool = True,
                     timing: Optional[PassTiming] = None
                     ) -> Tuple[Module, float, int]:
    """Compile to optimized IR; returns (module, seconds, peak bytes).

    ``timing`` collects per-pass × per-function timing across *both*
    pipeline invocations (O2 then codegen)."""
    if measure_memory:
        tracemalloc.start()
    start = time.perf_counter()
    module = compile_c(workload.source, variant.codegen_options,
                       module_name=workload.name)
    o2_pipeline(variant.opt_config, timing=timing).run(module)
    codegen_pipeline(variant.opt_config, timing=timing).run(module)
    seconds = time.perf_counter() - start
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    else:
        peak = 0
    verify_module(module)
    return module, seconds, peak


def measure(workload: Workload, variant: Variant,
            fuel: int = 50_000_000,
            measure_memory: bool = True) -> Measurement:
    timing = PassTiming()
    module, seconds, peak = compile_workload(workload, variant,
                                             measure_memory, timing=timing)
    ir_count = module.num_instructions()
    freeze_count = sum(
        1 for fn in module.definitions()
        for inst in fn.instructions() if isinstance(inst, FreezeInst)
    )
    program = compile_module(module)
    size = program_size(program)
    checksum, cycles, retired = run_program(program, "main", [], fuel=fuel)
    return Measurement(
        workload=workload.name,
        suite=workload.suite,
        variant=variant.name,
        compile_seconds=seconds,
        peak_memory_bytes=peak,
        ir_instructions=ir_count,
        freeze_instructions=freeze_count,
        code_size_bytes=size,
        cycles=cycles,
        instructions_retired=retired,
        checksum=checksum,
        checksum_ok=(checksum == workload.expected),
        pass_timing=timing,
    )


@dataclass
class Comparison:
    workload: str
    suite: str
    baseline: Measurement
    prototype: Measurement

    @staticmethod
    def _delta(base: float, proto: float) -> float:
        if base == 0:
            return 0.0
        return (proto - base) / base * 100.0

    @property
    def runtime_delta_pct(self) -> float:
        """Positive = prototype is slower (the paper plots improvement,
        we report raw delta and flip in the Figure 6 renderer)."""
        return self._delta(self.baseline.cycles, self.prototype.cycles)

    @property
    def compile_time_delta_pct(self) -> float:
        return self._delta(self.baseline.compile_seconds,
                           self.prototype.compile_seconds)

    @property
    def memory_delta_pct(self) -> float:
        return self._delta(self.baseline.peak_memory_bytes,
                           self.prototype.peak_memory_bytes)

    @property
    def code_size_delta_pct(self) -> float:
        return self._delta(self.baseline.code_size_bytes,
                           self.prototype.code_size_bytes)


def run_suite(names: Optional[List[str]] = None,
              fuel: int = 50_000_000,
              measure_memory: bool = True,
              compile_repeats: int = 1) -> List[Comparison]:
    """Measure every workload under both variants."""
    comparisons: List[Comparison] = []
    base_v, proto_v = baseline_variant(), prototype_variant()
    for name, workload in SUITE.items():
        if names is not None and name not in names:
            continue
        base = measure(workload, base_v, fuel, measure_memory)
        proto = measure(workload, proto_v, fuel, measure_memory)
        if compile_repeats > 1:
            # take the best compile time of N runs (less timer noise)
            for _ in range(compile_repeats - 1):
                _, s, _ = compile_workload(workload, base_v, False)
                base.compile_seconds = min(base.compile_seconds, s)
                _, s, _ = compile_workload(workload, proto_v, False)
                proto.compile_seconds = min(proto.compile_seconds, s)
        comparisons.append(
            Comparison(name, workload.suite, base, proto)
        )
    return comparisons
