"""The Section 7 benchmark suite, harness, and renderers."""

from .catalog import CATALOG, CONFIGS, CatalogEntry, check_entry, render_matrix
from .harness import (
    Comparison,
    Measurement,
    Variant,
    baseline_variant,
    compile_workload,
    freeze_density,
    measure,
    prototype_variant,
    run_suite,
)
from .reporting import (
    render_code_size,
    render_compile_time,
    render_figure6,
    render_memory,
)
from .workloads import CHECKSUMS, SUITE, Workload, build_suite

__all__ = [
    "CATALOG", "CONFIGS", "CatalogEntry", "check_entry", "render_matrix",
    "Comparison", "Measurement", "Variant", "baseline_variant",
    "compile_workload", "freeze_density", "measure", "prototype_variant",
    "run_suite",
    "render_code_size", "render_compile_time", "render_figure6",
    "render_memory",
    "CHECKSUMS", "SUITE", "Workload", "build_suite",
]
