"""Renderers that print the paper's tables and figures from measurements.

``render_figure6`` prints the run-time-change series of Figure 6 (CINT
left, CFP right, positive = improved) as an ASCII bar chart plus the raw
rows; the other renderers produce the Section 7.2 paragraphs' numbers
(compile time, memory, code size, freeze fraction) as tables.
"""

from __future__ import annotations

from typing import Iterable, List

from .harness import Comparison, Measurement


def _bar(value: float, scale: float = 8.0, width: int = 24) -> str:
    """Signed horizontal bar centered at the middle of ``width``."""
    half = width // 2
    units = max(-half, min(half, round(value * scale)))
    if units >= 0:
        return " " * half + "|" + "#" * units + " " * (half - units)
    return " " * (half + units) + "#" * (-units) + "|" + " " * half


def render_figure6(comparisons: Iterable[Comparison]) -> str:
    """Figure 6: change in performance (%) per benchmark; positive =
    performance improved under the prototype."""
    lines = [
        "Figure 6 — Change in performance (%), prototype vs baseline",
        "(positive = improved, like the paper's plot)",
        "",
    ]
    for suite in ("CINT", "CFP", "Stanford"):
        rows = [c for c in comparisons if c.suite == suite]
        if not rows:
            continue
        lines.append(f"  {suite}")
        for c in rows:
            improvement = -c.runtime_delta_pct
            check = "" if (c.baseline.checksum_ok
                           and c.prototype.checksum_ok) else "  CHECKSUM!"
            lines.append(
                f"    {c.workload:<12} {improvement:+6.2f}% "
                f"{_bar(improvement)}{check}"
            )
        lines.append("")
    vals = [-c.runtime_delta_pct for c in comparisons]
    if vals:
        lines.append(
            f"  range: {min(vals):+.2f}% .. {max(vals):+.2f}%  "
            f"(paper: about -1.6% .. +1.6%, with Queens as the outlier)"
        )
    return "\n".join(lines)


def render_compile_time(comparisons: Iterable[Comparison]) -> str:
    lines = [
        "Compile time — prototype vs baseline",
        f"  {'benchmark':<12} {'base (ms)':>10} {'proto (ms)':>10} "
        f"{'delta':>8}",
    ]
    deltas = []
    for c in comparisons:
        delta = c.compile_time_delta_pct
        deltas.append(delta)
        lines.append(
            f"  {c.workload:<12} {c.baseline.compile_seconds*1e3:>10.1f} "
            f"{c.prototype.compile_seconds*1e3:>10.1f} {delta:>+7.1f}%"
        )
    if deltas:
        avg = sum(deltas) / len(deltas)
        lines.append(f"  mean delta: {avg:+.1f}%  (paper: mostly within "
                     f"±1%, small-file outliers up to ~19%)")
    return "\n".join(lines)


def render_memory(comparisons: Iterable[Comparison]) -> str:
    lines = [
        "Peak compiler memory — prototype vs baseline",
        f"  {'benchmark':<12} {'base (KB)':>10} {'proto (KB)':>10} "
        f"{'delta':>8}",
    ]
    for c in comparisons:
        lines.append(
            f"  {c.workload:<12} {c.baseline.peak_memory_bytes/1024:>10.0f} "
            f"{c.prototype.peak_memory_bytes/1024:>10.0f} "
            f"{c.memory_delta_pct:>+7.1f}%"
        )
    lines.append("  (paper: unchanged for most benchmarks, max +2%)")
    return "\n".join(lines)


def render_code_size(comparisons: Iterable[Comparison]) -> str:
    lines = [
        "Object code size and freeze fraction — prototype vs baseline",
        f"  {'benchmark':<12} {'base (B)':>9} {'proto (B)':>9} "
        f"{'delta':>8} {'freeze/IR':>10}",
    ]
    for c in comparisons:
        frac = c.prototype.freeze_fraction * 100
        lines.append(
            f"  {c.workload:<12} {c.baseline.code_size_bytes:>9} "
            f"{c.prototype.code_size_bytes:>9} "
            f"{c.code_size_delta_pct:>+7.1f}% {frac:>9.2f}%"
        )
    lines.append(
        "  (paper: size within ±0.5%; freeze 0.04–0.06% of IR, 0.29% "
        "for bit-field-heavy gcc)"
    )
    return "\n".join(lines)


def render_summary_row(m: Measurement) -> str:
    return (
        f"{m.workload:<12} {m.variant:<10} ir={m.ir_instructions:<6} "
        f"freeze={m.freeze_instructions:<4} size={m.code_size_bytes:<7} "
        f"cycles={m.cycles:<10} ok={m.checksum_ok}"
    )
