"""The SPEC-CPU-analog MiniC workload suite.

Section 7 of the paper evaluates on SPEC CPU 2006 (C/C++ INT + FP), LNT,
and large single-file programs.  We mirror the *shape* of that suite
with deterministic integer kernels named for the SPEC benchmark whose
character they borrow — e.g. the ``gcc`` analog is bit-field heavy
because the paper singles out gcc as the benchmark where bit-field
lowering makes freeze instructions 0.29% of the IR.

Every workload defines ``int main()`` returning a checksum so the
harness can verify that both pipelines computed the same thing.
``queens`` is the "Stanford Queens" program from the paper's run-time
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Workload:
    name: str
    suite: str  # "CINT" | "CFP" | "Stanford"
    source: str
    expected: int  # checksum main() must return


_BZIP2 = """
// run-length + move-to-front flavored bit mangling
int buf[64];
int out[64];

int compress_block(unsigned int seed) {
    int crc = seed;
    for (int i = 0; i < 64; i++) {
        buf[i] = (seed * (i + 7) + (i << 3)) & 255;
    }
    int run = 0;
    int last = 0 - 1;
    int pos = 0;
    for (int i = 0; i < 64; i++) {
        int v = buf[i];
        if (v == last) {
            run++;
            if (run == 4) { out[pos] = 256 | run; pos++; run = 0; }
        } else {
            out[pos] = v; pos++;
            last = v; run = 1;
        }
        crc = ((crc << 1) ^ v) & 16777215;
    }
    for (int i = 0; i < pos; i++) {
        crc = (crc + out[i] * 31) & 16777215;
    }
    return crc;
}

int main() {
    int acc = 0;
    for (int round = 1; round <= 40; round++) {
        acc = (acc + compress_block(round * 2654435761)) & 16777215;
    }
    return acc;
}
"""

_GCC = """
// bit-field heavy: instruction encodings, the paper's freeze hotspot
struct insn {
    unsigned int opcode : 6;
    unsigned int dst : 5;
    unsigned int src1 : 5;
    unsigned int src2 : 5;
    unsigned int flags : 4;
    unsigned int imm : 7;
};
struct insn cur;

struct rtl {
    int mode : 4;
    int code : 8;
    int volatil : 1;
    int in_struct : 1;
    int used : 1;
};
struct rtl node;

int encode(int op, int d, int a, int b, int fl, int im) {
    cur.opcode = op;
    cur.dst = d;
    cur.src1 = a;
    cur.src2 = b;
    cur.flags = fl;
    cur.imm = im;
    return cur.opcode * 100000 + cur.dst * 1000 + cur.src1 * 100
         + cur.src2 * 10 + cur.flags + cur.imm;
}

int fold_node(int mode, int code) {
    node.mode = mode;
    node.code = code;
    node.volatil = code & 1;
    node.in_struct = (code >> 1) & 1;
    node.used = (code >> 2) & 1;
    return node.mode * 64 + node.code + node.volatil
         + node.in_struct * 2 + node.used * 4;
}

int main() {
    int acc = 0;
    for (int i = 0; i < 300; i++) {
        acc = (acc + encode(i & 63, i & 31, (i + 1) & 31, (i + 2) & 31,
                            i & 15, i & 127)) & 1048575;
        acc = (acc + fold_node(i & 7, i & 255)) & 1048575;
    }
    return acc;
}
"""

_MCF = """
// network simplex flavored: relaxation sweeps over an array graph
int cost[128];
int dist[128];

int main() {
    for (int i = 0; i < 128; i++) {
        cost[i] = ((i * 2654435761) & 1023) + 1;
        dist[i] = 1000000;
    }
    dist[0] = 0;
    for (int round = 0; round < 40; round++) {
        for (int i = 1; i < 128; i++) {
            int via = dist[i - 1] + cost[i];
            if (via < dist[i]) dist[i] = via;
            int back = dist[i] + cost[i - 1];
            if (i > 1 && back < dist[i - 1]) dist[i - 1] = back;
        }
    }
    int acc = 0;
    for (int i = 0; i < 128; i++) acc = (acc + dist[i]) & 1048575;
    return acc;
}
"""

_GOBMK = """
// board scanning: liberties counting on a small Go-ish board
int board[81];

int liberties(int pos) {
    int libs = 0;
    int r = pos / 9;
    int c = pos % 9;
    if (r > 0 && board[pos - 9] == 0) libs++;
    if (r < 8 && board[pos + 9] == 0) libs++;
    if (c > 0 && board[pos - 1] == 0) libs++;
    if (c < 8 && board[pos + 1] == 0) libs++;
    return libs;
}

int main() {
    int acc = 0;
    for (int game = 0; game < 30; game++) {
        for (int i = 0; i < 81; i++) {
            board[i] = ((i * 7 + game * 13) % 3 == 0) ? 1 : 0;
        }
        for (int i = 0; i < 81; i++) {
            if (board[i] != 0) acc += liberties(i);
        }
    }
    return acc;
}
"""

_HMMER = """
// profile HMM flavored: banded dynamic programming with max()
int row[96];
int prev[96];

int max2(int a, int b) { return a > b ? a : b; }

int main() {
    for (int j = 0; j < 96; j++) prev[j] = (j * 37) & 255;
    int acc = 0;
    for (int i = 1; i < 60; i++) {
        for (int j = 1; j < 96; j++) {
            int match = prev[j - 1] + ((i * j) & 31);
            int del = prev[j] - 3;
            int ins = row[j - 1] - 5;
            row[j] = max2(match, max2(del, ins));
        }
        for (int j = 0; j < 96; j++) prev[j] = row[j];
        acc = (acc + row[95]) & 1048575;
    }
    return acc;
}
"""

_SJENG = """
// alpha-beta flavored recursion over a toy evaluation
int nodes = 0;

int eval(int depth, int pos) {
    return ((pos * 2654435761) >> 8) & 255;
}

int search(int depth, int pos, int alpha, int beta) {
    nodes++;
    if (depth == 0) return eval(depth, pos);
    int best = 0 - 10000;
    for (int move = 0; move < 4; move++) {
        int child = pos * 5 + move + depth;
        int score = 0 - search(depth - 1, child, 0 - beta, 0 - alpha);
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;
    }
    return best;
}

int main() {
    int acc = 0;
    for (int root = 0; root < 8; root++) {
        acc = (acc + search(5, root, 0 - 10000, 10000)) & 1048575;
    }
    return acc + (nodes & 4095);
}
"""

_LIBQUANTUM = """
// quantum register simulation flavored: xor/shift over a state array
unsigned int state[64];

void toffoli(int c1, int c2, int target) {
    for (int i = 0; i < 64; i++) {
        unsigned int s = state[i];
        if (((s >> c1) & 1) && ((s >> c2) & 1)) {
            state[i] = s ^ (1 << target);
        }
    }
}

void sigma_x(int target) {
    for (int i = 0; i < 64; i++) state[i] = state[i] ^ (1 << target);
}

int main() {
    for (int i = 0; i < 64; i++) state[i] = i * 2654435761;
    for (int round = 0; round < 25; round++) {
        toffoli(round % 5, (round + 1) % 7, round % 11);
        sigma_x(round % 13);
    }
    unsigned int acc = 0;
    for (int i = 0; i < 64; i++) acc = acc ^ state[i];
    return acc & 1048575;
}
"""

_H264REF = """
// motion estimation flavored: sum of absolute differences
int frame0[64];
int frame1[64];

int sad_block(int offset) {
    int sad = 0;
    for (int i = 0; i < 16; i++) {
        int a = frame0[(i + offset) & 63];
        int b = frame1[i];
        int d = a - b;
        sad += d < 0 ? 0 - d : d;
    }
    return sad;
}

int main() {
    for (int i = 0; i < 64; i++) {
        frame0[i] = (i * 29) & 255;
        frame1[i] = (i * 31 + 17) & 255;
    }
    int best = 1 << 30;
    int best_off = 0;
    int acc = 0;
    for (int frame = 0; frame < 40; frame++) {
        for (int off = 0; off < 16; off++) {
            int s = sad_block(off + frame);
            if (s < best) { best = s; best_off = off; }
            acc = (acc + s) & 1048575;
        }
    }
    return acc + best_off;
}
"""

_ASTAR = """
// grid pathfinding flavored: wavefront distance relaxation
int grid[100];
int dist[100];

int main() {
    for (int i = 0; i < 100; i++) {
        grid[i] = ((i * 2654435761) & 7) == 0 ? 1 : 0;  // obstacles
        dist[i] = 1 << 20;
    }
    grid[0] = 0;
    dist[0] = 0;
    for (int sweep = 0; sweep < 24; sweep++) {
        for (int i = 0; i < 100; i++) {
            if (grid[i] != 0) continue;
            int r = i / 10; int c = i % 10;
            int best = dist[i];
            if (r > 0 && dist[i - 10] + 1 < best) best = dist[i - 10] + 1;
            if (r < 9 && dist[i + 10] + 1 < best) best = dist[i + 10] + 1;
            if (c > 0 && dist[i - 1] + 1 < best) best = dist[i - 1] + 1;
            if (c < 9 && dist[i + 1] + 1 < best) best = dist[i + 1] + 1;
            dist[i] = best;
        }
    }
    int acc = 0;
    for (int i = 0; i < 100; i++) {
        acc = (acc + (dist[i] < (1 << 20) ? dist[i] : 99)) & 1048575;
    }
    return acc;
}
"""

_OMNETPP = """
// discrete event simulation flavored: ring event queue
int queue_time[32];
int queue_kind[32];

int main() {
    int head = 0;
    int tail = 0;
    int clock = 0;
    int acc = 0;
    queue_time[0] = 1; queue_kind[0] = 1; tail = 1;
    int events = 0;
    while (head != tail && events < 4000) {
        int t = queue_time[head];
        int kind = queue_kind[head];
        head = (head + 1) % 32;
        events++;
        clock = t;
        acc = (acc + kind * 7 + (clock & 63)) & 1048575;
        int next = (tail + 1) % 32;
        if (next != head) {
            queue_time[tail] = clock + 1 + (kind * 3 + clock) % 5;
            queue_kind[tail] = (kind * 2654435761) & 7;
            tail = next;
        }
        if (kind == 3 && next != head) {
            int n2 = (tail + 1) % 32;
            if (n2 != head) {
                queue_time[tail] = clock + 2;
                queue_kind[tail] = 1;
                tail = n2;
            }
        }
    }
    return acc + events;
}
"""

_XALANCBMK = """
// XML transform flavored: symbol hashing and dispatch
int table[64];

int hash_sym(int sym) {
    unsigned int h = sym * 2654435761;
    h = h ^ (h >> 15);
    h = h * 2246822519;
    h = h ^ (h >> 13);
    return h & 63;
}

int main() {
    int acc = 0;
    for (int doc = 0; doc < 50; doc++) {
        for (int i = 0; i < 64; i++) table[i] = 0;
        for (int tok = 0; tok < 96; tok++) {
            int sym = doc * 131 + tok * 7;
            int slot = hash_sym(sym);
            int probes = 0;
            while (table[slot] != 0 && table[slot] != sym && probes < 64) {
                slot = (slot + 1) & 63;
                probes++;
            }
            table[slot] = sym;
            acc = (acc + slot + probes) & 1048575;
        }
    }
    return acc;
}
"""

_PERLBENCH = """
// interpreter dispatch flavored: opcode switch over a bytecode tape
int tape[48];
int stack[16];

int run(int seed) {
    for (int i = 0; i < 48; i++) tape[i] = (seed * (i + 3)) & 7;
    int sp = 0;
    int accum = seed & 255;
    for (int pc = 0; pc < 48; pc++) {
        int op = tape[pc];
        if (op == 0) { accum = accum + 1; }
        else if (op == 1) { accum = accum * 3; }
        else if (op == 2) { if (sp < 15) { stack[sp] = accum; sp++; } }
        else if (op == 3) { if (sp > 0) { sp--; accum = accum ^ stack[sp]; } }
        else if (op == 4) { accum = accum >> 1; }
        else if (op == 5) { accum = accum << 1; }
        else if (op == 6) { accum = accum - 7; }
        else { accum = accum ^ 85; }
        accum = accum & 65535;
    }
    return accum;
}

int main() {
    int acc = 0;
    for (int s = 1; s <= 60; s++) acc = (acc + run(s)) & 1048575;
    return acc;
}
"""

_MILC = """
// lattice QCD flavored (integer): su3-ish 3x3 updates over a lattice
int lattice[108];  // 12 sites x 9 entries

int main() {
    for (int i = 0; i < 108; i++) lattice[i] = (i * 37 + 11) & 255;
    int acc = 0;
    for (int sweep = 0; sweep < 25; sweep++) {
        for (int site = 0; site < 12; site++) {
            int base = site * 9;
            for (int r = 0; r < 3; r++) {
                for (int c = 0; c < 3; c++) {
                    int sum = 0;
                    for (int k = 0; k < 3; k++) {
                        sum += lattice[base + r * 3 + k]
                             * lattice[((site + 1) % 12) * 9 + k * 3 + c];
                    }
                    lattice[base + r * 3 + c] = (sum >> 4) & 255;
                }
            }
        }
        acc = (acc + lattice[sweep % 108]) & 1048575;
    }
    return acc;
}
"""

_NAMD = """
// molecular dynamics flavored (fixed point): pairwise force loops
int px[24]; int py[24];
int fx[24]; int fy[24];

int main() {
    for (int i = 0; i < 24; i++) {
        px[i] = (i * 97) & 1023;
        py[i] = (i * 57 + 31) & 1023;
    }
    int acc = 0;
    for (int step = 0; step < 30; step++) {
        for (int i = 0; i < 24; i++) { fx[i] = 0; fy[i] = 0; }
        for (int i = 0; i < 24; i++) {
            for (int j = i + 1; j < 24; j++) {
                int dx = px[i] - px[j];
                int dy = py[i] - py[j];
                int r2 = dx * dx + dy * dy + 1;
                int f = 65536 / r2;
                fx[i] += f * dx / 64; fy[i] += f * dy / 64;
                fx[j] -= f * dx / 64; fy[j] -= f * dy / 64;
            }
        }
        for (int i = 0; i < 24; i++) {
            px[i] = (px[i] + fx[i] / 16) & 1023;
            py[i] = (py[i] + fy[i] / 16) & 1023;
        }
        acc = (acc + px[step % 24] + py[(step * 7) % 24]) & 1048575;
    }
    return acc;
}
"""

_LBM = """
// lattice Boltzmann flavored: 1-D stencil streaming
int cells[130];
int next[130];

int main() {
    for (int i = 0; i < 130; i++) cells[i] = ((i * 2654435761) >> 7) & 511;
    int acc = 0;
    for (int t = 0; t < 60; t++) {
        for (int i = 1; i < 129; i++) {
            int flow = (cells[i - 1] + 2 * cells[i] + cells[i + 1]) / 4;
            int relaxed = cells[i] + (flow - cells[i]) / 2;
            next[i] = relaxed & 511;
        }
        next[0] = next[1];
        next[129] = next[128];
        for (int i = 0; i < 130; i++) cells[i] = next[i];
        acc = (acc + cells[(t * 13) % 130]) & 1048575;
    }
    return acc;
}
"""

_SPHINX3 = """
// speech decoding flavored: Gaussian scoring inner products
int feat[32];
int mean[32];
int var_inv[32];

int score_frame(unsigned int seed) {
    for (int i = 0; i < 32; i++) {
        feat[i] = (seed * (i + 1)) & 255;
    }
    int score = 0;
    for (int i = 0; i < 32; i++) {
        int d = feat[i] - mean[i];
        score += d * d * var_inv[i] / 256;
    }
    return score;
}

int main() {
    for (int i = 0; i < 32; i++) {
        mean[i] = (i * 11 + 3) & 255;
        var_inv[i] = (i & 7) + 1;
    }
    int acc = 0;
    int best = 1 << 30;
    for (int frame = 0; frame < 120; frame++) {
        int s = score_frame(frame * 2654435761);
        if (s < best) best = s;
        acc = (acc + s) & 1048575;
    }
    return acc + (best & 255);
}
"""

_DEALII = """
// finite element flavored: small dense matrix-vector products
int mat[64];
int vec[8];
int out[8];

int main() {
    for (int i = 0; i < 64; i++) mat[i] = ((i * 2654435761) >> 9) & 127;
    for (int i = 0; i < 8; i++) vec[i] = i + 1;
    int acc = 0;
    for (int iter = 0; iter < 120; iter++) {
        for (int r = 0; r < 8; r++) {
            int sum = 0;
            for (int c = 0; c < 8; c++) sum += mat[r * 8 + c] * vec[c];
            out[r] = sum & 65535;
        }
        for (int i = 0; i < 8; i++) vec[i] = (out[i] >> 3) + 1;
        acc = (acc + out[iter % 8]) & 1048575;
    }
    return acc;
}
"""

_SOPLEX = """
// simplex flavored: ratio-test pivot search over a tableau column
int column[96];
int rhs[96];

int main() {
    int acc = 0;
    for (int pivot = 0; pivot < 60; pivot++) {
        for (int i = 0; i < 96; i++) {
            column[i] = (((i + pivot) * 2654435761) >> 6) & 63;
            rhs[i] = (((i + pivot) * 40503) >> 4) & 1023;
        }
        int best = 1 << 30;
        int best_row = 0 - 1;
        for (int i = 0; i < 96; i++) {
            if (column[i] > 0) {
                int ratio = rhs[i] * 64 / column[i];
                if (ratio < best) { best = ratio; best_row = i; }
            }
        }
        acc = (acc + best + best_row) & 1048575;
    }
    return acc;
}
"""

_POVRAY = """
// ray marching flavored (fixed point): sphere distance stepping
int march(int ox, int oy, int dx, int dy) {
    int x = ox; int y = oy;
    int steps = 0;
    while (steps < 40) {
        int cx = x - 512; int cy = y - 512;
        int d2 = cx / 8 * (cx / 8) + cy / 8 * (cy / 8);
        int dist = d2 / 64 - 60;
        if (dist < 2) return steps;
        x += dx * dist / 128;
        y += dy * dist / 128;
        if (x < 0 || x > 4096 || y < 0 || y > 4096) return 40;
        steps++;
    }
    return steps;
}

int main() {
    int acc = 0;
    for (int py = 0; py < 12; py++) {
        for (int px = 0; px < 12; px++) {
            acc = (acc + march(px * 340, py * 340, 64 - px * 9,
                               64 - py * 9)) & 1048575;
        }
    }
    return acc;
}
"""

_QUEENS = """
// the Stanford Queens program from the paper's run-time discussion
int rows[8];
int diag1[15];
int diag2[15];
int count = 0;

void place(int col) {
    if (col == 8) { count++; return; }
    for (int r = 0; r < 8; r++) {
        if (rows[r] == 0 && diag1[r + col] == 0 && diag2[r - col + 7] == 0) {
            rows[r] = 1; diag1[r + col] = 1; diag2[r - col + 7] = 1;
            place(col + 1);
            rows[r] = 0; diag1[r + col] = 0; diag2[r - col + 7] = 0;
        }
    }
}

int main() {
    place(0);
    return count;
}
"""


#: reference checksums, computed once with the unoptimized pipeline and
#: locked in: every (pipeline, backend) combination must reproduce them.
CHECKSUMS = {
    "bzip2": 1924368,
    "gcc": 145968,
    "mcf": 44288,
    "gobmk": 1440,
    "hmmer": 49932,
    "sjeng": 1051517,
    "libquantum": 944532,
    "h264ref": 866984,
    "astar": 1987,
    "omnetpp": 157904,
    "xalancbmk": 266832,
    "perlbench": 44813,
    "milc": 3570,
    "namd": 25610,
    "lbm": 15073,
    "sphinx3": 734618,
    "dealII": 485698,
    "soplex": 4650,
    "povray": 5486,
    "queens": 92,
}


def build_suite() -> Dict[str, Workload]:
    """All workloads, with their locked-in reference checksums."""
    raw = [
        ("bzip2", "CINT", _BZIP2),
        ("gcc", "CINT", _GCC),
        ("mcf", "CINT", _MCF),
        ("gobmk", "CINT", _GOBMK),
        ("hmmer", "CINT", _HMMER),
        ("sjeng", "CINT", _SJENG),
        ("libquantum", "CINT", _LIBQUANTUM),
        ("h264ref", "CINT", _H264REF),
        ("astar", "CINT", _ASTAR),
        ("omnetpp", "CINT", _OMNETPP),
        ("xalancbmk", "CINT", _XALANCBMK),
        ("perlbench", "CINT", _PERLBENCH),
        ("milc", "CFP", _MILC),
        ("namd", "CFP", _NAMD),
        ("lbm", "CFP", _LBM),
        ("sphinx3", "CFP", _SPHINX3),
        ("dealII", "CFP", _DEALII),
        ("soplex", "CFP", _SOPLEX),
        ("povray", "CFP", _POVRAY),
        ("queens", "Stanford", _QUEENS),
    ]
    return {
        name: Workload(name, suite, source, expected=CHECKSUMS[name])
        for name, suite, source in raw
    }


SUITE = build_suite()
