"""opt-fuzz: small-function generation for pipeline validation (E5)."""

from .optfuzz import (
    DEFAULT_OPCODES,
    SMALL_OPCODES,
    count_functions,
    enumerate_functions,
    random_functions,
)

__all__ = [
    "DEFAULT_OPCODES", "SMALL_OPCODES", "count_functions",
    "enumerate_functions", "random_functions",
]
