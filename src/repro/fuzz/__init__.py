"""opt-fuzz: small-function generation for pipeline validation (E5)."""

from .optfuzz import (
    DEFAULT_OPCODES,
    SMALL_OPCODES,
    count_functions,
    enumerate_functions,
    enumeration_size,
    function_at_index,
    random_functions,
)

__all__ = [
    "DEFAULT_OPCODES", "SMALL_OPCODES", "count_functions",
    "enumerate_functions", "enumeration_size", "function_at_index",
    "random_functions",
]
