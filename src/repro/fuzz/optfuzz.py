"""opt-fuzz: exhaustive and random generation of small IR functions.

Section 6 of the paper: "we used opt-fuzz to exhaustively generate all
LLVM functions with three instructions (over 2-bit integer arithmetic)
and then we used Alive to validate both individual passes (InstCombine,
GVN, Reassociation, and SCCP) and the collection of passes implied by
the -O2 compiler flag."

:func:`enumerate_functions` generates the same shape of corpus:
straight-line functions over ``iW`` with a configurable opcode set,
operands drawn from the two arguments, all constants, previous results,
and (optionally) ``undef``/``poison``.  The full 3-instruction space is
huge in Python terms, so the E5 harness uses exhaustive 1–2-instruction
corpora plus a seeded random sample of the 3-instruction space —
:func:`random_functions`.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence, Tuple

from ..diag import Statistic
from ..ir import (
    BinaryInst,
    Function,
    FunctionType,
    IcmpInst,
    IcmpPred,
    IntType,
    Module,
    Opcode,
    PoisonValue,
    ReturnInst,
    SelectInst,
    UndefValue,
    Value,
)
from ..ir.basicblock import BasicBlock

DEFAULT_OPCODES: Tuple[Opcode, ...] = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL,
    Opcode.UDIV, Opcode.SDIV,
    Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.LSHR, Opcode.ASHR,
)

#: a cheaper set for exhaustive sweeps
SMALL_OPCODES: Tuple[Opcode, ...] = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
    Opcode.XOR, Opcode.SHL,
)

NUM_ENUMERATED = Statistic(
    "optfuzz", "num-functions-enumerated",
    "Functions produced by exhaustive enumeration")
NUM_RANDOM = Statistic(
    "optfuzz", "num-random-functions",
    "Functions produced by seeded random sampling")


class _Spec:
    """Declarative description of one instruction to build."""

    __slots__ = ("kind", "opcode", "pred", "operands", "flags")

    def __init__(self, kind, opcode=None, pred=None, operands=(),
                 flags=()):
        self.kind = kind          # "bin" | "icmp" | "select"
        self.opcode = opcode
        self.pred = pred
        self.operands = operands  # indices into the value pool
        self.flags = flags        # subset of ("nsw", "nuw")


def _operand_pool_size(num_args: int, width: int, prior: int,
                       deferred: bool) -> int:
    constants = 1 << width
    return num_args + constants + (2 if deferred else 0) + prior


def _materialize(specs: Sequence[_Spec], width: int, num_args: int,
                 deferred: bool, name: str) -> Function:
    module = Module(name)
    ty = IntType(width)
    fn = Function(
        FunctionType(ty, tuple(ty for _ in range(num_args))),
        "f", module=module,
        arg_names=[chr(ord("a") + i) for i in range(num_args)],
    )
    block = BasicBlock("entry", parent=fn)

    pool: List[Value] = list(fn.args)
    from ..ir.values import ConstantInt

    for c in range(1 << width):
        pool.append(ConstantInt(ty, c))
    if deferred:
        pool.append(UndefValue(ty))
        pool.append(PoisonValue(ty))

    last_int: Optional[Value] = None
    for i, spec in enumerate(specs):
        ops = [pool[j] for j in spec.operands]
        if spec.kind == "bin":
            inst = BinaryInst(
                spec.opcode, ops[0], ops[1], f"v{i}",
                nsw="nsw" in spec.flags, nuw="nuw" in spec.flags,
            )
        elif spec.kind == "icmp":
            inst = IcmpInst(spec.pred, ops[0], ops[1], f"v{i}")
        elif spec.kind == "select":
            inst = SelectInst(ops[0], ops[1], ops[2], f"v{i}")
        else:  # pragma: no cover
            raise ValueError(spec.kind)
        block.append(inst)
        if inst.type is ty:
            last_int = inst
        pool.append(inst)

    if last_int is None:
        last_int = pool[0] if num_args else pool[num_args]
    block.append(ReturnInst(last_int))
    return fn


def _enum_spaces(num_instructions: int, width: int, num_args: int,
                 opcodes: Sequence[Opcode], include_deferred: bool,
                 include_flags: bool) -> List[List[_Spec]]:
    """The per-position spec spaces whose product is the corpus."""

    def spec_space(position: int) -> Iterator[_Spec]:
        pool = _operand_pool_size(num_args, width, position,
                                  include_deferred)
        for opcode in opcodes:
            flag_sets: List[Tuple[str, ...]] = [()]
            if include_flags and opcode in (Opcode.ADD, Opcode.SUB,
                                            Opcode.MUL, Opcode.SHL):
                flag_sets.append(("nsw",))
            for flags in flag_sets:
                for a, b in itertools.product(range(pool), repeat=2):
                    yield _Spec("bin", opcode=opcode, operands=(a, b),
                                flags=flags)

    return [list(spec_space(i)) for i in range(num_instructions)]


def _decode_index(spaces: Sequence[Sequence[_Spec]],
                  index: int) -> Tuple[_Spec, ...]:
    """Mixed-radix decode of a corpus index into one spec per position.

    Matches the ordering of ``itertools.product(*spaces)`` (the last
    position varies fastest), so slicing by index is equivalent to
    slicing the historical enumeration stream."""
    specs: List[Optional[_Spec]] = [None] * len(spaces)
    for i in range(len(spaces) - 1, -1, -1):
        index, digit = divmod(index, len(spaces[i]))
        specs[i] = spaces[i][digit]
    return tuple(specs)  # type: ignore[arg-type]


def enumerate_functions(num_instructions: int, width: int = 2,
                        num_args: int = 2,
                        opcodes: Sequence[Opcode] = SMALL_OPCODES,
                        include_deferred: bool = True,
                        include_flags: bool = False,
                        limit: Optional[int] = None,
                        start: int = 0,
                        stop: Optional[int] = None) -> Iterator[Function]:
    """Exhaustively enumerate straight-line functions.

    Mirrors opt-fuzz's corpus: ``num_instructions`` binary operations
    over ``iW``, operands drawn from arguments, constants, undef/poison,
    and prior results.

    The enumeration order is a fixed function of the parameters, and
    ``start``/``stop`` address it by index *without* walking the prefix:
    ``enumerate_functions(n, start=a, stop=b)`` produces exactly the
    functions a full enumeration would yield at positions ``[a, b)``.
    Campaign shards rely on this to partition the space.  ``limit``
    additionally caps the number of functions yielded."""
    spaces = _enum_spaces(num_instructions, width, num_args, opcodes,
                          include_deferred, include_flags)
    total = 1
    for space in spaces:
        total *= len(space)
    start = max(0, start)
    stop = total if stop is None else min(stop, total)
    if limit is not None:
        stop = min(stop, start + limit)
    for index in range(start, stop):
        NUM_ENUMERATED.inc()
        yield _materialize(_decode_index(spaces, index), width, num_args,
                           include_deferred, f"fuzz{index}")


def function_at_index(index: int, num_instructions: int, width: int = 2,
                      num_args: int = 2,
                      opcodes: Sequence[Opcode] = SMALL_OPCODES,
                      include_deferred: bool = True,
                      include_flags: bool = False) -> Function:
    """Random access into the enumeration space: the function a full
    ``enumerate_functions`` run would yield at position ``index``."""
    spaces = _enum_spaces(num_instructions, width, num_args, opcodes,
                          include_deferred, include_flags)
    total = 1
    for space in spaces:
        total *= len(space)
    if not 0 <= index < total:
        raise IndexError(f"corpus index {index} out of range [0, {total})")
    return _materialize(_decode_index(spaces, index), width, num_args,
                        include_deferred, f"fuzz{index}")


def count_functions(num_instructions: int, width: int = 2,
                    num_args: int = 2,
                    opcodes: Sequence[Opcode] = SMALL_OPCODES,
                    include_deferred: bool = True) -> int:
    total = 1
    for i in range(num_instructions):
        pool = _operand_pool_size(num_args, width, i, include_deferred)
        total *= len(opcodes) * pool * pool
    return total


def enumeration_size(num_instructions: int, width: int = 2,
                     num_args: int = 2,
                     opcodes: Sequence[Opcode] = SMALL_OPCODES,
                     include_deferred: bool = True,
                     include_flags: bool = False) -> int:
    """Exact size of the :func:`enumerate_functions` space — unlike
    :func:`count_functions` this accounts for ``include_flags``."""
    spaces = _enum_spaces(num_instructions, width, num_args, opcodes,
                          include_deferred, include_flags)
    total = 1
    for space in spaces:
        total *= len(space)
    return total


def random_functions(count: int, num_instructions: int = 3,
                     width: int = 2, num_args: int = 2,
                     opcodes: Sequence[Opcode] = DEFAULT_OPCODES,
                     include_deferred: bool = True,
                     include_flags: bool = True,
                     include_select: bool = True,
                     seed: int = 0,
                     rng: Optional[random.Random] = None) -> Iterator[Function]:
    """Seeded random sample of the larger spaces (3+ instructions,
    flags, icmp/select).

    **Determinism:** the stream is a pure function of the generator
    parameters and the seed.  ``random.Random`` produces identical
    sequences for a given seed across processes and supported Python
    versions, so two workers (or a run and its later resume) that
    construct the same stream draw byte-identical corpora.  Pass ``rng``
    to supply the generator state explicitly — e.g. a campaign shard's
    derived stream — in which case ``seed`` is ignored."""
    rng = rng if rng is not None else random.Random(seed)
    preds = list(IcmpPred)
    for n in range(count):
        specs: List[_Spec] = []
        bool_positions: List[int] = []  # pool indices holding i1 values
        for i in range(num_instructions):
            pool = _operand_pool_size(num_args, width, i, include_deferred)
            # pool slots holding i1 results (icmp outputs) are only
            # usable as select conditions
            int_indices = [j for j in range(pool)
                           if j not in bool_positions]
            kind = "bin"
            if include_select and bool_positions and rng.random() < 0.15:
                kind = "select"
            elif rng.random() < 0.15:
                kind = "icmp"
            if kind == "bin":
                opcode = rng.choice(list(opcodes))
                flags: Tuple[str, ...] = ()
                if include_flags and opcode in (Opcode.ADD, Opcode.SUB,
                                                Opcode.MUL, Opcode.SHL) \
                        and rng.random() < 0.3:
                    flags = ("nsw",) if rng.random() < 0.7 else ("nuw",)
                specs.append(_Spec(
                    "bin", opcode=opcode, flags=flags,
                    operands=(rng.choice(int_indices),
                              rng.choice(int_indices)),
                ))
            elif kind == "icmp":
                specs.append(_Spec(
                    "icmp", pred=rng.choice(preds),
                    operands=(rng.choice(int_indices),
                              rng.choice(int_indices)),
                ))
                bool_positions.append(
                    _operand_pool_size(num_args, width, i,
                                       include_deferred))
            else:
                specs.append(_Spec(
                    "select",
                    operands=(rng.choice(bool_positions),
                              rng.choice(int_indices),
                              rng.choice(int_indices)),
                ))
        NUM_RANDOM.inc()
        yield _materialize(specs, width, num_args, include_deferred,
                           f"rand{n}")
