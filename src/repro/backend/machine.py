"""Machine-level interpreter and assembly printer.

The interpreter executes :class:`MachineFunction` code deterministically
and counts cycles using the target latency model — this produces the
run-time measurements of experiment E1.  Undef registers (lowered
poison) read as a pinned 0, per the paper's "pinned undef registers".

The assembly printer renders AT&T-ish assembly and computes the encoded
size of each function with the target's size model — experiment E4's
object-code size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.instructions import IcmpPred
from .mi import Imm, MachineBasicBlock, MachineFunction, MachineInstr, VReg
from .target import BASE_SIZE, LATENCY, MOp, REG_NAMES

_MASK32 = 0xFFFFFFFF


class MachineTrap(Exception):
    """The machine executed a trap (lowered ``unreachable``) or a
    division by zero."""


class MachineProgram:
    """A set of machine functions plus global storage layout."""

    def __init__(self, functions: Dict[str, MachineFunction],
                 globals_sizes: Dict[str, int],
                 global_inits: Optional[Dict[str, bytes]] = None):
        self.functions = functions
        self.global_sizes = globals_sizes
        self.global_inits = global_inits or {}


class MachineInterpreter:
    STACK_BASE = 0x8000_0000
    GLOBAL_BASE = 0x1000

    def __init__(self, program: MachineProgram, fuel: int = 5_000_000):
        self.program = program
        self.memory: Dict[int, int] = {}  # byte-addressed
        self.global_addr: Dict[str, int] = {}
        self.cycles = 0
        self.instructions_retired = 0
        self.fuel = fuel
        self.stack_pointer = self.STACK_BASE
        addr = self.GLOBAL_BASE
        for name, size in sorted(program.global_sizes.items()):
            self.global_addr[name] = addr
            init = program.global_inits.get(name)
            if init is not None:
                for i, byte in enumerate(init):
                    self.memory[addr + i] = byte
            addr = (addr + size + 15) & ~15

    # -- memory helpers ----------------------------------------------------------
    def load(self, addr: int, bits: int) -> int:
        nbytes = (bits + 7) // 8
        value = 0
        for i in range(nbytes):
            value |= self.memory.get((addr + i) & _MASK32, 0) << (8 * i)
        return value & ((1 << bits) - 1)

    def store(self, addr: int, value: int, bits: int) -> None:
        nbytes = (bits + 7) // 8
        # partial final byte: read-modify-write
        if bits % 8:
            old = self.memory.get((addr + nbytes - 1) & _MASK32, 0)
            keep_mask = 0xFF & ~((1 << (bits % 8)) - 1)
            last = ((value >> (8 * (nbytes - 1))) & 0xFF) \
                | (old & keep_mask)
        for i in range(nbytes):
            if bits % 8 and i == nbytes - 1:
                byte = last
            else:
                byte = (value >> (8 * i)) & 0xFF
            self.memory[(addr + i) & _MASK32] = byte

    # -- execution ----------------------------------------------------------------
    def call(self, name: str, args: List[int]) -> Optional[int]:
        mf = self.program.functions.get(name)
        if mf is None:
            # external function: observable no-op returning 0
            self.cycles += LATENCY[MOp.CALL]
            return 0
        frame_base = self.stack_pointer - mf.frame_size()
        saved_sp = self.stack_pointer
        self.stack_pointer = frame_base

        regs: Dict[int, int] = {}

        def key(reg: VReg) -> int:
            # pre-RA code indexes by vreg id; post-RA by physical number
            return reg.phys if reg.phys is not None else reg.id + 1_000_000

        frame_offsets: List[int] = []
        offset = 0
        for size in mf.frame_slots:
            frame_offsets.append(offset)
            offset += size
        spill_base = offset

        if mf.arg_locations is None:
            for reg, value in zip(mf.arg_regs, args):
                regs[key(reg)] = value & _MASK32
        else:
            # post-RA: the calling convention places arguments into their
            # allocated registers / spill slots (the prologue's job)
            for loc, value in zip(mf.arg_locations, args):
                if loc[0] == "reg":
                    regs[loc[1]] = value & _MASK32
                elif loc[0] == "spill":
                    self.store(frame_base + spill_base + 8 * loc[1],
                               value & _MASK32, 32)

        def read(op) -> int:
            if isinstance(op, Imm):
                return op.value & _MASK32
            return regs.get(key(op), 0)  # pinned undef registers read 0

        block = mf.blocks[0]
        pc = 0
        try:
            while True:
                if pc >= len(block.instructions):
                    raise MachineTrap(f"fell off block {block.name}")
                instr = block.instructions[pc]
                pc += 1
                self.cycles += LATENCY[instr.op]
                self.instructions_retired += 1
                if self.instructions_retired > self.fuel:
                    raise MachineTrap("machine fuel exhausted")

                op = instr.op
                width = instr.width
                mask = (1 << width) - 1

                if op in (MOp.MOV, MOp.COPY):
                    regs[key(instr.dst)] = read(instr.srcs[0]) & _MASK32
                elif op in (MOp.ADD, MOp.SUB, MOp.IMUL, MOp.AND, MOp.OR,
                            MOp.XOR, MOp.SHL, MOp.SHR, MOp.SAR,
                            MOp.UDIV, MOp.SDIV, MOp.UREM, MOp.SREM):
                    a = read(instr.srcs[0]) & mask
                    b = read(instr.srcs[1]) & mask
                    regs[key(instr.dst)] = self._alu(op, a, b, width)
                elif op is MOp.MOVZX:
                    src_w = instr.payload
                    regs[key(instr.dst)] = read(instr.srcs[0]) \
                        & ((1 << src_w) - 1)
                elif op is MOp.MOVSX:
                    src_w = instr.payload
                    v = read(instr.srcs[0]) & ((1 << src_w) - 1)
                    if v >> (src_w - 1):
                        v -= 1 << src_w
                    regs[key(instr.dst)] = v & mask
                elif op is MOp.SETCC:
                    a = read(instr.srcs[0]) & mask
                    b = read(instr.srcs[1]) & mask
                    regs[key(instr.dst)] = int(
                        self._compare(instr.payload, a, b, width)
                    )
                elif op is MOp.CMOV:
                    cond = read(instr.srcs[0]) & 1
                    regs[key(instr.dst)] = read(
                        instr.srcs[1] if cond else instr.srcs[2]
                    ) & _MASK32
                elif op is MOp.LEA:
                    scale, disp = instr.payload
                    base = read(instr.srcs[0])
                    index = read(instr.srcs[1])
                    if index >= 1 << 31:
                        index -= 1 << 32
                    regs[key(instr.dst)] = (base + index * scale + disp) \
                        & _MASK32
                elif op is MOp.LOAD:
                    addr = read(instr.srcs[0])
                    regs[key(instr.dst)] = self.load(addr, instr.payload)
                elif op is MOp.STORE:
                    value = read(instr.srcs[0])
                    addr = read(instr.srcs[1])
                    self.store(addr, value, instr.payload)
                elif op is MOp.FRAME:
                    payload = instr.payload
                    if isinstance(payload, tuple) and payload[0] == "spill":
                        slot = payload[1]
                        regs[key(instr.dst)] = (
                            frame_base + spill_base + 8 * slot
                        ) & _MASK32
                    else:
                        regs[key(instr.dst)] = (
                            frame_base + frame_offsets[payload]
                        ) & _MASK32
                elif op is MOp.GLOBAL:
                    regs[key(instr.dst)] = self.global_addr[instr.payload]
                elif op is MOp.JMP:
                    block = instr.payload
                    pc = 0
                elif op is MOp.JCC:
                    cond = read(instr.srcs[0]) & 1
                    tb, fb = instr.payload
                    block = tb if cond else fb
                    pc = 0
                elif op is MOp.CALL:
                    args_v = [read(s) for s in instr.srcs]
                    result = self.call(instr.payload, args_v)
                    if instr.dst is not None:
                        regs[key(instr.dst)] = (result or 0) & _MASK32
                elif op is MOp.RET:
                    if instr.srcs:
                        return read(instr.srcs[0])
                    return None
                elif op is MOp.TRAP:
                    raise MachineTrap("trap executed")
                else:  # pragma: no cover
                    raise MachineTrap(f"unknown opcode {op}")
        finally:
            self.stack_pointer = saved_sp

    def _alu(self, op: MOp, a: int, b: int, width: int) -> int:
        mask = (1 << width) - 1

        def signed(v: int) -> int:
            return v - (1 << width) if v >> (width - 1) else v

        if op is MOp.ADD:
            return (a + b) & mask
        if op is MOp.SUB:
            return (a - b) & mask
        if op is MOp.IMUL:
            return (a * b) & mask
        if op is MOp.AND:
            return a & b
        if op is MOp.OR:
            return a | b
        if op is MOp.XOR:
            return a ^ b
        # x86-style shifts: the amount is masked to the operand width.
        # IR-level out-of-range shifts are deferred UB, so any machine
        # behavior here is a legal refinement.
        if op is MOp.SHL:
            return (a << (b & (width - 1))) & mask
        if op is MOp.SHR:
            return a >> (b & (width - 1))
        if op is MOp.SAR:
            return (signed(a) >> (b & (width - 1))) & mask
        if op is MOp.UDIV:
            if b == 0:
                raise MachineTrap("division by zero")
            return a // b
        if op is MOp.UREM:
            if b == 0:
                raise MachineTrap("division by zero")
            return a % b
        if op in (MOp.SDIV, MOp.SREM):
            if b == 0:
                raise MachineTrap("division by zero")
            sa, sb = signed(a), signed(b)
            if sa == -(1 << (width - 1)) and sb == -1:
                raise MachineTrap("division overflow")
            q = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                q = -q
            if op is MOp.SDIV:
                return q & mask
            return (sa - q * sb) & mask
        raise MachineTrap(f"bad ALU op {op}")

    @staticmethod
    def _compare(pred: IcmpPred, a: int, b: int, width: int) -> bool:
        if pred.is_signed:
            if a >> (width - 1):
                a -= 1 << width
            if b >> (width - 1):
                b -= 1 << width
        return {
            IcmpPred.EQ: a == b, IcmpPred.NE: a != b,
            IcmpPred.UGT: a > b, IcmpPred.UGE: a >= b,
            IcmpPred.ULT: a < b, IcmpPred.ULE: a <= b,
            IcmpPred.SGT: a > b, IcmpPred.SGE: a >= b,
            IcmpPred.SLT: a < b, IcmpPred.SLE: a <= b,
        }[pred]


# ---------------------------------------------------------------------------
# Assembly printing and the size model.
# ---------------------------------------------------------------------------

def _operand_size(op) -> int:
    if isinstance(op, Imm):
        return 1 if -128 <= op.value <= 127 else 4
    return 0  # register operands are in the base size


def instr_size(instr: MachineInstr) -> int:
    size = BASE_SIZE[instr.op]
    for src in instr.srcs:
        size += _operand_size(src)
    return size


def function_size(mf: MachineFunction) -> int:
    return sum(instr_size(i) for i in mf.instructions())


def print_assembly(mf: MachineFunction) -> str:
    lines = [f"{mf.name}:"]

    def fmt(op) -> str:
        if isinstance(op, Imm):
            return f"${op.value}"
        if op.phys is not None:
            return "%" + REG_NAMES[op.phys]
        return f"%v{op.id}"

    for block in mf.blocks:
        lines.append(f".{mf.name}.{block.name}:")
        for instr in block.instructions:
            if instr.op is MOp.JMP:
                lines.append(f"    jmp .{mf.name}.{instr.payload.name}")
            elif instr.op is MOp.JCC:
                tb, fb = instr.payload
                lines.append(
                    f"    jnz {fmt(instr.srcs[0])}, .{mf.name}.{tb.name}"
                )
                lines.append(f"    jmp .{mf.name}.{fb.name}")
            elif instr.op is MOp.CALL:
                args = ", ".join(fmt(s) for s in instr.srcs)
                dst = f"{fmt(instr.dst)} = " if instr.dst else ""
                lines.append(f"    {dst}call {instr.payload}({args})")
            elif instr.op is MOp.RET:
                val = f" {fmt(instr.srcs[0])}" if instr.srcs else ""
                lines.append(f"    ret{val}")
            else:
                dst = f"{fmt(instr.dst)}, " if instr.dst is not None else ""
                srcs = ", ".join(fmt(s) for s in instr.srcs)
                suffix = {8: "b", 16: "w", 32: "l"}.get(instr.width, "l")
                lines.append(f"    {instr.op.value}{suffix} {dst}{srcs}")
    return "\n".join(lines)
