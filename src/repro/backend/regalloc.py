"""Linear-scan register allocation with iterative liveness analysis.

Virtual registers get one of :data:`~repro.backend.target.NUM_REGS`
physical registers; intervals that do not fit are spilled to frame
slots, with reloads through reserved scratch registers.

This is where the paper's "Stanford Queens" anecdote lives: a single
extra ``COPY`` (from a freeze) can shift interval start points and give
a different — occasionally better or worse — assignment, which is
exactly the kind of run-time perturbation Section 7.2 reports.

Undef virtual registers (lowered poison) have no defining instruction;
they still occupy a register for their live range — the paper notes
the prototype "reserves a register for each poison value within a
function (during its live range only)".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .mi import Imm, MachineBasicBlock, MachineFunction, MachineInstr, VReg
from .target import MOp, NUM_REGS


def compute_liveness(mf: MachineFunction):
    """Iterative backward dataflow: per-block live-in/live-out vreg-id
    sets."""
    use_of: Dict[MachineBasicBlock, Set[int]] = {}
    def_of: Dict[MachineBasicBlock, Set[int]] = {}
    for block in mf.blocks:
        uses: Set[int] = set()
        defs: Set[int] = set()
        for instr in block.instructions:
            for src in instr.srcs:
                if isinstance(src, VReg) and src.id not in defs:
                    uses.add(src.id)
            if instr.dst is not None:
                defs.add(instr.dst.id)
        use_of[block] = uses
        def_of[block] = defs

    live_in: Dict[MachineBasicBlock, Set[int]] = {
        b: set() for b in mf.blocks
    }
    live_out: Dict[MachineBasicBlock, Set[int]] = {
        b: set() for b in mf.blocks
    }
    changed = True
    while changed:
        changed = False
        for block in reversed(mf.blocks):
            out: Set[int] = set()
            for succ in block.successors():
                out |= live_in[succ]
            inn = use_of[block] | (out - def_of[block])
            if out != live_out[block] or inn != live_in[block]:
                live_out[block] = out
                live_in[block] = inn
                changed = True
    return live_in, live_out


def compute_intervals(mf: MachineFunction) -> Dict[int, Tuple[int, int]]:
    """Live interval per vreg id over the linearized instruction list."""
    live_in, live_out = compute_liveness(mf)
    position: Dict[int, int] = {}
    index = 0
    block_range: Dict[MachineBasicBlock, Tuple[int, int]] = {}
    for block in mf.blocks:
        start = index
        index += len(block.instructions)
        block_range[block] = (start, index)

    intervals: Dict[int, Tuple[int, int]] = {}

    def extend(vid: int, point: int) -> None:
        if vid in intervals:
            lo, hi = intervals[vid]
            intervals[vid] = (min(lo, point), max(hi, point))
        else:
            intervals[vid] = (point, point)

    for arg in mf.arg_regs:
        extend(arg.id, 0)

    index = 0
    for block in mf.blocks:
        start, end = block_range[block]
        for vid in live_in[block]:
            extend(vid, start)
        for vid in live_out[block]:
            extend(vid, max(start, end - 1))
        for instr in block.instructions:
            for src in instr.srcs:
                if isinstance(src, VReg):
                    extend(src.id, index)
            if instr.dst is not None:
                extend(instr.dst.id, index)
            index += 1
    return intervals


class RegisterAllocator:
    """Linear scan (Poletto-Sarkar) with spill to frame slots."""

    def __init__(self, mf: MachineFunction, num_regs: int = NUM_REGS):
        self.mf = mf
        # reserve two scratch registers for spill reloads
        self.num_alloc = max(2, num_regs - 2)
        self.scratch = [num_regs - 2, num_regs - 1]
        self.assignment: Dict[int, int] = {}
        self.spill_slot: Dict[int, int] = {}

    def run(self) -> None:
        intervals = compute_intervals(self.mf)
        order = sorted(intervals.items(), key=lambda kv: kv[1][0])
        active: List[Tuple[int, int]] = []  # (end, vid)
        free = list(range(self.num_alloc))

        for vid, (start, end) in order:
            expired = [a for a in active if a[0] < start]
            for _, expired_vid in expired:
                free.append(self.assignment[expired_vid])
            active = [a for a in active if a[0] >= start]
            if free:
                reg = free.pop(0)
                self.assignment[vid] = reg
                active.append((end, vid))
                active.sort()
            else:
                # spill the active interval that ends last
                active.sort()
                last_end, last_vid = active[-1]
                if last_end > end:
                    # steal its register
                    reg = self.assignment.pop(last_vid)
                    self.assignment[vid] = reg
                    self._spill(last_vid)
                    active[-1] = (end, vid)
                    active.sort()
                else:
                    self._spill(vid)

        self._rewrite()

    def _spill(self, vid: int) -> None:
        if vid not in self.spill_slot:
            self.spill_slot[vid] = self.mf.num_spill_slots
            self.mf.num_spill_slots += 1

    def _rewrite(self) -> None:
        """Apply the assignment; insert reloads/stores for spilled vregs
        through the scratch registers."""
        locations = []
        for arg in self.mf.arg_regs:
            if arg.id in self.spill_slot:
                locations.append(("spill", self.spill_slot[arg.id]))
            elif arg.id in self.assignment:
                locations.append(("reg", self.assignment[arg.id]))
            else:
                locations.append(("none",))
        self.mf.arg_locations = locations
        for block in self.mf.blocks:
            new_instructions: List[MachineInstr] = []
            for instr in block.instructions:
                scratch_iter = iter(self.scratch)
                # reload spilled sources
                for i, src in enumerate(instr.srcs):
                    if not isinstance(src, VReg):
                        continue
                    if src.id in self.spill_slot:
                        phys = next(scratch_iter)
                        slot = self.spill_slot[src.id]
                        reload = MachineInstr(
                            MOp.FRAME, VReg(-1, phys=phys), [],
                            payload=("spill", slot),
                        )
                        load = MachineInstr(
                            MOp.LOAD, VReg(-1, phys=phys),
                            [VReg(-1, phys=phys)],
                            payload=32, width=32,
                        )
                        new_instructions.append(reload)
                        new_instructions.append(load)
                        instr.srcs[i] = VReg(-1, phys=phys)
                    else:
                        instr.srcs[i] = self._phys(src)
                if instr.dst is not None:
                    if instr.dst.id in self.spill_slot:
                        phys = self.scratch[0]
                        slot = self.spill_slot[instr.dst.id]
                        instr.dst = VReg(-1, phys=phys)
                        new_instructions.append(instr)
                        addr = MachineInstr(
                            MOp.FRAME, VReg(-1, phys=self.scratch[1]), [],
                            payload=("spill", slot),
                        )
                        store = MachineInstr(
                            MOp.STORE, None,
                            [VReg(-1, phys=phys),
                             VReg(-1, phys=self.scratch[1])],
                            payload=32,
                        )
                        new_instructions.append(addr)
                        new_instructions.append(store)
                        continue
                    instr.dst = self._phys(instr.dst)
                new_instructions.append(instr)
            block.instructions = new_instructions
        self._coalesce_trivial_copies()

    def _phys(self, vreg: VReg) -> VReg:
        if vreg.phys is not None:
            return vreg
        reg = self.assignment.get(vreg.id)
        if reg is None:
            # never materialized (e.g. an undef register with no uses in
            # an allocated interval) — pin it to scratch 0
            reg = self.scratch[0]
        return VReg(vreg.id, phys=reg, undef=vreg.undef)

    def _coalesce_trivial_copies(self) -> None:
        """Delete MOV/COPY whose source and destination got the same
        physical register."""
        for block in self.mf.blocks:
            block.instructions = [
                instr for instr in block.instructions
                if not (
                    instr.op in (MOp.MOV, MOp.COPY)
                    and len(instr.srcs) == 1
                    and isinstance(instr.srcs[0], VReg)
                    and instr.dst is not None
                    and instr.dst.phys == instr.srcs[0].phys
                )
            ]


def allocate_registers(mf: MachineFunction,
                       num_regs: int = NUM_REGS) -> MachineFunction:
    RegisterAllocator(mf, num_regs).run()
    return mf
