"""SelectionDAG: the per-block graph IR between LLVM IR and MachineInstr.

Mirrors LLVM's structure at small scale (Section 6, "Lowering freeze"):

* LLVM IR lowers into one DAG per basic block; values live across blocks
  become virtual-register imports/exports;
* ``freeze`` maps directly to an SDAG ``freeze`` node;
* *type legalization* promotes illegal integer widths to the target's
  legal widths — including freeze nodes, which is exactly the piece the
  paper reports having to teach the legalizer;
* ``poison`` constants become ``undef`` SDAG nodes (at MI level they
  will be pinned undef registers).

Promotion discipline: a promoted value's high bits are *unspecified*;
operations that observe high bits (division, shifts by it, unsigned
comparison, stores, ...) re-normalize with explicit ``assert_zext`` /
``assert_sext`` nodes.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.instructions import IcmpPred, Opcode
from .target import LEGAL_WIDTHS, legal_width


class SDOp(enum.Enum):
    CONST = "const"
    UNDEF = "undef"          # what poison becomes at SDAG level
    VREG = "vreg"            # cross-block import
    ARG = "arg"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    SDIV = "sdiv"
    UREM = "urem"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"
    FREEZE = "freeze"
    SETCC = "setcc"          # payload = IcmpPred
    SELECT = "select"
    ZEXT = "zext"
    SEXT = "sext"
    TRUNC = "trunc"
    ASSERT_ZEXT = "assert_zext"  # payload = original width
    ASSERT_SEXT = "assert_sext"
    LOAD = "load"            # payload = bit width
    STORE = "store"
    FRAME_ADDR = "frame"     # payload = slot id
    GLOBAL_ADDR = "global"   # payload = name
    ADDR_ADD = "addr_add"    # pointer arithmetic (base, scaled index)
    CALL = "call"            # payload = callee name
    BR = "br"
    BRCOND = "brcond"
    RET = "ret"
    TRAP = "trap"
    COPY_TO_VREG = "copy_to_vreg"  # export: payload = vreg id


class SDNode:
    _counter = 0

    __slots__ = ("op", "operands", "width", "payload", "id")

    def __init__(self, op: SDOp, operands: List["SDNode"], width: int,
                 payload=None):
        self.op = op
        self.operands = list(operands)
        self.width = width  # 0 for value-less nodes
        self.payload = payload
        SDNode._counter += 1
        self.id = SDNode._counter

    def __repr__(self) -> str:
        ops = ", ".join(f"n{o.id}" for o in self.operands)
        extra = f" [{self.payload}]" if self.payload is not None else ""
        return f"n{self.id}={self.op.value}.i{self.width}({ops}){extra}"


class SelectionDAG:
    """The DAG for one basic block: a root list in execution order (side
    effects and exports), with pure value nodes hanging off it."""

    def __init__(self, block_name: str):
        self.block_name = block_name
        self.roots: List[SDNode] = []

    def add_root(self, node: SDNode) -> None:
        self.roots.append(node)

    def all_nodes(self) -> List[SDNode]:
        seen: Dict[int, SDNode] = {}
        order: List[SDNode] = []

        def visit(node: SDNode) -> None:
            if node.id in seen:
                return
            seen[node.id] = node
            for op in node.operands:
                visit(op)
            order.append(node)

        for root in self.roots:
            visit(root)
        return order


class Legalizer:
    """Promote illegal integer widths to legal ones.

    Returns a rewritten DAG in which every value node has a legal width.
    ``payload`` widths on loads/stores keep the original memory width.
    """

    def __init__(self):
        self._map: Dict[int, SDNode] = {}

    def run(self, dag: SelectionDAG) -> SelectionDAG:
        out = SelectionDAG(dag.block_name)
        for root in dag.roots:
            out.add_root(self._legalize(root))
        return out

    def _legalize(self, node: SDNode) -> SDNode:
        cached = self._map.get(node.id)
        if cached is not None:
            return cached
        ops = [self._legalize(o) for o in node.operands]
        result = self._legalize_node(node, ops)
        self._map[node.id] = result
        return result

    def _legalize_node(self, node: SDNode, ops: List[SDNode]) -> SDNode:
        width = node.width
        target = legal_width(width) if width else 0
        op = node.op

        if op is SDOp.CONST:
            return SDNode(SDOp.CONST, [], target,
                          node.payload & ((1 << target) - 1)
                          if width else node.payload)
        if op in (SDOp.UNDEF, SDOp.VREG, SDOp.ARG):
            return SDNode(op, [], target, node.payload)

        if op is SDOp.FREEZE:
            # Section 6: the legalizer must handle freeze of illegal
            # types — the frozen value is simply frozen at the promoted
            # width (its high bits are arbitrary-but-fixed, which is
            # exactly freeze's semantics).
            return SDNode(SDOp.FREEZE, ops, target)

        if op in (SDOp.ADD, SDOp.SUB, SDOp.MUL, SDOp.AND, SDOp.OR,
                  SDOp.XOR):
            # high bits may be garbage; consumers re-normalize
            return SDNode(op, ops, target)
        if op is SDOp.SHL:
            # The *amount* must be normalized: a promoted amount with
            # garbage high bits would shift by the wrong count for
            # perfectly defined inputs.  (The value operand's high bits
            # remain don't-care.)
            ops = [ops[0], self._zext_in_reg(ops[1], width)]
            return SDNode(op, ops, target)
        if op in (SDOp.UDIV, SDOp.UREM, SDOp.LSHR):
            ops = [self._zext_in_reg(o, width) for o in ops]
            return SDNode(op, ops, target)
        if op in (SDOp.SDIV, SDOp.SREM):
            ops = [self._sext_in_reg(o, width) for o in ops]
            return SDNode(op, ops, target)
        if op is SDOp.ASHR:
            # sign-extend the value, zero-extend the amount
            ops = [self._sext_in_reg(ops[0], width),
                   self._zext_in_reg(ops[1], width)]
            return SDNode(op, ops, target)
        if op is SDOp.SETCC:
            pred: IcmpPred = node.payload
            opnd_width = node.operands[0].width
            if pred.is_signed:
                ops = [self._sext_in_reg(o, opnd_width) for o in ops]
            else:
                ops = [self._zext_in_reg(o, opnd_width) for o in ops]
            return SDNode(SDOp.SETCC, ops, legal_width(1), pred)
        if op is SDOp.SELECT:
            cond = self._zext_in_reg(ops[0], 1)
            return SDNode(SDOp.SELECT, [cond, ops[1], ops[2]], target)
        if op is SDOp.ZEXT:
            src_width = node.operands[0].width
            normalized = self._zext_in_reg(ops[0], src_width)
            return self._resize(normalized, target)
        if op is SDOp.SEXT:
            src_width = node.operands[0].width
            normalized = self._sext_in_reg(ops[0], src_width)
            return self._resize_signed(normalized, target)
        if op is SDOp.TRUNC:
            # truncation is free: high bits become unspecified
            return self._resize(ops[0], target, normalize=False)
        if op is SDOp.LOAD:
            return SDNode(SDOp.LOAD, ops, target, node.payload)
        if op is SDOp.STORE:
            value = self._zext_in_reg(ops[0], node.payload)
            return SDNode(SDOp.STORE, [value] + ops[1:], 0, node.payload)
        if op in (SDOp.FRAME_ADDR, SDOp.GLOBAL_ADDR):
            return SDNode(op, ops, 32, node.payload)
        if op is SDOp.ADDR_ADD:
            return SDNode(op, ops, 32, node.payload)
        if op is SDOp.BRCOND:
            cond = self._zext_in_reg(ops[0], 1)
            return SDNode(SDOp.BRCOND, [cond] + ops[1:], 0, node.payload)
        if op is SDOp.CALL:
            return SDNode(SDOp.CALL, ops, target, node.payload)
        if op is SDOp.RET:
            if ops:
                # ABI: the callee returns a zero-normalized value of the
                # declared width
                ops = [self._zext_in_reg(ops[0], node.operands[0].width)]
            return SDNode(op, ops, 0, node.payload)
        if op in (SDOp.BR, SDOp.TRAP, SDOp.COPY_TO_VREG):
            return SDNode(op, ops, node.width and target, node.payload)
        if op in (SDOp.ASSERT_ZEXT, SDOp.ASSERT_SEXT):
            return SDNode(op, ops, target, node.payload)
        raise NotImplementedError(f"legalize {op}")

    # -- normalization helpers ----------------------------------------------
    def _zext_in_reg(self, node: SDNode, width: int) -> SDNode:
        """Clear bits above ``width`` (no-op if already asserted)."""
        if node.width == width and width in LEGAL_WIDTHS:
            return node
        if node.op is SDOp.ASSERT_ZEXT and node.payload <= width:
            return node
        if node.op is SDOp.CONST:
            return SDNode(SDOp.CONST, [], node.width,
                          node.payload & ((1 << width) - 1))
        mask = SDNode(SDOp.CONST, [], node.width, (1 << width) - 1)
        masked = SDNode(SDOp.AND, [node, mask], node.width)
        return SDNode(SDOp.ASSERT_ZEXT, [masked], node.width, width)

    def _sext_in_reg(self, node: SDNode, width: int) -> SDNode:
        if node.width == width and width in LEGAL_WIDTHS:
            return node
        if node.op is SDOp.ASSERT_SEXT and node.payload <= width:
            return node
        shift = SDNode(SDOp.CONST, [], node.width, node.width - width)
        left = SDNode(SDOp.SHL, [node, shift], node.width)
        right = SDNode(SDOp.ASHR, [left, shift], node.width)
        return SDNode(SDOp.ASSERT_SEXT, [right], node.width, width)

    def _resize(self, node: SDNode, target: int,
                normalize: bool = True) -> SDNode:
        if node.width == target:
            return node
        if node.width < target:
            return SDNode(SDOp.ZEXT, [node], target)
        return SDNode(SDOp.TRUNC, [node], target)

    def _resize_signed(self, node: SDNode, target: int) -> SDNode:
        if node.width == target:
            return node
        if node.width < target:
            return SDNode(SDOp.SEXT, [node], target)
        return SDNode(SDOp.TRUNC, [node], target)
