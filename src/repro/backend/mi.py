"""MachineInstr-level IR: virtual/physical registers, frames, functions.

At this level there is no poison: poison became ``undef`` SDAG nodes and
is now *pinned undef registers* — registers that are never defined and
read as an arbitrary-but-fixed value (we pin 0, like reading a freshly
zeroed register).  ``freeze`` became :data:`~repro.backend.target.MOp.COPY`,
which is exactly why it is implementable for free-ish (Section 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .target import MOp


class VReg:
    """A virtual register (pre-RA) or physical register (post-RA)."""

    __slots__ = ("id", "phys", "undef")

    def __init__(self, id: int, phys: Optional[int] = None,
                 undef: bool = False):
        self.id = id
        self.phys = phys
        self.undef = undef

    def __repr__(self) -> str:
        if self.phys is not None:
            from .target import REG_NAMES

            return REG_NAMES[self.phys]
        return f"%v{self.id}{'<undef>' if self.undef else ''}"

    def __eq__(self, other) -> bool:
        return isinstance(other, VReg) and other.id == self.id

    def __hash__(self) -> int:
        return hash((VReg, self.id))


class Imm:
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def __repr__(self) -> str:
        return f"${self.value}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Imm) and other.value == self.value

    def __hash__(self) -> int:
        return hash((Imm, self.value))


Operand = Union[VReg, Imm]


class MachineInstr:
    __slots__ = ("op", "dst", "srcs", "payload", "width")

    def __init__(self, op: MOp, dst: Optional[VReg], srcs: List[Operand],
                 payload=None, width: int = 32):
        self.op = op
        self.dst = dst
        self.srcs = list(srcs)
        self.payload = payload
        self.width = width

    def registers(self) -> List[VReg]:
        regs = [s for s in self.srcs if isinstance(s, VReg)]
        if self.dst is not None:
            regs.append(self.dst)
        return regs

    def __repr__(self) -> str:
        dst = f"{self.dst} = " if self.dst is not None else ""
        srcs = ", ".join(repr(s) for s in self.srcs)
        extra = f" [{self.payload}]" if self.payload is not None else ""
        return f"{dst}{self.op.value}.{self.width} {srcs}{extra}"


class MachineBasicBlock:
    def __init__(self, name: str):
        self.name = name
        self.instructions: List[MachineInstr] = []

    def append(self, instr: MachineInstr) -> MachineInstr:
        self.instructions.append(instr)
        return instr

    def successors(self) -> List["MachineBasicBlock"]:
        succs = []
        for instr in self.instructions:
            if instr.op is MOp.JMP:
                succs.append(instr.payload)
            elif instr.op is MOp.JCC:
                succs.extend(instr.payload)
        return succs

    def __repr__(self) -> str:
        return f"<MBB {self.name} ({len(self.instructions)})>"


class MachineFunction:
    def __init__(self, name: str, num_args: int):
        self.name = name
        self.blocks: List[MachineBasicBlock] = []
        self.arg_regs: List[VReg] = []
        self.num_args = num_args
        self._next_vreg = 0
        self.frame_slots: List[int] = []  # slot sizes in bytes
        self.num_spill_slots = 0
        #: set by register allocation: per-argument ("reg", phys) or
        #: ("spill", slot) or ("none",) — the calling convention's view
        self.arg_locations: Optional[List[tuple]] = None

    def new_vreg(self, undef: bool = False) -> VReg:
        self._next_vreg += 1
        return VReg(self._next_vreg, undef=undef)

    def new_block(self, name: str) -> MachineBasicBlock:
        block = MachineBasicBlock(name)
        self.blocks.append(block)
        return block

    def new_frame_slot(self, size: int) -> int:
        self.frame_slots.append(size)
        return len(self.frame_slots) - 1

    def frame_size(self) -> int:
        return sum(self.frame_slots) + 8 * self.num_spill_slots

    def instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def num_instructions(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def __repr__(self) -> str:
        return f"<MachineFunction @{self.name}>"


def print_machine_function(mf: MachineFunction) -> str:
    lines = [f"@{mf.name}: args={mf.arg_regs} frame={mf.frame_size()}B"]
    for block in mf.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            if instr.op is MOp.JMP:
                lines.append(f"  jmp {instr.payload.name}")
            elif instr.op is MOp.JCC:
                t, f = instr.payload
                lines.append(
                    f"  jcc {instr.srcs[0]}, {t.name}, {f.name}"
                )
            else:
                lines.append(f"  {instr}")
    return "\n".join(lines)
