"""Instruction selection: LLVM IR -> SelectionDAG -> MachineInstr.

The pipeline per function (mirroring Section 6's description):

1. *Phi elimination / vreg assignment*: values that cross basic blocks
   (and phi nodes) get virtual registers; phi edges become two-phase
   parallel copies in the predecessors.
2. *DAG construction* per block; ``poison``/``undef`` constants become
   SDAG ``undef`` nodes.
3. *Type legalization* — including freeze of illegal types.
4. *Selection*: each DAG node becomes a MachineInstr; ``freeze`` becomes
   a register ``COPY`` (taking a copy of an undef register pins its
   value — the paper's lowering); ``undef`` becomes a pinned undef
   register with no defining instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    FreezeInst,
    GepInst,
    IcmpInst,
    Instruction,
    LoadInst,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    StoreInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.types import IntType, PointerType
from ..ir.values import (
    Argument,
    ConstantInt,
    GlobalVariable,
    PoisonValue,
    UndefValue,
    Value,
)
from .mi import Imm, MachineBasicBlock, MachineFunction, MachineInstr, VReg
from .sdag import Legalizer, SDNode, SDOp, SelectionDAG
from .target import MOp, legal_width


class BackendUnsupported(Exception):
    pass


def split_critical_edges(fn: Function) -> int:
    """Split edges (P -> S) where P has several successors and S has
    phis and several predecessors.  Phi-elimination copies placed in the
    predecessor would otherwise execute on *every* outgoing path of P,
    clobbering values on the paths that do not lead to S."""
    from ..ir.basicblock import BasicBlock

    split = 0
    for block in list(fn.blocks):
        term = block.terminator
        if term is None or len(set(block.successors())) < 2:
            continue
        for succ in list(set(block.successors())):
            if not succ.phis() or len(succ.predecessors()) < 2:
                continue
            edge = BasicBlock(f"{block.name}.{succ.name}.crit", parent=fn)
            edge.append(BranchInst(target=succ))
            term.replace_successor(succ, edge)
            for phi in succ.phis():
                phi.replace_incoming_block(block, edge)
            split += 1
    return split


_BINOP_SD = {
    Opcode.ADD: SDOp.ADD, Opcode.SUB: SDOp.SUB, Opcode.MUL: SDOp.MUL,
    Opcode.UDIV: SDOp.UDIV, Opcode.SDIV: SDOp.SDIV,
    Opcode.UREM: SDOp.UREM, Opcode.SREM: SDOp.SREM,
    Opcode.AND: SDOp.AND, Opcode.OR: SDOp.OR, Opcode.XOR: SDOp.XOR,
    Opcode.SHL: SDOp.SHL, Opcode.LSHR: SDOp.LSHR, Opcode.ASHR: SDOp.ASHR,
}

_SD_MOP = {
    SDOp.ADD: MOp.ADD, SDOp.SUB: MOp.SUB, SDOp.MUL: MOp.IMUL,
    SDOp.UDIV: MOp.UDIV, SDOp.SDIV: MOp.SDIV,
    SDOp.UREM: MOp.UREM, SDOp.SREM: MOp.SREM,
    SDOp.AND: MOp.AND, SDOp.OR: MOp.OR, SDOp.XOR: MOp.XOR,
    SDOp.SHL: MOp.SHL, SDOp.LSHR: MOp.SHR, SDOp.ASHR: MOp.SAR,
}


def _width_of(value: Value) -> int:
    ty = value.type
    if isinstance(ty, IntType):
        return ty.bits
    if isinstance(ty, PointerType):
        return 32
    raise BackendUnsupported(f"type {ty} not supported by the backend")


class InstructionSelector:
    def __init__(self, fn: Function):
        self.fn = fn
        self.mf = MachineFunction(fn.name, len(fn.args))
        #: IR value -> vreg for cross-block values / args / phis
        self.vregs: Dict[Value, VReg] = {}
        self.alloca_slots: Dict[Value, int] = {}
        self.mbb: Dict[BasicBlock, MachineBasicBlock] = {}

    # -- driver ---------------------------------------------------------------
    def run(self) -> MachineFunction:
        fn = self.fn
        split_critical_edges(fn)
        for arg in fn.args:
            reg = self.mf.new_vreg()
            self.vregs[arg] = reg
            self.mf.arg_regs.append(reg)

        for block in fn.blocks:
            self.mbb[block] = self.mf.new_block(block.name)

        self._assign_cross_block_vregs()
        for inst in fn.instructions():
            if isinstance(inst, AllocaInst):
                size = max(1, (inst.allocated_type.bitwidth() + 7) // 8)
                self.alloca_slots[inst] = self.mf.new_frame_slot(size)

        for block in fn.blocks:
            dag = self._build_dag(block)
            dag = Legalizer().run(dag)
            self._select_dag(dag, self.mbb[block])
        return self.mf

    def _assign_cross_block_vregs(self) -> None:
        for block in self.fn.blocks:
            for inst in block.instructions:
                if inst.type.is_void:
                    continue
                needs_vreg = isinstance(inst, PhiInst)
                for use in inst.uses:
                    user = use.user
                    if isinstance(user, Instruction) and (
                        user.parent is not block or isinstance(user, PhiInst)
                    ):
                        needs_vreg = True
                        break
                if needs_vreg:
                    self.vregs[inst] = self.mf.new_vreg()

    # -- DAG construction -------------------------------------------------------
    def _build_dag(self, block: BasicBlock) -> SelectionDAG:
        dag = SelectionDAG(block.name)
        nodes: Dict[Value, SDNode] = {}

        def node_for(value: Value) -> SDNode:
            if value in nodes:
                return nodes[value]
            if isinstance(value, ConstantInt):
                n = SDNode(SDOp.CONST, [], value.type.bits, value.value)
            elif isinstance(value, (PoisonValue, UndefValue)):
                n = SDNode(SDOp.UNDEF, [], _width_of(value))
            elif isinstance(value, GlobalVariable):
                n = SDNode(SDOp.GLOBAL_ADDR, [], 32, value.name)
            elif isinstance(value, Argument):
                n = SDNode(SDOp.VREG, [], _width_of(value),
                           self.vregs[value])
            elif isinstance(value, Instruction):
                if value.parent is block and not isinstance(value, PhiInst) \
                        and not isinstance(value, AllocaInst):
                    raise BackendUnsupported(
                        f"local node for {value.ref()} not built yet"
                    )
                if isinstance(value, AllocaInst):
                    n = SDNode(SDOp.FRAME_ADDR, [], 32,
                               self.alloca_slots[value])
                else:
                    n = SDNode(SDOp.VREG, [], _width_of(value),
                               self.vregs[value])
            else:
                raise BackendUnsupported(f"operand {value!r}")
            nodes[value] = n
            return n

        pending_exports: List[SDNode] = []
        phis = block.phis()
        for phi in phis:
            nodes[phi] = SDNode(SDOp.VREG, [], _width_of(phi),
                                self.vregs[phi])

        for inst in block.instructions[len(phis):]:
            if inst.is_terminator:
                # phi edge copies (two-phase), then regular exports,
                # then the terminator.
                self._emit_phi_copies(block, dag, node_for)
                for export in pending_exports:
                    dag.add_root(export)
                self._build_terminator(inst, dag, node_for)
                break
            node = self._build_instruction(inst, dag, node_for)
            if node is not None:
                nodes[inst] = node
                if inst in self.vregs:
                    pending_exports.append(
                        SDNode(SDOp.COPY_TO_VREG, [node], node.width,
                               self.vregs[inst])
                    )
        return dag

    def _emit_phi_copies(self, block: BasicBlock, dag: SelectionDAG,
                         node_for) -> None:
        edges: List[Tuple[VReg, SDNode]] = []
        for succ in block.successors():
            for phi in succ.phis():
                incoming = phi.incoming_for_block(block)
                if incoming is None:
                    continue
                edges.append((self.vregs[phi], node_for(incoming)))
        if not edges:
            return
        # Two-phase parallel copy: temps first, then the phi registers.
        temps: List[Tuple[VReg, VReg, int]] = []
        for phi_reg, value_node in edges:
            temp = self.mf.new_vreg()
            dag.add_root(
                SDNode(SDOp.COPY_TO_VREG, [value_node], value_node.width,
                       temp)
            )
            temps.append((phi_reg, temp, value_node.width))
        for phi_reg, temp, width in temps:
            temp_node = SDNode(SDOp.VREG, [], width, temp)
            dag.add_root(
                SDNode(SDOp.COPY_TO_VREG, [temp_node], width, phi_reg)
            )

    def _build_instruction(self, inst: Instruction, dag: SelectionDAG,
                           node_for) -> Optional[SDNode]:
        if isinstance(inst, BinaryInst):
            return SDNode(_BINOP_SD[inst.opcode],
                          [node_for(inst.lhs), node_for(inst.rhs)],
                          _width_of(inst))
        if isinstance(inst, IcmpInst):
            return SDNode(SDOp.SETCC,
                          [node_for(inst.lhs), node_for(inst.rhs)],
                          1, inst.pred)
        if isinstance(inst, SelectInst):
            return SDNode(SDOp.SELECT,
                          [node_for(inst.cond), node_for(inst.true_value),
                           node_for(inst.false_value)],
                          _width_of(inst))
        if isinstance(inst, FreezeInst):
            return SDNode(SDOp.FREEZE, [node_for(inst.value)],
                          _width_of(inst))
        if isinstance(inst, CastInst):
            src = node_for(inst.value)
            if inst.opcode is Opcode.ZEXT:
                return SDNode(SDOp.ZEXT, [src], _width_of(inst))
            if inst.opcode is Opcode.SEXT:
                return SDNode(SDOp.SEXT, [src], _width_of(inst))
            if inst.opcode is Opcode.TRUNC:
                return SDNode(SDOp.TRUNC, [src], _width_of(inst))
            if inst.opcode in (Opcode.PTRTOINT, Opcode.INTTOPTR,
                               Opcode.BITCAST):
                sw, dw = src.width, _width_of(inst)
                if sw == dw:
                    return src
                if sw < dw:
                    return SDNode(SDOp.ZEXT, [src], dw)
                return SDNode(SDOp.TRUNC, [src], dw)
        if isinstance(inst, GepInst):
            index = node_for(inst.index)
            if index.width != 32:
                index = SDNode(SDOp.SEXT, [index], 32)
            return SDNode(SDOp.ADDR_ADD,
                          [node_for(inst.pointer), index],
                          32, inst.elem_size_bytes)
        if isinstance(inst, AllocaInst):
            return SDNode(SDOp.FRAME_ADDR, [], 32,
                          self.alloca_slots[inst])
        if isinstance(inst, LoadInst):
            node = SDNode(SDOp.LOAD, [node_for(inst.pointer)],
                          _width_of(inst), inst.type.bitwidth())
            # Loads are ordered against stores/calls: root them at their
            # program point (the chain edge of a real SelectionDAG).
            dag.add_root(node)
            return node
        if isinstance(inst, StoreInst):
            dag.add_root(
                SDNode(SDOp.STORE,
                       [node_for(inst.value), node_for(inst.pointer)],
                       0, inst.value.type.bitwidth())
            )
            return None
        if isinstance(inst, CallInst):
            width = 0 if inst.type.is_void else _width_of(inst)
            node = SDNode(SDOp.CALL, [node_for(a) for a in inst.args],
                          width, inst.callee.name)
            if inst.type.is_void:
                dag.add_root(node)
                return None
            # calls are ordered side effects even when their value is used
            dag.add_root(node)
            return node
        raise BackendUnsupported(f"cannot select {inst.opcode.value}")

    def _build_terminator(self, inst: Instruction, dag: SelectionDAG,
                          node_for) -> None:
        if isinstance(inst, BranchInst):
            if inst.is_conditional:
                dag.add_root(
                    SDNode(SDOp.BRCOND, [node_for(inst.cond)], 0,
                           (self.mbb[inst.true_block],
                            self.mbb[inst.false_block]))
                )
            else:
                dag.add_root(
                    SDNode(SDOp.BR, [], 0, self.mbb[inst.targets[0]])
                )
            return
        if isinstance(inst, SwitchInst):
            self._build_switch(inst, dag, node_for)
            return
        if isinstance(inst, ReturnInst):
            ops = [] if inst.value is None else [node_for(inst.value)]
            dag.add_root(SDNode(SDOp.RET, ops, 0))
            return
        if isinstance(inst, UnreachableInst):
            dag.add_root(SDNode(SDOp.TRAP, [], 0))
            return
        raise BackendUnsupported(f"terminator {inst.opcode.value}")

    def _build_switch(self, inst: SwitchInst, dag: SelectionDAG,
                      node_for) -> None:
        """Lower a switch to a compare-and-branch chain through fresh
        machine blocks."""
        from ..ir.instructions import IcmpPred

        # Pin the scrutinee into a vreg so the chain blocks can import
        # it instead of re-selecting its computation.
        value_node = node_for(inst.value)
        value_reg = self.mf.new_vreg()
        dag.add_root(
            SDNode(SDOp.COPY_TO_VREG, [value_node], value_node.width,
                   value_reg)
        )
        value = SDNode(SDOp.VREG, [], value_node.width, value_reg)
        chain_blocks = [
            self.mf.new_block(f"{dag.block_name}.sw{i}")
            for i in range(max(0, len(inst.cases) - 1))
        ]
        targets = chain_blocks + [self.mbb[inst.default]]
        for i, (const, target) in enumerate(inst.cases):
            cmp = SDNode(SDOp.SETCC,
                         [value,
                          SDNode(SDOp.CONST, [], value.width, const.value)],
                         1, IcmpPred.EQ)
            br = SDNode(SDOp.BRCOND, [cmp], 0,
                        (self.mbb[target], targets[i]))
            if i == 0:
                dag.add_root(br)
            else:
                sub_dag = SelectionDAG(chain_blocks[i - 1].name)
                sub_dag.add_root(br)
                self._select_dag(Legalizer().run(sub_dag),
                                 chain_blocks[i - 1])
        if not inst.cases:
            dag.add_root(SDNode(SDOp.BR, [], 0, self.mbb[inst.default]))

    # -- selection -------------------------------------------------------------------
    def _select_dag(self, dag: SelectionDAG,
                    mbb: MachineBasicBlock) -> None:
        selected: Dict[int, object] = {}  # node id -> Operand

        def operand(node: SDNode):
            if node.id in selected:
                return selected[node.id]
            result = select(node)
            selected[node.id] = result
            return result

        def as_reg(node: SDNode) -> VReg:
            op = operand(node)
            if isinstance(op, Imm):
                reg = self.mf.new_vreg()
                mbb.append(MachineInstr(MOp.MOV, reg, [op],
                                        width=node.width or 32))
                selected[node.id] = reg
                return reg
            return op

        def select(node: SDNode):
            op = node.op
            if op is SDOp.CONST:
                return Imm(node.payload)
            if op is SDOp.UNDEF:
                # a pinned undef register: no defining instruction
                return self.mf.new_vreg(undef=True)
            if op in (SDOp.VREG, SDOp.ARG):
                return node.payload
            if op is SDOp.FREEZE:
                # Section 6: freeze lowers to a register copy
                dst = self.mf.new_vreg()
                mbb.append(MachineInstr(MOp.COPY, dst,
                                        [as_reg(node.operands[0])],
                                        width=node.width))
                return dst
            if op in _SD_MOP:
                dst = self.mf.new_vreg()
                a = as_reg(node.operands[0])
                b = operand(node.operands[1])
                mbb.append(MachineInstr(_SD_MOP[op], dst, [a, b],
                                        width=node.width))
                return dst
            if op is SDOp.SETCC:
                dst = self.mf.new_vreg()
                a = as_reg(node.operands[0])
                b = operand(node.operands[1])
                mbb.append(MachineInstr(
                    MOp.SETCC, dst, [a, b], payload=node.payload,
                    width=node.operands[0].width,
                ))
                return dst
            if op is SDOp.SELECT:
                dst = self.mf.new_vreg()
                mbb.append(MachineInstr(
                    MOp.CMOV, dst,
                    [as_reg(node.operands[0]),
                     operand(node.operands[1]),
                     operand(node.operands[2])],
                    width=node.width,
                ))
                return dst
            if op is SDOp.ZEXT:
                dst = self.mf.new_vreg()
                mbb.append(MachineInstr(
                    MOp.MOVZX, dst, [as_reg(node.operands[0])],
                    payload=node.operands[0].width, width=node.width,
                ))
                return dst
            if op is SDOp.SEXT:
                dst = self.mf.new_vreg()
                mbb.append(MachineInstr(
                    MOp.MOVSX, dst, [as_reg(node.operands[0])],
                    payload=node.operands[0].width, width=node.width,
                ))
                return dst
            if op is SDOp.TRUNC:
                return operand(node.operands[0])
            if op in (SDOp.ASSERT_ZEXT, SDOp.ASSERT_SEXT):
                return operand(node.operands[0])
            if op is SDOp.LOAD:
                dst = self.mf.new_vreg()
                mbb.append(MachineInstr(
                    MOp.LOAD, dst, [as_reg(node.operands[0])],
                    payload=node.payload, width=node.width,
                ))
                return dst
            if op is SDOp.STORE:
                mbb.append(MachineInstr(
                    MOp.STORE, None,
                    [operand(node.operands[0]),
                     as_reg(node.operands[1])],
                    payload=node.payload,
                ))
                return None
            if op is SDOp.FRAME_ADDR:
                dst = self.mf.new_vreg()
                mbb.append(MachineInstr(MOp.FRAME, dst, [],
                                        payload=node.payload))
                return dst
            if op is SDOp.GLOBAL_ADDR:
                dst = self.mf.new_vreg()
                mbb.append(MachineInstr(MOp.GLOBAL, dst, [],
                                        payload=node.payload))
                return dst
            if op is SDOp.ADDR_ADD:
                dst = self.mf.new_vreg()
                base = as_reg(node.operands[0])
                index = operand(node.operands[1])
                mbb.append(MachineInstr(
                    MOp.LEA, dst, [base, index],
                    payload=(node.payload, 0),
                ))
                return dst
            if op is SDOp.CALL:
                dst = self.mf.new_vreg() if node.width else None
                mbb.append(MachineInstr(
                    MOp.CALL, dst,
                    [operand(o) for o in node.operands],
                    payload=node.payload,
                    width=node.width or 32,
                ))
                return dst
            if op is SDOp.COPY_TO_VREG:
                src = operand(node.operands[0])
                mbb.append(MachineInstr(MOp.MOV, node.payload, [src],
                                        width=node.width))
                return None
            if op is SDOp.BR:
                mbb.append(MachineInstr(MOp.JMP, None, [],
                                        payload=node.payload))
                return None
            if op is SDOp.BRCOND:
                mbb.append(MachineInstr(
                    MOp.JCC, None, [operand(node.operands[0])],
                    payload=node.payload,
                ))
                return None
            if op is SDOp.RET:
                srcs = [operand(o) for o in node.operands]
                mbb.append(MachineInstr(MOp.RET, None, srcs))
                return None
            if op is SDOp.TRAP:
                mbb.append(MachineInstr(MOp.TRAP, None, []))
                return None
            raise BackendUnsupported(f"select {op}")

        for root in dag.roots:
            operand(root)


def select_function(fn: Function) -> MachineFunction:
    return InstructionSelector(fn).run()
