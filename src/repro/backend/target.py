"""Target description for the toy x86-flavored machine.

Defines the legal integer widths, the register file, a per-opcode
latency model (used by the machine interpreter to produce the run-time
numbers of experiment E1), and a per-instruction size model (experiment
E4's object-code size).

The latency and size numbers are x86-ish approximations — what matters
for the reproduction is that they are *identical* for both pipelines, so
any measured delta comes from the code the pipelines emit.
"""

from __future__ import annotations

import enum
from typing import Dict

#: integer widths with native register support
LEGAL_WIDTHS = (8, 16, 32)

#: number of allocatable general-purpose registers (x86-64 minus
#: rsp/rbp/and a scratch)
NUM_REGS = 12

REG_NAMES = [
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13",
]
SCRATCH_REG = "r14"


class MOp(enum.Enum):
    """Machine opcodes."""

    MOV = "mov"        # dst, src (reg or imm)
    COPY = "copy"      # dst, src-reg (what freeze lowers to)
    ADD = "add"
    SUB = "sub"
    IMUL = "imul"
    UDIV = "udiv"
    SDIV = "sdiv"
    UREM = "urem"
    SREM = "srem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"        # logical
    SAR = "sar"        # arithmetic
    MOVZX = "movzx"    # dst, src, payload=(src_width)
    MOVSX = "movsx"
    SETCC = "setcc"    # dst, a, b, payload=pred
    CMOV = "cmov"      # dst, cond, a, b
    LEA = "lea"        # dst, base, index, payload=(scale, disp)
    LOAD = "load"      # dst, addr, payload=width
    STORE = "store"    # value, addr, payload=width
    FRAME = "frame"    # dst <- address of frame slot, payload=slot
    GLOBAL = "global"  # dst <- address of global, payload=name
    JMP = "jmp"        # payload=target block
    JCC = "jcc"        # cond; payload=(true block, false block)
    CALL = "call"      # dst?, payload=callee name, uses=args
    RET = "ret"        # optional value
    TRAP = "trap"      # reaching UB at runtime (e.g. unreachable)


#: cycle cost per opcode (machine-interpreter time model)
LATENCY: Dict[MOp, int] = {
    MOp.MOV: 1, MOp.COPY: 1,
    MOp.ADD: 1, MOp.SUB: 1, MOp.AND: 1, MOp.OR: 1, MOp.XOR: 1,
    MOp.SHL: 1, MOp.SHR: 1, MOp.SAR: 1,
    MOp.IMUL: 3,
    MOp.UDIV: 20, MOp.SDIV: 22, MOp.UREM: 20, MOp.SREM: 22,
    MOp.MOVZX: 1, MOp.MOVSX: 1,
    MOp.SETCC: 1, MOp.CMOV: 2, MOp.LEA: 1,
    MOp.LOAD: 4, MOp.STORE: 4, MOp.FRAME: 1, MOp.GLOBAL: 1,
    MOp.JMP: 1, MOp.JCC: 1,
    MOp.CALL: 5, MOp.RET: 2, MOp.TRAP: 0,
}

#: encoded size in bytes per opcode (object-size model); immediates and
#: memory operands add bytes, handled by the asm printer
BASE_SIZE: Dict[MOp, int] = {
    MOp.MOV: 2, MOp.COPY: 2,
    MOp.ADD: 2, MOp.SUB: 2, MOp.AND: 2, MOp.OR: 2, MOp.XOR: 2,
    MOp.SHL: 3, MOp.SHR: 3, MOp.SAR: 3,
    MOp.IMUL: 3,
    MOp.UDIV: 3, MOp.SDIV: 3, MOp.UREM: 3, MOp.SREM: 3,
    MOp.MOVZX: 3, MOp.MOVSX: 3,
    MOp.SETCC: 3, MOp.CMOV: 4, MOp.LEA: 3,
    MOp.LOAD: 3, MOp.STORE: 3, MOp.FRAME: 4, MOp.GLOBAL: 5,
    MOp.JMP: 2, MOp.JCC: 4,
    MOp.CALL: 5, MOp.RET: 1, MOp.TRAP: 2,
}


def legal_width(width: int) -> int:
    """Smallest legal width that holds ``width`` bits."""
    for w in LEGAL_WIDTHS:
        if width <= w:
            return w
    return LEGAL_WIDTHS[-1]


def is_legal(width: int) -> bool:
    return width in LEGAL_WIDTHS
