"""The backend: SelectionDAG, instruction selection, register allocation,
machine interpretation, and assembly printing."""

from typing import Dict, Optional

from ..ir.module import Module
from .isel import BackendUnsupported, InstructionSelector, select_function
from .machine import (
    MachineInterpreter,
    MachineProgram,
    MachineTrap,
    function_size,
    instr_size,
    print_assembly,
)
from .mi import (
    Imm,
    MachineBasicBlock,
    MachineFunction,
    MachineInstr,
    VReg,
    print_machine_function,
)
from .regalloc import allocate_registers, compute_intervals, compute_liveness
from .sdag import Legalizer, SDNode, SDOp, SelectionDAG
from .target import LATENCY, LEGAL_WIDTHS, MOp, NUM_REGS, legal_width


def compile_module(module: Module, allocate: bool = True) -> MachineProgram:
    """Lower every defined function to machine code.

    Returns a :class:`MachineProgram` that the machine interpreter can
    execute and the asm printer can measure."""
    functions: Dict[str, MachineFunction] = {}
    for fn in module.definitions():
        mf = select_function(fn)
        if allocate:
            allocate_registers(mf)
        functions[fn.name] = mf
    global_sizes = {
        name: max(1, (g.value_type.bitwidth() + 7) // 8)
        for name, g in module.globals.items()
    }
    global_inits = {}
    for name, g in module.globals.items():
        init = _initializer_bytes(g)
        if init is not None:
            global_inits[name] = init
    return MachineProgram(functions, global_sizes, global_inits)


def _initializer_bytes(g):
    from ..ir.values import ConstantInt, ConstantVector

    init = g.initializer
    if init is None:
        return None
    if isinstance(init, ConstantInt):
        width = init.type.bits
        nbytes = max(1, (width + 7) // 8)
        return bytes((init.value >> (8 * i)) & 0xFF for i in range(nbytes))
    if isinstance(init, ConstantVector):
        out = bytearray()
        for elem in init.elements:
            if not isinstance(elem, ConstantInt):
                return None
            w = elem.type.bits
            for i in range(max(1, (w + 7) // 8)):
                out.append((elem.value >> (8 * i)) & 0xFF)
        return bytes(out)
    return None


def program_size(program: MachineProgram) -> int:
    return sum(function_size(mf) for mf in program.functions.values())


def run_program(program: MachineProgram, entry: str, args,
                fuel: int = 5_000_000):
    """Execute ``entry``; returns (return value, cycles, instructions)."""
    interp = MachineInterpreter(program, fuel=fuel)
    result = interp.call(entry, list(args))
    return result, interp.cycles, interp.instructions_retired


__all__ = [
    "BackendUnsupported", "InstructionSelector", "select_function",
    "MachineInterpreter", "MachineProgram", "MachineTrap",
    "function_size", "instr_size", "print_assembly",
    "Imm", "MachineBasicBlock", "MachineFunction", "MachineInstr", "VReg",
    "print_machine_function",
    "allocate_registers", "compute_intervals", "compute_liveness",
    "Legalizer", "SDNode", "SDOp", "SelectionDAG",
    "LATENCY", "LEGAL_WIDTHS", "MOp", "NUM_REGS", "legal_width",
    "compile_module", "program_size", "run_program",
]
