"""Alive-style translation validation: refinement checking."""

from .exhaustive import (
    DEADLINE_REASON,
    CheckOptions,
    Counterexample,
    CrossCheckMismatch,
    RefinementResult,
    check_equivalence,
    check_refinement,
    input_candidates,
)
from .refinement import (
    BehaviorSetResult,
    behavior_covers,
    bit_covers,
    bits_cover,
    check_behavior_sets,
)

__all__ = [
    "DEADLINE_REASON",
    "CheckOptions", "Counterexample", "CrossCheckMismatch",
    "RefinementResult",
    "check_equivalence", "check_refinement", "input_candidates",
    "BehaviorSetResult", "behavior_covers", "bit_covers", "bits_cover",
    "check_behavior_sets",
]

from .symbolic import EncodingUnsupported, check_refinement_symbolic


def check_refinement_auto(src, tgt, config=None, options=None):
    """Symbolic proof first (full bitwidths, NEW semantics); exhaustive
    enumeration as the fallback for loops/memory/undef/OLD configs."""
    from ..semantics.config import NEW

    config = config or NEW
    if config.is_new:
        result = check_refinement_symbolic(src, tgt)
        if result.verdict != "inconclusive":
            return result
    return check_refinement(src, tgt, config, options=options)


__all__ += ["EncodingUnsupported", "check_refinement_symbolic",
            "check_refinement_auto"]
