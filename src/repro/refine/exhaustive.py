"""Exhaustive refinement checking over small bitwidths.

This is the paper's own validation method (Section 6): opt-fuzz
exhaustively generated all small functions over 2-bit integers, and each
optimized result was checked for refinement against its source.  At
width 2 or 4 the input space (including poison, and undef in OLD mode)
and the nondeterminism space are small enough to enumerate completely,
giving a *complete* decision procedure for these programs rather than a
sampled approximation.

Entry point: :func:`check_refinement`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..diag import Statistic, phase_entries, span
from ..ir.function import Function
from ..ir.types import IntType, PointerType, Type, VectorType
from ..semantics.config import NEW, SemanticsConfig
from ..semantics.domains import (
    Bits,
    PBIT,
    POISON,
    UBIT,
    RuntimeValue,
    format_value,
    full_undef,
)
from ..semantics.interp import (
    Behavior,
    PathLimitExceeded,
    PlanCache,
    enumerate_behaviors,
)
from .refinement import check_behavior_sets

NUM_CHECKS = Statistic(
    "refine", "num-checks",
    "Refinement checks run (one per source/target function pair)")
NUM_INPUTS_CHECKED = Statistic(
    "refine", "num-inputs-checked",
    "Concrete inputs enumerated across all refinement checks")
NUM_DEADLINE_ABORTS = Statistic(
    "refine", "num-deadline-aborts",
    "Refinement checks abandoned because their request deadline expired")

#: RefinementResult reasons with this substring mean the check was cut
#: short by a *request* deadline — a property of one request's budget,
#: not of the function.  Unlike fuel exhaustion these verdicts must
#: never be memoized (see :mod:`repro.campaign.worker`).
DEADLINE_REASON = "request deadline"


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of a refinement check."""

    verdict: str  # "verified" | "failed" | "inconclusive"
    counterexample: Optional["Counterexample"] = None
    reason: str = ""
    inputs_checked: int = 0
    #: the "verified" verdict came from a deterministic sample of the
    #: input space, not exhaustive enumeration — sound for failures,
    #: evidence-only for verification.  Must stay visible everywhere a
    #: verdict is rendered (``__str__``, campaign reports, serve
    #: chunks) so a sampled pass can never masquerade as a proof.
    sampled: bool = False

    @property
    def ok(self) -> bool:
        return self.verdict == "verified"

    @property
    def failed(self) -> bool:
        return self.verdict == "failed"

    def __str__(self) -> str:
        if self.ok:
            if self.sampled:
                return f"verified ({self.reason})"
            return f"verified ({self.inputs_checked} inputs)"
        if self.failed:
            return f"FAILED\n{self.counterexample}"
        return f"inconclusive: {self.reason}"


@dataclass(frozen=True)
class Counterexample:
    args: Tuple[RuntimeValue, ...]
    arg_types: Tuple[Type, ...]
    global_init: Tuple[Tuple[str, Bits], ...]
    witness: Behavior
    src_behaviors: Tuple[Behavior, ...]

    def __str__(self) -> str:
        arg_strs = [
            format_value(v, t) for v, t in zip(self.args, self.arg_types)
        ]
        lines = [f"  input: ({', '.join(arg_strs)})"]
        if self.global_init:
            for name, bits in self.global_init:
                lines.append(f"  @{name} initially: {_fmt_bits(bits)}")
        lines.append(f"  target can produce: {self.witness}")
        trace = self.witness.trace
        if trace is not None and trace.ub_reason:
            # The interpreter's event trace names the exact UB event the
            # target executed — the divergence, not just "UB".
            lines.append(
                f"  target UB event: {trace.ub_reason} "
                f"(after {trace.steps} steps)"
            )
        lines.append("  but source only allows:")
        for b in sorted(self.src_behaviors, key=str)[:8]:
            lines.append(f"    {b}")
        if len(self.src_behaviors) > 8:
            lines.append(f"    ... ({len(self.src_behaviors) - 8} more)")
        return "\n".join(lines)


def _fmt_bits(bits: Bits) -> str:
    def one(b) -> str:
        if b is PBIT:
            return "p"
        if b is UBIT:
            return "u"
        return str(b)

    return "".join(one(b) for b in reversed(bits))


def scalar_candidates(ty: Type, config: SemanticsConfig,
                      poison_inputs: bool = True,
                      undef_inputs: bool = True) -> List[RuntimeValue]:
    """All interesting input values of a scalar type."""
    if isinstance(ty, IntType):
        values: List[RuntimeValue] = list(range(ty.num_values))
        if poison_inputs:
            values.append(POISON)
        if undef_inputs and config.has_undef:
            values.append(full_undef(ty.bits))
        return values
    raise TypeError(f"cannot enumerate inputs of type {ty}")


def input_candidates(ty: Type, config: SemanticsConfig,
                     poison_inputs: bool = True,
                     undef_inputs: bool = True) -> List[RuntimeValue]:
    if isinstance(ty, IntType):
        return scalar_candidates(ty, config, poison_inputs, undef_inputs)
    if isinstance(ty, VectorType):
        lane = scalar_candidates(ty.elem, config, poison_inputs, undef_inputs)
        return [tuple(v) for v in itertools.product(lane, repeat=ty.count)]
    raise TypeError(f"cannot enumerate inputs of type {ty}")


def _bit_patterns(nbits: int, config: SemanticsConfig,
                  exhaustive_limit: int = 4,
                  poison_in_memory: bool = True) -> List[Bits]:
    """Initial-content candidates for a memory region of ``nbits`` bits."""
    uninit = UBIT if config.uninit_is_undef else PBIT
    patterns: List[Bits] = []
    # The uninitialized pattern models "never stored to".  Under the
    # no-poison-in-memory reading an all-poison region is not a legal
    # memory state, so only include it when uninit bits are undef or
    # poison is allowed in memory.
    if uninit is UBIT or poison_in_memory:
        patterns.append((uninit,) * nbits)
    specials = [0, 1]
    if poison_in_memory:
        specials.append(PBIT)
    if config.has_undef:
        specials.append(UBIT)
    if nbits <= exhaustive_limit:
        patterns.extend(itertools.product(specials, repeat=nbits))
    else:
        patterns.append((0,) * nbits)
        patterns.append((1,) * nbits)
        patterns.append(tuple((i % 2) for i in range(nbits)))
        if poison_in_memory:
            patterns.append((PBIT,) + (0,) * (nbits - 1))
        if config.has_undef:
            # A partially-undef region must stay in the candidate set
            # even when poison is excluded from memory: OLD-mode uninit
            # bits are undef, and dropping them here silently narrowed
            # the checked state space for large regions.
            patterns.append((UBIT,) + (0,) * (nbits - 1))
    # dedupe, preserving order
    seen = set()
    out = []
    for p in patterns:
        if p not in seen:
            seen.add(p)
            out.append(p)
    return out


@dataclass
class CheckOptions:
    """Budgets and toggles for the exhaustive checker."""

    max_inputs: int = 20_000
    max_paths: int = 4096
    max_choices: int = 24
    fuel: int = 10_000
    #: include poison among argument values
    poison_inputs: bool = True
    #: include undef among argument values (OLD-semantics checks only)
    undef_inputs: bool = True
    #: enumerate initial contents of globals
    vary_globals: bool = True
    #: include poison bits among initial memory contents.  Whether
    #: memory can hold poison at all was itself ambiguous pre-paper;
    #: turning this off models the no-poison-in-memory reading.
    poison_in_memory: bool = True
    #: when the input space exceeds ``max_inputs``, check this many
    #: deterministically-sampled inputs instead of giving up (the result
    #: is then "verified (sampled)" — sound for failures, evidence-only
    #: for verification).  ``None`` keeps the strict exhaustive behavior.
    sample_inputs: Optional[int] = None
    #: maximum number of concretizations when union-expanding a target
    #: behavior's undef bits; exceeding it makes that input (and hence
    #: the check) inconclusive rather than silently deciding either way
    undef_expansion_cap: int = 4096
    #: stop enumerating a source input's nondeterminism once UB is
    #: observed (UB licenses everything, so the rest of the behavior set
    #: cannot change the verdict)
    prune_src_ub: bool = True
    #: absolute :func:`time.monotonic` instant after which the check
    #: aborts with an inconclusive ``request deadline`` verdict.  Set
    #: per request by the serve layer — never derived from the spec, so
    #: it cannot leak into memo contexts or cached verdicts.
    deadline: Optional[float] = None
    #: which evaluation engine decides the check: ``"scalar"`` is the
    #: one-input-at-a-time interpreter (the differential oracle),
    #: ``"vector"``/``"auto"`` attempt the numpy lane-parallel engine
    #: (:mod:`repro.refine.vector`) and transparently fall back to
    #: scalar for ineligible (function, config) pairs or when numpy is
    #: not installed.
    engine: str = "auto"
    #: run *both* engines on every vector-eligible check and raise
    #: :class:`CrossCheckMismatch` unless their results are
    #: byte-identical.  Differential-testing mode: slower than either
    #: engine alone, never changes a verdict.
    cross_check: bool = False


def _global_inits(src: Function, config: SemanticsConfig,
                  options: CheckOptions) -> List[Dict[str, Bits]]:
    if src.module is None or not src.module.globals or not options.vary_globals:
        return [dict()]
    per_global: List[List[Tuple[str, Bits]]] = []
    for name, g in sorted(src.module.globals.items()):
        if g.initializer is not None:
            continue  # fixed contents
        nbits = g.value_type.bitwidth()
        per_global.append(
            [(name, bits)
             for bits in _bit_patterns(
                 nbits, config, poison_in_memory=options.poison_in_memory)]
        )
    if not per_global:
        return [dict()]
    inits = []
    for combo in itertools.product(*per_global):
        inits.append(dict(combo))
    return inits


class CrossCheckMismatch(RuntimeError):
    """The scalar and vector engines disagreed on a check that both
    decided — a bug in one of them.  Raised (never swallowed) so a
    campaign records the function as crashed instead of picking a
    winner."""


_ENGINES = ("auto", "scalar", "vector")


def check_refinement(src: Function, tgt: Function,
                     config: SemanticsConfig = NEW,
                     tgt_config: Optional[SemanticsConfig] = None,
                     options: Optional[CheckOptions] = None,
                     engine: Optional[str] = None) -> RefinementResult:
    """Decide whether ``tgt`` refines ``src`` under ``config``.

    ``tgt_config`` allows cross-semantics checks (e.g. validating the
    migration story: a NEW-semantics target refining an OLD-semantics
    source).  Defaults to ``config``.

    ``engine`` overrides ``options.engine`` (see
    :attr:`CheckOptions.engine`); every engine produces byte-identical
    results, so the knob only moves work between implementations.
    """
    NUM_CHECKS.inc()
    with span("refine-check", cat="refine", function=tgt.name) as sp:
        result = _dispatch_refinement(src, tgt, config, tgt_config,
                                      options, engine)
        NUM_INPUTS_CHECKED.inc(result.inputs_checked)
        sp.set(verdict=result.verdict, inputs=result.inputs_checked)
        return result


def _dispatch_refinement(src: Function, tgt: Function,
                         config: SemanticsConfig,
                         tgt_config: Optional[SemanticsConfig],
                         options: Optional[CheckOptions],
                         engine: Optional[str]) -> RefinementResult:
    options = options or CheckOptions()
    engine = engine or options.engine
    if engine not in _ENGINES:
        raise ValueError(f"unknown refinement engine {engine!r} "
                         f"(expected one of {', '.join(_ENGINES)})")
    if engine == "scalar":
        return _check_refinement(src, tgt, config, tgt_config, options)

    # Imported lazily: refine.vector depends on this module's result
    # types, and the scalar path must work with numpy absent.
    from ..diag import default_registry
    from ..semantics.vector import VectorIneligible
    from .vector import (
        NUM_CROSS_CHECKS,
        NUM_VECTOR_CHECKS,
        NUM_VECTOR_FALLBACKS,
        check_refinement_vector,
    )

    try:
        vector_result = check_refinement_vector(src, tgt, config,
                                                tgt_config, options)
    except VectorIneligible as e:
        NUM_VECTOR_FALLBACKS.inc()
        default_registry().add("refine",
                               f"num-vector-ineligible-{e.reason}")
        return _check_refinement(src, tgt, config, tgt_config, options)
    NUM_VECTOR_CHECKS.inc()
    if not options.cross_check:
        return vector_result
    NUM_CROSS_CHECKS.inc()
    scalar_result = _check_refinement(src, tgt, config, tgt_config, options)
    if _result_key(vector_result) != _result_key(scalar_result):
        raise CrossCheckMismatch(
            f"engine disagreement on @{tgt.name}: "
            f"vector={vector_result!s} ({vector_result.inputs_checked} "
            f"inputs) vs scalar={scalar_result!s} "
            f"({scalar_result.inputs_checked} inputs)")
    return vector_result


def _result_key(result: RefinementResult) -> Tuple[str, str, str, int, bool]:
    """Byte-level identity of a result: verdict, full rendering
    (including the counterexample), reason, input count, sampled flag."""
    return (result.verdict, str(result), result.reason,
            result.inputs_checked, result.sampled)


def _check_refinement(src: Function, tgt: Function,
                      config: SemanticsConfig,
                      tgt_config: Optional[SemanticsConfig],
                      options: Optional[CheckOptions]) -> RefinementResult:
    options = options or CheckOptions()
    tgt_config = tgt_config or config

    if len(src.args) != len(tgt.args):
        return RefinementResult("inconclusive",
                                reason="argument count mismatch")
    for a, b in zip(src.args, tgt.args):
        if a.type is not b.type:
            return RefinementResult("inconclusive",
                                    reason="argument type mismatch")
    if src.return_type is not tgt.return_type:
        return RefinementResult("inconclusive",
                                reason="return type mismatch")

    # Cross-semantics checks quantify over inputs *representable on
    # both sides*: an undef argument has no NEW-semantics reading, so
    # OLD-vs-NEW comparisons range over concrete and poison inputs only
    # (the paper's migration erases undef from the language).
    undef_inputs = options.undef_inputs and tgt_config.has_undef
    try:
        arg_spaces = [
            input_candidates(a.type, config, options.poison_inputs,
                             undef_inputs)
            for a in src.args
        ]
    except TypeError as e:
        return RefinementResult("inconclusive", reason=str(e))

    global_inits = _global_inits(src, config, options)

    total = len(global_inits)
    for space in arg_spaces:
        total *= len(space)
    sampled = False
    if total > options.max_inputs:
        if options.sample_inputs is None:
            return RefinementResult(
                "inconclusive",
                reason=f"input space too large ({total} > "
                       f"{options.max_inputs})",
            )
        sampled = True

    def input_stream():
        if not sampled:
            for ginit in global_inits:
                for args in itertools.product(*arg_spaces):
                    yield ginit, args
            return
        import random

        rng = random.Random(0xC0FFEE)
        for _ in range(options.sample_inputs):
            ginit = rng.choice(global_inits)
            args = tuple(rng.choice(space) for space in arg_spaces)
            yield ginit, args

    checked = 0
    skipped = 0
    skip_reason = ""
    # Compile each function once; every input and oracle path below
    # reuses the plans (the functions are not mutated during the check).
    src_plans = PlanCache(config)
    tgt_plans = PlanCache(tgt_config)
    # Per-input timing accumulates into the enclosing refine-check
    # span's phase table — no per-input records, so tracing a campaign
    # stays cheap (the E12 overhead gate).  This is the hottest
    # instrumented loop in the stack, so it chains four perf_counter
    # timestamps across the three adjacent phases instead of nesting
    # three context managers per input.
    entries = phase_entries("enumerate-src", "enumerate-tgt", "compare")
    clock = time.perf_counter
    deadline = options.deadline
    for ginit, args in input_stream():
        if deadline is not None and time.monotonic() >= deadline:
            NUM_DEADLINE_ABORTS.inc()
            return RefinementResult(
                "inconclusive",
                reason=(f"{DEADLINE_REASON} expired after "
                        f"{checked} inputs"),
                inputs_checked=checked,
            )
        checked += 1
        t0 = clock()
        try:
            src_b = enumerate_behaviors(
                src, args, config, global_init=ginit,
                max_paths=options.max_paths,
                max_choices=options.max_choices, fuel=options.fuel,
                plans=src_plans, stop_on_ub=options.prune_src_ub,
            )
            t1 = clock()
            tgt_b = enumerate_behaviors(
                tgt, args, tgt_config, global_init=ginit,
                max_paths=options.max_paths,
                max_choices=options.max_choices, fuel=options.fuel,
                plans=tgt_plans,
            )
        except PathLimitExceeded as e:
            # This input's nondeterminism is too wide to enumerate;
            # keep scanning other inputs (a counterexample elsewhere
            # is still definite).
            skipped += 1
            skip_reason = str(e)
            continue
        t2 = clock()
        result = check_behavior_sets(
            src_b, tgt_b,
            undef_cap=options.undef_expansion_cap,
            function=tgt.name,
        )
        if entries is not None:
            t3 = clock()
            e_src, e_tgt, e_cmp = entries
            e_src[0] += 1
            e_src[1] += t1 - t0
            e_tgt[0] += 1
            e_tgt[1] += t2 - t1
            e_cmp[0] += 1
            e_cmp[1] += t3 - t2
        if result.inconclusive:
            skipped += 1
            skip_reason = result.reason
            continue
        if not result.ok:
            cex = Counterexample(
                args=tuple(args),
                arg_types=tuple(a.type for a in src.args),
                global_init=tuple(sorted(ginit.items())),
                witness=result.witness,
                src_behaviors=tuple(src_b),
            )
            return RefinementResult("failed", counterexample=cex,
                                    inputs_checked=checked)
    if skipped:
        return RefinementResult(
            "inconclusive",
            reason=(f"{skipped}/{checked} inputs undecided "
                    f"(last: {skip_reason})"),
            inputs_checked=checked,
        )
    if sampled:
        return RefinementResult(
            "verified",
            reason=f"sampled {checked} of {total} inputs",
            inputs_checked=checked,
            sampled=True,
        )
    return RefinementResult("verified", inputs_checked=checked)


def check_equivalence(a: Function, b: Function,
                      config: SemanticsConfig = NEW,
                      tgt_config: Optional[SemanticsConfig] = None,
                      options: Optional[CheckOptions] = None,
                      engine: Optional[str] = None,
                      ) -> Tuple[RefinementResult, RefinementResult]:
    """Refinement in both directions (semantic equivalence when both
    verify).

    ``config`` is ``a``'s semantics and ``tgt_config`` is ``b``'s
    (defaulting to ``config``), regardless of direction: the reverse
    check swaps which function is source and target, so it must also
    swap the configs.  Passing ``config=OLD, tgt_config=NEW`` therefore
    asks the migration-story question in both directions — "does the
    NEW-semantics ``b`` refine the OLD-semantics ``a``, and vice
    versa" — which the old signature (one config for both sides of both
    directions) could not express.
    """
    b_config = tgt_config or config
    return (
        check_refinement(a, b, config, tgt_config=b_config,
                         options=options, engine=engine),
        check_refinement(b, a, b_config, tgt_config=config,
                         options=options, engine=engine),
    )
