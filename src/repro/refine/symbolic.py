"""Symbolic (SMT-based) refinement checking for poison-only functions.

This is the Alive-style verification-condition generator: every SSA
value is encoded as a pair *(value bitvector, poison bool)*; control
flow becomes path conditions; branch-on-poison contributes to a UB
condition.  The refinement VC for target vs source is::

    exists input:
        not UB_src
        and ( UB_tgt
           or (not poison_src_ret
               and (poison_tgt_ret or val_tgt != val_src)) )

UNSAT means the target refines the source on *all* inputs (including
poison arguments) — a complete proof at full bitwidths, not just the
small widths the exhaustive checker enumerates.

Scope (checked up front, anything else falls back to
:func:`repro.refine.exhaustive.check_refinement`):

* loop-free CFG, scalar integer values only;
* no memory operations, no calls;
* no ``undef`` (undef needs quantifier alternation — one more reason the
  paper removes it);
* ``freeze`` allowed in the **target** (its choice is existential in the
  counterexample search, hence universal in the UNSAT reading — exactly
  refinement); a source freeze would need the opposite polarity, so it
  is out of scope.

The select encoding follows Figure 5 (NEW semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.cfg import reverse_postorder
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryInst,
    BranchInst,
    CastInst,
    FreezeInst,
    IcmpInst,
    IcmpPred,
    Instruction,
    Opcode,
    PhiInst,
    ReturnInst,
    SelectInst,
    SwitchInst,
    UnreachableInst,
)
from ..ir.types import IntType
from ..ir.values import Argument, ConstantInt, PoisonValue, UndefValue, Value
from ..smt import terms as T
from ..smt.sat import SAT, UNSAT
from ..smt.solver import Solver, SolverSession
from .exhaustive import RefinementResult


class EncodingUnsupported(Exception):
    """The function falls outside the symbolic fragment."""


@dataclass
class EncodedFunction:
    ub: T.Term            # some execution path reached immediate UB
    ret_val: T.Term       # return value (meaningful when not ret_poison)
    ret_poison: T.Term
    freeze_vars: List[T.Term]


class FunctionEncoder:
    def __init__(self, fn: Function, arg_vals: List[T.Term],
                 arg_poisons: List[T.Term], prefix: str):
        self.fn = fn
        self.prefix = prefix
        self.values: Dict[Value, Tuple[T.Term, T.Term]] = {}
        for arg, v, p in zip(fn.args, arg_vals, arg_poisons):
            self.values[arg] = (v, p)
        self.freeze_vars: List[T.Term] = []
        self._freeze_count = 0
        self.ub = T.FALSE

    def encode(self) -> EncodedFunction:
        fn = self.fn
        self._check_supported()
        rpo = reverse_postorder(fn)
        order = {b: i for i, b in enumerate(rpo)}

        #: path condition of each block
        pc: Dict[BasicBlock, T.Term] = {fn.entry: T.TRUE}
        #: (pred, succ) -> edge condition
        edge: Dict[Tuple[BasicBlock, BasicBlock], T.Term] = {}
        rets: List[Tuple[T.Term, T.Term, T.Term]] = []

        for block in rpo:
            if block is not fn.entry:
                incoming = [
                    edge.get((p, block), T.FALSE)
                    for p in block.predecessors()
                ]
                pc[block] = T.or_(*incoming)
            cond = pc[block]

            for inst in block.instructions:
                if isinstance(inst, PhiInst):
                    self._encode_phi(inst, edge)
                elif isinstance(inst, BranchInst):
                    self._encode_branch(inst, block, cond, edge)
                elif isinstance(inst, ReturnInst):
                    if inst.value is None:
                        rets.append((cond, T.bv_const(0, 1), T.FALSE))
                    else:
                        v, p = self._value(inst.value)
                        rets.append((cond, v, p))
                elif isinstance(inst, UnreachableInst):
                    self.ub = T.or_(self.ub, cond)
                else:
                    self._encode_instruction(inst, cond)

        if not rets:
            ret_val = T.bv_const(0, 1)
            ret_poison = T.FALSE
        else:
            _, ret_val, ret_poison = rets[-1]
            for cond, v, p in reversed(rets[:-1]):
                ret_val = T.ite(cond, v, ret_val)
                ret_poison = T.bool_ite(cond, p, ret_poison)
        return EncodedFunction(self.ub, ret_val, ret_poison,
                               self.freeze_vars)

    # -- scope checks -----------------------------------------------------------
    def _check_supported(self) -> None:
        from ..analysis.dominators import DominatorTree

        fn = self.fn
        dt = DominatorTree(fn)
        for block in fn.blocks:
            for succ in block.successors():
                if dt.dominates_block(succ, block):
                    raise EncodingUnsupported("function has a loop")
        for inst in fn.instructions():
            if inst.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.ALLOCA,
                               Opcode.GEP, Opcode.CALL,
                               Opcode.EXTRACTELEMENT, Opcode.INSERTELEMENT,
                               Opcode.BITCAST, Opcode.PTRTOINT,
                               Opcode.INTTOPTR, Opcode.SWITCH):
                raise EncodingUnsupported(
                    f"{inst.opcode.value} not in the symbolic fragment"
                )
            if not inst.type.is_void and not isinstance(inst.type, IntType):
                raise EncodingUnsupported(f"non-integer type {inst.type}")
            for op in inst.operands:
                if isinstance(op, UndefValue):
                    raise EncodingUnsupported(
                        "undef requires quantifier alternation"
                    )
        for arg in fn.args:
            if not isinstance(arg.type, IntType):
                raise EncodingUnsupported(f"non-integer arg {arg.type}")
        if not isinstance(fn.return_type, IntType) \
                and not fn.return_type.is_void:
            raise EncodingUnsupported("non-integer return")

    # -- operand lookup ------------------------------------------------------------
    def _value(self, op: Value) -> Tuple[T.Term, T.Term]:
        if isinstance(op, ConstantInt):
            return T.bv_const(op.value, op.type.bits), T.FALSE
        if isinstance(op, PoisonValue):
            return T.bv_const(0, op.type.bitwidth()), T.TRUE
        got = self.values.get(op)
        if got is None:
            raise EncodingUnsupported(f"unsupported operand {op!r}")
        return got

    # -- per-instruction encodings ---------------------------------------------------
    def _encode_phi(self, phi: PhiInst, edge) -> None:
        pairs = []
        for value, pred in phi.incoming:
            cond = edge.get((pred, phi.parent), T.FALSE)
            pairs.append((cond, value))
        v, p = self._value(pairs[-1][1])
        for cond, value in reversed(pairs[:-1]):
            vv, pp = self._value(value)
            v = T.ite(cond, vv, v)
            p = T.bool_ite(cond, pp, p)
        self.values[phi] = (v, p)

    def _encode_branch(self, br: BranchInst, block, cond: T.Term,
                       edge) -> None:
        if not br.is_conditional:
            target = br.targets[0]
            edge[(block, target)] = T.or_(
                edge.get((block, target), T.FALSE), cond
            )
            return
        cv, cp = self._value(br.cond)
        # Branch on poison is immediate UB (Section 4).
        self.ub = T.or_(self.ub, T.and_(cond, cp))
        taken = T.eq(cv, T.bv_const(1, 1))
        t_edge = T.and_(cond, T.not_(cp), taken)
        f_edge = T.and_(cond, T.not_(cp), T.not_(taken))
        tb, fb = br.true_block, br.false_block
        edge[(block, tb)] = T.or_(edge.get((block, tb), T.FALSE), t_edge)
        edge[(block, fb)] = T.or_(edge.get((block, fb), T.FALSE), f_edge)

    def _encode_instruction(self, inst: Instruction, cond: T.Term) -> None:
        if isinstance(inst, BinaryInst):
            self.values[inst] = self._encode_binary(inst, cond)
        elif isinstance(inst, IcmpInst):
            self.values[inst] = self._encode_icmp(inst)
        elif isinstance(inst, SelectInst):
            self.values[inst] = self._encode_select(inst)
        elif isinstance(inst, FreezeInst):
            self.values[inst] = self._encode_freeze(inst)
        elif isinstance(inst, CastInst):
            self.values[inst] = self._encode_cast(inst)
        else:
            raise EncodingUnsupported(f"instruction {inst.opcode.value}")

    def _encode_binary(self, inst: BinaryInst, cond: T.Term):
        a, ap = self._value(inst.lhs)
        b, bp = self._value(inst.rhs)
        width = inst.type.bits
        op = inst.opcode
        poison = T.or_(ap, bp)

        if op in (Opcode.UDIV, Opcode.SDIV, Opcode.UREM, Opcode.SREM):
            # zero or poison divisor is immediate UB on this path
            div_ub = T.or_(bp, T.eq(b, T.bv_const(0, width)))
            if op in (Opcode.SDIV, Opcode.SREM):
                int_min = T.bv_const(1 << (width - 1), width)
                minus1 = T.bv_const((1 << width) - 1, width)
                div_ub = T.or_(
                    div_ub, T.and_(T.eq(a, int_min), T.eq(b, minus1))
                )
            self.ub = T.or_(self.ub, T.and_(cond, div_ub))
            fn = {
                Opcode.UDIV: T.bvudiv, Opcode.UREM: T.bvurem,
                Opcode.SDIV: T.bvsdiv, Opcode.SREM: T.bvsrem,
            }[op]
            value = fn(a, b)
            poison = ap
            if inst.exact:
                rem = T.bvurem(a, b) if op is Opcode.UDIV else T.bvsrem(a, b)
                poison = T.or_(poison, T.ne(rem, T.bv_const(0, width)))
            return value, poison

        if op is Opcode.ADD:
            value = T.bvadd(a, b)
            if inst.nsw:
                wide = T.bvadd(T.sext(a, width + 1), T.sext(b, width + 1))
                poison = T.or_(poison,
                               T.ne(wide, T.sext(value, width + 1)))
            if inst.nuw:
                wide = T.bvadd(T.zext(a, width + 1), T.zext(b, width + 1))
                poison = T.or_(poison,
                               T.ne(wide, T.zext(value, width + 1)))
            return value, poison
        if op is Opcode.SUB:
            value = T.bvsub(a, b)
            if inst.nsw:
                wide = T.bvsub(T.sext(a, width + 1), T.sext(b, width + 1))
                poison = T.or_(poison,
                               T.ne(wide, T.sext(value, width + 1)))
            if inst.nuw:
                poison = T.or_(poison, T.ult(a, b))
            return value, poison
        if op is Opcode.MUL:
            value = T.bvmul(a, b)
            if inst.nsw:
                wide = T.bvmul(T.sext(a, 2 * width), T.sext(b, 2 * width))
                poison = T.or_(poison,
                               T.ne(wide, T.sext(value, 2 * width)))
            if inst.nuw:
                wide = T.bvmul(T.zext(a, 2 * width), T.zext(b, 2 * width))
                poison = T.or_(poison,
                               T.ne(wide, T.zext(value, 2 * width)))
            return value, poison
        if op in (Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
            fn = {Opcode.SHL: T.bvshl, Opcode.LSHR: T.bvlshr,
                  Opcode.ASHR: T.bvashr}[op]
            value = fn(a, b)
            # Out-of-range shift amount: poison (NEW semantics).  The
            # width constant always fits since width < 2^width.
            poison = T.or_(poison,
                           T.not_(T.ult(b, T.bv_const(width, width))))
            if op is Opcode.SHL and inst.nuw:
                back = T.bvlshr(value, b)
                poison = T.or_(poison, T.ne(back, a))
            if op is Opcode.SHL and inst.nsw:
                back = T.bvashr(value, b)
                poison = T.or_(poison, T.ne(back, a))
            if op in (Opcode.LSHR, Opcode.ASHR) and inst.exact:
                back = T.bvshl(value, b)
                poison = T.or_(poison, T.ne(back, a))
            return value, poison
        fn = {Opcode.AND: T.bvand, Opcode.OR: T.bvor,
              Opcode.XOR: T.bvxor}[op]
        return fn(a, b), poison

    def _encode_icmp(self, inst: IcmpInst):
        a, ap = self._value(inst.lhs)
        b, bp = self._value(inst.rhs)
        pred = inst.pred
        table = {
            IcmpPred.EQ: T.eq(a, b),
            IcmpPred.NE: T.ne(a, b),
            IcmpPred.UGT: T.ult(b, a),
            IcmpPred.UGE: T.ule(b, a),
            IcmpPred.ULT: T.ult(a, b),
            IcmpPred.ULE: T.ule(a, b),
            IcmpPred.SGT: T.slt(b, a),
            IcmpPred.SGE: T.sle(b, a),
            IcmpPred.SLT: T.slt(a, b),
            IcmpPred.SLE: T.sle(a, b),
        }
        value = T.ite(table[pred], T.bv_const(1, 1), T.bv_const(0, 1))
        return value, T.or_(ap, bp)

    def _encode_select(self, inst: SelectInst):
        c, cp = self._value(inst.cond)
        t, tp = self._value(inst.true_value)
        f, fp = self._value(inst.false_value)
        taken = T.eq(c, T.bv_const(1, 1))
        value = T.ite(taken, t, f)
        # Figure 5: poison condition -> poison result; otherwise only the
        # chosen arm's poison matters.
        poison = T.or_(cp, T.bool_ite(taken, tp, fp))
        return value, poison

    def _encode_freeze(self, inst: FreezeInst):
        v, p = self._value(inst.value)
        self._freeze_count += 1
        fresh = T.bv_var(f"{self.prefix}.freeze{self._freeze_count}",
                         inst.type.bits)
        self.freeze_vars.append(fresh)
        return T.ite(p, fresh, v), T.FALSE

    def _encode_cast(self, inst: CastInst):
        v, p = self._value(inst.value)
        width = inst.type.bits
        if inst.opcode is Opcode.ZEXT:
            return T.zext(v, width), p
        if inst.opcode is Opcode.SEXT:
            return T.sext(v, width), p
        if inst.opcode is Opcode.TRUNC:
            return T.trunc(v, width), p
        raise EncodingUnsupported(f"cast {inst.opcode.value}")


def check_refinement_symbolic(src: Function, tgt: Function,
                              max_conflicts: int = 500_000,
                              session: Optional[SolverSession] = None,
                              deadline: Optional[float] = None
                              ) -> RefinementResult:
    """SMT-based refinement check (NEW semantics, poison-only fragment).

    Returns ``inconclusive`` when either function falls outside the
    fragment (the caller should fall back to the exhaustive checker).

    ``session`` runs the query through a shared :class:`SolverSession`:
    argument variables are named positionally (``arg0``, ``arg0.poison``,
    ...), and terms are globally hash-consed, so functions with the same
    signature re-encounter the same terms — their circuits come from the
    session's bit-blast cache and the CDCL solver keeps every clause it
    learned on earlier checks.  Verdicts are identical with or without a
    session; only the work is shared.
    """
    if len(src.args) != len(tgt.args) or any(
        a.type is not b.type for a, b in zip(src.args, tgt.args)
    ) or src.return_type is not tgt.return_type:
        return RefinementResult("inconclusive", reason="signature mismatch")

    try:
        arg_vals = [
            T.bv_var(f"arg{i}", a.type.bits)
            for i, a in enumerate(src.args)
        ]
        arg_poisons = [
            T.bool_var(f"arg{i}.poison") for i in range(len(src.args))
        ]
        src_enc = FunctionEncoder(src, arg_vals, arg_poisons, "src")
        if any(isinstance(i, FreezeInst) for i in src.instructions()):
            return RefinementResult(
                "inconclusive",
                reason="freeze in the source needs forall-exists "
                       "quantification",
            )
        s = src_enc.encode()
        t = FunctionEncoder(tgt, arg_vals, arg_poisons, "tgt").encode()
    except EncodingUnsupported as e:
        return RefinementResult("inconclusive", reason=str(e))

    ret_matters = not src.return_type.is_void
    if ret_matters:
        bad_ret = T.and_(
            T.not_(s.ret_poison),
            T.or_(t.ret_poison, T.ne(t.ret_val, s.ret_val)),
        )
    else:
        bad_ret = T.FALSE
    vc = T.and_(T.not_(s.ub), T.or_(t.ub, bad_ret))

    if session is not None:
        solver = session
        result = session.check(vc, deadline=deadline)
    else:
        solver = Solver(max_conflicts)
        solver.add(vc)
        result = solver.check(deadline=deadline)
    if result == UNSAT:
        return RefinementResult("verified",
                                inputs_checked=-1)  # all inputs, symbolically
    if result != SAT:
        if getattr(solver.sat, "deadline_hit", False):
            from .exhaustive import DEADLINE_REASON

            return RefinementResult(
                "inconclusive",
                reason=f"{DEADLINE_REASON} expired mid-query")
        return RefinementResult("inconclusive", reason="solver budget")

    # Build a readable counterexample.
    from ..semantics.domains import POISON
    from .exhaustive import Counterexample

    args = []
    for av, ap in zip(arg_vals, arg_poisons):
        if solver.model_bool(ap):
            args.append(POISON)
        else:
            args.append(solver.model_bv(av))
    from ..semantics.interp import enumerate_behaviors

    try:
        src_b = enumerate_behaviors(src, args)
        tgt_b = enumerate_behaviors(tgt, args)
        witness = next(
            (b for b in tgt_b
             if not any(_covers(sb, b) for sb in src_b)),
            next(iter(tgt_b)),
        )
        cex = Counterexample(
            args=tuple(args),
            arg_types=tuple(a.type for a in src.args),
            global_init=(),
            witness=witness,
            src_behaviors=tuple(src_b),
        )
    except Exception:  # pragma: no cover - cex reconstruction best-effort
        cex = None
    return RefinementResult("failed", counterexample=cex)


def _covers(a, b):
    from .refinement import behavior_covers

    return behavior_covers(a, b)
