"""Lane-parallel refinement checking over numpy array programs.

:func:`check_refinement_vector` is the vector engine behind
``check_refinement(engine="vector")``: it lowers both functions with
:mod:`repro.semantics.vector`, lays the *entire* input space out as
array lanes (one lane per input tuple, in the scalar checker's
``itertools.product`` order), runs every freeze-choice combination of
each side over all lanes at once, and applies the Alive coverage rule
(`refinement.check_behavior_sets`) as boolean-array algebra:

* a lane where *any* source run is UB is covered outright
  (source UB licenses everything);
* a target run's lane is otherwise covered iff some non-UB source run
  returns poison there (poison covers anything) or returns the same
  concrete value as a non-poison target lane;
* a target-UB lane with no source UB is a definite failure.

Whole-scalar poison makes the bit-level ``ty↓`` coverage collapse to
this per-lane form: an eligible config has no undef, so a behavior's
return bits are either all concrete or all ``PBIT`` — exactly one
boolean lane of information.

The engine either returns a result **byte-identical** to the scalar
checker's (same verdict, same ``inputs_checked``, same rendered
counterexample — the first failing lane in input order is re-run
through the scalar interpreter to materialize the witness) or raises
:class:`~repro.semantics.vector.VectorIneligible`, in which case the
dispatcher falls back to the scalar engine.  The scalar path thus stays
the differential oracle; ``CheckOptions.cross_check`` runs both and
asserts the equality instead of assuming it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..diag import Statistic
from ..ir.function import Function
from ..semantics.config import SemanticsConfig
from ..semantics.interp import enumerate_behaviors
from ..semantics.vector import (
    VectorIneligible,
    VectorPlan,
    freeze_combinations,
    numpy_available,
)
from .refinement import check_behavior_sets

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

NUM_VECTOR_CHECKS = Statistic(
    "refine", "num-vector-checks",
    "Refinement checks decided by the vector (numpy) engine")
NUM_VECTOR_FALLBACKS = Statistic(
    "refine", "num-vector-fallbacks",
    "Vector-engine attempts that fell back to the scalar interpreter")
NUM_CROSS_CHECKS = Statistic(
    "refine", "num-cross-checks",
    "Refinement checks run under both engines and compared")
NUM_VECTOR_LANES = Statistic(
    "refine", "num-vector-lanes",
    "Input lanes decided by vector plan executions")

#: lane-index arrays are pure functions of (arg widths, poison flag);
#: cache them across checks of a same-shaped corpus.
_LANE_CACHE: Dict[Tuple[Tuple[int, ...], bool], tuple] = {}
_LANE_CACHE_CAP = 32


def _lane_arrays(widths: Tuple[int, ...], poison_inputs: bool):
    """Per-argument ``(val, pois)`` lane arrays covering the full input
    cross product, lane ``i`` being the ``i``-th tuple of the scalar
    checker's ``itertools.product`` enumeration (last argument varies
    fastest)."""
    key = (widths, poison_inputs)
    cached = _LANE_CACHE.get(key)
    if cached is not None:
        return cached
    sizes = [(1 << w) + (1 if poison_inputs else 0) for w in widths]
    total = 1
    for k in sizes:
        total *= k
    lane = np.arange(total, dtype=np.int64)
    arg_vals: List = []
    arg_pois: List = []
    stride = total
    for w, k in zip(widths, sizes):
        stride //= k
        idx = (lane // stride) % k
        pois = idx == (1 << w)  # all-False when poison_inputs is off
        arg_vals.append(np.where(pois, 0, idx))
        arg_pois.append(pois)
    if len(_LANE_CACHE) >= _LANE_CACHE_CAP:
        _LANE_CACHE.clear()
    result = (total, arg_vals, arg_pois)
    _LANE_CACHE[key] = result
    return result


def check_refinement_vector(src: Function, tgt: Function,
                            config: SemanticsConfig,
                            tgt_config: Optional[SemanticsConfig],
                            options) -> "RefinementResult":
    """Vector-engine refinement check; byte-identical to the scalar
    engine when it returns, :class:`VectorIneligible` when it cannot
    promise that."""
    from .exhaustive import (  # local: exhaustive imports this module's caller
        Counterexample,
        RefinementResult,
        input_candidates,
    )

    if np is None:
        raise VectorIneligible(
            "numpy-unavailable",
            "numpy is not installed (pip install 'repro[vector]')")
    if options.deadline is not None:
        # Deadline verdicts depend on wall-clock progress through the
        # scalar input loop; reproducing them lane-parallel is
        # meaningless.  Let the scalar engine own deadline semantics.
        raise VectorIneligible("deadline", "request has a deadline")
    tgt_config = tgt_config or config

    # The scalar engine's signature mismatches produce canonical
    # inconclusive verdicts; routing them through the fallback keeps
    # those strings byte-identical.
    if len(src.args) != len(tgt.args):
        raise VectorIneligible("signature", "argument count mismatch")
    for a, b in zip(src.args, tgt.args):
        if a.type is not b.type:
            raise VectorIneligible("signature", "argument type mismatch")
    if src.return_type is not tgt.return_type:
        raise VectorIneligible("signature", "return type mismatch")

    src_plan = VectorPlan(src, config, max_choices=options.max_choices,
                          fuel=options.fuel)
    tgt_plan = VectorPlan(tgt, tgt_config, max_choices=options.max_choices,
                          fuel=options.fuel)
    src_combos = freeze_combinations(src_plan, options.max_paths)
    tgt_combos = freeze_combinations(tgt_plan, options.max_paths)

    widths = tuple(a.type.bits for a in src.args)
    total, arg_vals, arg_pois = _lane_arrays(widths, options.poison_inputs)
    if total > options.max_inputs:
        # Scalar owns both the "input space too large" inconclusive and
        # the sample_inputs fallback.
        raise VectorIneligible(
            "input-space",
            f"input space {total} exceeds max_inputs={options.max_inputs}")

    src_runs = [src_plan.run(arg_vals, arg_pois, combo)
                for combo in src_combos]
    tgt_runs = [tgt_plan.run(arg_vals, arg_pois, combo)
                for combo in tgt_combos]

    src_ub_any = src_runs[0][2].copy()
    for _, _, sub in src_runs[1:]:
        src_ub_any |= sub

    fail = np.zeros(total, dtype=bool)
    for tval, tpois, tub in tgt_runs:
        covered = src_ub_any.copy()
        for sval, spois, sub in src_runs:
            covered |= (~sub & ~tub
                        & (spois | (~tpois & (sval == tval))))
        fail |= ~covered
    NUM_VECTOR_LANES.inc(total)

    if not bool(fail.any()):
        return RefinementResult("verified", inputs_checked=total)

    # First failing input in enumeration order; materialize the exact
    # scalar counterexample by re-running the interpreter on that one
    # input (witness selection, behavior formatting, and the
    # src-behavior listing all come from the oracle itself).
    lane = int(np.argmax(fail))
    arg_spaces = [
        input_candidates(a.type, config, options.poison_inputs,
                         options.undef_inputs)
        for a in src.args
    ]
    args = []
    stride = total
    for space in arg_spaces:
        stride //= len(space)
        args.append(space[(lane // stride) % len(space)])
    args = tuple(args)

    src_b = enumerate_behaviors(
        src, args, config, global_init={},
        max_paths=options.max_paths, max_choices=options.max_choices,
        fuel=options.fuel, stop_on_ub=options.prune_src_ub,
    )
    tgt_b = enumerate_behaviors(
        tgt, args, tgt_config, global_init={},
        max_paths=options.max_paths, max_choices=options.max_choices,
        fuel=options.fuel,
    )
    oracle = check_behavior_sets(
        src_b, tgt_b,
        undef_cap=options.undef_expansion_cap,
        function=tgt.name,
    )
    if oracle.ok or oracle.inconclusive:
        # The oracle disagrees with the lane algebra on this input —
        # refuse to decide and let the scalar engine rule (and surface
        # the disagreement in the fallback stats).
        raise VectorIneligible(
            "lane-disagreement",
            f"vector engine flagged lane {lane} of @{tgt.name} but the "
            f"scalar oracle does not fail it")
    cex = Counterexample(
        args=args,
        arg_types=tuple(a.type for a in src.args),
        global_init=(),
        witness=oracle.witness,
        src_behaviors=tuple(src_b),
    )
    return RefinementResult("failed", counterexample=cex,
                            inputs_checked=lane + 1)


__all__ = [
    "check_refinement_vector",
    "numpy_available",
    "VectorIneligible",
    "NUM_VECTOR_CHECKS",
    "NUM_VECTOR_FALLBACKS",
    "NUM_CROSS_CHECKS",
    "NUM_VECTOR_LANES",
]
