"""The refinement relation between behaviors (Alive-style).

A transformed function ``tgt`` *refines* a source function ``src`` iff
for every input:

* if ``src`` may execute UB on some nondeterministic path, anything is
  allowed (UB is the top behavior); otherwise
* every behavior of ``tgt`` must be covered by some behavior of ``src``.

Coverage of observables is bitwise: a source poison bit covers anything
(a compiler may replace deferred UB with any value); a source undef bit
covers any non-poison bit (undef stands for every concrete value, and
poison is *strictly stronger* than undef — the mistake in the
``select %c, %x, undef -> %x`` transformation of Section 3.4 is exactly
a target poison bit where the source had undef); a concrete source bit
covers only itself.

External-call events are observable: callee and argument observables must
be covered pairwise and in order; the environment's return value is an
input, so it must be *equal* on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..diag import REMARK_MISSED, Statistic, emit_remark
from ..semantics.domains import Bit, Bits, PBIT, UBIT
from ..semantics.interp import RET, TIMEOUT, UB, Behavior

NUM_UNDEF_EXPANSION_OVERFLOW = Statistic(
    "refine", "num-undef-expansion-overflow",
    "Undef expansions that exceeded the concretization cap "
    "(verdict forced to inconclusive)")


def bit_covers(src: Bit, tgt: Bit) -> bool:
    if src is PBIT:
        return True
    if src is UBIT:
        return tgt is not PBIT
    return src == tgt


def bits_cover(src: Optional[Bits], tgt: Optional[Bits]) -> bool:
    if src is None or tgt is None:
        return src is None and tgt is None
    if len(src) != len(tgt):
        return False
    return all(bit_covers(s, t) for s, t in zip(src, tgt))


def behavior_covers(src: Behavior, tgt: Behavior) -> bool:
    """Does source behavior ``src`` license target behavior ``tgt``?"""
    if src.kind == UB:
        return True
    if src.kind != tgt.kind:
        return False
    if tgt.kind == TIMEOUT:
        return src.kind == TIMEOUT
    if not bits_cover(src.ret, tgt.ret):
        return False
    if len(src.events) != len(tgt.events):
        return False
    for (s_name, s_args, s_ret), (t_name, t_args, t_ret) in zip(
        src.events, tgt.events
    ):
        if s_name != t_name or len(s_args) != len(t_args):
            return False
        if not all(bits_cover(sa, ta) for sa, ta in zip(s_args, t_args)):
            return False
        if s_ret != t_ret:  # environment input: must match exactly
            return False
    if len(src.memory) != len(tgt.memory):
        return False
    # Regions are matched by *name*, never by position: two behaviors
    # whose region lists agree but were recorded in different orders
    # must compare equal.  (Behavior construction sorts regions by name,
    # so this is also cheap — but the dict lookup keeps coverage correct
    # even for hand-built behaviors that bypass the invariant.)
    src_mem = dict(src.memory)
    for t_name, t_bits in tgt.memory:
        s_bits = src_mem.get(t_name)
        if s_bits is None or not bits_cover(s_bits, t_bits):
            return False
    return True


@dataclass(frozen=True)
class BehaviorSetResult:
    """Outcome of comparing behavior sets on one input."""

    ok: bool
    #: the uncovered target behavior, when not ok
    witness: Optional[Behavior] = None
    inconclusive: bool = False
    reason: str = ""


def _expand_undef_bits(behavior: Behavior, cap: int = 4096):
    """All concretizations of the behavior's undef bits.

    A target behavior containing undef bits stands for *every*
    concretization, each of which may be licensed by a *different*
    source behavior (e.g. ``ret undef`` is covered by the union
    {ret 0, ret 1, ...}).  Per-behavior coverage alone would reject
    such refinements — ``add x, 0 -> x`` with an undef ``x`` being the
    canonical example.

    Returns ``(expansions, needed)`` where ``needed`` is the total
    number of concretizations.  ``expansions`` is ``None`` when there is
    nothing to expand (``needed == 0``) or when ``needed`` exceeds
    ``cap``.  Callers must treat the overflow case — ``expansions is
    None and needed > cap`` — as *inconclusive*: deciding either way on
    a truncated expansion is unsound (a dropped concretization could
    refute a claimed coverage, and union coverage could license a
    behavior that per-behavior coverage rejected)."""
    import itertools

    def count_ubits(bits: Optional[Bits]) -> int:
        if bits is None:
            return 0
        return sum(1 for b in bits if b is UBIT)

    total_ubits = count_ubits(behavior.ret)
    for _, args, _ in behavior.events:
        for a in args:
            total_ubits += count_ubits(a)
    for _, bits in behavior.memory:
        total_ubits += count_ubits(bits)
    if total_ubits == 0:
        return None, 0
    needed = 1 << total_ubits
    if needed > cap:
        return None, needed

    def fill(bits: Optional[Bits], values, pos: list) -> Optional[Bits]:
        if bits is None:
            return None
        out = []
        for b in bits:
            if b is UBIT:
                out.append(values[pos[0]])
                pos[0] += 1
            else:
                out.append(b)
        return tuple(out)

    expansions = []
    for values in itertools.product((0, 1), repeat=total_ubits):
        pos = [0]
        ret = fill(behavior.ret, values, pos)
        events = tuple(
            (name, tuple(fill(a, values, pos) for a in args), rbits)
            for name, args, rbits in behavior.events
        )
        memory = tuple(
            (name, fill(bits, values, pos))
            for name, bits in behavior.memory
        )
        expansions.append(Behavior(behavior.kind, ret, events, memory))
    return expansions, needed


def check_behavior_sets(src_behaviors: FrozenSet[Behavior],
                        tgt_behaviors: FrozenSet[Behavior],
                        undef_cap: int = 4096,
                        function: str = "") -> BehaviorSetResult:
    if any(b.kind == UB for b in src_behaviors):
        return BehaviorSetResult(ok=True)
    src_may_diverge = any(b.kind == TIMEOUT for b in src_behaviors)
    for tgt in tgt_behaviors:
        if any(behavior_covers(src, tgt) for src in src_behaviors):
            continue
        # A target behavior with undef bits is a *set* of behaviors;
        # each concretization may be licensed by a different source
        # behavior (union coverage).
        expanded, needed = _expand_undef_bits(tgt, cap=undef_cap)
        if expanded is not None and all(
            any(behavior_covers(src, t) for src in src_behaviors)
            for t in expanded
        ):
            continue
        if expanded is None and needed > undef_cap:
            # The expansion was truncated: neither "covered" nor
            # "uncovered" can be decided soundly.  Surface an explicit
            # inconclusive verdict (never a silent pass or a spurious
            # counterexample).
            NUM_UNDEF_EXPANSION_OVERFLOW.inc()
            emit_remark(
                "refine",
                f"undef expansion needs {needed} concretizations "
                f"(cap {undef_cap}); verdict inconclusive",
                kind=REMARK_MISSED, function=function,
            )
            return BehaviorSetResult(
                ok=False, inconclusive=True,
                reason=(
                    f"undef expansion needs {needed} concretizations, "
                    f"exceeding the cap of {undef_cap}"
                ),
            )
        # Not covered.  If either side ran out of fuel, a longer run
        # might change the answer: stay conservative.
        if tgt.kind == TIMEOUT:
            return BehaviorSetResult(
                ok=False, inconclusive=True,
                reason="target execution exceeded its fuel budget",
            )
        if src_may_diverge:
            return BehaviorSetResult(
                ok=False, inconclusive=True,
                reason="source execution exceeded its fuel budget",
            )
        return BehaviorSetResult(ok=False, witness=tgt)
    return BehaviorSetResult(ok=True)
