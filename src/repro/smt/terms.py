"""Bitvector/boolean term language with hash-consing.

A small SMT-LIB-flavored term language sufficient for encoding the IR's
arithmetic and the poison-propagation logic.  Terms are immutable and
interned, so structural equality is pointer equality and common
subexpressions are shared — important because the refinement encoder
reuses the poison term of every operand many times.

Construction goes through the helper functions (``bvadd``, ``ite``,
``eq``...), which perform local constant folding and identity
simplification before interning.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

BOOL = "bool"


class Term:
    """An interned term.  ``sort`` is :data:`BOOL` or an int bitwidth."""

    __slots__ = ("op", "args", "sort", "payload", "_hash")

    _interned: Dict[Tuple, "Term"] = {}

    def __new__(cls, op: str, args: Tuple["Term", ...], sort,
                payload=None):
        key = (op, tuple(id(a) for a in args), sort, payload)
        cached = cls._interned.get(key)
        if cached is not None:
            return cached
        term = super().__new__(cls)
        term.op = op
        term.args = args
        term.sort = sort
        term.payload = payload
        term._hash = hash(key)
        cls._interned[key] = term
        return term

    def __hash__(self) -> int:
        return self._hash

    @property
    def width(self) -> int:
        assert self.sort != BOOL, f"{self} is boolean"
        return self.sort

    @property
    def is_bool(self) -> bool:
        return self.sort == BOOL

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self):
        assert self.is_const
        return self.payload

    def __repr__(self) -> str:
        if self.op == "const":
            return f"{self.payload}#{self.sort}" if not self.is_bool \
                else str(self.payload)
        if self.op == "var":
            return str(self.payload)
        inner = " ".join(repr(a) for a in self.args)
        if self.payload is not None:
            return f"({self.op}[{self.payload}] {inner})"
        return f"({self.op} {inner})"


# -- leaves ------------------------------------------------------------------

def bv_var(name: str, width: int) -> Term:
    return Term("var", (), width, name)


def bool_var(name: str) -> Term:
    return Term("var", (), BOOL, name)


def bv_const(value: int, width: int) -> Term:
    return Term("const", (), width, value & ((1 << width) - 1))


TRUE = Term("const", (), BOOL, True)
FALSE = Term("const", (), BOOL, False)


def bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


# -- boolean connectives ------------------------------------------------------

def not_(a: Term) -> Term:
    assert a.is_bool
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.op == "not":
        return a.args[0]
    return Term("not", (a,), BOOL)


def and_(*terms: Term) -> Term:
    flat = []
    for t in terms:
        if t is FALSE:
            return FALSE
        if t is TRUE:
            continue
        flat.append(t)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    result = flat[0]
    for t in flat[1:]:
        if t is result:
            continue
        if not_(t) is result:
            return FALSE
        result = Term("and", (result, t), BOOL)
    return result


def or_(*terms: Term) -> Term:
    flat = []
    for t in terms:
        if t is TRUE:
            return TRUE
        if t is FALSE:
            continue
        flat.append(t)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    result = flat[0]
    for t in flat[1:]:
        if t is result:
            continue
        if not_(t) is result:
            return TRUE
        result = Term("or", (result, t), BOOL)
    return result


def xor_(a: Term, b: Term) -> Term:
    if a is FALSE:
        return b
    if b is FALSE:
        return a
    if a is TRUE:
        return not_(b)
    if b is TRUE:
        return not_(a)
    if a is b:
        return FALSE
    return Term("xor", (a, b), BOOL)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def bool_ite(c: Term, a: Term, b: Term) -> Term:
    if c is TRUE:
        return a
    if c is FALSE:
        return b
    if a is b:
        return a
    if a is TRUE and b is FALSE:
        return c
    if a is FALSE and b is TRUE:
        return not_(c)
    return Term("ite", (c, a, b), BOOL)


# -- bitvector operations ---------------------------------------------------------

def _both_const(a: Term, b: Term) -> bool:
    return a.is_const and b.is_const


def _mask(width: int) -> int:
    return (1 << width) - 1


def _signed(v: int, width: int) -> int:
    if v >= 1 << (width - 1):
        return v - (1 << width)
    return v


def _binop(op: str, a: Term, b: Term, fold) -> Term:
    assert a.sort == b.sort, f"width mismatch: {a} vs {b}"
    if _both_const(a, b):
        folded = fold(a.value, b.value)
        if folded is not None:
            return bv_const(folded, a.width)
    return Term(op, (a, b), a.sort)


def bvadd(a: Term, b: Term) -> Term:
    if b.is_const and b.value == 0:
        return a
    if a.is_const and a.value == 0:
        return b
    return _binop("bvadd", a, b, lambda x, y: x + y)


def bvsub(a: Term, b: Term) -> Term:
    if b.is_const and b.value == 0:
        return a
    if a is b:
        return bv_const(0, a.width)
    return _binop("bvsub", a, b, lambda x, y: x - y)


def bvneg(a: Term) -> Term:
    return bvsub(bv_const(0, a.width), a)


def bvmul(a: Term, b: Term) -> Term:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, a.width)
            if x.value == 1:
                return y
    return _binop("bvmul", a, b, lambda x, y: x * y)


def bvudiv(a: Term, b: Term) -> Term:
    # division by zero: all-ones (the SMT-LIB convention); the encoder
    # guards division UB separately so the convention never leaks.
    return _binop("bvudiv", a, b,
                  lambda x, y: _mask(a.width) if y == 0 else x // y)


def bvurem(a: Term, b: Term) -> Term:
    return _binop("bvurem", a, b, lambda x, y: x if y == 0 else x % y)


def bvsdiv(a: Term, b: Term) -> Term:
    def fold(x, y):
        if y == 0:
            return None
        sx, sy = _signed(x, a.width), _signed(y, a.width)
        q = abs(sx) // abs(sy)
        if (sx < 0) != (sy < 0):
            q = -q
        return q

    return _binop("bvsdiv", a, b, fold)


def bvsrem(a: Term, b: Term) -> Term:
    def fold(x, y):
        if y == 0:
            return None
        sx, sy = _signed(x, a.width), _signed(y, a.width)
        q = abs(sx) // abs(sy)
        if (sx < 0) != (sy < 0):
            q = -q
        return sx - q * sy

    return _binop("bvsrem", a, b, fold)


def bvand(a: Term, b: Term) -> Term:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, a.width)
            if x.value == _mask(a.width):
                return y
    if a is b:
        return a
    return _binop("bvand", a, b, lambda x, y: x & y)


def bvor(a: Term, b: Term) -> Term:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return y
            if x.value == _mask(a.width):
                return bv_const(_mask(a.width), a.width)
    if a is b:
        return a
    return _binop("bvor", a, b, lambda x, y: x | y)


def bvxor(a: Term, b: Term) -> Term:
    if a is b:
        return bv_const(0, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.value == 0:
            return y
    return _binop("bvxor", a, b, lambda x, y: x ^ y)


def bvnot(a: Term) -> Term:
    if a.is_const:
        return bv_const(~a.value, a.width)
    return Term("bvnot", (a,), a.sort)


def bvshl(a: Term, b: Term) -> Term:
    if b.is_const and b.value == 0:
        return a
    return _binop("bvshl", a, b,
                  lambda x, y: 0 if y >= a.width else x << y)


def bvlshr(a: Term, b: Term) -> Term:
    if b.is_const and b.value == 0:
        return a
    return _binop("bvlshr", a, b,
                  lambda x, y: 0 if y >= a.width else x >> y)


def bvashr(a: Term, b: Term) -> Term:
    def fold(x, y):
        s = _signed(x, a.width)
        if y >= a.width:
            return -1 if s < 0 else 0
        return s >> y

    if b.is_const and b.value == 0:
        return a
    return _binop("bvashr", a, b, fold)


def zext(a: Term, width: int) -> Term:
    if width == a.width:
        return a
    if a.is_const:
        return bv_const(a.value, width)
    return Term("zext", (a,), width)


def sext(a: Term, width: int) -> Term:
    if width == a.width:
        return a
    if a.is_const:
        return bv_const(_signed(a.value, a.width), width)
    return Term("sext", (a,), width)


def extract(a: Term, hi: int, lo: int) -> Term:
    width = hi - lo + 1
    assert 0 <= lo <= hi < a.width
    if width == a.width:
        return a
    if a.is_const:
        return bv_const(a.value >> lo, width)
    return Term("extract", (a,), width, (hi, lo))


def trunc(a: Term, width: int) -> Term:
    return extract(a, width - 1, 0)


def concat(hi: Term, lo: Term) -> Term:
    """``hi`` supplies the most-significant bits."""
    if hi.is_const and lo.is_const:
        return bv_const((hi.value << lo.width) | lo.value,
                        hi.width + lo.width)
    return Term("concat", (hi, lo), hi.width + lo.width)


def bv_ite(c: Term, a: Term, b: Term) -> Term:
    assert c.is_bool and a.sort == b.sort
    if c is TRUE:
        return a
    if c is FALSE:
        return b
    if a is b:
        return a
    return Term("ite", (c, a, b), a.sort)


def ite(c: Term, a: Term, b: Term) -> Term:
    return bool_ite(c, a, b) if a.is_bool else bv_ite(c, a, b)


# -- predicates ------------------------------------------------------------------

def eq(a: Term, b: Term) -> Term:
    assert a.sort == b.sort
    if a is b:
        return TRUE
    if a.is_bool:
        if _both_const(a, b):
            return bool_const(a.value == b.value)
        return not_(xor_(a, b))
    if _both_const(a, b):
        return bool_const(a.value == b.value)
    return Term("eq", (a, b), BOOL)


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def ult(a: Term, b: Term) -> Term:
    if _both_const(a, b):
        return bool_const(a.value < b.value)
    if a is b:
        return FALSE
    return Term("ult", (a, b), BOOL)


def ule(a: Term, b: Term) -> Term:
    return not_(ult(b, a))


def slt(a: Term, b: Term) -> Term:
    if _both_const(a, b):
        return bool_const(_signed(a.value, a.width) < _signed(b.value, b.width))
    if a is b:
        return FALSE
    return Term("slt", (a, b), BOOL)


def sle(a: Term, b: Term) -> Term:
    return not_(slt(b, a))
