"""Bit-blasting: lower :mod:`repro.smt.terms` into CNF via Tseitin.

Each boolean term maps to a SAT literal; each bitvector term maps to a
list of literals (LSB first).  Gates are emitted through the
:class:`GateBuilder`, which implements the standard Tseitin encodings
plus ripple-carry adders, shift-and-add multipliers, a restoring
division circuit, and barrel shifters — everything the IR's arithmetic
needs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .sat import SatSolver
from .terms import BOOL, FALSE, TRUE, Term


class GateBuilder:
    """Tseitin gate encodings into a :class:`SatSolver`."""

    def __init__(self, solver: SatSolver):
        self.solver = solver
        self._true_lit = None
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}

    def true_lit(self) -> int:
        if self._true_lit is None:
            self._true_lit = self.solver.new_var()
            self.solver.add_clause([self._true_lit])
        return self._true_lit

    def false_lit(self) -> int:
        return -self.true_lit()

    def fresh(self) -> int:
        return self.solver.new_var()

    # -- basic gates -----------------------------------------------------------
    def and_gate(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == -b:
            return self.false_lit()
        if a == self.true_lit():
            return b
        if b == self.true_lit():
            return a
        if a == self.false_lit() or b == self.false_lit():
            return self.false_lit()
        key = (min(a, b), max(a, b))
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        out = self.fresh()
        self.solver.add_clause([-out, a])
        self.solver.add_clause([-out, b])
        self.solver.add_clause([out, -a, -b])
        self._and_cache[key] = out
        return out

    def or_gate(self, a: int, b: int) -> int:
        return -self.and_gate(-a, -b)

    def xor_gate(self, a: int, b: int) -> int:
        if a == b:
            return self.false_lit()
        if a == -b:
            return self.true_lit()
        if a == self.false_lit():
            return b
        if b == self.false_lit():
            return a
        if a == self.true_lit():
            return -b
        if b == self.true_lit():
            return -a
        key = (min(a, b), max(a, b))
        cached = self._xor_cache.get(key)
        if cached is not None:
            return cached
        out = self.fresh()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        self._xor_cache[key] = out
        return out

    def ite_gate(self, c: int, a: int, b: int) -> int:
        if a == b:
            return a
        return self.or_gate(self.and_gate(c, a), self.and_gate(-c, b))

    def iff_gate(self, a: int, b: int) -> int:
        return -self.xor_gate(a, b)

    def and_many(self, lits: List[int]) -> int:
        out = self.true_lit()
        for lit in lits:
            out = self.and_gate(out, lit)
        return out

    def or_many(self, lits: List[int]) -> int:
        out = self.false_lit()
        for lit in lits:
            out = self.or_gate(out, lit)
        return out

    # -- arithmetic circuits ------------------------------------------------------
    def full_adder(self, a: int, b: int, cin: int) -> Tuple[int, int]:
        s = self.xor_gate(self.xor_gate(a, b), cin)
        cout = self.or_gate(
            self.and_gate(a, b),
            self.and_gate(cin, self.xor_gate(a, b)),
        )
        return s, cout

    def adder(self, a: List[int], b: List[int],
              cin: int = None) -> Tuple[List[int], int]:
        carry = cin if cin is not None else self.false_lit()
        out = []
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    def negate(self, a: List[int]) -> List[int]:
        inverted = [-x for x in a]
        one = [self.true_lit()] + [self.false_lit()] * (len(a) - 1)
        out, _ = self.adder(inverted, one)
        return out

    def subtract(self, a: List[int], b: List[int]) -> Tuple[List[int], int]:
        """Returns (a - b, borrow-free flag: carry out of a + ~b + 1)."""
        inverted = [-x for x in b]
        out, carry = self.adder(a, inverted, cin=self.true_lit())
        return out, carry

    def multiplier(self, a: List[int], b: List[int]) -> List[int]:
        width = len(a)
        acc = [self.false_lit()] * width
        for i in range(width):
            partial = [self.false_lit()] * i + [
                self.and_gate(a[j], b[i]) for j in range(width - i)
            ]
            acc, _ = self.adder(acc, partial)
        return acc

    def divider(self, a: List[int], b: List[int]
                ) -> Tuple[List[int], List[int]]:
        """Restoring division: returns (quotient, remainder); when the
        divisor is zero this yields q = all-ones, r = a (matching the
        SMT-LIB convention used by the term folder)."""
        width = len(a)
        rem = [self.false_lit()] * width
        quot = [self.false_lit()] * width
        for i in range(width - 1, -1, -1):
            rem = [a[i]] + rem[:-1]  # shift left, bring down bit i
            diff, no_borrow = self.subtract(rem, b)
            quot[i] = no_borrow
            rem = [self.ite_gate(no_borrow, d, r) for d, r in zip(diff, rem)]
        b_zero = -self.or_many(b)
        quot = [self.or_gate(q, b_zero) for q in quot]
        rem = [self.ite_gate(b_zero, x, r) for x, r in zip(a, rem)]
        return quot, rem

    def shifter(self, a: List[int], amount: List[int],
                kind: str) -> List[int]:
        """Barrel shifter.  ``kind`` is 'shl', 'lshr' or 'ashr'.  Shift
        amounts >= width produce 0 (or sign for ashr), matching the term
        folder."""
        width = len(a)
        fill = a[-1] if kind == "ashr" else self.false_lit()
        result = list(a)
        for bit_idx in range(len(amount)):
            step = 1 << bit_idx
            shifted = []
            for i in range(width):
                if kind == "shl":
                    src = i - step
                else:
                    src = i + step
                if 0 <= src < width:
                    shifted.append(result[src])
                else:
                    shifted.append(fill)
            cond = amount[bit_idx]
            result = [
                self.ite_gate(cond, s, r) for s, r in zip(shifted, result)
            ]
        return result

    def equals(self, a: List[int], b: List[int]) -> int:
        return self.and_many([self.iff_gate(x, y) for x, y in zip(a, b)])

    def unsigned_less(self, a: List[int], b: List[int]) -> int:
        # a < b  <=>  borrow out of a - b
        _, no_borrow = self.subtract(a, b)
        return -no_borrow

    def signed_less(self, a: List[int], b: List[int]) -> int:
        # flip sign bits and compare unsigned
        a2 = list(a[:-1]) + [-a[-1]]
        b2 = list(b[:-1]) + [-b[-1]]
        return self.unsigned_less(a2, b2)


class BitBlaster:
    """Caches the lowering of every term."""

    def __init__(self, solver: SatSolver):
        self.gates = GateBuilder(solver)
        self._bool_cache: Dict[Term, int] = {}
        self._bv_cache: Dict[Term, List[int]] = {}
        self._vars: Dict[str, object] = {}
        #: circuit-cache traffic.  Terms are globally hash-consed, so in
        #: a long-lived blaster (see SolverSession) a hit can come from
        #: an earlier *query* — the memoized-circuit reuse the perf
        #: layer measures.
        self.cache_hits = 0
        self.cache_misses = 0

    # -- entry points -----------------------------------------------------------
    def assert_true(self, term: Term) -> None:
        lit = self.lower_bool(term)
        self.gates.solver.add_clause([lit])

    def var_bits(self, name: str):
        return self._vars.get(name)

    # -- lowering ----------------------------------------------------------------
    def lower_bool(self, term: Term) -> int:
        assert term.sort == BOOL
        cached = self._bool_cache.get(term)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        lit = self._lower_bool(term)
        self._bool_cache[term] = lit
        return lit

    def _lower_bool(self, term: Term) -> int:
        g = self.gates
        op = term.op
        if op == "const":
            return g.true_lit() if term.value else g.false_lit()
        if op == "var":
            lit = g.fresh()
            self._vars[term.payload] = lit
            return lit
        if op == "not":
            return -self.lower_bool(term.args[0])
        if op == "and":
            return g.and_gate(*[self.lower_bool(a) for a in term.args])
        if op == "or":
            return g.or_gate(*[self.lower_bool(a) for a in term.args])
        if op == "xor":
            return g.xor_gate(*[self.lower_bool(a) for a in term.args])
        if op == "ite":
            return g.ite_gate(
                self.lower_bool(term.args[0]),
                self.lower_bool(term.args[1]),
                self.lower_bool(term.args[2]),
            )
        if op == "eq":
            a, b = term.args
            if a.sort == BOOL:
                return g.iff_gate(self.lower_bool(a), self.lower_bool(b))
            return g.equals(self.lower_bv(a), self.lower_bv(b))
        if op == "ult":
            return g.unsigned_less(self.lower_bv(term.args[0]),
                                   self.lower_bv(term.args[1]))
        if op == "slt":
            return g.signed_less(self.lower_bv(term.args[0]),
                                 self.lower_bv(term.args[1]))
        raise NotImplementedError(f"lower bool {op}")

    def lower_bv(self, term: Term) -> List[int]:
        cached = self._bv_cache.get(term)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        bits = self._lower_bv(term)
        assert len(bits) == term.width
        self._bv_cache[term] = bits
        return bits

    def _lower_bv(self, term: Term) -> List[int]:
        g = self.gates
        op = term.op
        width = term.width
        if op == "const":
            return [
                g.true_lit() if (term.value >> i) & 1 else g.false_lit()
                for i in range(width)
            ]
        if op == "var":
            bits = [g.fresh() for _ in range(width)]
            self._vars[term.payload] = bits
            return bits
        if op in ("bvadd", "bvsub", "bvmul", "bvudiv", "bvurem",
                  "bvsdiv", "bvsrem", "bvand", "bvor", "bvxor",
                  "bvshl", "bvlshr", "bvashr"):
            a = self.lower_bv(term.args[0])
            b = self.lower_bv(term.args[1])
            if op == "bvadd":
                out, _ = g.adder(a, b)
                return out
            if op == "bvsub":
                out, _ = g.subtract(a, b)
                return out
            if op == "bvmul":
                return g.multiplier(a, b)
            if op == "bvudiv":
                return g.divider(a, b)[0]
            if op == "bvurem":
                return g.divider(a, b)[1]
            if op in ("bvsdiv", "bvsrem"):
                return self._signed_div(a, b, op)
            if op == "bvand":
                return [g.and_gate(x, y) for x, y in zip(a, b)]
            if op == "bvor":
                return [g.or_gate(x, y) for x, y in zip(a, b)]
            if op == "bvxor":
                return [g.xor_gate(x, y) for x, y in zip(a, b)]
            return g.shifter(a, b, op[2:])
        if op == "bvnot":
            return [-x for x in self.lower_bv(term.args[0])]
        if op == "zext":
            inner = self.lower_bv(term.args[0])
            return inner + [g.false_lit()] * (width - len(inner))
        if op == "sext":
            inner = self.lower_bv(term.args[0])
            return inner + [inner[-1]] * (width - len(inner))
        if op == "extract":
            hi, lo = term.payload
            inner = self.lower_bv(term.args[0])
            return inner[lo:hi + 1]
        if op == "concat":
            hi, lo = term.args
            return self.lower_bv(lo) + self.lower_bv(hi)
        if op == "ite":
            c = self.lower_bool(term.args[0])
            a = self.lower_bv(term.args[1])
            b = self.lower_bv(term.args[2])
            return [g.ite_gate(c, x, y) for x, y in zip(a, b)]
        raise NotImplementedError(f"lower bv {op}")

    def _signed_div(self, a: List[int], b: List[int], op: str) -> List[int]:
        """Signed division via unsigned division on magnitudes, matching
        C/LLVM truncation semantics."""
        g = self.gates
        a_neg = a[-1]
        b_neg = b[-1]
        abs_a = [g.ite_gate(a_neg, n, x) for n, x in zip(g.negate(a), a)]
        abs_b = [g.ite_gate(b_neg, n, x) for n, x in zip(g.negate(b), b)]
        quot, rem = g.divider(abs_a, abs_b)
        if op == "bvsdiv":
            neg_out = g.xor_gate(a_neg, b_neg)
            return [
                g.ite_gate(neg_out, n, q)
                for n, q in zip(g.negate(quot), quot)
            ]
        # remainder takes the dividend's sign
        return [g.ite_gate(a_neg, n, r) for n, r in zip(g.negate(rem), rem)]

    # -- model extraction ------------------------------------------------------------
    def model_bool(self, term: Term) -> bool:
        lit = self._bool_cache.get(term)
        if lit is None:
            raise KeyError(f"{term} was never lowered")
        return self._lit_value(lit)

    def model_bv(self, term: Term) -> int:
        bits = self._bv_cache.get(term)
        if bits is None:
            raise KeyError(f"{term} was never lowered")
        value = 0
        for i, lit in enumerate(bits):
            if self._lit_value(lit):
                value |= 1 << i
        return value

    def _lit_value(self, lit: int) -> bool:
        value = self.gates.solver.assignment[abs(lit)]
        if value is None:
            value = False  # unconstrained: any value works
        return value if lit > 0 else not value
